/**
 * @file
 * Table 4 reproduction: statement validity rate with and without the
 * feedback mechanism, on the dynamically-typed sqlite-like dialect and
 * the strictly-typed postgres-like dialect, plus the baseline.
 *
 * Paper numbers: SQLite 97.7% (w/) vs 24.9% (w/o) vs 98.0% (baseline);
 * PostgreSQL 52.4% vs 21.6% vs 25.1%. Also reproduced: the §5.4 note
 * that validity converges quickly, and a threshold-p ablation sweep.
 */
#include <vector>

#include "bench_util.h"
#include "core/campaign.h"

using namespace sqlpp;

namespace {

double
runValidity(const std::string &dialect, GeneratorMode mode,
            size_t checks, double threshold, uint64_t seed)
{
    CampaignConfig config;
    config.dialect = dialect;
    config.seed = seed;
    config.mode = mode;
    config.checks = checks;
    config.feedback.threshold = threshold;
    config.feedback.updateInterval = 150;
    config.feedback.ddlFailureLimit = 6;
    config.oracles = {"TLP"};
    CampaignRunner runner(config);
    return 100.0 * runner.run().validityRate();
}

} // namespace

int
main(int argc, char **argv)
{
    size_t checks = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2500;

    bench::banner("Table 4: validity rate of generated test cases",
                  "sqlite 97.7/24.9/98.0; postgres 52.4/21.6/25.1 "
                  "(w-fb / wo-fb / baseline)");

    struct ModeSpec
    {
        const char *label;
        GeneratorMode mode;
        double paper_sqlite;
        double paper_pg;
    };
    const ModeSpec modes[] = {
        {"SQLancer++ w/ feedback", GeneratorMode::Adaptive, 97.7, 52.4},
        {"SQLancer++ w/o feedback", GeneratorMode::AdaptiveNoFeedback,
         24.9, 21.6},
        {"baseline (dialect-aware)", GeneratorMode::Baseline, 98.0,
         25.1},
    };

    bench::section("validity after a full run (averaged over 3 seeds)");
    std::printf("%-26s %18s %18s\n", "approach", "sqlite-like",
                "postgres-like");
    double measured[3][2];
    for (int m = 0; m < 3; ++m) {
        double sums[2] = {0, 0};
        for (uint64_t seed : {11ull, 22ull, 33ull}) {
            sums[0] += runValidity("sqlite-like", modes[m].mode, checks,
                                   0.05, seed);
            sums[1] += runValidity("postgres-like", modes[m].mode,
                                   checks, 0.05, seed);
        }
        measured[m][0] = sums[0] / 3;
        measured[m][1] = sums[1] / 3;
        std::printf("%-26s %7.1f%% (p:%4.1f) %7.1f%% (p:%4.1f)\n",
                    modes[m].label, measured[m][0],
                    modes[m].paper_sqlite, measured[m][1],
                    modes[m].paper_pg);
    }

    bench::section("convergence (validity per window, w/ feedback, "
                   "sqlite-like)");
    {
        // Paper §5.4: the rate converges almost immediately.
        CampaignConfig config;
        config.dialect = "sqlite-like";
        config.seed = 5;
        config.checks = checks / 5;
        for (int window = 1; window <= 5; ++window) {
            CampaignConfig step = config;
            step.checks = checks * window / 5;
            CampaignRunner runner(step);
            std::printf("  after %5zu checks: %5.1f%%\n", step.checks,
                        100.0 * runner.run().validityRate());
        }
    }

    bench::section("threshold-p ablation (postgres-like, w/ feedback)");
    for (double p : {0.01, 0.05, 0.20}) {
        std::printf("  p = %4.2f : %5.1f%%\n", p,
                    runValidity("postgres-like", GeneratorMode::Adaptive,
                                checks, p, 7));
    }
    std::printf("(the paper's p=0.01 needs ~300 observations per feature "
                "— at small budgets a\nlarger p reaches verdicts sooner; "
                "shape: validity rises with feedback under any p)\n");

    bench::section("shape checks");
    std::printf("sqlite: feedback gain %.0f points (paper +292%% "
                "relative); postgres: %.0f points (paper +121%%).\n",
                measured[0][0] - measured[1][0],
                measured[0][1] - measured[1][1]);
    return 0;
}
