/**
 * @file
 * Learning-curve reproduction: windowed validity rate over logical
 * time as the adaptive generator learns each dialect (the paper's
 * validity learning curves, §5.4 "validity converges quickly").
 *
 * Runs one adaptive campaign per campaign dialect with the
 * CurveSample sampler enabled and prints the per-window validity
 * trajectory for every profile, plus the features suppressed along
 * the way and the per-feature acceptance posterior at the end for a
 * chosen dialect, and a baseline/adaptive/guided comparison of
 * cumulative unique plan fingerprints over the same statement budget
 * (the guided lanes run the novelty-rewarded bandit of
 * core/guidance.h).
 *
 *   ./learning_curve [checks] [interval] [detail-dialect]
 */
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/campaign.h"
#include "dialect/profile.h"

using namespace sqlpp;

int
main(int argc, char **argv)
{
    size_t checks = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1200;
    size_t interval =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : checks / 6;
    std::string detail_dialect =
        argc > 3 ? argv[3] : std::string("cratedb-like");
    if (interval == 0)
        interval = 1;

    bench::banner("Learning curves: windowed validity per dialect",
                  "validity climbs within the first update intervals "
                  "as unsupported features are suppressed");

    bench::section("windowed validity rate per profile");
    std::printf("%-18s", "dialect");
    size_t columns = (checks + interval - 1) / interval;
    for (size_t c = 1; c <= columns; ++c)
        std::printf(" %7zu", c * interval);
    std::printf("  suppr.\n");

    for (const DialectProfile *profile : campaignDialects()) {
        CampaignConfig config;
        config.dialect = profile->name;
        config.seed = 99;
        config.checks = checks;
        config.curveInterval = interval;
        config.feedback.updateInterval = 150;
        config.feedback.ddlFailureLimit = 6;
        config.oracles = {"TLP"};
        CampaignRunner runner(config);
        CampaignStats stats = runner.run();
        std::printf("%-18s", profile->name.c_str());
        for (const CurveSample &sample : stats.curve)
            std::printf(" %6.1f%%",
                        100.0 * sample.windowValidityRate());
        for (size_t c = stats.curve.size(); c < columns; ++c)
            std::printf(" %7s", "-");
        std::printf(" %6llu\n",
                    stats.curve.empty()
                        ? 0ull
                        : (unsigned long long)stats.curve.back()
                              .suppressed);
    }
    std::printf("(columns are checksAttempted ticks; each cell is the "
                "validity rate within that window)\n");

    bench::section("unique plan fingerprints: baseline vs adaptive "
                   "vs guided");
    {
        struct Lane
        {
            const char *label;
            GeneratorMode mode;
            GuidanceMode guidance;
        };
        const std::vector<Lane> lanes = {
            {"baseline", GeneratorMode::Baseline, GuidanceMode::Off},
            {"adaptive", GeneratorMode::Adaptive, GuidanceMode::Off},
            {"guided-ucb", GeneratorMode::Adaptive, GuidanceMode::Ucb},
            {"guided-thompson", GeneratorMode::Adaptive,
             GuidanceMode::Thompson},
        };
        std::printf("%-18s", "mode");
        for (size_t c = 1; c <= columns; ++c)
            std::printf(" %7zu", c * interval);
        std::printf("  plans\n");
        for (const Lane &lane : lanes) {
            CampaignConfig config;
            config.dialect = detail_dialect;
            config.seed = 99;
            config.checks = checks;
            config.mode = lane.mode;
            config.guidance.mode = lane.guidance;
            config.curveInterval = interval;
            config.feedback.updateInterval = 150;
            config.feedback.ddlFailureLimit = 6;
            config.oracles = {"TLP"};
            CampaignRunner runner(config);
            CampaignStats stats = runner.run();
            std::printf("%-18s", lane.label);
            for (const CurveSample &sample : stats.curve)
                std::printf(" %7llu",
                            (unsigned long long)sample.cumPlans);
            for (size_t c = stats.curve.size(); c < columns; ++c)
                std::printf(" %7s", "-");
            std::printf(" %6zu\n", stats.planFingerprints.size());
        }
        std::printf("(cells are cumulative distinct plan fingerprints "
                    "at each tick on %s; the guided lanes spend the "
                    "same statement budget chasing plan novelty)\n",
                    detail_dialect.c_str());
    }

    bench::section(("per-feature acceptance posterior: " +
                    detail_dialect)
                       .c_str());
    {
        CampaignConfig config;
        config.dialect = detail_dialect;
        config.seed = 99;
        config.checks = checks;
        config.curveInterval = interval;
        config.feedback.updateInterval = 150;
        config.feedback.ddlFailureLimit = 6;
        config.oracles = {"TLP"};
        CampaignRunner runner(config);
        CampaignStats stats = runner.run();
        const FeedbackTracker &tracker = runner.feedback();
        FeatureRegistry &registry = runner.registry();
        std::printf("%-30s %8s %8s %10s %s\n", "feature", "N", "y",
                    "est.prob", "verdict");
        for (FeatureId id = 0; id < registry.size(); ++id) {
            const FeatureStats &stat = tracker.stats(id);
            if (stat.executions < 10)
                continue;
            if (!stat.suppressed &&
                tracker.estimatedProbability(id) > 0.5)
                continue; // print only the interesting (learned) rows
            std::printf("%-30s %8llu %8llu %9.3f%% %s\n",
                        registry.name(id).c_str(),
                        (unsigned long long)stat.executions,
                        (unsigned long long)stat.successes,
                        100.0 * tracker.estimatedProbability(id),
                        stat.suppressed ? "suppressed" : "accepted");
        }
        std::printf("\nfinal validity: %.1f%% over %llu checks, "
                    "%zu curve samples\n",
                    100.0 * stats.validityRate(),
                    (unsigned long long)stats.checksAttempted,
                    stats.curve.size());
    }
    return 0;
}
