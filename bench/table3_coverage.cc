/**
 * @file
 * Table 3 reproduction: engine coverage under different generators.
 *
 * The paper measures gcov line/branch coverage of SQLite, PostgreSQL,
 * and DuckDB; here the proxy is the engine's probe coverage (fraction
 * of declared engine code paths hit — see util/coverage.h). Expected
 * shape: the dialect-specific baseline covers more than the adaptive
 * generator (it knows every dialect feature a priori), feedback changes
 * coverage only slightly, and the gap is smaller on "less mature"
 * dialects.
 */
#include "bench_util.h"
#include "core/campaign.h"
#include "engine/database.h"
#include "util/coverage.h"

using namespace sqlpp;

namespace {

double
runCoverage(const std::string &dialect, GeneratorMode mode,
            size_t checks)
{
    CoverageRegistry::instance().reset();
    CampaignConfig config;
    config.dialect = dialect;
    config.seed = 77;
    config.mode = mode;
    config.checks = checks;
    config.oracles = {"TLP", "NOREC"};
    CampaignRunner runner(config);
    (void)runner.run();
    return 100.0 * CoverageRegistry::instance().ratio();
}

} // namespace

int
main(int argc, char **argv)
{
    size_t checks = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 800;

    bench::banner("Table 3: engine coverage (probe-coverage proxy)",
                  "baseline > adaptive on every system; small deltas "
                  "from feedback; smaller gap on less mature targets");

    declareEngineCoverageProbes();
    const char *dialects[] = {"sqlite-like", "postgres-like",
                              "duckdb-like"};
    struct ModeSpec
    {
        const char *label;
        GeneratorMode mode;
    };
    const ModeSpec modes[] = {
        {"SQLancer++ w/ feedback", GeneratorMode::Adaptive},
        {"SQLancer++ w/o feedback", GeneratorMode::AdaptiveNoFeedback},
        {"baseline (SQLancer)", GeneratorMode::Baseline},
    };

    std::printf("%-26s", "approach");
    for (const char *dialect : dialects)
        std::printf(" %14s", dialect);
    std::printf("\n");

    double fb[3] = {0, 0, 0}, base[3] = {0, 0, 0};
    for (const ModeSpec &mode : modes) {
        std::printf("%-26s", mode.label);
        for (int d = 0; d < 3; ++d) {
            double ratio = runCoverage(dialects[d], mode.mode, checks);
            if (mode.mode == GeneratorMode::Adaptive)
                fb[d] = ratio;
            if (mode.mode == GeneratorMode::Baseline)
                base[d] = ratio;
            std::printf("        %5.1f%%", ratio);
        }
        std::printf("\n");
    }

    bench::section("shape checks");
    for (int d = 0; d < 3; ++d) {
        std::printf("%-14s baseline-vs-adaptive gap: %+5.1f points "
                    "(paper: baseline ahead)\n",
                    dialects[d], base[d] - fb[d]);
    }
    std::printf("\npaper reference (line coverage, 24h): sqlite 30.5%% "
                "vs 47.9%%; postgres 26.3%% vs 31.8%%;\nduckdb 31.6%% vs "
                "33.4%% — coverage does not track logic-bug yield.\n");
    return 0;
}
