/**
 * @file
 * Parallel campaign scheduler bench: worker-count sweep.
 *
 * Sweeps 1/2/4/8 workers over a *fixed* shard layout (8 slices of one
 * dialect's check budget, then the 17-dialect fleet) and reports
 * per-worker throughput, queue-drain time, and the merged totals. The
 * shard layout never changes across the sweep, so every row must merge
 * to bit-identical campaign stats — the sweep verifies that invariant
 * and prints the speedup relative to the single-worker run.
 *
 * Wall-clock speedup tracks the machine: on an N-core box the drain
 * time shrinks until workers exceed cores (the bench prints the
 * hardware concurrency next to the sweep for context).
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/scheduler.h"
#include "util/metrics.h"

#include <fstream>

using namespace sqlpp;

namespace {

bool
sameMerged(const CampaignStats &a, const CampaignStats &b)
{
    return a.checksAttempted == b.checksAttempted &&
           a.checksValid == b.checksValid &&
           a.bugsDetected == b.bugsDetected &&
           a.setupGenerated == b.setupGenerated &&
           a.prioritizedBugs.size() == b.prioritizedBugs.size() &&
           a.planFingerprints == b.planFingerprints;
}

void
printRow(size_t workers, const ScheduleReport &report, double base_drain)
{
    double speedup = report.queueDrainSeconds > 0.0
                         ? base_drain / report.queueDrainSeconds
                         : 0.0;
    std::printf("%7zu %9.3f %10.0f %8.2fx %11llu %8llu %6llu %6zu %7zu\n",
                workers, report.queueDrainSeconds,
                report.checksPerSecond(), speedup,
                (unsigned long long)report.merged.checksAttempted,
                (unsigned long long)report.merged.checksValid,
                (unsigned long long)report.merged.bugsDetected,
                report.merged.prioritizedBugs.size(),
                report.merged.planFingerprints.size());
}

void
printWorkerDetail(const ScheduleReport &report)
{
    for (const WorkerReport &worker : report.workers) {
        std::printf("    worker %zu: %zu shard(s), %llu checks, "
                    "%.3f s busy, %.0f checks/s\n",
                    worker.workerIndex, worker.shardsRun,
                    (unsigned long long)worker.checksAttempted,
                    worker.busySeconds, worker.checksPerSecond());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    size_t checks = 4000;
    std::string metrics_out;
    for (int arg = 1; arg < argc; ++arg) {
        if (std::strcmp(argv[arg], "--metrics-out") == 0 &&
            arg + 1 < argc) {
            metrics_out = argv[++arg];
        } else {
            checks = std::strtoul(argv[arg], nullptr, 10);
        }
    }

    declarePlatformMetrics();
    MetricsRegistry::instance().reset();

    bench::banner(
        "parallel campaign scheduler (worker sweep)",
        "merged results are a function of seed+shards only; workers "
        "change wall-clock, nothing else");
    std::printf("hardware concurrency: %u\n",
                std::thread::hardware_concurrency());

    const std::vector<size_t> sweep = {1, 2, 4, 8};

    bench::section("slice mode: sqlite-like, 8 slices");
    std::printf("%7s %9s %10s %9s %11s %8s %6s %6s %7s\n", "workers",
                "drain(s)", "checks/s", "speedup", "attempted", "valid",
                "bugs", "prio", "plans");
    ScheduleReport baseline;
    bool slice_deterministic = true;
    for (size_t workers : sweep) {
        SchedulerConfig config;
        config.mode = ScheduleMode::SliceChecks;
        config.workers = workers;
        config.slices = 8; // fixed layout across the whole sweep
        config.campaign.dialect = "sqlite-like";
        config.campaign.seed = 42;
        config.campaign.checks = checks;
        config.campaign.setupStatements = 60;
        config.campaign.oracles = {"TLP", "NOREC"};
        config.campaign.feedback.updateInterval = 200;
        ScheduleReport report = CampaignScheduler(config).run();
        if (workers == sweep.front())
            baseline = report;
        else
            slice_deterministic &=
                sameMerged(baseline.merged, report.merged);
        printRow(workers, report, baseline.queueDrainSeconds);
        if (workers == 4)
            printWorkerDetail(report);
    }
    std::printf("merged stats identical across worker counts: %s\n",
                slice_deterministic ? "OK" : "MISMATCH");

    bench::section("dialect mode: 17-dialect fleet");
    std::printf("%7s %9s %10s %9s %11s %8s %6s %6s %7s\n", "workers",
                "drain(s)", "checks/s", "speedup", "attempted", "valid",
                "bugs", "prio", "plans");
    ScheduleReport fleet_baseline;
    bool fleet_deterministic = true;
    for (size_t workers : sweep) {
        SchedulerConfig config;
        config.mode = ScheduleMode::ShardDialects;
        config.workers = workers;
        config.campaign.seed = 42;
        config.campaign.checks = checks / 8;
        config.campaign.setupStatements = 60;
        config.campaign.feedback.updateInterval = 200;
        ScheduleReport report = CampaignScheduler(config).run();
        if (workers == sweep.front())
            fleet_baseline = report;
        else
            fleet_deterministic &=
                sameMerged(fleet_baseline.merged, report.merged);
        printRow(workers, report, fleet_baseline.queueDrainSeconds);
    }
    std::printf("merged stats identical across worker counts: %s\n",
                fleet_deterministic ? "OK" : "MISMATCH");

    bench::section("checkpoint round-trip: none vs write vs resume");
    auto checkpointed_config = [&](size_t workers) {
        SchedulerConfig config;
        config.mode = ScheduleMode::SliceChecks;
        config.workers = workers;
        config.slices = 8;
        config.campaign.dialect = "sqlite-like";
        config.campaign.seed = 42;
        config.campaign.checks = checks;
        config.campaign.setupStatements = 60;
        config.campaign.oracles = {"TLP", "NOREC"};
        config.campaign.feedback.updateInterval = 200;
        return config;
    };
    std::string checkpoint_path =
        (std::filesystem::temp_directory_path() /
         "sqlpp_bench_checkpoint.kv")
            .string();
    std::filesystem::remove(checkpoint_path);

    ScheduleReport plain = CampaignScheduler(checkpointed_config(2)).run();

    SchedulerConfig writing = checkpointed_config(2);
    writing.checkpointPath = checkpoint_path;
    ScheduleReport written = CampaignScheduler(writing).run();
    double write_overhead =
        plain.queueDrainSeconds > 0.0
            ? written.queueDrainSeconds / plain.queueDrainSeconds
            : 0.0;

    SchedulerConfig resuming = writing;
    resuming.resume = true;
    ScheduleReport resumed = CampaignScheduler(resuming).run();

    bool checkpoint_deterministic =
        plain.merged == written.merged && plain.merged == resumed.merged;
    std::printf("no checkpoint: %.3f s; checkpointed: %.3f s (%.2fx); "
                "full resume: %.3f s (%zu/%zu shards restored)\n",
                plain.queueDrainSeconds, written.queueDrainSeconds,
                write_overhead, resumed.queueDrainSeconds,
                resumed.shardsFromCheckpoint, resumed.shards.size());
    std::printf("merged stats identical across the three runs: %s\n",
                checkpoint_deterministic ? "OK" : "MISMATCH");
    std::filesystem::remove(checkpoint_path);

    bench::section("execution budget: throughput under tight budgets");
    std::printf("%22s %9s %11s %8s %6s %10s\n", "budget", "drain(s)",
                "attempted", "valid", "bugs", "res-errors");
    for (uint64_t max_steps : {0ULL, 100000ULL, 10000ULL, 1000ULL}) {
        SchedulerConfig config = checkpointed_config(2);
        config.campaign.budget.maxSteps = max_steps;
        ScheduleReport report = CampaignScheduler(config).run();
        char label[32];
        std::snprintf(label, sizeof label, "max-steps=%llu",
                      (unsigned long long)max_steps);
        std::printf("%22s %9.3f %11llu %8llu %6llu %10llu\n", label,
                    report.queueDrainSeconds,
                    (unsigned long long)report.merged.checksAttempted,
                    (unsigned long long)report.merged.checksValid,
                    (unsigned long long)report.merged.bugsDetected,
                    (unsigned long long)report.merged.resourceErrors);
    }

    bench::section("execution pipeline: batch vs row");
    // Same seed, same shard layout, same plans — only the execution
    // pipeline changes. The merged stats must agree across modes (the
    // mode-invariance contract core_batch_determinism_test pins); the
    // statements/s column is the ISSUE's throughput figure, derived
    // from the connection.statements counter delta over drain time.
    std::printf("%10s %7s %9s %10s %12s %6s %7s\n", "mode", "workers",
                "drain(s)", "checks/s", "stmts/s", "bugs", "plans");
    bool modes_agree = true;
    ScheduleReport row_baseline;
    for (ExecMode exec_mode : {ExecMode::Optimized, ExecMode::Batch}) {
        for (size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
            SchedulerConfig config = checkpointed_config(workers);
            config.campaign.execMode = exec_mode;
            uint64_t statements_before =
                MetricsRegistry::instance().counterTotal(
                    "connection.statements");
            ScheduleReport report = CampaignScheduler(config).run();
            uint64_t statements =
                MetricsRegistry::instance().counterTotal(
                    "connection.statements") -
                statements_before;
            double stmts_per_sec =
                report.queueDrainSeconds > 0.0
                    ? statements / report.queueDrainSeconds
                    : 0.0;
            if (exec_mode == ExecMode::Optimized && workers == 1)
                row_baseline = report;
            else
                modes_agree &=
                    sameMerged(row_baseline.merged, report.merged);
            std::printf("%10s %7zu %9.3f %10.0f %12.0f %6llu %7zu\n",
                        execModeName(exec_mode), workers,
                        report.queueDrainSeconds,
                        report.checksPerSecond(), stmts_per_sec,
                        (unsigned long long)report.merged.bugsDetected,
                        report.merged.planFingerprints.size());
        }
    }
    std::printf("merged stats identical across modes and workers: %s\n",
                modes_agree ? "OK" : "MISMATCH");

    bench::section("campaign metrics (whole sweep)");
    std::fputs(metricsSummaryTable().c_str(), stdout);
    if (!metrics_out.empty()) {
        std::ofstream out(metrics_out, std::ios::binary);
        out << exportMetricsJson();
        std::printf("metrics: %s\n", metrics_out.c_str());
    }

    return (slice_deterministic && fleet_deterministic &&
            checkpoint_deterministic && modes_agree)
               ? 0
               : 1;
}
