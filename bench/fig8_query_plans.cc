/**
 * @file
 * Fig. 8 reproduction: unique query plans explored over time on the
 * sqlite-like dialect, for four configurations:
 *
 *   - SQLancer++ w/ feedback
 *   - SQLancer++ w/o feedback
 *   - SQLancer++_S (feedback, subqueries disabled)
 *   - the dialect-specific baseline ("SQLancer")
 *
 * Paper shape: feedback beats no-feedback by ~3.4x; feedback even beats
 * the baseline (~3x) *because of subqueries* — with subqueries disabled
 * the two converge. An extra ablation series varies the depth schedule.
 */
#include <vector>

#include "bench_util.h"
#include "core/campaign.h"

using namespace sqlpp;

namespace {

struct Series
{
    const char *label;
    GeneratorMode mode;
    bool subqueries;
    bool progressive_depth;
};

std::vector<size_t>
runSeries(const Series &series, size_t checks, size_t checkpoints,
          uint64_t seed)
{
    CampaignConfig config;
    config.dialect = "sqlite-like";
    config.seed = seed;
    config.mode = series.mode;
    config.checks = checks / checkpoints;
    config.generator.enableSubqueries = series.subqueries;
    config.generator.progressiveDepth = series.progressive_depth;
    config.oracles = {"TLP"};
    config.feedback.updateInterval = 150;
    config.feedback.ddlFailureLimit = 6;

    // Checkpointed accumulation: reuse one runner across segments is
    // not supported, so run the largest budget once per checkpoint.
    std::vector<size_t> points;
    for (size_t i = 1; i <= checkpoints; ++i) {
        CampaignConfig step = config;
        step.checks = checks * i / checkpoints;
        CampaignRunner runner(step);
        CampaignStats stats = runner.run();
        points.push_back(stats.planFingerprints.size());
    }
    return points;
}

} // namespace

int
main(int argc, char **argv)
{
    size_t checks = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4000;
    constexpr size_t kCheckpoints = 4;

    bench::banner("Fig. 8: unique query plans on sqlite-like",
                  "w/ feedback ~3.4x w/o feedback, ~3x baseline; "
                  "disabling subqueries closes the baseline gap");

    const Series series[] = {
        {"SQLancer++ w/ feedback", GeneratorMode::Adaptive, true, true},
        {"SQLancer++ w/o feedback", GeneratorMode::AdaptiveNoFeedback,
         true, true},
        {"SQLancer++_S (no subqueries)", GeneratorMode::Adaptive, false,
         true},
        {"baseline (SQLancer-style)", GeneratorMode::Baseline, false,
         true},
        {"ablation: fixed depth 3", GeneratorMode::Adaptive, true,
         false},
    };

    bench::section("unique plans at checkpoints");
    std::printf("%-30s", "configuration");
    for (size_t i = 1; i <= kCheckpoints; ++i)
        std::printf(" %7zu", checks * i / kCheckpoints);
    std::printf("\n");

    std::vector<size_t> finals;
    for (const Series &entry : series) {
        auto points = runSeries(entry, checks, kCheckpoints, 31337);
        std::printf("%-30s", entry.label);
        for (size_t value : points)
            std::printf(" %7zu", value);
        std::printf("\n");
        finals.push_back(points.back());
    }

    bench::section("shape checks");
    double fb = static_cast<double>(finals[0]);
    double no_fb = static_cast<double>(finals[1]);
    double no_sub = static_cast<double>(finals[2]);
    double baseline = static_cast<double>(finals[3]);
    std::printf("feedback / no-feedback : %.2fx (paper: 3.43x)\n",
                no_fb > 0 ? fb / no_fb : 0.0);
    std::printf("feedback / baseline    : %.2fx (paper: 3.01x)\n",
                baseline > 0 ? fb / baseline : 0.0);
    std::printf("no-subquery / baseline : %.2fx (paper: ~1x, the gap "
                "comes from subqueries)\n",
                baseline > 0 ? no_sub / baseline : 0.0);
    std::printf("\nscale note: the paper's 3.43x rests on a 24.9%% "
                "no-feedback validity floor on real\nSQLite; our "
                "sqlite-like dialect accepts most of the generator "
                "universe, so the same\nmechanism yields a compressed "
                "ratio here (direction preserved). See EXPERIMENTS.md.\n");
    return 0;
}
