/**
 * @file
 * Table 1 reproduction: the SQL feature taxonomy of the adaptive
 * generator — 6 statements, 10 clause/keyword groups, 58 functions,
 * 47 operators, 3 data types.
 */
#include <map>
#include <vector>

#include "bench_util.h"
#include "core/feature.h"
#include "engine/functions.h"

using namespace sqlpp;

int
main()
{
    bench::banner("Table 1: SQL features",
                  "6 statements | 10 clauses/keywords | 58 functions | "
                  "47 operators | 3 data types");

    FeatureRegistry registry;
    struct RowSpec
    {
        FeatureKind kind;
        const char *label;
        int paper;
    };
    const RowSpec rows[] = {
        {FeatureKind::Statement, "Statement", 6},
        {FeatureKind::Clause, "Clause & Keyword", 10},
        {FeatureKind::Function, "Expression/Function", 58},
        {FeatureKind::Operator, "Expression/Operator", 47},
        {FeatureKind::DataType, "Data type", 3},
        {FeatureKind::Property, "Abstract property", -1},
    };

    bench::section("measured taxonomy");
    std::printf("%-22s %8s %8s\n", "feature type", "ours", "paper");
    for (const RowSpec &row : rows) {
        auto ids = registry.ofKind(row.kind);
        if (row.paper >= 0) {
            std::printf("%-22s %8zu %8d\n", row.label, ids.size(),
                        row.paper);
        } else {
            std::printf("%-22s %8zu %8s\n", row.label, ids.size(), "-");
        }
    }
    std::printf("\nNote: the paper counts 10 clause/keyword features; our "
                "generator exposes a finer-grained\nclause set (6 join "
                "types plus %zu keyword flags) guarding the same surface."
                "\n",
                registry.ofKind(FeatureKind::Clause).size() - 6);

    bench::section("statement features");
    for (FeatureId id : registry.ofKind(FeatureKind::Statement))
        std::printf("  %s\n", registry.name(id).c_str());

    bench::section("function inventory (58, Table 1)");
    int column = 0;
    for (const std::string &name : FunctionRegistry::instance().names()) {
        std::printf("%-14s", name.c_str());
        if (++column % 6 == 0)
            std::printf("\n");
    }
    if (column % 6 != 0)
        std::printf("\n");

    bench::section("composite typed-argument examples (Fig. 5)");
    std::printf("  %s, %s, %s\n",
                features::functionArg("SIN", 0, DataType::Int).c_str(),
                features::functionArg("SIN", 0, DataType::Text).c_str(),
                features::functionArg("NULLIF", 1, DataType::Bool)
                    .c_str());
    return 0;
}
