/**
 * @file
 * Fig. 1 reproduction: per-DBMS implementation effort.
 *
 * The paper contrasts the ~3,729 average LOC of a hand-written
 * SQLancer generator per DBMS with SQLancer++'s ~16 LOC connection
 * adapters. In this library the analogue is measured structurally:
 *
 *  - "dialect-specific generator effort": the number of capabilities a
 *    hand-written generator must implement for the dialect (every
 *    supported statement, join, operator, function, type — each one is
 *    generator code in a SQLancer-style tool);
 *  - "SQLancer++ adapter effort": the number of configuration
 *    deviations the dialect profile records against the common matrix
 *    plus connection quirks — each one roughly a line of adapter
 *    config, like the paper's 16-LOC adapters.
 */
#include <algorithm>

#include "bench_util.h"
#include "core/baseline.h"
#include "dialect/profile.h"

using namespace sqlpp;

namespace {

size_t
capabilityCount(const DialectProfile &profile)
{
    return profile.statements.size() + profile.joins.size() +
           profile.binaryOps.size() + profile.unaryOps.size() +
           profile.functions.size() + profile.dataTypes.size();
}

size_t
adapterComplexity(const DialectProfile &profile,
                  const DialectProfile &base)
{
    auto diff = [](const auto &a, const auto &b) {
        size_t removed = 0;
        for (const auto &item : b) {
            if (a.count(item) == 0)
                ++removed;
        }
        return removed;
    };
    size_t deviations = diff(profile.statements, base.statements) +
                        diff(profile.joins, base.joins) +
                        diff(profile.binaryOps, base.binaryOps) +
                        diff(profile.unaryOps, base.unaryOps) +
                        diff(profile.functions, base.functions) +
                        diff(profile.dataTypes, base.dataTypes);
    // Behaviour knobs and quirks: one config line each.
    deviations += profile.behavior.staticTyping ? 1 : 0;
    deviations += profile.behavior.divZeroIsNull ? 0 : 1;
    deviations += profile.behavior.domainErrorIsNull ? 1 : 0;
    deviations += profile.requiresRefreshAfterInsert ? 1 : 0;
    // Connection string etc. (paper: ~4 LOC minimum per DBMS).
    deviations += 4;
    return deviations;
}

} // namespace

int
main()
{
    bench::banner(
        "Fig. 1: per-DBMS effort, hand-written generator vs. adapter",
        "SQLancer: ~3729 LOC median per DBMS; SQLancer++: ~16 LOC "
        "adapter per DBMS");

    // The fullest profile stands in for the common matrix.
    const DialectProfile *fullest = nullptr;
    for (const DialectProfile &profile : allDialectProfiles()) {
        if (fullest == nullptr ||
            capabilityCount(profile) > capabilityCount(*fullest)) {
            fullest = &profile;
        }
    }

    bench::section("per-dialect effort (structural proxy)");
    std::printf("%-16s %22s %22s %8s\n", "dialect",
                "generator capabilities", "adapter config lines",
                "ratio");
    double total_caps = 0, total_adapter = 0;
    for (const DialectProfile &profile : allDialectProfiles()) {
        size_t caps = capabilityCount(profile);
        size_t adapter = adapterComplexity(profile, *fullest);
        total_caps += static_cast<double>(caps);
        total_adapter += static_cast<double>(adapter);
        std::printf("%-16s %22zu %22zu %7.1fx\n", profile.name.c_str(),
                    caps, adapter,
                    static_cast<double>(caps) /
                        static_cast<double>(adapter));
    }
    size_t n = allDialectProfiles().size();
    std::printf("\naverage: a hand-written generator covers %.0f "
                "capabilities per dialect;\nthe adaptive platform needs "
                "%.0f adapter-config entries per dialect (%.0fx less).\n",
                total_caps / n, total_adapter / n,
                total_caps / total_adapter);
    std::printf("paper's framing: 3729 LOC vs 16 LOC (~233x); shape "
                "reproduced when the ratio is >> 1.\n");
    return 0;
}
