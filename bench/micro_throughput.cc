/**
 * @file
 * Micro throughput benchmarks (google-benchmark): the platform's hot
 * paths — parsing, execution, generation, oracle checks. These are not
 * paper reproductions; they document the substrate's performance
 * envelope, which determines how the paper's fixed wall-clock budgets
 * translate into our iteration budgets.
 */
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/baseline.h"
#include "core/campaign.h"
#include "core/feedback.h"
#include "core/generator.h"
#include "core/oracle.h"
#include "core/progress.h"
#include "parser/parser.h"
#include "sqlir/printer.h"
#include "util/metrics.h"
#include "util/trace.h"

using namespace sqlpp;

namespace {

void
BM_ParseSelect(benchmark::State &state)
{
    const std::string sql =
        "SELECT t0.c0, COUNT(*) FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0 "
        "WHERE (t0.c0 > 5 AND t0.c1 LIKE 'x%') GROUP BY t0.c0 "
        "ORDER BY t0.c0 DESC LIMIT 10";
    for (auto _ : state) {
        auto result = parseStatement(sql);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_ParseSelect);

void
BM_ExecutePointQuery(benchmark::State &state)
{
    Database db;
    (void)db.execute("CREATE TABLE t0 (c0 INT, c1 TEXT)");
    for (int i = 0; i < 64; ++i) {
        (void)db.execute("INSERT INTO t0 VALUES (" + std::to_string(i) +
                         ", 'v" + std::to_string(i) + "')");
    }
    (void)db.execute("CREATE INDEX i0 ON t0(c0)");
    for (auto _ : state) {
        auto result = db.execute("SELECT * FROM t0 WHERE c0 = 31");
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_ExecutePointQuery);

void
BM_ExecuteJoinAggregate(benchmark::State &state)
{
    Database db;
    (void)db.execute("CREATE TABLE t0 (c0 INT)");
    (void)db.execute("CREATE TABLE t1 (c0 INT)");
    for (int i = 0; i < 32; ++i) {
        (void)db.execute("INSERT INTO t0 VALUES (" +
                         std::to_string(i % 8) + ")");
        (void)db.execute("INSERT INTO t1 VALUES (" +
                         std::to_string(i % 4) + ")");
    }
    for (auto _ : state) {
        auto result = db.execute(
            "SELECT t0.c0, COUNT(*) FROM t0 INNER JOIN t1 "
            "ON t0.c0 = t1.c0 GROUP BY t0.c0");
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_ExecuteJoinAggregate);

/**
 * Scan-heavy batch-vs-row pair: one pre-parsed SELECT with a selective
 * WHERE and arithmetic projection over a 4096-row table, executed
 * through the row pipeline (mode = Optimized) and the columnar batch
 * pipeline (mode = Batch). Both run the identical plan; the ratio
 * prices the per-row evaluator recursion the kernels amortize.
 * Recorded in EXPERIMENTS.md ("Batch execution throughput").
 */
void
scanFilterBench(benchmark::State &state, ExecMode mode)
{
    Database db;
    (void)db.execute("CREATE TABLE t0 (c0 INT, c1 INT)");
    std::string insert = "INSERT INTO t0 VALUES ";
    for (int i = 0; i < 4096; ++i) {
        if (i > 0)
            insert += ", ";
        insert += "(" + std::to_string(i) + ", " +
                  std::to_string(i % 97) + ")";
    }
    (void)db.execute(insert);
    auto parsed = parseStatement(
        "SELECT c0 + c1, c0 * 2 FROM t0 "
        "WHERE c0 % 3 = 0 AND c1 < 50 AND c0 + c1 > 10");
    for (auto _ : state) {
        auto result = db.executeStmt(*parsed.value(), mode);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_ScanFilterRow(benchmark::State &state)
{
    scanFilterBench(state, ExecMode::Optimized);
}
BENCHMARK(BM_ScanFilterRow);

void
BM_ScanFilterBatch(benchmark::State &state)
{
    scanFilterBench(state, ExecMode::Batch);
}
BENCHMARK(BM_ScanFilterBatch);

/** Projection-only variant: no WHERE, every row flows to PROJ. */
void
projectBench(benchmark::State &state, ExecMode mode)
{
    Database db;
    (void)db.execute("CREATE TABLE t0 (c0 INT, c1 INT)");
    std::string insert = "INSERT INTO t0 VALUES ";
    for (int i = 0; i < 4096; ++i) {
        if (i > 0)
            insert += ", ";
        insert += "(" + std::to_string(i) + ", " +
                  std::to_string(4096 - i) + ")";
    }
    (void)db.execute(insert);
    auto parsed = parseStatement(
        "SELECT c0 + c1, c0 - c1, c0 * c1 % 1000 FROM t0");
    for (auto _ : state) {
        auto result = db.executeStmt(*parsed.value(), mode);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_ProjectRow(benchmark::State &state)
{
    projectBench(state, ExecMode::Optimized);
}
BENCHMARK(BM_ProjectRow);

void
BM_ProjectBatch(benchmark::State &state)
{
    projectBench(state, ExecMode::Batch);
}
BENCHMARK(BM_ProjectBatch);

void
BM_GenerateStatement(benchmark::State &state)
{
    FeatureRegistry registry;
    OpenGate gate;
    SchemaModel model;
    GeneratorConfig config;
    config.seed = 1;
    AdaptiveGenerator generator(config, registry, gate, model);
    for (int i = 0; i < 20; ++i)
        generator.noteExecution(generator.generateSetupStatement(), true);
    for (auto _ : state) {
        GeneratedStatement stmt = generator.generateSelect();
        benchmark::DoNotOptimize(stmt.text);
    }
}
BENCHMARK(BM_GenerateStatement);

void
BM_TlpCheck(benchmark::State &state)
{
    const DialectProfile *profile = findDialect("postgres-like");
    Connection connection(*profile);
    (void)connection.execute("CREATE TABLE t0 (c0 INT, c1 TEXT)");
    for (int i = 0; i < 16; ++i) {
        (void)connection.execute(
            "INSERT INTO t0 VALUES (" + std::to_string(i % 5) + ", 'x')");
    }
    auto base = parseStatement("SELECT * FROM t0");
    auto predicate = parseExpression("t0.c0 > 2");
    TlpOracle oracle;
    for (auto _ : state) {
        OracleResult result = oracle.check(
            connection,
            static_cast<const SelectStmt &>(*base.value()),
            *predicate.value());
        benchmark::DoNotOptimize(result.outcome);
    }
}
BENCHMARK(BM_TlpCheck);

/**
 * Overhead of one counter increment (slot already resolved). With
 * -DSQLPP_METRICS=OFF this measures the empty no-op macro — compare
 * the two builds to price the instrumentation itself.
 */
void
BM_MetricsCounter(benchmark::State &state)
{
    for (auto _ : state) {
        SQLPP_COUNT("bench.metrics.counter");
    }
}
BENCHMARK(BM_MetricsCounter);

/** Overhead of one RAII timing span (two clock reads + observe). */
void
BM_MetricsSpan(benchmark::State &state)
{
    for (auto _ : state) {
        SQLPP_SPAN("bench.metrics.span_us");
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_MetricsSpan);

/**
 * Overhead of recording one flight-recorder event (fetch_add slot
 * reservation + bounded detail copy). With -DSQLPP_TRACE=OFF the macro
 * compiles to nothing; compare the two builds to price the recorder.
 * Target: <20 ns/event enabled, 0 compiled out.
 */
void
BM_TraceEvent(benchmark::State &state)
{
    for (auto _ : state) {
        SQLPP_TRACE_EVENT(OracleCheck, "bench", 1, 2);
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_TraceEvent);

/** Overhead of the per-statement logical-tick bump. */
void
BM_TraceTick(benchmark::State &state)
{
    for (auto _ : state) {
        SQLPP_TRACE_TICK();
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_TraceTick);

/**
 * Cost of one progress-board note from the campaign hot loop (a few
 * relaxed atomic adds plus the wall-clock stamp). This is the price
 * every check pays when the status service is compiled in.
 */
void
BM_ProgressNote(benchmark::State &state)
{
    ProgressBoard &board = ProgressBoard::instance();
    board.beginCampaign(4, 16, 16 * 1000);
    board.initShard(0, "bench", 7, 1000, 0.0);
    ProgressShardScope scope(0);
    uint64_t tick = 0;
    for (auto _ : state) {
        progress::noteCheck(true, ++tick);
        benchmark::ClobberMemory();
    }
    board.finishCampaign();
}
BENCHMARK(BM_ProgressNote);

/**
 * Cost of one full /status response: snapshot 16 shard cells (atomic
 * reads + seqlock string loads) and render the sqlpp.status.v1 JSON.
 * This is what each poll of the status endpoint costs the serving
 * thread — the campaign itself pays nothing.
 */
void
BM_StatusSnapshot(benchmark::State &state)
{
    ProgressBoard &board = ProgressBoard::instance();
    constexpr size_t kShards = 16;
    board.beginCampaign(4, kShards, kShards * 1000);
    for (size_t shard = 0; shard < kShards; ++shard) {
        board.initShard(shard, "bench" + std::to_string(shard),
                        7 + shard, 1000, 0.0);
        board.setShardState(shard, ShardState::Running);
        ProgressShardScope scope(shard);
        for (int i = 0; i < 50; ++i)
            progress::noteCheck(i % 4 != 0, i + 1);
        progress::noteTotals(40, 2, 1);
        progress::noteBanditLeader("RULE_JOIN_COUNT_2 5/9");
    }
    for (auto _ : state) {
        std::string json = renderStatusJson(board.snapshot());
        benchmark::DoNotOptimize(json.data());
    }
    board.finishCampaign();
}
BENCHMARK(BM_StatusSnapshot);

void
BM_FeedbackRecord(benchmark::State &state)
{
    FeedbackTracker tracker;
    FeatureSet features{1, 5, 9, 12, 40};
    bool success = false;
    for (auto _ : state) {
        tracker.record(features, success = !success, true);
    }
}
BENCHMARK(BM_FeedbackRecord);

} // namespace

int
main(int argc, char **argv)
{
    // Strip --metrics-out before google-benchmark sees the argv (it
    // rejects flags it does not know).
    std::string metrics_out;
    std::vector<char *> passthrough;
    passthrough.push_back(argv[0]);
    for (int arg = 1; arg < argc; ++arg) {
        if (std::strcmp(argv[arg], "--metrics-out") == 0 &&
            arg + 1 < argc) {
            metrics_out = argv[++arg];
        } else {
            passthrough.push_back(argv[arg]);
        }
    }
    int passthrough_argc = static_cast<int>(passthrough.size());

    declarePlatformMetrics();
    MetricsRegistry::instance().reset();

    benchmark::Initialize(&passthrough_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(passthrough_argc,
                                               passthrough.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    if (!metrics_out.empty()) {
        std::ofstream out(metrics_out, std::ios::binary);
        out << exportMetricsJson();
        std::fprintf(stdout, "metrics: %s\n", metrics_out.c_str());
    }
    return 0;
}
