/**
 * @file
 * Table 5 reproduction: bug prioritization effectiveness on the
 * cratedb-like dialect (the campaign's richest fault load, mirroring
 * the paper's CrateDB 5.5.0 study).
 *
 * Paper (1 hour, 5 runs, avg): w/ feedback 67,878 detected -> 35.8
 * prioritized -> 11.4 unique; w/o feedback 55,412 -> 28.4 -> 9.8. The
 * paper bisected CrateDB commits to count unique bugs; here the fault
 * ground truth answers exactly, and precision/recall of the
 * prioritizer are reported as an extension.
 */
#include <set>

#include "bench_util.h"
#include "core/campaign.h"
#include "util/stats.h"

using namespace sqlpp;

int
main(int argc, char **argv)
{
    size_t checks = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1200;
    constexpr int kRuns = 5;

    bench::banner("Table 5: detected vs prioritized vs unique bugs "
                  "(cratedb-like)",
                  "w/ fb: 67878 -> 35.8 -> 11.4; w/o fb: 55412 -> 28.4 "
                  "-> 9.8 (avg over 5 runs)");

    const DialectProfile *crate = findDialect("cratedb-like");
    struct ModeSpec
    {
        const char *label;
        GeneratorMode mode;
    };
    const ModeSpec modes[] = {
        {"SQLancer++ w/ feedback", GeneratorMode::Adaptive},
        {"SQLancer++ w/o feedback", GeneratorMode::AdaptiveNoFeedback},
    };

    std::printf("%-26s %12s %12s %8s %10s\n", "approach", "detected",
                "prioritized", "unique", "reduction");
    for (const ModeSpec &mode : modes) {
        RunningStat detected, prioritized, unique;
        for (int run = 0; run < kRuns; ++run) {
            CampaignConfig config;
            config.dialect = "cratedb-like";
            config.seed = 1000 + static_cast<uint64_t>(run);
            config.mode = mode.mode;
            config.checks = checks;
            config.oracles = {"TLP", "NOREC"};
            config.feedback.updateInterval = 150;
            config.feedback.ddlFailureLimit = 6;
            config.rebuildEvery = 300;
            CampaignRunner runner(config);
            CampaignStats stats = runner.run();
            detected.add(static_cast<double>(stats.bugsDetected));
            prioritized.add(
                static_cast<double>(stats.prioritizedBugs.size()));
            unique.add(static_cast<double>(CampaignRunner::countUniqueBugs(
                *crate, stats.prioritizedBugs)));
        }
        double reduction =
            detected.mean() > 0
                ? 100.0 * (1.0 - prioritized.mean() / detected.mean())
                : 0.0;
        std::printf("%-26s %12.1f %12.1f %8.1f %9.1f%%\n", mode.label,
                    detected.mean(), prioritized.mean(), unique.mean(),
                    reduction);
    }
    std::printf("(paper reduction: >99%% of detected cases collapse "
                "into prioritized reports)\n");

    bench::section("extension: prioritizer precision against ground "
                   "truth (one run, w/ feedback)");
    {
        CampaignConfig config;
        config.dialect = "cratedb-like";
        config.seed = 1234;
        config.checks = checks;
        config.oracles = {"TLP", "NOREC"};
        CampaignRunner runner(config);
        CampaignStats stats = runner.run();

        std::set<FaultId> found;
        size_t unattributed = 0;
        for (const BugCase &bug : stats.prioritizedBugs) {
            auto fault = CampaignRunner::attributeFault(*crate, bug);
            if (fault.has_value())
                found.insert(*fault);
            else
                ++unattributed;
        }
        std::printf("prioritized reports      : %zu\n",
                    stats.prioritizedBugs.size());
        std::printf("distinct faults exposed  : %zu of %zu shipped\n",
                    found.size(), crate->faults.size());
        std::printf("non-reproducible reports : %zu (state-dependent "
                    "cases)\n",
                    unattributed);
        std::printf("duplicates per fault     : %.1f (paper: 'more than "
                    "half of prioritized bugs were duplicated')\n",
                    found.empty() ? 0.0
                                  : static_cast<double>(
                                        stats.prioritizedBugs.size()) /
                                        found.size());
        for (FaultId fault : found)
            std::printf("  found: %s\n", faultName(fault));
    }
    return 0;
}
