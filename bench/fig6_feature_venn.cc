/**
 * @file
 * Fig. 6 reproduction: overlap of the SQL features implemented by the
 * generic adaptive generator and by dialect-specific baseline
 * generators (the paper compares against SQLancer's SQLite and
 * PostgreSQL generators).
 *
 * The adaptive generator's universe is the full feature registry; a
 * baseline generator for dialect D "implements" exactly the features
 * D supports (ProfileGate). The interesting quantities are the pairwise
 * and three-way intersections: the paper's point is that a large core
 * is shared while each hand-written generator also covers
 * dialect-specific territory the others lack.
 */
#include <set>
#include <string>

#include "bench_util.h"
#include "core/baseline.h"

using namespace sqlpp;

namespace {

std::set<std::string>
gateFeatures(const FeatureRegistry &registry, const ProfileGate &gate)
{
    std::set<std::string> out;
    for (FeatureId id = 0; id < registry.size(); ++id) {
        if (gate.allow(id))
            out.insert(registry.name(id));
    }
    return out;
}

size_t
intersectCount(const std::set<std::string> &a,
               const std::set<std::string> &b)
{
    size_t n = 0;
    for (const std::string &item : a)
        n += b.count(item);
    return n;
}

} // namespace

int
main()
{
    bench::banner("Fig. 6: feature Venn, adaptive vs. dialect-specific "
                  "generators",
                  "a large common core; each hand-written generator adds "
                  "dialect-only features");

    FeatureRegistry registry;
    std::set<std::string> adaptive;
    for (FeatureId id = 0; id < registry.size(); ++id)
        adaptive.insert(registry.name(id));

    const DialectProfile *sqlite = findDialect("sqlite-like");
    const DialectProfile *postgres = findDialect("postgres-like");
    ProfileGate sqlite_gate(*sqlite, registry);
    ProfileGate postgres_gate(*postgres, registry);
    std::set<std::string> sqlite_features =
        gateFeatures(registry, sqlite_gate);
    std::set<std::string> postgres_features =
        gateFeatures(registry, postgres_gate);

    bench::section("set sizes");
    std::printf("adaptive (SQLancer++) universe : %zu features\n",
                adaptive.size());
    std::printf("sqlite-like baseline generator : %zu features\n",
                sqlite_features.size());
    std::printf("postgres-like baseline         : %zu features\n",
                postgres_features.size());

    bench::section("venn regions");
    size_t sq_pg = intersectCount(sqlite_features, postgres_features);
    std::printf("sqlite \xe2\x88\xa9 postgres             : %zu\n", sq_pg);
    std::printf("adaptive \xe2\x88\xa9 sqlite             : %zu\n",
                intersectCount(adaptive, sqlite_features));
    std::printf("adaptive \xe2\x88\xa9 postgres           : %zu\n",
                intersectCount(adaptive, postgres_features));
    size_t triple = 0;
    for (const std::string &name : sqlite_features) {
        if (postgres_features.count(name) && adaptive.count(name))
            ++triple;
    }
    std::printf("three-way core                 : %zu\n", triple);

    bench::section("dialect-only features (examples)");
    int shown = 0;
    for (const std::string &name : sqlite_features) {
        if (postgres_features.count(name) == 0 && shown < 6)
            std::printf("  sqlite-only  : %s\n", name.c_str()), ++shown;
    }
    shown = 0;
    for (const std::string &name : postgres_features) {
        if (sqlite_features.count(name) == 0 && shown < 6)
            std::printf("  postgres-only: %s\n", name.c_str()), ++shown;
    }

    std::printf("\nshape check: the three-way core is the bulk of every "
                "set (%zu of %zu / %zu),\nwhile each dialect keeps "
                "features the other lacks — the paper's Fig. 6 shape.\n",
                triple, sqlite_features.size(), postgres_features.size());
    return 0;
}
