/**
 * @file
 * Fig. 7 reproduction: cross-dialect validity of bug-inducing test
 * cases. Each bug case found on a source dialect is replayed, statement
 * by statement, on every target dialect; a case counts as "valid" on a
 * target when all of its statements (setup and oracle queries) execute
 * without error. The paper reports an overall 47% validity, SQLite the
 * most permissive target (dynamic typing), and Virtuoso the least
 * (4%).
 */
#include <map>
#include <vector>

#include "bench_util.h"
#include "core/campaign.h"
#include "parser/parser.h"
#include "sqlir/printer.h"

using namespace sqlpp;

namespace {

/** All statements of a bug case, in replay order. */
std::vector<std::string>
caseStatements(const BugCase &bug)
{
    std::vector<std::string> out = bug.setup;
    out.push_back(bug.baseText);
    // The oracle's derived queries exercise the same features; the base
    // query plus a predicated variant capture the case's surface.
    out.push_back(bug.baseText + " WHERE " + bug.predicateText);
    return out;
}

bool
caseRunsOn(const DialectProfile &target, const BugCase &bug)
{
    Connection connection(target);
    for (const std::string &statement : caseStatements(bug)) {
        if (!connection.executeAdapted(statement).isOk())
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    size_t checks = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;

    bench::banner("Fig. 7: validity of bug-inducing cases across "
                  "dialects",
                  "overall ~47%; sqlite-like most permissive target; "
                  "virtuoso-like near-opaque (~4%)");

    // Phase 1: collect prioritized bug cases per source dialect.
    std::map<std::string, std::vector<BugCase>> cases_by_source;
    for (const DialectProfile *profile : campaignDialects()) {
        CampaignConfig config;
        config.dialect = profile->name;
        config.seed = 4242;
        config.checks = checks;
        config.oracles = {"TLP", "NOREC"};
        CampaignRunner runner(config);
        CampaignStats stats = runner.run();
        cases_by_source[profile->name] = stats.prioritizedBugs;
    }

    // Phase 2: replay every case on every target.
    bench::section("validity matrix (rows: bug source, cols: target; "
                   "percentages)");
    auto targets = campaignDialects();
    std::printf("%-14s", "source\\target");
    for (const DialectProfile *target : targets)
        std::printf(" %6.6s", target->name.c_str());
    std::printf("\n");

    double grand_valid = 0, grand_total = 0;
    std::map<std::string, double> per_target_valid, per_target_total;
    for (const DialectProfile *source : targets) {
        const auto &bugs = cases_by_source[source->name];
        std::printf("%-14s", source->name.c_str());
        for (const DialectProfile *target : targets) {
            if (bugs.empty()) {
                std::printf(" %6s", "-");
                continue;
            }
            size_t ok = 0;
            for (const BugCase &bug : bugs)
                ok += caseRunsOn(*target, bug) ? 1 : 0;
            double rate =
                100.0 * static_cast<double>(ok) / bugs.size();
            if (target->name != source->name) {
                grand_valid += static_cast<double>(ok);
                grand_total += static_cast<double>(bugs.size());
                per_target_valid[target->name] +=
                    static_cast<double>(ok);
                per_target_total[target->name] +=
                    static_cast<double>(bugs.size());
            }
            std::printf(" %5.0f%%", rate);
        }
        std::printf("  (%zu cases)\n", bugs.size());
    }

    bench::section("summary");
    std::printf("overall cross-dialect validity: %.1f%% (paper: 47%%)\n",
                grand_total > 0 ? 100.0 * grand_valid / grand_total
                                : 0.0);
    std::string best, worst;
    double best_rate = -1, worst_rate = 200;
    for (const auto &[name, total] : per_target_total) {
        if (total <= 0)
            continue;
        double rate = 100.0 * per_target_valid[name] / total;
        if (rate > best_rate) {
            best_rate = rate;
            best = name;
        }
        if (rate < worst_rate) {
            worst_rate = rate;
            worst = name;
        }
    }
    std::printf("most permissive target : %s (%.1f%%) — paper: SQLite\n",
                best.c_str(), best_rate);
    std::printf("least permissive target: %s (%.1f%%) — paper: Virtuoso "
                "(4%%)\n",
                worst.c_str(), worst_rate);
    return 0;
}
