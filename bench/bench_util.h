/**
 * @file
 * Shared helpers for the table/figure reproduction benches.
 *
 * Every bench prints the paper's reference numbers next to the measured
 * ones. Absolute values are not expected to match (the substrate is a
 * simulator, not the authors' testbed); the *shape* — who wins, by
 * roughly what factor, where the crossovers fall — is the claim under
 * reproduction, as recorded in EXPERIMENTS.md.
 */
#ifndef SQLPP_BENCH_UTIL_H
#define SQLPP_BENCH_UTIL_H

#include <cstdio>
#include <string>

namespace sqlpp::bench {

inline void
banner(const char *experiment, const char *claim)
{
    std::printf("==========================================================="
                "=====\n");
    std::printf("%s\n", experiment);
    std::printf("paper claim: %s\n", claim);
    std::printf("==========================================================="
                "=====\n");
}

inline void
section(const char *title)
{
    std::printf("\n-- %s --\n", title);
}

} // namespace sqlpp::bench

#endif // SQLPP_BENCH_UTIL_H
