/**
 * @file
 * Table 2 reproduction: the bug-finding campaign across all 17
 * dialects. The paper reports 195 reported bugs (139 logic) across 17
 * systems; here every dialect carries a known fault set, so the bench
 * reports detected / prioritized / ground-truth-unique bugs and the
 * oracle breakdown, and checks that the found faults are real ones.
 */
#include <map>
#include <set>

#include "bench_util.h"
#include "core/campaign.h"

using namespace sqlpp;

int
main(int argc, char **argv)
{
    size_t checks = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 500;

    bench::banner("Table 2: bugs across the 17-dialect campaign",
                  "195 reports, 139 logic bugs, more on Umbra/CrateDB-"
                  "class systems, TLP finds most");

    std::printf("%-16s %9s %9s %7s %5s %6s %7s %7s\n", "dialect",
                "detected", "priorit.", "unique", "tlp", "norec",
                "valid%", "faults");

    size_t total_prioritized = 0, total_unique = 0;
    size_t total_tlp = 0, total_norec = 0;
    std::set<FaultId> all_found;
    size_t misattributed = 0;

    for (const DialectProfile *profile : campaignDialects()) {
        CampaignConfig config;
        config.dialect = profile->name;
        config.seed = 99;
        config.checks = checks;
        config.setupStatements = 70;
        config.oracles = {"TLP", "NOREC"};
        config.feedback.updateInterval = 150;
        config.feedback.ddlFailureLimit = 6;
        config.rebuildEvery = 250;
        CampaignRunner runner(config);
        CampaignStats stats = runner.run();

        size_t tlp = 0, norec = 0;
        std::set<FaultId> unique_faults;
        for (const BugCase &bug : stats.prioritizedBugs) {
            if (bug.oracle == "TLP")
                ++tlp;
            else
                ++norec;
            auto fault =
                CampaignRunner::attributeFault(*profile, bug);
            if (fault.has_value()) {
                unique_faults.insert(*fault);
                all_found.insert(*fault);
                if (!profile->faults.isEnabled(*fault))
                    ++misattributed;
            }
        }
        total_prioritized += stats.prioritizedBugs.size();
        total_unique += unique_faults.size();
        total_tlp += tlp;
        total_norec += norec;
        std::printf("%-16s %9llu %9zu %7zu %5zu %6zu %6.1f%% %7zu\n",
                    profile->name.c_str(),
                    (unsigned long long)stats.bugsDetected,
                    stats.prioritizedBugs.size(), unique_faults.size(),
                    tlp, norec, 100.0 * stats.validityRate(),
                    profile->faults.size());
    }

    bench::section("totals");
    std::printf("prioritized reports : %zu (paper: 195 reports)\n",
                total_prioritized);
    std::printf("unique ground-truth bugs found: %zu across %zu distinct "
                "faults\n",
                total_unique, all_found.size());
    std::printf("oracle breakdown    : TLP %zu, NoREC %zu (paper: "
                "132 TLP vs 7 NoREC)\n",
                total_tlp, total_norec);
    std::printf("attribution sanity  : %zu cases attributed to a fault "
                "the dialect does not ship (expect 0)\n",
                misattributed);
    std::printf("\nshape checks: every campaign dialect carries faults; "
                "heavier fault loads (umbra-like,\ncratedb-like) yield "
                "more unique bugs; TLP dominates NoREC, as in the "
                "paper.\n");
    return 0;
}
