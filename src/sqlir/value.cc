#include "sqlir/value.h"

#include <algorithm>
#include <map>

#include "util/strutil.h"

namespace sqlpp {

const char *
dataTypeName(DataType type)
{
    switch (type) {
      case DataType::Int: return "INTEGER";
      case DataType::Text: return "TEXT";
      case DataType::Bool: return "BOOLEAN";
    }
    return "?";
}

bool
parseDataType(const std::string &name, DataType &out)
{
    std::string upper = toUpper(name);
    if (upper == "INTEGER" || upper == "INT" || upper == "BIGINT") {
        out = DataType::Int;
        return true;
    }
    if (upper == "TEXT" || upper == "VARCHAR" || upper == "STRING" ||
        upper == "CHAR") {
        out = DataType::Text;
        return true;
    }
    if (upper == "BOOLEAN" || upper == "BOOL") {
        out = DataType::Bool;
        return true;
    }
    return false;
}

Value::Kind
Value::kind() const
{
    switch (payload_.index()) {
      case 0: return Kind::Null;
      case 1: return Kind::Int;
      case 2: return Kind::Text;
      default: return Kind::Bool;
    }
}

std::string
Value::toString() const
{
    switch (kind()) {
      case Kind::Null: return "NULL";
      case Kind::Int: return std::to_string(asInt());
      case Kind::Text: return asText();
      case Kind::Bool: return asBool() ? "TRUE" : "FALSE";
    }
    return "?";
}

std::string
Value::literal() const
{
    switch (kind()) {
      case Kind::Null: return "NULL";
      case Kind::Int: return std::to_string(asInt());
      case Kind::Text: return sqlQuote(asText());
      case Kind::Bool: return asBool() ? "TRUE" : "FALSE";
    }
    return "?";
}

namespace {

int
kindRank(Value::Kind kind)
{
    switch (kind) {
      case Value::Kind::Null: return 0;
      case Value::Kind::Bool: return 1;
      case Value::Kind::Int: return 2;
      case Value::Kind::Text: return 3;
    }
    return 4;
}

} // namespace

int
Value::compareTotal(const Value &other) const
{
    int lhs_rank = kindRank(kind());
    int rhs_rank = kindRank(other.kind());
    if (lhs_rank != rhs_rank)
        return lhs_rank < rhs_rank ? -1 : 1;
    switch (kind()) {
      case Kind::Null:
        return 0;
      case Kind::Bool:
        if (asBool() == other.asBool())
            return 0;
        return asBool() ? 1 : -1;
      case Kind::Int:
        if (asInt() == other.asInt())
            return 0;
        return asInt() < other.asInt() ? -1 : 1;
      case Kind::Text: {
        int c = asText().compare(other.asText());
        return c < 0 ? -1 : (c > 0 ? 1 : 0);
      }
    }
    return 0;
}

uint64_t
Value::hash() const
{
    switch (kind()) {
      case Kind::Null:
        return 0x9e3779b97f4a7c15ULL;
      case Kind::Int:
        return fnv1a("i") ^
               (static_cast<uint64_t>(asInt()) * 0xff51afd7ed558ccdULL);
      case Kind::Text:
        return fnv1a(asText(), fnv1a("t"));
      case Kind::Bool:
        return asBool() ? 0xda942042e4dd58b5ULL : 0x2545f4914f6cdd1dULL;
    }
    return 0;
}

uint64_t
ResultSet::multisetFingerprint() const
{
    // XOR of per-row hashes multiplied against a row-local mix is
    // order-insensitive; summing guards against duplicate cancellation.
    uint64_t xor_acc = 0;
    uint64_t sum_acc = 0;
    for (const Row &row : rows_) {
        uint64_t row_hash = 0xcbf29ce484222325ULL;
        for (const Value &value : row) {
            row_hash ^= value.hash();
            row_hash *= 0x100000001b3ULL;
        }
        xor_acc ^= row_hash;
        sum_acc += row_hash * 0x9e3779b97f4a7c15ULL + 1;
    }
    return xor_acc ^ (sum_acc * 0xff51afd7ed558ccdULL) ^
           (static_cast<uint64_t>(rows_.size()) << 32);
}

bool
ResultSet::sameRowMultiset(const ResultSet &other) const
{
    if (rowCount() != other.rowCount())
        return false;
    if (multisetFingerprint() != other.multisetFingerprint())
        return false;
    // Fingerprints can collide; confirm with a sorted comparison.
    auto key = [](const Row &row) {
        std::string out;
        for (const Value &value : row) {
            out += value.literal();
            out.push_back('\x1f');
        }
        return out;
    };
    std::vector<std::string> lhs_keys, rhs_keys;
    lhs_keys.reserve(rows_.size());
    rhs_keys.reserve(other.rows_.size());
    for (const Row &row : rows_)
        lhs_keys.push_back(key(row));
    for (const Row &row : other.rows_)
        rhs_keys.push_back(key(row));
    std::sort(lhs_keys.begin(), lhs_keys.end());
    std::sort(rhs_keys.begin(), rhs_keys.end());
    return lhs_keys == rhs_keys;
}

void
ResultSet::absorb(const ResultSet &other)
{
    for (const Row &row : other.rows())
        rows_.push_back(row);
}

std::string
ResultSet::toString(size_t max_rows) const
{
    std::string out = join(columns_, " | ");
    out += "\n";
    size_t shown = 0;
    for (const Row &row : rows_) {
        if (shown++ >= max_rows) {
            out += format("... (%zu rows total)\n", rows_.size());
            break;
        }
        std::vector<std::string> cells;
        cells.reserve(row.size());
        for (const Value &value : row)
            cells.push_back(value.toString());
        out += join(cells, " | ");
        out += "\n";
    }
    return out;
}

} // namespace sqlpp
