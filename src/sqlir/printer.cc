#include "sqlir/printer.h"

#include <cassert>

#include "util/strutil.h"

namespace sqlpp {

namespace {

std::string printExprInner(const Expr &expr);

std::string
printUnary(const UnaryExpr &expr)
{
    const std::string operand = printExprInner(*expr.operand);
    switch (expr.op) {
      // A space after the sign prevents "--" (line comment) and "++"
      // artifacts when the operand itself starts with a sign.
      case UnaryOp::Neg: return "(- " + operand + ")";
      case UnaryOp::Plus: return "(+ " + operand + ")";
      case UnaryOp::BitNot: return "(~" + operand + ")";
      case UnaryOp::Not: return "(NOT " + operand + ")";
      case UnaryOp::IsNull: return "(" + operand + " IS NULL)";
      case UnaryOp::IsNotNull: return "(" + operand + " IS NOT NULL)";
      case UnaryOp::IsTrue: return "(" + operand + " IS TRUE)";
      case UnaryOp::IsFalse: return "(" + operand + " IS FALSE)";
      case UnaryOp::IsNotTrue: return "(" + operand + " IS NOT TRUE)";
      case UnaryOp::IsNotFalse: return "(" + operand + " IS NOT FALSE)";
    }
    return "?";
}

std::string
printCase(const CaseExpr &expr)
{
    std::string out = "CASE";
    if (expr.operand) {
        out += " ";
        out += printExprInner(*expr.operand);
    }
    for (const CaseExpr::Arm &arm : expr.arms) {
        out += " WHEN ";
        out += printExprInner(*arm.when);
        out += " THEN ";
        out += printExprInner(*arm.then);
    }
    if (expr.elseExpr) {
        out += " ELSE ";
        out += printExprInner(*expr.elseExpr);
    }
    out += " END";
    return "(" + out + ")";
}

std::string
printExprInner(const Expr &expr)
{
    switch (expr.kind()) {
      case ExprKind::Literal:
        return static_cast<const LiteralExpr &>(expr).value.literal();
      case ExprKind::ColumnRef: {
        const auto &ref = static_cast<const ColumnRefExpr &>(expr);
        if (ref.table.empty())
            return ref.column;
        return ref.table + "." + ref.column;
      }
      case ExprKind::Unary:
        return printUnary(static_cast<const UnaryExpr &>(expr));
      case ExprKind::Binary: {
        const auto &bin = static_cast<const BinaryExpr &>(expr);
        return "(" + printExprInner(*bin.lhs) + " " +
               binaryOpSymbol(bin.op) + " " + printExprInner(*bin.rhs) + ")";
      }
      case ExprKind::Between: {
        const auto &between = static_cast<const BetweenExpr &>(expr);
        return "(" + printExprInner(*between.operand) +
               (between.negated ? " NOT BETWEEN " : " BETWEEN ") +
               printExprInner(*between.low) + " AND " +
               printExprInner(*between.high) + ")";
      }
      case ExprKind::InList: {
        const auto &in = static_cast<const InListExpr &>(expr);
        std::vector<std::string> items;
        items.reserve(in.items.size());
        for (const ExprPtr &item : in.items)
            items.push_back(printExprInner(*item));
        return "(" + printExprInner(*in.operand) +
               (in.negated ? " NOT IN (" : " IN (") + join(items, ", ") +
               "))";
      }
      case ExprKind::Case:
        return printCase(static_cast<const CaseExpr &>(expr));
      case ExprKind::Function: {
        const auto &fn = static_cast<const FunctionExpr &>(expr);
        if (fn.star)
            return fn.name + "(*)";
        std::vector<std::string> args;
        args.reserve(fn.args.size());
        for (const ExprPtr &arg : fn.args)
            args.push_back(printExprInner(*arg));
        return fn.name + "(" + (fn.distinct ? "DISTINCT " : "") +
               join(args, ", ") + ")";
      }
      case ExprKind::Cast: {
        const auto &cast = static_cast<const CastExpr &>(expr);
        return std::string("CAST(") + printExprInner(*cast.operand) +
               " AS " + dataTypeName(cast.target) + ")";
      }
      case ExprKind::Exists: {
        const auto &exists = static_cast<const ExistsExpr &>(expr);
        return std::string("(") + (exists.negated ? "NOT " : "") +
               "EXISTS (" + printSelect(*exists.subquery) + "))";
      }
      case ExprKind::InSubquery: {
        const auto &in = static_cast<const InSubqueryExpr &>(expr);
        return "(" + printExprInner(*in.operand) +
               (in.negated ? " NOT IN (" : " IN (") +
               printSelect(*in.subquery) + "))";
      }
      case ExprKind::ScalarSubquery: {
        const auto &sub = static_cast<const ScalarSubqueryExpr &>(expr);
        return "(" + printSelect(*sub.subquery) + ")";
      }
    }
    return "?";
}

std::string
printTableRef(const TableRef &ref)
{
    if (ref.subquery) {
        std::string out = "(" + printSelect(*ref.subquery) + ")";
        if (!ref.alias.empty())
            out += " AS " + ref.alias;
        return out;
    }
    std::string out = ref.name;
    if (!ref.alias.empty())
        out += " AS " + ref.alias;
    return out;
}

std::string
printCreateTable(const CreateTableStmt &stmt)
{
    std::string out = "CREATE TABLE ";
    if (stmt.ifNotExists)
        out += "IF NOT EXISTS ";
    out += stmt.name;
    out += " (";
    std::vector<std::string> defs;
    defs.reserve(stmt.columns.size());
    for (const ColumnDef &col : stmt.columns) {
        std::string def = col.name;
        def += " ";
        def += dataTypeName(col.type);
        if (col.primaryKey)
            def += " PRIMARY KEY";
        if (col.unique)
            def += " UNIQUE";
        if (col.notNull)
            def += " NOT NULL";
        defs.push_back(std::move(def));
    }
    out += join(defs, ", ");
    out += ")";
    return out;
}

std::string
printCreateIndex(const CreateIndexStmt &stmt)
{
    std::string out = "CREATE ";
    if (stmt.unique)
        out += "UNIQUE ";
    out += "INDEX ";
    out += stmt.name;
    out += " ON ";
    out += stmt.table;
    out += "(" + join(stmt.columns, ", ") + ")";
    if (stmt.where) {
        out += " WHERE ";
        out += printExprInner(*stmt.where);
    }
    return out;
}

std::string
printInsert(const InsertStmt &stmt)
{
    std::string out = "INSERT ";
    if (stmt.orIgnore)
        out += "OR IGNORE ";
    out += "INTO ";
    out += stmt.table;
    if (!stmt.columns.empty())
        out += " (" + join(stmt.columns, ", ") + ")";
    out += " VALUES ";
    std::vector<std::string> tuples;
    tuples.reserve(stmt.rows.size());
    for (const auto &row : stmt.rows) {
        std::vector<std::string> cells;
        cells.reserve(row.size());
        for (const ExprPtr &expr : row)
            cells.push_back(printExprInner(*expr));
        tuples.push_back("(" + join(cells, ", ") + ")");
    }
    out += join(tuples, ", ");
    return out;
}

} // namespace

std::string
printExpr(const Expr &expr)
{
    return printExprInner(expr);
}

std::string
printSelect(const SelectStmt &select)
{
    std::string out = "SELECT ";
    if (select.distinct)
        out += "DISTINCT ";
    std::vector<std::string> items;
    items.reserve(select.items.size());
    for (const SelectItem &item : select.items) {
        if (item.star) {
            items.push_back("*");
            continue;
        }
        std::string rendered = printExprInner(*item.expr);
        if (!item.alias.empty())
            rendered += " AS " + item.alias;
        items.push_back(std::move(rendered));
    }
    out += join(items, ", ");
    if (!select.from.empty()) {
        out += " FROM ";
        std::vector<std::string> sources;
        sources.reserve(select.from.size());
        for (const TableRef &ref : select.from)
            sources.push_back(printTableRef(ref));
        out += join(sources, ", ");
        for (const JoinClause &joined : select.joins) {
            out += " ";
            out += joinTypeName(joined.type);
            out += " ";
            out += printTableRef(joined.table);
            if (joined.on) {
                out += " ON ";
                out += printExprInner(*joined.on);
            }
        }
    }
    if (select.where) {
        out += " WHERE ";
        out += printExprInner(*select.where);
    }
    if (!select.groupBy.empty()) {
        out += " GROUP BY ";
        std::vector<std::string> keys;
        keys.reserve(select.groupBy.size());
        for (const ExprPtr &expr : select.groupBy)
            keys.push_back(printExprInner(*expr));
        out += join(keys, ", ");
    }
    if (select.having) {
        out += " HAVING ";
        out += printExprInner(*select.having);
    }
    if (!select.orderBy.empty()) {
        out += " ORDER BY ";
        std::vector<std::string> terms;
        terms.reserve(select.orderBy.size());
        for (const OrderTerm &term : select.orderBy) {
            terms.push_back(printExprInner(*term.expr) +
                            (term.ascending ? " ASC" : " DESC"));
        }
        out += join(terms, ", ");
    }
    if (select.limit >= 0)
        out += format(" LIMIT %lld", static_cast<long long>(select.limit));
    if (select.offset >= 0)
        out += format(" OFFSET %lld", static_cast<long long>(select.offset));
    return out;
}

std::string
printStmt(const Stmt &stmt)
{
    switch (stmt.kind()) {
      case StmtKind::CreateTable:
        return printCreateTable(static_cast<const CreateTableStmt &>(stmt));
      case StmtKind::CreateIndex:
        return printCreateIndex(static_cast<const CreateIndexStmt &>(stmt));
      case StmtKind::CreateView: {
        const auto &view = static_cast<const CreateViewStmt &>(stmt);
        std::string out = "CREATE VIEW " + view.name;
        if (!view.columnNames.empty())
            out += "(" + join(view.columnNames, ", ") + ")";
        out += " AS " + printSelect(*view.select);
        return out;
      }
      case StmtKind::Insert:
        return printInsert(static_cast<const InsertStmt &>(stmt));
      case StmtKind::Analyze: {
        const auto &analyze = static_cast<const AnalyzeStmt &>(stmt);
        if (analyze.table.empty())
            return "ANALYZE";
        return "ANALYZE " + analyze.table;
      }
      case StmtKind::Select:
        return printSelect(static_cast<const SelectStmt &>(stmt));
      case StmtKind::DropTable: {
        const auto &drop = static_cast<const DropStmt &>(stmt);
        return std::string("DROP TABLE ") +
               (drop.ifExists ? "IF EXISTS " : "") + drop.name;
      }
      case StmtKind::DropView: {
        const auto &drop = static_cast<const DropStmt &>(stmt);
        return std::string("DROP VIEW ") +
               (drop.ifExists ? "IF EXISTS " : "") + drop.name;
      }
      case StmtKind::DropIndex: {
        const auto &drop = static_cast<const DropStmt &>(stmt);
        return std::string("DROP INDEX ") +
               (drop.ifExists ? "IF EXISTS " : "") + drop.name;
      }
      case StmtKind::Begin:
        return "BEGIN";
      case StmtKind::Commit:
        return "COMMIT";
      case StmtKind::Rollback:
        return "ROLLBACK";
      case StmtKind::Savepoint:
        return "SAVEPOINT " +
               static_cast<const TxnStmt &>(stmt).savepoint;
      case StmtKind::RollbackTo:
        return "ROLLBACK TO " +
               static_cast<const TxnStmt &>(stmt).savepoint;
      case StmtKind::Release:
        return "RELEASE " +
               static_cast<const TxnStmt &>(stmt).savepoint;
    }
    return "?";
}

} // namespace sqlpp
