/**
 * @file
 * Runtime SQL values with three-valued logic.
 *
 * The platform generates three data types (integer, string, boolean —
 * Table 1 of the paper) plus SQL NULL. Value is the runtime representation
 * shared by the expression evaluator, the storage layer, and the oracles'
 * result comparison.
 */
#ifndef SQLPP_SQLIR_VALUE_H
#define SQLPP_SQLIR_VALUE_H

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace sqlpp {

/** Static SQL data types supported by the generator and the engine. */
enum class DataType
{
    Int,
    Text,
    Bool,
};

/** SQL name of a data type (INTEGER, TEXT, BOOLEAN). */
const char *dataTypeName(DataType type);

/** Parse a type name (case-insensitive, accepts common aliases). */
bool parseDataType(const std::string &name, DataType &out);

/**
 * A runtime SQL value: NULL, 64-bit integer, string, or boolean.
 *
 * Booleans are distinct from integers at the Value level; dialects with
 * numeric booleans (SQLite-style) coerce during evaluation, not here.
 */
class Value
{
  public:
    enum class Kind
    {
        Null,
        Int,
        Text,
        Bool,
    };

    /** Default-constructed Value is NULL. */
    Value() : payload_(std::monostate{}) {}

    static Value null() { return Value(); }
    static Value integer(int64_t v) { return Value(Payload(v)); }
    static Value text(std::string v) { return Value(Payload(std::move(v))); }
    static Value boolean(bool v) { return Value(Payload(v)); }

    Kind kind() const;
    bool isNull() const { return kind() == Kind::Null; }

    /** Accessors; caller must check kind() first. */
    int64_t asInt() const { return std::get<int64_t>(payload_); }
    const std::string &asText() const
    {
        return std::get<std::string>(payload_);
    }
    bool asBool() const { return std::get<bool>(payload_); }

    /**
     * SQL display rendering (NULL, 42, hello, TRUE) as a result cell.
     * Distinct from literal(), which renders a parseable SQL literal.
     */
    std::string toString() const;

    /** Render as a SQL literal (NULL, 42, 'hello', TRUE). */
    std::string literal() const;

    /**
     * Total ordering for sorting and index keys: NULL < BOOL < INT < TEXT,
     * FALSE < TRUE, integers numerically, text lexicographically.
     * This is storage order, not SQL comparison (which is three-valued).
     */
    int compareTotal(const Value &other) const;

    /** Exact equality including kind (NULL == NULL here, unlike SQL). */
    bool operator==(const Value &other) const
    {
        return compareTotal(other) == 0;
    }

    /** Stable hash for result-set comparison and dedup keys. */
    uint64_t hash() const;

  private:
    using Payload = std::variant<std::monostate, int64_t, std::string, bool>;
    explicit Value(Payload payload) : payload_(std::move(payload)) {}

    Payload payload_;
};

/** One result row. */
using Row = std::vector<Value>;

/**
 * A query result: column names plus rows.
 *
 * Oracles compare results as multisets (paper: TLP recombines partitions
 * as a multiset union), so ResultSet offers an order-insensitive
 * fingerprint alongside ordered equality.
 */
class ResultSet
{
  public:
    ResultSet() = default;
    explicit ResultSet(std::vector<std::string> column_names)
        : columns_(std::move(column_names)) {}

    const std::vector<std::string> &columns() const { return columns_; }
    std::vector<std::string> &columns() { return columns_; }

    const std::vector<Row> &rows() const { return rows_; }
    void addRow(Row row) { rows_.push_back(std::move(row)); }

    size_t rowCount() const { return rows_.size(); }
    size_t columnCount() const { return columns_.size(); }

    /** Order-insensitive multiset fingerprint of the row contents. */
    uint64_t multisetFingerprint() const;

    /** True if both hold the same multiset of rows (column names ignored). */
    bool sameRowMultiset(const ResultSet &other) const;

    /** Append all rows of `other` (multiset union; arity must match). */
    void absorb(const ResultSet &other);

    /** Human-readable table, for bug reports and examples. */
    std::string toString(size_t max_rows = 16) const;

  private:
    std::vector<std::string> columns_;
    std::vector<Row> rows_;
};

} // namespace sqlpp

#endif // SQLPP_SQLIR_VALUE_H
