/**
 * @file
 * Abstract syntax tree for the SQL subset shared by the parser, the
 * engine, and the adaptive generator.
 *
 * The generator builds ASTs and prints them to text; the engine parses
 * text back into ASTs. The two sides never share AST objects — the
 * round trip through text is what makes feature rejection behave like a
 * real DBMS pipeline (a feature can fail at lexing, parsing, type
 * checking, or execution).
 *
 * Every node supports clone(), which the delta-debugging reducer relies
 * on to mutate candidate test cases non-destructively.
 */
#ifndef SQLPP_SQLIR_AST_H
#define SQLPP_SQLIR_AST_H

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sqlir/value.h"

namespace sqlpp {

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

class SelectStmt;
using SelectPtr = std::unique_ptr<SelectStmt>;

/** Binary operators (Table 1 "Operator" features). */
enum class BinaryOp
{
    // Arithmetic.
    Add, Sub, Mul, Div, Mod,
    // Comparison.
    Eq, NotEq, NotEqBang, Less, LessEq, Greater, GreaterEq, NullSafeEq,
    // Logical.
    And, Or,
    // Bitwise.
    BitAnd, BitOr, BitXor, ShiftLeft, ShiftRight,
    // String.
    Concat, Like, NotLike, Glob,
    // Membership against a literal value (IS DISTINCT FROM dual).
    IsDistinctFrom, IsNotDistinctFrom,
};

/** Unary operators. */
enum class UnaryOp
{
    Neg,
    Plus,
    BitNot,
    Not,
    IsNull,
    IsNotNull,
    IsTrue,
    IsFalse,
    IsNotTrue,
    IsNotFalse,
};

/** SQL token text of a binary operator (e.g. "<=>"). */
const char *binaryOpSymbol(BinaryOp op);

/** True for Eq..NullSafeEq. */
bool isComparisonOp(BinaryOp op);

/** True for And/Or. */
bool isLogicalOp(BinaryOp op);

/** AST node kinds for expressions. */
enum class ExprKind
{
    Literal,
    ColumnRef,
    Unary,
    Binary,
    Between,
    InList,
    Case,
    Function,
    Cast,
    Exists,
    InSubquery,
    ScalarSubquery,
};

/**
 * Base class for all expression nodes.
 */
class Expr
{
  public:
    virtual ~Expr() = default;

    ExprKind kind() const { return kind_; }

    /** Deep copy. */
    virtual ExprPtr clone() const = 0;

    /** Direct children, for generic tree walks (reducer, feature scan). */
    virtual std::vector<const Expr *> children() const = 0;

  protected:
    explicit Expr(ExprKind kind) : kind_(kind) {}

  private:
    ExprKind kind_;
};

/** A constant value. */
class LiteralExpr : public Expr
{
  public:
    explicit LiteralExpr(Value value)
        : Expr(ExprKind::Literal), value(std::move(value)) {}

    ExprPtr clone() const override
    {
        return std::make_unique<LiteralExpr>(value);
    }
    std::vector<const Expr *> children() const override { return {}; }

    Value value;
};

/** Reference to a column, optionally qualified by a table alias. */
class ColumnRefExpr : public Expr
{
  public:
    ColumnRefExpr(std::string table, std::string column)
        : Expr(ExprKind::ColumnRef), table(std::move(table)),
          column(std::move(column)) {}

    ExprPtr clone() const override
    {
        return std::make_unique<ColumnRefExpr>(table, column);
    }
    std::vector<const Expr *> children() const override { return {}; }

    /** Empty when unqualified. */
    std::string table;
    std::string column;
};

/** Unary operator application (including IS NULL family postfixes). */
class UnaryExpr : public Expr
{
  public:
    UnaryExpr(UnaryOp op, ExprPtr operand)
        : Expr(ExprKind::Unary), op(op), operand(std::move(operand)) {}

    ExprPtr clone() const override
    {
        return std::make_unique<UnaryExpr>(op, operand->clone());
    }
    std::vector<const Expr *> children() const override
    {
        return {operand.get()};
    }

    UnaryOp op;
    ExprPtr operand;
};

/** Binary operator application. */
class BinaryExpr : public Expr
{
  public:
    BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
        : Expr(ExprKind::Binary), op(op), lhs(std::move(lhs)),
          rhs(std::move(rhs)) {}

    ExprPtr clone() const override
    {
        return std::make_unique<BinaryExpr>(op, lhs->clone(), rhs->clone());
    }
    std::vector<const Expr *> children() const override
    {
        return {lhs.get(), rhs.get()};
    }

    BinaryOp op;
    ExprPtr lhs;
    ExprPtr rhs;
};

/** expr [NOT] BETWEEN lo AND hi. */
class BetweenExpr : public Expr
{
  public:
    BetweenExpr(ExprPtr operand, ExprPtr low, ExprPtr high, bool negated)
        : Expr(ExprKind::Between), operand(std::move(operand)),
          low(std::move(low)), high(std::move(high)), negated(negated) {}

    ExprPtr clone() const override
    {
        return std::make_unique<BetweenExpr>(
            operand->clone(), low->clone(), high->clone(), negated);
    }
    std::vector<const Expr *> children() const override
    {
        return {operand.get(), low.get(), high.get()};
    }

    ExprPtr operand;
    ExprPtr low;
    ExprPtr high;
    bool negated;
};

/** expr [NOT] IN (item, item, ...). */
class InListExpr : public Expr
{
  public:
    InListExpr(ExprPtr operand, std::vector<ExprPtr> items, bool negated)
        : Expr(ExprKind::InList), operand(std::move(operand)),
          items(std::move(items)), negated(negated) {}

    ExprPtr clone() const override;
    std::vector<const Expr *> children() const override;

    ExprPtr operand;
    std::vector<ExprPtr> items;
    bool negated;
};

/** CASE [operand] WHEN ... THEN ... [ELSE ...] END. */
class CaseExpr : public Expr
{
  public:
    struct Arm
    {
        ExprPtr when;
        ExprPtr then;
    };

    CaseExpr(ExprPtr operand, std::vector<Arm> arms, ExprPtr else_expr)
        : Expr(ExprKind::Case), operand(std::move(operand)),
          arms(std::move(arms)), elseExpr(std::move(else_expr)) {}

    ExprPtr clone() const override;
    std::vector<const Expr *> children() const override;

    /** Null for searched CASE. */
    ExprPtr operand;
    std::vector<Arm> arms;
    /** Null when no ELSE. */
    ExprPtr elseExpr;
};

/** Function call; also models aggregates (COUNT, SUM, ...). */
class FunctionExpr : public Expr
{
  public:
    FunctionExpr(std::string name, std::vector<ExprPtr> args,
                 bool star = false, bool distinct = false)
        : Expr(ExprKind::Function), name(std::move(name)),
          args(std::move(args)), star(star), distinct(distinct) {}

    ExprPtr clone() const override;
    std::vector<const Expr *> children() const override;

    /** Uppercased function name. */
    std::string name;
    std::vector<ExprPtr> args;
    /** COUNT(*). */
    bool star;
    /** COUNT(DISTINCT x), SUM(DISTINCT x), ... */
    bool distinct;
};

/** CAST(expr AS type). */
class CastExpr : public Expr
{
  public:
    CastExpr(ExprPtr operand, DataType target)
        : Expr(ExprKind::Cast), operand(std::move(operand)), target(target) {}

    ExprPtr clone() const override
    {
        return std::make_unique<CastExpr>(operand->clone(), target);
    }
    std::vector<const Expr *> children() const override
    {
        return {operand.get()};
    }

    ExprPtr operand;
    DataType target;
};

/** [NOT] EXISTS (subquery). */
class ExistsExpr : public Expr
{
  public:
    ExistsExpr(SelectPtr subquery, bool negated);
    ~ExistsExpr() override;

    ExprPtr clone() const override;
    std::vector<const Expr *> children() const override { return {}; }

    SelectPtr subquery;
    bool negated;
};

/** expr [NOT] IN (subquery). */
class InSubqueryExpr : public Expr
{
  public:
    InSubqueryExpr(ExprPtr operand, SelectPtr subquery, bool negated);
    ~InSubqueryExpr() override;

    ExprPtr clone() const override;
    std::vector<const Expr *> children() const override
    {
        return {operand.get()};
    }

    ExprPtr operand;
    SelectPtr subquery;
    bool negated;
};

/** (SELECT single-column single-row ...). */
class ScalarSubqueryExpr : public Expr
{
  public:
    explicit ScalarSubqueryExpr(SelectPtr subquery);
    ~ScalarSubqueryExpr() override;

    ExprPtr clone() const override;
    std::vector<const Expr *> children() const override { return {}; }

    SelectPtr subquery;
};

// ---------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------

/** Statement node kinds (Table 1 "Statement" features). */
enum class StmtKind
{
    CreateTable,
    CreateIndex,
    CreateView,
    Insert,
    Analyze,
    Select,
    DropTable,
    DropView,
    DropIndex,
    Begin,
    Commit,
    Rollback,
    Savepoint,
    RollbackTo,
    Release,
};

/** True for the transaction-control statement kinds. */
inline bool
isTxnStmtKind(StmtKind kind)
{
    switch (kind) {
      case StmtKind::Begin:
      case StmtKind::Commit:
      case StmtKind::Rollback:
      case StmtKind::Savepoint:
      case StmtKind::RollbackTo:
      case StmtKind::Release:
        return true;
      default:
        return false;
    }
}

/** Base class for all statements. */
class Stmt
{
  public:
    virtual ~Stmt() = default;

    StmtKind kind() const { return kind_; }

    virtual std::unique_ptr<Stmt> clone() const = 0;

  protected:
    explicit Stmt(StmtKind kind) : kind_(kind) {}

  private:
    StmtKind kind_;
};

using StmtPtr = std::unique_ptr<Stmt>;

/** One column definition inside CREATE TABLE. */
struct ColumnDef
{
    std::string name;
    DataType type = DataType::Int;
    bool notNull = false;
    bool unique = false;
    bool primaryKey = false;
};

/** CREATE TABLE [IF NOT EXISTS] name (col type [constraints], ...). */
class CreateTableStmt : public Stmt
{
  public:
    CreateTableStmt() : Stmt(StmtKind::CreateTable) {}

    StmtPtr clone() const override
    {
        return std::make_unique<CreateTableStmt>(*this);
    }

    std::string name;
    std::vector<ColumnDef> columns;
    bool ifNotExists = false;
};

/** CREATE [UNIQUE] INDEX name ON table (cols) [WHERE predicate]. */
class CreateIndexStmt : public Stmt
{
  public:
    CreateIndexStmt() : Stmt(StmtKind::CreateIndex) {}

    CreateIndexStmt(const CreateIndexStmt &other)
        : Stmt(StmtKind::CreateIndex), name(other.name), table(other.table),
          columns(other.columns), unique(other.unique),
          where(other.where ? other.where->clone() : nullptr) {}

    StmtPtr clone() const override
    {
        return std::make_unique<CreateIndexStmt>(*this);
    }

    std::string name;
    std::string table;
    std::vector<std::string> columns;
    bool unique = false;
    /** Partial-index predicate; null when absent. */
    ExprPtr where;
};

/** CREATE VIEW name [(cols)] AS select. */
class CreateViewStmt : public Stmt
{
  public:
    CreateViewStmt();
    CreateViewStmt(const CreateViewStmt &other);
    ~CreateViewStmt() override;

    StmtPtr clone() const override
    {
        return std::make_unique<CreateViewStmt>(*this);
    }

    std::string name;
    std::vector<std::string> columnNames;
    SelectPtr select;
};

/** INSERT INTO table [(cols)] VALUES (...), (...). */
class InsertStmt : public Stmt
{
  public:
    InsertStmt() : Stmt(StmtKind::Insert) {}
    InsertStmt(const InsertStmt &other);

    StmtPtr clone() const override
    {
        return std::make_unique<InsertStmt>(*this);
    }

    std::string table;
    std::vector<std::string> columns;
    std::vector<std::vector<ExprPtr>> rows;
    /** INSERT OR IGNORE (constraint violations skip the row). */
    bool orIgnore = false;
};

/** ANALYZE [table]. */
class AnalyzeStmt : public Stmt
{
  public:
    AnalyzeStmt() : Stmt(StmtKind::Analyze) {}

    StmtPtr clone() const override
    {
        return std::make_unique<AnalyzeStmt>(*this);
    }

    /** Empty = whole database. */
    std::string table;
};

/**
 * Transaction control: BEGIN / COMMIT / ROLLBACK [TO name] /
 * SAVEPOINT name / RELEASE name. One node class covers all six kinds;
 * `savepoint` is empty except for the savepoint-addressed kinds.
 */
class TxnStmt : public Stmt
{
  public:
    explicit TxnStmt(StmtKind kind) : Stmt(kind) {}

    StmtPtr clone() const override
    {
        return std::make_unique<TxnStmt>(*this);
    }

    /** Savepoint name (Savepoint / RollbackTo / Release only). */
    std::string savepoint;
};

/** DROP TABLE/VIEW/INDEX [IF EXISTS] name. */
class DropStmt : public Stmt
{
  public:
    explicit DropStmt(StmtKind kind) : Stmt(kind) {}

    StmtPtr clone() const override
    {
        return std::make_unique<DropStmt>(*this);
    }

    std::string name;
    bool ifExists = false;
};

/** Join types (paper: "We support six types of join"). */
enum class JoinType
{
    Inner,
    Left,
    Right,
    Full,
    Cross,
    Natural,
};

/** SQL keyword sequence of a join type. */
const char *joinTypeName(JoinType type);

/** A table source in FROM: base table/view or derived subquery. */
class TableRef
{
  public:
    TableRef() = default;
    TableRef(const TableRef &other);
    TableRef &operator=(const TableRef &other);
    TableRef(TableRef &&) = default;
    TableRef &operator=(TableRef &&) = default;
    ~TableRef();

    /** Non-empty for base tables/views; empty for derived tables. */
    std::string name;
    /** Optional alias; required by the engine for derived tables. */
    std::string alias;
    /** Non-null for derived tables: (SELECT ...) AS alias. */
    SelectPtr subquery;

    /** Alias if present else name. */
    const std::string &bindingName() const
    {
        return alias.empty() ? name : alias;
    }
};

/** One JOIN step chained after the first FROM item. */
struct JoinClause
{
    JoinClause() = default;
    JoinClause(const JoinClause &other)
        : type(other.type), table(other.table),
          on(other.on ? other.on->clone() : nullptr) {}
    JoinClause(JoinClause &&) = default;
    JoinClause &operator=(JoinClause &&) = default;

    JoinType type = JoinType::Inner;
    TableRef table;
    /** Null for CROSS and NATURAL joins. */
    ExprPtr on;
};

/** One ORDER BY term. */
struct OrderTerm
{
    OrderTerm() = default;
    OrderTerm(const OrderTerm &other)
        : expr(other.expr ? other.expr->clone() : nullptr),
          ascending(other.ascending) {}
    OrderTerm(OrderTerm &&) = default;
    OrderTerm &operator=(OrderTerm &&) = default;

    ExprPtr expr;
    bool ascending = true;
};

/** One item of the SELECT list. */
struct SelectItem
{
    SelectItem() = default;
    SelectItem(const SelectItem &other)
        : expr(other.expr ? other.expr->clone() : nullptr),
          alias(other.alias), star(other.star) {}
    SelectItem(SelectItem &&) = default;
    SelectItem &operator=(SelectItem &&) = default;

    /** Null when star is set. */
    ExprPtr expr;
    std::string alias;
    /** SELECT *. */
    bool star = false;
};

/** SELECT statement / subquery body. */
class SelectStmt : public Stmt
{
  public:
    SelectStmt() : Stmt(StmtKind::Select) {}
    SelectStmt(const SelectStmt &other);

    StmtPtr clone() const override
    {
        return std::make_unique<SelectStmt>(*this);
    }

    /** Typed clone, for embedding as a subquery. */
    SelectPtr cloneSelect() const
    {
        return std::make_unique<SelectStmt>(*this);
    }

    bool distinct = false;
    std::vector<SelectItem> items;
    /** Empty for FROM-less scalar selects (SELECT 1+1). */
    std::vector<TableRef> from;
    std::vector<JoinClause> joins;
    ExprPtr where;
    std::vector<ExprPtr> groupBy;
    ExprPtr having;
    std::vector<OrderTerm> orderBy;
    /** Negative = absent. */
    int64_t limit = -1;
    int64_t offset = -1;
};

/**
 * Walk an expression tree depth-first, visiting every node including
 * subquery internals' expressions are NOT followed (subqueries are opaque
 * at this level; callers that need them handle Exists/InSubquery/Scalar
 * kinds explicitly).
 */
void forEachExprNode(const Expr &root,
                     const std::function<void(const Expr &)> &fn);

} // namespace sqlpp

#endif // SQLPP_SQLIR_AST_H
