/**
 * @file
 * AST → SQL text rendering.
 *
 * The generator communicates with the DBMS under test exclusively through
 * SQL text, so the printer defines the concrete dialect-neutral syntax
 * the platform emits. Every expression is printed fully parenthesised,
 * which keeps the output unambiguous across dialects with different
 * operator precedence tables (a real portability hazard the paper's
 * generator also sidesteps this way).
 */
#ifndef SQLPP_SQLIR_PRINTER_H
#define SQLPP_SQLIR_PRINTER_H

#include <string>

#include "sqlir/ast.h"

namespace sqlpp {

/** Render an expression as SQL text (fully parenthesised). */
std::string printExpr(const Expr &expr);

/** Render any statement as SQL text (no trailing semicolon). */
std::string printStmt(const Stmt &stmt);

/** Render a SELECT as SQL text (usable as a subquery body). */
std::string printSelect(const SelectStmt &select);

} // namespace sqlpp

#endif // SQLPP_SQLIR_PRINTER_H
