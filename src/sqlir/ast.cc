#include "sqlir/ast.h"

namespace sqlpp {

const char *
binaryOpSymbol(BinaryOp op)
{
    switch (op) {
      case BinaryOp::Add: return "+";
      case BinaryOp::Sub: return "-";
      case BinaryOp::Mul: return "*";
      case BinaryOp::Div: return "/";
      case BinaryOp::Mod: return "%";
      case BinaryOp::Eq: return "=";
      case BinaryOp::NotEq: return "<>";
      case BinaryOp::NotEqBang: return "!=";
      case BinaryOp::Less: return "<";
      case BinaryOp::LessEq: return "<=";
      case BinaryOp::Greater: return ">";
      case BinaryOp::GreaterEq: return ">=";
      case BinaryOp::NullSafeEq: return "<=>";
      case BinaryOp::And: return "AND";
      case BinaryOp::Or: return "OR";
      case BinaryOp::BitAnd: return "&";
      case BinaryOp::BitOr: return "|";
      case BinaryOp::BitXor: return "^";
      case BinaryOp::ShiftLeft: return "<<";
      case BinaryOp::ShiftRight: return ">>";
      case BinaryOp::Concat: return "||";
      case BinaryOp::Like: return "LIKE";
      case BinaryOp::NotLike: return "NOT LIKE";
      case BinaryOp::Glob: return "GLOB";
      case BinaryOp::IsDistinctFrom: return "IS DISTINCT FROM";
      case BinaryOp::IsNotDistinctFrom: return "IS NOT DISTINCT FROM";
    }
    return "?";
}

bool
isComparisonOp(BinaryOp op)
{
    switch (op) {
      case BinaryOp::Eq:
      case BinaryOp::NotEq:
      case BinaryOp::NotEqBang:
      case BinaryOp::Less:
      case BinaryOp::LessEq:
      case BinaryOp::Greater:
      case BinaryOp::GreaterEq:
      case BinaryOp::NullSafeEq:
      case BinaryOp::IsDistinctFrom:
      case BinaryOp::IsNotDistinctFrom:
        return true;
      default:
        return false;
    }
}

bool
isLogicalOp(BinaryOp op)
{
    return op == BinaryOp::And || op == BinaryOp::Or;
}

const char *
joinTypeName(JoinType type)
{
    switch (type) {
      case JoinType::Inner: return "INNER JOIN";
      case JoinType::Left: return "LEFT JOIN";
      case JoinType::Right: return "RIGHT JOIN";
      case JoinType::Full: return "FULL JOIN";
      case JoinType::Cross: return "CROSS JOIN";
      case JoinType::Natural: return "NATURAL JOIN";
    }
    return "?";
}

ExprPtr
InListExpr::clone() const
{
    std::vector<ExprPtr> cloned;
    cloned.reserve(items.size());
    for (const ExprPtr &item : items)
        cloned.push_back(item->clone());
    return std::make_unique<InListExpr>(operand->clone(), std::move(cloned),
                                        negated);
}

std::vector<const Expr *>
InListExpr::children() const
{
    std::vector<const Expr *> out{operand.get()};
    for (const ExprPtr &item : items)
        out.push_back(item.get());
    return out;
}

ExprPtr
CaseExpr::clone() const
{
    std::vector<Arm> cloned_arms;
    cloned_arms.reserve(arms.size());
    for (const Arm &arm : arms)
        cloned_arms.push_back(Arm{arm.when->clone(), arm.then->clone()});
    return std::make_unique<CaseExpr>(
        operand ? operand->clone() : nullptr, std::move(cloned_arms),
        elseExpr ? elseExpr->clone() : nullptr);
}

std::vector<const Expr *>
CaseExpr::children() const
{
    std::vector<const Expr *> out;
    if (operand)
        out.push_back(operand.get());
    for (const Arm &arm : arms) {
        out.push_back(arm.when.get());
        out.push_back(arm.then.get());
    }
    if (elseExpr)
        out.push_back(elseExpr.get());
    return out;
}

ExprPtr
FunctionExpr::clone() const
{
    std::vector<ExprPtr> cloned;
    cloned.reserve(args.size());
    for (const ExprPtr &arg : args)
        cloned.push_back(arg->clone());
    return std::make_unique<FunctionExpr>(name, std::move(cloned), star,
                                          distinct);
}

std::vector<const Expr *>
FunctionExpr::children() const
{
    std::vector<const Expr *> out;
    for (const ExprPtr &arg : args)
        out.push_back(arg.get());
    return out;
}

ExistsExpr::ExistsExpr(SelectPtr subquery, bool negated)
    : Expr(ExprKind::Exists), subquery(std::move(subquery)), negated(negated)
{
}

ExistsExpr::~ExistsExpr() = default;

ExprPtr
ExistsExpr::clone() const
{
    return std::make_unique<ExistsExpr>(subquery->cloneSelect(), negated);
}

InSubqueryExpr::InSubqueryExpr(ExprPtr operand, SelectPtr subquery,
                               bool negated)
    : Expr(ExprKind::InSubquery), operand(std::move(operand)),
      subquery(std::move(subquery)), negated(negated)
{
}

InSubqueryExpr::~InSubqueryExpr() = default;

ExprPtr
InSubqueryExpr::clone() const
{
    return std::make_unique<InSubqueryExpr>(
        operand->clone(), subquery->cloneSelect(), negated);
}

ScalarSubqueryExpr::ScalarSubqueryExpr(SelectPtr subquery)
    : Expr(ExprKind::ScalarSubquery), subquery(std::move(subquery))
{
}

ScalarSubqueryExpr::~ScalarSubqueryExpr() = default;

ExprPtr
ScalarSubqueryExpr::clone() const
{
    return std::make_unique<ScalarSubqueryExpr>(subquery->cloneSelect());
}

CreateViewStmt::CreateViewStmt() : Stmt(StmtKind::CreateView)
{
}

CreateViewStmt::CreateViewStmt(const CreateViewStmt &other)
    : Stmt(StmtKind::CreateView), name(other.name),
      columnNames(other.columnNames),
      select(other.select ? other.select->cloneSelect() : nullptr)
{
}

CreateViewStmt::~CreateViewStmt() = default;

InsertStmt::InsertStmt(const InsertStmt &other)
    : Stmt(StmtKind::Insert), table(other.table), columns(other.columns),
      orIgnore(other.orIgnore)
{
    rows.reserve(other.rows.size());
    for (const auto &row : other.rows) {
        std::vector<ExprPtr> cloned;
        cloned.reserve(row.size());
        for (const ExprPtr &expr : row)
            cloned.push_back(expr->clone());
        rows.push_back(std::move(cloned));
    }
}

TableRef::TableRef(const TableRef &other)
    : name(other.name), alias(other.alias),
      subquery(other.subquery ? other.subquery->cloneSelect() : nullptr)
{
}

TableRef &
TableRef::operator=(const TableRef &other)
{
    if (this != &other) {
        name = other.name;
        alias = other.alias;
        subquery = other.subquery ? other.subquery->cloneSelect() : nullptr;
    }
    return *this;
}

TableRef::~TableRef() = default;

SelectStmt::SelectStmt(const SelectStmt &other)
    : Stmt(StmtKind::Select), distinct(other.distinct), items(other.items),
      from(other.from), joins(other.joins),
      where(other.where ? other.where->clone() : nullptr),
      having(other.having ? other.having->clone() : nullptr),
      orderBy(other.orderBy), limit(other.limit), offset(other.offset)
{
    groupBy.reserve(other.groupBy.size());
    for (const ExprPtr &expr : other.groupBy)
        groupBy.push_back(expr->clone());
}

void
forEachExprNode(const Expr &root,
                const std::function<void(const Expr &)> &fn)
{
    fn(root);
    for (const Expr *child : root.children())
        forEachExprNode(*child, fn);
}

} // namespace sqlpp
