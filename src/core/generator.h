/**
 * @file
 * The adaptive statement generator — the paper's core contribution.
 *
 * The generator produces random SQL statements whose every optional
 * element is a *feature* guarded by a FeatureGate (paper Listing 2:
 * shouldGenerate/generateFeature). With a FeedbackGate the gate is the
 * Bayesian validity-feedback tracker and the generator *learns* the
 * target dialect; with a ProfileGate (core/baseline.h) the gate is an
 * omniscient capability matrix and the generator becomes the
 * "SQLancer"-style hand-written baseline the paper compares against.
 *
 * Expression generation is type-directed. The abstract property
 * PROP_UNTYPED_EXPR controls whether the generator may emit ill-typed
 * expressions: dynamically-typed dialects execute them happily (and the
 * property survives), strictly-typed dialects reject them (and the
 * property is learned away) — reproducing the paper's treatment of
 * typing discipline as a learnable feature. Typed-argument composite
 * features (SIN1INT, SIN1STRING) are recorded per function argument.
 *
 * The expression depth follows the paper's schedule: start at 1,
 * increase every `depthStep` statements up to `maxDepth` (default 3).
 */
#ifndef SQLPP_CORE_GENERATOR_H
#define SQLPP_CORE_GENERATOR_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/feature.h"
#include "core/schema_model.h"
#include "sqlir/ast.h"
#include "util/rng.h"

namespace sqlpp {

class GuidedSelector;

/** Decides whether a feature may currently be generated. */
class FeatureGate
{
  public:
    virtual ~FeatureGate() = default;
    /** Paper Listing 2's shouldGenerate(). */
    virtual bool allow(FeatureId id) const = 0;
};

/** Gate that allows everything (feedback-off ablation). */
class OpenGate : public FeatureGate
{
  public:
    bool allow(FeatureId) const override { return true; }
};

/** Generator tunables. */
struct GeneratorConfig
{
    uint64_t seed = 1;
    /** Expression depth cap (paper setting: 3). */
    int maxDepth = 3;
    /** Progressive depth schedule: +1 depth every depthStep statements. */
    bool progressiveDepth = true;
    uint64_t depthStep = 200;
    /** Database-state limits (paper: up to 2 tables and 1 view). */
    size_t maxTables = 2;
    size_t maxViews = 1;
    size_t maxColumnsPerTable = 4;
    size_t maxRowsPerInsert = 3;
    /**
     * Stop inserting into tables the model believes have this many
     * rows; bounds join sizes and correlated-subquery cost, like the
     * small databases SQLancer deliberately works with.
     */
    size_t maxRowsPerTable = 10;
    size_t maxJoins = 2;
    /** Subquery generation (Fig. 8's SQLancer++_S disables this). */
    bool enableSubqueries = true;
    /** Probability of attempting a loose (possibly ill-typed) node. */
    double looseTypeProbability = 0.25;
};

/** One generated statement plus its recorded features and model effect. */
struct GeneratedStatement
{
    std::string text;
    FeatureSet features;
    StmtKind kind = StmtKind::Select;
    bool isQuery = false;

    /** Pending schema-model effects, applied only on success (Fig. 3). */
    std::optional<ModelTable> pendingTable;
    std::optional<ModelIndex> pendingIndex;
    std::string pendingInsertTable;
    size_t pendingInsertRows = 0;
};

/**
 * A SELECT decomposed for the logic-bug oracles: a predicate-free base
 * query plus a boolean predicate over the same scope. TLP partitions
 * the predicate; NoREC counts it two ways.
 */
struct QueryShape
{
    SelectPtr base;
    ExprPtr predicate;
    FeatureSet features;
    /**
     * Bandit arms pulled while generating this shape (guided mode
     * only; empty otherwise). One entry per pull, in pull order — the
     * campaign credits these ids once the novelty of the statement is
     * known (core/guidance.h).
     */
    std::vector<FeatureId> arms;
};

/** The adaptive statement generator. */
class AdaptiveGenerator
{
  public:
    AdaptiveGenerator(GeneratorConfig config, FeatureRegistry &registry,
                      const FeatureGate &gate, SchemaModel &model);

    /**
     * Generate the next database-state statement (CREATE TABLE/INDEX/
     * VIEW, INSERT, ANALYZE), chosen by what the schema model still
     * lacks.
     */
    GeneratedStatement generateSetupStatement();

    /** Generate a full random SELECT (plan/coverage workloads). */
    GeneratedStatement generateSelect();

    /** Generate an oracle-ready query shape (see QueryShape). */
    std::optional<QueryShape> generateQueryShape();

    /**
     * Report the execution status of a generated statement: applies the
     * pending schema-model effect on success (paper Fig. 3). Validity
     * bookkeeping is the FeedbackTracker's job, not ours.
     */
    void noteExecution(const GeneratedStatement &stmt, bool success);

    /**
     * Attach a guided-generation selector: choice points become bandit
     * arms chosen by novelty reward instead of uniformly. nullptr (the
     * default) restores the exact legacy uniform behavior, consuming
     * the rng stream identically — unguided runs stay byte-identical.
     */
    void setGuidance(GuidedSelector *guide) { guide_ = guide; }

    /** Statements generated so far (drives the depth schedule). */
    uint64_t generated() const { return generated_; }

    /** Current depth per the progressive schedule. */
    int currentDepth() const;

    Rng &rng() { return rng_; }
    const GeneratorConfig &config() const { return config_; }

  private:
    /** Typed column visible to expression generation. */
    struct ScopeColumn
    {
        std::string binding;
        std::string name;
        DataType type;
    };
    using ScopeColumns = std::vector<ScopeColumn>;

    bool allowName(const std::string &feature_name) const;
    /** shouldGenerate + generateFeature in one step (Listing 2). */
    bool use(const std::string &feature_name, FeatureKind kind,
             FeatureSet &features) const;
    /** Gate + coin flip for optional elements. */
    bool maybe(const std::string &feature_name, FeatureKind kind,
               double probability, FeatureSet &features);

    /**
     * Pick an index among `options`: the guided selector chooses by
     * arm name when attached, else uniformly via rng_.below — exactly
     * the draw the legacy call sites made, so unguided streams are
     * unchanged. `name_of` maps a candidate to its arm name.
     */
    template <typename T, typename NameOf>
    size_t pickArm(const std::vector<T> &options, NameOf &&name_of)
    {
        if (guide_ == nullptr)
            return rng_.below(options.size());
        std::vector<std::string> names;
        names.reserve(options.size());
        for (const T &option : options)
            names.push_back(name_of(option));
        return chooseGuided(names);
    }

    /** Guided pick + pull recording into the current arm sink. */
    size_t chooseGuided(const std::vector<std::string> &names);

    GeneratedStatement genCreateTable();
    GeneratedStatement genCreateIndex();
    GeneratedStatement genCreateView();
    GeneratedStatement genInsert();
    GeneratedStatement genAnalyze();

    /** Build FROM/joins; fills scope columns; returns a SELECT shell. */
    SelectPtr genFromClause(FeatureSet &features, ScopeColumns &scope,
                            bool allow_subquery_from);

    ExprPtr genExpr(DataType target, int depth, const ScopeColumns &scope,
                    FeatureSet &features, bool loose);
    /**
     * Cheap boolean over the scope (comparisons of columns/literals,
     * no subqueries or functions) for positions that are evaluated per
     * joined row pair or without subquery support: ON conditions,
     * partial-index and view predicates.
     */
    ExprPtr genSimpleBool(const ScopeColumns &scope,
                          FeatureSet &features);
    ExprPtr genLeaf(DataType target, const ScopeColumns &scope,
                    FeatureSet &features, bool loose);
    ExprPtr genLiteral(DataType type, FeatureSet &features);
    ExprPtr genFunctionCall(DataType target, int depth,
                            const ScopeColumns &scope,
                            FeatureSet &features, bool loose);
    ExprPtr genSubqueryExpr(DataType target, int depth,
                            const ScopeColumns &scope,
                            FeatureSet &features, bool loose);
    DataType randomType(FeatureSet &features);
    DataType randomSupportedType();

    GeneratorConfig config_;
    FeatureRegistry &registry_;
    const FeatureGate &gate_;
    SchemaModel &model_;
    Rng rng_;
    uint64_t generated_ = 0;
    /** Fresh alias counter for derived tables / subqueries. */
    uint64_t alias_counter_ = 0;
    /** Guided-generation selector; nullptr = legacy uniform choices. */
    GuidedSelector *guide_ = nullptr;
    /** Where pulled arms are recorded (QueryShape::arms) while set. */
    std::vector<FeatureId> *arm_sink_ = nullptr;
};

} // namespace sqlpp

#endif // SQLPP_CORE_GENERATOR_H
