#include "core/baseline.h"

#include <cctype>

#include "engine/eval.h"
#include "engine/functions.h"
#include "util/strutil.h"

namespace sqlpp {

namespace {

/** Parse a composite typed-argument feature like "SIN1INT". */
bool
parseCompositeArg(const std::string &name, std::string &fn_name,
                  size_t &arg_index, DataType &type)
{
    std::string suffix;
    if (name.size() > 3 && name.substr(name.size() - 3) == "INT") {
        type = DataType::Int;
        suffix = name.substr(0, name.size() - 3);
    } else if (name.size() > 6 &&
               name.substr(name.size() - 6) == "STRING") {
        type = DataType::Text;
        suffix = name.substr(0, name.size() - 6);
    } else if (name.size() > 4 &&
               name.substr(name.size() - 4) == "BOOL") {
        type = DataType::Bool;
        suffix = name.substr(0, name.size() - 4);
    } else {
        return false;
    }
    if (suffix.empty() ||
        !std::isdigit(static_cast<unsigned char>(suffix.back()))) {
        return false;
    }
    arg_index =
        static_cast<size_t>(suffix.back() - '0') - 1; // 1-based tag
    fn_name = suffix.substr(0, suffix.size() - 1);
    return !fn_name.empty() &&
           FunctionRegistry::instance().find(fn_name) != nullptr;
}

bool
typeMatchesSpec(DataType type, TypeSpec spec)
{
    switch (spec) {
      case TypeSpec::Any: return true;
      case TypeSpec::Int: return type == DataType::Int;
      case TypeSpec::Text: return type == DataType::Text;
      case TypeSpec::Bool: return type == DataType::Bool;
    }
    return true;
}

} // namespace

bool
ProfileGate::allowName(const std::string &name) const
{
    // Statements.
    if (startsWith(name, "STMT_")) {
        for (StmtKind kind :
             {StmtKind::CreateTable, StmtKind::CreateIndex,
              StmtKind::CreateView, StmtKind::Insert, StmtKind::Analyze,
              StmtKind::Select, StmtKind::DropTable, StmtKind::DropView,
              StmtKind::DropIndex}) {
            if (features::stmt(kind) == name)
                return profile_.supportsStatement(kind);
        }
        return false;
    }
    // Joins.
    if (startsWith(name, "JOIN_")) {
        for (JoinType type :
             {JoinType::Inner, JoinType::Left, JoinType::Right,
              JoinType::Full, JoinType::Cross, JoinType::Natural}) {
            if (features::join(type) == name)
                return profile_.supportsJoin(type);
        }
        return false;
    }
    // Clauses & keywords.
    const ClauseSupport &clauses = profile_.clauses;
    if (name == features::kDistinct) return clauses.distinct;
    if (name == features::kGroupBy) return clauses.groupBy;
    if (name == features::kHaving) return clauses.having;
    if (name == features::kOrderBy) return clauses.orderBy;
    if (name == features::kLimit) return clauses.limit;
    if (name == features::kOffset) return clauses.offset;
    if (name == features::kWhere) return true;
    if (name == features::kSubqueryExpr) return clauses.subqueryInExpr;
    if (name == features::kSubqueryFrom) return clauses.subqueryInFrom;
    if (name == features::kPartialIndex) return clauses.partialIndex;
    if (name == features::kUniqueIndex) return clauses.uniqueIndex;
    if (name == features::kIfNotExists) return clauses.ifNotExists;
    if (name == features::kOrIgnore) return clauses.insertOrIgnore;
    if (name == features::kMultiRowInsert) return clauses.multiRowInsert;
    if (name == features::kPrimaryKey) return clauses.primaryKey;
    if (name == features::kNotNull) return clauses.notNull;
    if (name == features::kUniqueColumn) return clauses.uniqueColumn;
    if (name == features::kViewColumnList) return clauses.viewColumnList;
    // Abstract properties.
    if (name == features::kUntypedExpr)
        return !profile_.behavior.staticTyping;
    // Operators.
    if (startsWith(name, "OP_")) {
        for (BinaryOp op :
             {BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul, BinaryOp::Div,
              BinaryOp::Mod, BinaryOp::Eq, BinaryOp::NotEq,
              BinaryOp::NotEqBang, BinaryOp::Less, BinaryOp::LessEq,
              BinaryOp::Greater, BinaryOp::GreaterEq,
              BinaryOp::NullSafeEq, BinaryOp::And, BinaryOp::Or,
              BinaryOp::BitAnd, BinaryOp::BitOr, BinaryOp::BitXor,
              BinaryOp::ShiftLeft, BinaryOp::ShiftRight,
              BinaryOp::Concat, BinaryOp::Like, BinaryOp::NotLike,
              BinaryOp::Glob, BinaryOp::IsDistinctFrom,
              BinaryOp::IsNotDistinctFrom}) {
            if (features::binaryOp(op) == name)
                return profile_.supportsBinaryOp(op);
        }
        for (UnaryOp op :
             {UnaryOp::Neg, UnaryOp::Plus, UnaryOp::BitNot, UnaryOp::Not,
              UnaryOp::IsNull, UnaryOp::IsNotNull, UnaryOp::IsTrue,
              UnaryOp::IsFalse, UnaryOp::IsNotTrue,
              UnaryOp::IsNotFalse}) {
            if (features::unaryOp(op) == name)
                return profile_.supportsUnaryOp(op);
        }
        if (name == "OP_EXISTS" || name == "OP_NOT_EXISTS" ||
            name == "OP_IN_SUBQUERY" || name == "OP_NOT_IN_SUBQUERY") {
            return profile_.clauses.subqueryInExpr;
        }
        // CASE/BETWEEN/IN-list/CAST: universal engine constructs.
        return true;
    }
    // Functions.
    if (startsWith(name, "FN_"))
        return profile_.supportsFunction(name.substr(3));
    // Data types.
    if (name == features::dataType(DataType::Int))
        return profile_.supportsType(DataType::Int);
    if (name == features::dataType(DataType::Text))
        return profile_.supportsType(DataType::Text);
    if (name == features::dataType(DataType::Bool))
        return profile_.supportsType(DataType::Bool);
    // Composite typed-argument features: the baseline knows the exact
    // signatures, so a mismatching argument type is only allowed on
    // dynamically-typed dialects.
    {
        std::string fn_name;
        size_t arg_index = 0;
        DataType type = DataType::Int;
        if (parseCompositeArg(name, fn_name, arg_index, type)) {
            if (!profile_.supportsFunction(fn_name))
                return false;
            if (!profile_.supportsType(type))
                return false;
            if (!profile_.behavior.staticTyping)
                return true;
            const FunctionImpl *impl =
                FunctionRegistry::instance().find(fn_name);
            if (impl == nullptr)
                return false;
            size_t spec_index =
                impl->sig.args.empty()
                    ? 0
                    : std::min(arg_index, impl->sig.args.size() - 1);
            TypeSpec spec = impl->sig.args.empty()
                                ? TypeSpec::Any
                                : impl->sig.args[spec_index];
            return typeMatchesSpec(type, spec);
        }
    }
    return true;
}

bool
ProfileGate::allow(FeatureId id) const
{
    return allowName(registry_.name(id));
}

} // namespace sqlpp
