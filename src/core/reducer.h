/**
 * @file
 * Test-case reduction (delta debugging).
 *
 * The paper's workflow processes "automatically-reduced and prioritized
 * bug-inducing test cases". The reducer shrinks a bug case along two
 * axes while the provided replay predicate keeps reporting the bug:
 *
 *  1. setup statements — greedy single-statement elimination to a
 *     fixed point (the 1-minimal core of ddmin for this granularity);
 *  2. the oracle predicate — structural simplification that tries to
 *     replace each node by one of its children or by a literal.
 */
#ifndef SQLPP_CORE_REDUCER_H
#define SQLPP_CORE_REDUCER_H

#include <functional>
#include <string>
#include <vector>

namespace sqlpp {

/** A reproducible bug-inducing test case. */
struct BugCase
{
    /** Dialect the bug was found on. */
    std::string dialect;
    /** Oracle that flagged it ("TLP" / "NOREC"). */
    std::string oracle;
    /**
     * execModeName() of the pipeline the bug was found under; empty in
     * legacy cases and treated as "optimized" on replay. A string (not
     * ExecMode) so replaying a dossier survives unknown future modes.
     * Excluded from bugCaseId so case identity is mode-independent.
     */
    std::string execMode;
    /** DDL/DML statements that rebuild the database state. */
    std::vector<std::string> setup;
    /** The predicate-free base query (SELECT ... FROM ...). */
    std::string baseText;
    /** The boolean predicate the oracle partitions/counts. */
    std::string predicateText;
    /** Features recorded while generating the case (prioritization). */
    std::vector<std::string> featureNames;
    /** Oracle evidence at detection time. */
    std::string details;
    /**
     * Every SQL query the oracle issued, in order — including failed
     * probes — so a repro carries the full statement list even after
     * reduction rewrote base/predicate.
     */
    std::vector<std::string> queries;

    bool
    operator==(const BugCase &other) const
    {
        return dialect == other.dialect && oracle == other.oracle &&
               execMode == other.execMode && setup == other.setup &&
               baseText == other.baseText &&
               predicateText == other.predicateText &&
               featureNames == other.featureNames &&
               details == other.details && queries == other.queries;
    }
};

/**
 * Replay predicate: rebuilds the database, reruns the oracle, and
 * returns true when the bug still manifests.
 */
using ReplayFn = std::function<bool(const BugCase &)>;

/** Reduction statistics, for reporting. */
struct ReduceStats
{
    size_t setupBefore = 0;
    size_t setupAfter = 0;
    size_t predicateNodesBefore = 0;
    size_t predicateNodesAfter = 0;
    size_t replays = 0;
};

/**
 * Reduce a bug case in place. The replay function must be pure with
 * respect to the case (it creates a fresh database per call).
 *
 * @return statistics about the reduction.
 */
ReduceStats reduceBugCase(BugCase &bug, const ReplayFn &replay,
                          size_t max_replays = 400);

} // namespace sqlpp

#endif // SQLPP_CORE_REDUCER_H
