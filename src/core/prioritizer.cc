#include "core/prioritizer.h"

#include <algorithm>

namespace sqlpp {

bool
BugPrioritizer::isPotentialDuplicate(const FeatureSet &features) const
{
    for (const FeatureSet &known : known_) {
        if (std::includes(features.begin(), features.end(),
                          known.begin(), known.end())) {
            return true;
        }
    }
    return false;
}

bool
BugPrioritizer::considerNew(const FeatureSet &features)
{
    if (isPotentialDuplicate(features))
        return false;
    known_.push_back(features);
    return true;
}

size_t
BugPrioritizer::absorb(const BugPrioritizer &other)
{
    size_t adopted = 0;
    for (const FeatureSet &features : other.known_) {
        if (considerNew(features))
            ++adopted;
    }
    return adopted;
}

} // namespace sqlpp
