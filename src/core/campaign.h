/**
 * @file
 * CampaignRunner: the SQLancer++ platform loop (paper Fig. 2).
 *
 * One campaign = one dialect + one generator mode + one or more
 * oracles. The runner
 *   1. builds database state with the generator (DDL/DML phase),
 *      feeding execution status back to the schema model and the
 *      validity tracker;
 *   2. generates oracle query shapes and checks them, learning from
 *      validity and recording plan fingerprints;
 *   3. routes every bug-inducing case through the prioritizer and
 *      (optionally) the reducer;
 *   4. can attribute prioritized bugs to ground-truth faults by
 *      replaying them against fault-ablated engines — the measurement
 *      the paper approximates by bisecting CrateDB commits (Table 5).
 */
#ifndef SQLPP_CORE_CAMPAIGN_H
#define SQLPP_CORE_CAMPAIGN_H

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/baseline.h"
#include "core/feature.h"
#include "core/feedback.h"
#include "core/generator.h"
#include "core/guidance.h"
#include "core/oracle.h"
#include "core/prioritizer.h"
#include "core/reducer.h"
#include "dialect/connection.h"

namespace sqlpp {

/** Which generator drives the campaign. */
enum class GeneratorMode
{
    /** Adaptive generator with validity feedback (SQLancer++). */
    Adaptive,
    /** Adaptive generator, feedback disabled (ablation). */
    AdaptiveNoFeedback,
    /** Profile-omniscient baseline ("SQLancer"-style). */
    Baseline,
};

/** Campaign configuration. */
struct CampaignConfig
{
    std::string dialect = "sqlite-like";
    uint64_t seed = 1;
    GeneratorMode mode = GeneratorMode::Adaptive;
    /** Oracles to run per query shape, e.g. {"TLP"} or {"TLP","NOREC"}. */
    std::vector<std::string> oracles = {"TLP"};
    /** Database-state statements to generate before testing. */
    size_t setupStatements = 80;
    /** Oracle checks to run. */
    size_t checks = 1500;
    /** Rebuild the database every N checks (0 = never). */
    size_t rebuildEvery = 0;
    /** Run the reducer over each prioritized bug. */
    bool reduce = false;
    GeneratorConfig generator;
    FeedbackConfig feedback;
    /** Per-statement engine budget for every connection opened. */
    StepBudget budget;
    /** Retry policy for transient REFRESH failures. */
    RefreshRetryPolicy refreshRetry;
    /**
     * Execution pipeline for every connection the campaign opens.
     * Batch is result- and stats-identical to Optimized on fault-free
     * dialects (the batch differential lane pins this); it exists to
     * scale statements/sec, the paper's throughput bottleneck.
     */
    ExecMode execMode = ExecMode::Optimized;
    /**
     * Watchdog: abandon the campaign after this many wall-clock
     * seconds (0 = no deadline). An abandoned campaign returns the
     * stats gathered so far and sets CampaignStats::shardsAbandoned.
     */
    double deadlineSeconds = 0.0;
    /** Strip the profile's injected faults (fault-free control runs). */
    bool disableFaults = false;
    /**
     * Learning-curve sampler: append a CurveSample to
     * CampaignStats::curve every N attempted checks (0 = off). The
     * trajectory behind the paper's validity learning curves.
     */
    size_t curveInterval = 0;
    /**
     * Search-guided generation (core/guidance.h): when the mode is not
     * Off, generator choice points become bandit arms rewarded by plan
     * and coverage novelty. Fully deterministic — guided campaigns
     * stay bit-identical across worker counts and resume.
     */
    GuidanceConfig guidance;
};

/**
 * One learning-curve sample: a point on the validity trajectory as the
 * adaptive generator learns a dialect. Logical time only (tick =
 * checksAttempted at sample time), so curves are deterministic for a
 * fixed seed and independent of worker count.
 */
struct CurveSample
{
    /** checksAttempted when the sample was taken. */
    uint64_t tick = 0;
    uint64_t cumAttempted = 0;
    uint64_t cumValid = 0;
    /** Checks attempted/valid since the previous sample. */
    uint64_t windowAttempted = 0;
    uint64_t windowValid = 0;
    /** Features suppressed by validity feedback at sample time. */
    uint64_t suppressed = 0;
    /**
     * Distinct plan fingerprints seen by the shard at sample time —
     * the novelty trajectory guided generation is meant to bend upward
     * (bench/learning_curve plots it per mode).
     */
    uint64_t cumPlans = 0;

    double
    windowValidityRate() const
    {
        if (windowAttempted == 0)
            return 0.0;
        return static_cast<double>(windowValid) /
               static_cast<double>(windowAttempted);
    }

    double
    cumulativeValidityRate() const
    {
        if (cumAttempted == 0)
            return 0.0;
        return static_cast<double>(cumValid) /
               static_cast<double>(cumAttempted);
    }

    bool operator==(const CurveSample &other) const = default;
};

/** Aggregated campaign results. */
struct CampaignStats
{
    uint64_t setupGenerated = 0;
    uint64_t setupSucceeded = 0;
    uint64_t checksAttempted = 0;
    /** Checks whose every query executed (validity-rate numerator). */
    uint64_t checksValid = 0;
    /** Every bug-inducing test case (Table 5 "Detected Bugs"). */
    uint64_t bugsDetected = 0;
    /** Detected bugs split by oracle name (Table 5 per-oracle view). */
    std::map<std::string, uint64_t> bugsByOracle;
    /**
     * Oracle runs that did not apply to the shape (e.g. PQS on a join
     * or an empty source). Never counted against validity.
     */
    uint64_t checksInapplicable = 0;
    /** Cases surviving prioritization (Table 5 "Prioritized Bugs"). */
    std::vector<BugCase> prioritizedBugs;
    /** Distinct SELECT plan fingerprints (Fig. 8 metric). */
    std::set<uint64_t> planFingerprints;
    /** Statements cut short by the execution budget (never bugs). */
    uint64_t resourceErrors = 0;
    /** REFRESH retries performed after transient failures. */
    uint64_t refreshRetries = 0;
    /** Campaigns abandoned by the watchdog deadline (0 or 1 pre-merge). */
    uint64_t shardsAbandoned = 0;
    /**
     * Learning-curve samples in logical-time order (empty unless
     * CampaignConfig::curveInterval > 0). merge() appends the other
     * shard's samples, so the merged curve lists shards in merge
     * (= shard-index) order.
     */
    std::vector<CurveSample> curve;

    double
    validityRate() const
    {
        if (checksAttempted == 0)
            return 0.0;
        return static_cast<double>(checksValid) /
               static_cast<double>(checksAttempted);
    }

    double
    setupValidityRate() const
    {
        if (setupGenerated == 0)
            return 0.0;
        return static_cast<double>(setupSucceeded) /
               static_cast<double>(setupGenerated);
    }

    /**
     * Fold another campaign's results into this one: counters are
     * summed, plan fingerprints unioned, and `other`'s prioritized
     * bugs appended in order. Merging shards in a fixed order yields
     * identical totals regardless of how many workers produced them;
     * cross-shard bug dedup is the scheduler's job (it re-runs the
     * prioritizer over the merged stream before calling this).
     */
    void merge(const CampaignStats &other);

    /** Field-by-field equality (checkpoint/resume verification). */
    bool operator==(const CampaignStats &other) const;
};

/** Runs campaigns against one dialect. */
class CampaignRunner
{
  public:
    explicit CampaignRunner(CampaignConfig config);

    /**
     * Run against an explicit profile instead of a registered dialect
     * name — the fault-matrix tests build synthetic single-fault
     * dialects this way. config.dialect is overwritten by the
     * profile's name.
     */
    CampaignRunner(CampaignConfig config, const DialectProfile &profile);

    /** Run the full campaign and return the stats. */
    CampaignStats run();

    /** The feedback tracker (inspect learned state after run()). */
    const FeedbackTracker &feedback() const { return *tracker_; }
    FeatureRegistry &registry() { return registry_; }
    const SchemaModel &schemaModel() const { return model_; }
    /** The guided selector, or nullptr when guidance is Off. */
    const GuidedSelector *guidance() const { return guide_.get(); }

    /**
     * Replay a bug case on a profile: rebuild the database, rerun the
     * oracle. True when the bug still manifests. When @p replayed is
     * non-null it receives the oracle's full result (e.g. to refresh a
     * reduced case's recorded query list).
     */
    static bool reproduces(const DialectProfile &profile,
                           const BugCase &bug,
                           OracleResult *replayed = nullptr);

    /**
     * Ground-truth attribution: find the injected fault whose removal
     * makes the bug disappear. nullopt when no single fault explains it.
     */
    static std::optional<FaultId>
    attributeFault(const DialectProfile &profile, const BugCase &bug);

    /**
     * Count distinct underlying bugs among prioritized cases using
     * ground-truth attribution (the paper's "Unique Bugs" column).
     */
    static size_t countUniqueBugs(const DialectProfile &profile,
                                  const std::vector<BugCase> &bugs);

  private:
    /** Shared ctor tail once profile_ and config_ are fixed. */
    void initGeneratorStack();
    void buildState(Connection &connection, CampaignStats &stats,
                    std::vector<std::string> &setup_log);

    CampaignConfig config_;
    /** Local profile copy (faults stripped under disableFaults). */
    DialectProfile profile_;
    FeatureRegistry registry_;
    std::unique_ptr<FeedbackTracker> tracker_;
    std::unique_ptr<FeatureGate> gate_;
    std::unique_ptr<GuidedSelector> guide_;
    SchemaModel model_;
};

} // namespace sqlpp

#endif // SQLPP_CORE_CAMPAIGN_H
