#include "core/progress.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "util/strutil.h"
#include "util/trace.h"

namespace sqlpp {

const char *
shardStateName(ShardState state)
{
    switch (state) {
      case ShardState::Pending: return "pending";
      case ShardState::Running: return "running";
      case ShardState::Done: return "done";
      case ShardState::Restored: return "restored";
      case ShardState::Abandoned: return "abandoned";
    }
    return "unknown";
}

namespace {

/** The thread's bound cell (nullptr outside a ProgressShardScope). */
thread_local ProgressBoard::Cell *tls_progress_cell = nullptr;

/**
 * Pack a string into NUL-padded atomic words under the cell's
 * seqlock. Single writer per cell by the board's write discipline, so
 * the odd/even version dance is purely for readers.
 */
void
storeString(ProgressBoard::Cell &cell, std::atomic<uint64_t> *words,
            size_t word_count, const std::string &value)
{
    uint32_t version = cell.version.load(std::memory_order_relaxed);
    cell.version.store(version + 1, std::memory_order_release);
    size_t capacity = word_count * sizeof(uint64_t) - 1;
    size_t length = std::min(value.size(), capacity);
    for (size_t w = 0; w < word_count; ++w) {
        uint64_t packed = 0;
        for (size_t b = 0; b < sizeof(uint64_t); ++b) {
            size_t i = w * sizeof(uint64_t) + b;
            if (i < length)
                packed |= static_cast<uint64_t>(
                              static_cast<unsigned char>(value[i]))
                          << (8 * b);
        }
        words[w].store(packed, std::memory_order_relaxed);
    }
    cell.version.store(version + 2, std::memory_order_release);
}

/** Seqlock read of a packed string; "" after too many retries. */
std::string
loadString(const ProgressBoard::Cell &cell,
           const std::atomic<uint64_t> *words, size_t word_count)
{
    for (int attempt = 0; attempt < 64; ++attempt) {
        uint32_t before = cell.version.load(std::memory_order_acquire);
        if ((before & 1) != 0)
            continue;
        char buffer[ProgressBoard::kLeaderWords * sizeof(uint64_t) + 1];
        for (size_t w = 0; w < word_count; ++w) {
            uint64_t packed = words[w].load(std::memory_order_relaxed);
            for (size_t b = 0; b < sizeof(uint64_t); ++b)
                buffer[w * sizeof(uint64_t) + b] =
                    static_cast<char>((packed >> (8 * b)) & 0xff);
        }
        buffer[word_count * sizeof(uint64_t)] = '\0';
        std::atomic_thread_fence(std::memory_order_acquire);
        uint32_t after = cell.version.load(std::memory_order_relaxed);
        if (before == after)
            return std::string(buffer);
    }
    return "";
}

/** JSON string escaping (labels and arm names are plain ASCII). */
std::string
statusJsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out.push_back(c);
        }
    }
    return out;
}

} // namespace

ProgressBoard &
ProgressBoard::instance()
{
    static ProgressBoard board;
    return board;
}

ProgressBoard::Cell *
ProgressBoard::current()
{
    return tls_progress_cell;
}

uint64_t
ProgressBoard::nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
ProgressBoard::beginCampaign(size_t workers, size_t shards,
                             uint64_t checks_target)
{
    for (Cell &cell : cells_) {
        cell.state.store(0, std::memory_order_relaxed);
        cell.seed.store(0, std::memory_order_relaxed);
        cell.checksTarget.store(0, std::memory_order_relaxed);
        cell.checksAttempted.store(0, std::memory_order_relaxed);
        cell.checksValid.store(0, std::memory_order_relaxed);
        cell.bugsDetected.store(0, std::memory_order_relaxed);
        cell.plans.store(0, std::memory_order_relaxed);
        cell.resourceErrors.store(0, std::memory_order_relaxed);
        cell.suppressed.store(0, std::memory_order_relaxed);
        cell.setupGenerated.store(0, std::memory_order_relaxed);
        cell.setupSucceeded.store(0, std::memory_order_relaxed);
        cell.tick.store(0, std::memory_order_relaxed);
        cell.deadlineMs.store(0, std::memory_order_relaxed);
        cell.lastAdvanceNs.store(0, std::memory_order_relaxed);
        storeString(cell, cell.label, kLabelWords, "");
        storeString(cell, cell.leader, kLeaderWords, "");
    }
    workers_.store(workers, std::memory_order_relaxed);
    shards_.store(shards, std::memory_order_relaxed);
    checksTarget_.store(checks_target, std::memory_order_relaxed);
    startNs_.store(nowNs(), std::memory_order_relaxed);
    active_.store(true, std::memory_order_release);
}

void
ProgressBoard::initShard(size_t shard_index, const std::string &label,
                         uint64_t seed, uint64_t checks,
                         double deadline_seconds)
{
    Cell &c = cell(shard_index);
    c.seed.store(seed, std::memory_order_relaxed);
    c.checksTarget.store(checks, std::memory_order_relaxed);
    c.deadlineMs.store(
        deadline_seconds > 0.0
            ? static_cast<uint64_t>(deadline_seconds * 1000.0)
            : 0,
        std::memory_order_relaxed);
    storeString(c, c.label, kLabelWords, label);
}

void
ProgressBoard::setShardState(size_t shard_index, ShardState state)
{
    cell(shard_index)
        .state.store(static_cast<uint64_t>(state),
                     std::memory_order_relaxed);
}

void
ProgressBoard::fillRestoredShard(size_t shard_index, uint64_t attempted,
                                 uint64_t valid, uint64_t bugs,
                                 uint64_t plans,
                                 uint64_t resource_errors)
{
    Cell &c = cell(shard_index);
    c.checksAttempted.store(attempted, std::memory_order_relaxed);
    c.checksValid.store(valid, std::memory_order_relaxed);
    c.bugsDetected.store(bugs, std::memory_order_relaxed);
    c.plans.store(plans, std::memory_order_relaxed);
    c.resourceErrors.store(resource_errors, std::memory_order_relaxed);
    c.state.store(static_cast<uint64_t>(ShardState::Restored),
                  std::memory_order_relaxed);
}

void
ProgressBoard::finishCampaign()
{
    active_.store(false, std::memory_order_release);
}

void
ProgressBoard::setStallThresholdSeconds(double seconds)
{
    stallThresholdMs_.store(
        seconds > 0.0 ? static_cast<uint64_t>(seconds * 1000.0) : 0,
        std::memory_order_relaxed);
}

CampaignProgress
ProgressBoard::snapshot() const
{
    CampaignProgress out;
    out.active = active_.load(std::memory_order_acquire);
    out.workers =
        static_cast<size_t>(workers_.load(std::memory_order_relaxed));
    out.shardsTotal =
        static_cast<size_t>(shards_.load(std::memory_order_relaxed));
    out.checksTarget = checksTarget_.load(std::memory_order_relaxed);
    uint64_t stall_ms =
        stallThresholdMs_.load(std::memory_order_relaxed);
    out.stallThresholdSeconds =
        static_cast<double>(stall_ms) / 1000.0;
    uint64_t now = nowNs();
    uint64_t start = startNs_.load(std::memory_order_relaxed);
    out.uptimeSeconds =
        start == 0 || now < start
            ? 0.0
            : static_cast<double>(now - start) / 1e9;

    size_t visible = std::min(out.shardsTotal, kMaxShards);
    out.shards.reserve(visible);
    for (size_t index = 0; index < visible; ++index) {
        const Cell &c = cells_[index];
        ShardProgress shard;
        shard.shardIndex = index;
        shard.state = static_cast<ShardState>(
            c.state.load(std::memory_order_relaxed));
        shard.seed = c.seed.load(std::memory_order_relaxed);
        shard.checksTarget =
            c.checksTarget.load(std::memory_order_relaxed);
        shard.checksAttempted =
            c.checksAttempted.load(std::memory_order_relaxed);
        shard.checksValid =
            c.checksValid.load(std::memory_order_relaxed);
        shard.bugsDetected =
            c.bugsDetected.load(std::memory_order_relaxed);
        shard.plans = c.plans.load(std::memory_order_relaxed);
        shard.resourceErrors =
            c.resourceErrors.load(std::memory_order_relaxed);
        shard.suppressed =
            c.suppressed.load(std::memory_order_relaxed);
        shard.setupGenerated =
            c.setupGenerated.load(std::memory_order_relaxed);
        shard.setupSucceeded =
            c.setupSucceeded.load(std::memory_order_relaxed);
        shard.tick = c.tick.load(std::memory_order_relaxed);
        shard.deadlineSeconds =
            static_cast<double>(
                c.deadlineMs.load(std::memory_order_relaxed)) /
            1000.0;
        shard.label = loadString(c, c.label, kLabelWords);
        shard.banditLeader = loadString(c, c.leader, kLeaderWords);

        // Stall clock: age since the last advance, falling back to the
        // campaign start for a shard that never advanced at all (a
        // wedged first statement is the most suspicious case of all).
        uint64_t last =
            c.lastAdvanceNs.load(std::memory_order_relaxed);
        uint64_t baseline = last != 0 ? last : start;
        if (baseline != 0 && now >= baseline)
            shard.lastAdvanceSeconds =
                static_cast<double>(now - baseline) / 1e9;
        shard.stalled = shard.state == ShardState::Running &&
                        stall_ms > 0 &&
                        shard.lastAdvanceSeconds >= 0.0 &&
                        shard.lastAdvanceSeconds * 1000.0 >
                            static_cast<double>(stall_ms);

        out.checksAttempted += shard.checksAttempted;
        out.checksValid += shard.checksValid;
        out.bugsDetected += shard.bugsDetected;
        out.plans += shard.plans;
        out.resourceErrors += shard.resourceErrors;
        switch (shard.state) {
          case ShardState::Pending: break;
          case ShardState::Running: ++out.shardsRunning; break;
          case ShardState::Done: ++out.shardsDone; break;
          case ShardState::Restored: ++out.shardsRestored; break;
          case ShardState::Abandoned: ++out.shardsAbandoned; break;
        }
        out.shards.push_back(std::move(shard));
    }

    if (out.uptimeSeconds > 0.0)
        out.checksPerSecond =
            static_cast<double>(out.checksAttempted) /
            out.uptimeSeconds;
    if (out.checksPerSecond > 0.0 &&
        out.checksTarget > out.checksAttempted)
        out.etaSeconds =
            static_cast<double>(out.checksTarget -
                                out.checksAttempted) /
            out.checksPerSecond;
    else if (out.checksTarget <= out.checksAttempted)
        out.etaSeconds = 0.0;
    return out;
}

ProgressShardScope::ProgressShardScope(size_t shard_index)
    : previous_(tls_progress_cell)
{
    tls_progress_cell = &ProgressBoard::instance().cell(shard_index);
}

ProgressShardScope::~ProgressShardScope()
{
    tls_progress_cell = previous_;
}

namespace progress {

void
noteBanditLeader(const std::string &name)
{
    ProgressBoard::Cell *cell = ProgressBoard::current();
    if (cell == nullptr)
        return;
    storeString(*cell, cell->leader, ProgressBoard::kLeaderWords,
                name);
}

} // namespace progress

std::string
renderStatusJson(const CampaignProgress &snapshot)
{
    std::string out = "{\n  \"schema\": \"sqlpp.status.v1\",\n";
    out += format(
        "  \"campaign\": {\"active\": %s, \"workers\": %zu, "
        "\"uptime_seconds\": %.3f, \"shards_total\": %zu, "
        "\"shards_done\": %zu, \"shards_running\": %zu, "
        "\"shards_restored\": %zu, \"shards_abandoned\": %zu, "
        "\"checks_target\": %llu, \"checks_attempted\": %llu, "
        "\"checks_valid\": %llu, \"validity\": %.4f, "
        "\"bugs_detected\": %llu, \"plans\": %llu, "
        "\"resource_errors\": %llu, \"checks_per_second\": %.1f, "
        "\"eta_seconds\": %.1f, "
        "\"stall_threshold_seconds\": %.1f},\n",
        snapshot.active ? "true" : "false", snapshot.workers,
        snapshot.uptimeSeconds, snapshot.shardsTotal,
        snapshot.shardsDone, snapshot.shardsRunning,
        snapshot.shardsRestored, snapshot.shardsAbandoned,
        (unsigned long long)snapshot.checksTarget,
        (unsigned long long)snapshot.checksAttempted,
        (unsigned long long)snapshot.checksValid,
        snapshot.validityRate(),
        (unsigned long long)snapshot.bugsDetected,
        (unsigned long long)snapshot.plans,
        (unsigned long long)snapshot.resourceErrors,
        snapshot.checksPerSecond, snapshot.etaSeconds,
        snapshot.stallThresholdSeconds);
    out += "  \"shards\": [";
    for (size_t i = 0; i < snapshot.shards.size(); ++i) {
        const ShardProgress &shard = snapshot.shards[i];
        if (i > 0)
            out += ",";
        out += format(
            "\n    {\"shard\": %zu, \"label\": \"%s\", "
            "\"state\": \"%s\", \"seed\": %llu, "
            "\"checks_target\": %llu, \"checks_attempted\": %llu, "
            "\"checks_valid\": %llu, \"validity\": %.4f, "
            "\"bugs\": %llu, \"plans\": %llu, "
            "\"resource_errors\": %llu, \"suppressed\": %llu, "
            "\"setup_generated\": %llu, \"setup_succeeded\": %llu, "
            "\"tick\": %llu, \"deadline_seconds\": %.1f, "
            "\"bandit_leader\": \"%s\", "
            "\"last_advance_seconds\": %.3f, \"stalled\": %s}",
            shard.shardIndex,
            statusJsonEscape(shard.label).c_str(),
            shardStateName(shard.state),
            (unsigned long long)shard.seed,
            (unsigned long long)shard.checksTarget,
            (unsigned long long)shard.checksAttempted,
            (unsigned long long)shard.checksValid,
            shard.validityRate(),
            (unsigned long long)shard.bugsDetected,
            (unsigned long long)shard.plans,
            (unsigned long long)shard.resourceErrors,
            (unsigned long long)shard.suppressed,
            (unsigned long long)shard.setupGenerated,
            (unsigned long long)shard.setupSucceeded,
            (unsigned long long)shard.tick, shard.deadlineSeconds,
            statusJsonEscape(shard.banditLeader).c_str(),
            shard.lastAdvanceSeconds,
            shard.stalled ? "true" : "false");
    }
    out += "\n  ],\n  \"stalled\": [";
    bool first_stalled = true;
    for (const ShardProgress &shard : snapshot.shards) {
        if (!shard.stalled)
            continue;
        if (!first_stalled)
            out += ",";
        first_stalled = false;
        out += format(
            "\n    {\"shard\": %zu, \"label\": \"%s\", "
            "\"tick\": %llu, \"last_advance_seconds\": %.3f, "
            "\"recent_events\": [",
            shard.shardIndex,
            statusJsonEscape(shard.label).c_str(),
            (unsigned long long)shard.tick,
            shard.lastAdvanceSeconds);
        // The diagnosis payload: the stalled shard's newest
        // flight-recorder events, so the report explains what the
        // shard was doing right before it went silent.
        std::vector<TraceEvent> events =
            TraceRecorder::instance().recentShardEvents(
                shard.shardIndex, 8);
        size_t lane =
            TraceRecorder::laneForShardIndex(shard.shardIndex);
        for (size_t e = 0; e < events.size(); ++e) {
            if (e > 0)
                out += ", ";
            out += traceEventJson(lane, shard.label, events[e]);
        }
        out += "]}";
    }
    out += "\n  ]\n}\n";
    return out;
}

std::string
renderProgressLine(const CampaignProgress &snapshot)
{
    double percent =
        snapshot.checksTarget == 0
            ? 0.0
            : 100.0 * static_cast<double>(snapshot.checksAttempted) /
                  static_cast<double>(snapshot.checksTarget);
    std::string line = format(
        "progress: %llu/%llu checks (%.1f%%) | %.0f checks/s | "
        "validity %.1f%% | bugs %llu | shards %zu/%zu done",
        (unsigned long long)snapshot.checksAttempted,
        (unsigned long long)snapshot.checksTarget, percent,
        snapshot.checksPerSecond, 100.0 * snapshot.validityRate(),
        (unsigned long long)snapshot.bugsDetected,
        snapshot.shardsDone + snapshot.shardsRestored +
            snapshot.shardsAbandoned,
        snapshot.shardsTotal);
    if (snapshot.shardsRunning > 0)
        line += format(" (%zu running)", snapshot.shardsRunning);
    if (snapshot.etaSeconds >= 0.0)
        line += format(" | eta %.1fs", snapshot.etaSeconds);
    for (const ShardProgress &shard : snapshot.shards) {
        if (shard.stalled)
            line += format(" | STALLED %s(#%zu) silent %.1fs",
                           shard.label.c_str(), shard.shardIndex,
                           shard.lastAdvanceSeconds);
    }
    return line;
}

} // namespace sqlpp
