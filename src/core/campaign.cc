#include "core/campaign.h"

#include <chrono>
#include <optional>

#include "core/progress.h"
#include "parser/parser.h"
#include "util/coverage.h"
#include "sqlir/printer.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/strutil.h"
#include "util/trace.h"

namespace sqlpp {

void
CampaignStats::merge(const CampaignStats &other)
{
    setupGenerated += other.setupGenerated;
    setupSucceeded += other.setupSucceeded;
    checksAttempted += other.checksAttempted;
    checksValid += other.checksValid;
    bugsDetected += other.bugsDetected;
    for (const auto &[oracle, count] : other.bugsByOracle)
        bugsByOracle[oracle] += count;
    checksInapplicable += other.checksInapplicable;
    resourceErrors += other.resourceErrors;
    refreshRetries += other.refreshRetries;
    shardsAbandoned += other.shardsAbandoned;
    for (const CurveSample &sample : other.curve)
        curve.push_back(sample);
    for (const BugCase &bug : other.prioritizedBugs)
        prioritizedBugs.push_back(bug);
    planFingerprints.insert(other.planFingerprints.begin(),
                            other.planFingerprints.end());
}

bool
CampaignStats::operator==(const CampaignStats &other) const
{
    return setupGenerated == other.setupGenerated &&
           setupSucceeded == other.setupSucceeded &&
           checksAttempted == other.checksAttempted &&
           checksValid == other.checksValid &&
           bugsDetected == other.bugsDetected &&
           bugsByOracle == other.bugsByOracle &&
           checksInapplicable == other.checksInapplicable &&
           resourceErrors == other.resourceErrors &&
           refreshRetries == other.refreshRetries &&
           shardsAbandoned == other.shardsAbandoned &&
           curve == other.curve &&
           prioritizedBugs == other.prioritizedBugs &&
           planFingerprints == other.planFingerprints;
}

CampaignRunner::CampaignRunner(CampaignConfig config)
    : config_(std::move(config))
{
    const DialectProfile *profile = findDialect(config_.dialect);
    if (profile == nullptr) {
        logError("unknown dialect: " + config_.dialect);
        profile = &allDialectProfiles().front();
        config_.dialect = profile->name;
    }
    profile_ = *profile;
    initGeneratorStack();
}

CampaignRunner::CampaignRunner(CampaignConfig config,
                               const DialectProfile &profile)
    : config_(std::move(config))
{
    profile_ = profile;
    config_.dialect = profile_.name;
    initGeneratorStack();
}

void
CampaignRunner::initGeneratorStack()
{
    if (config_.disableFaults)
        profile_.faults = FaultSet();
    FeedbackConfig feedback_config = config_.feedback;
    if (config_.mode == GeneratorMode::AdaptiveNoFeedback)
        feedback_config.enabled = false;
    tracker_ = std::make_unique<FeedbackTracker>(feedback_config);
    switch (config_.mode) {
      case GeneratorMode::Adaptive:
        gate_ = std::make_unique<FeedbackGate>(*tracker_);
        break;
      case GeneratorMode::AdaptiveNoFeedback:
        gate_ = std::make_unique<OpenGate>();
        break;
      case GeneratorMode::Baseline:
        gate_ = std::make_unique<ProfileGate>(profile_, registry_);
        break;
    }
    if (config_.guidance.mode != GuidanceMode::Off) {
        GuidanceConfig guidance = config_.guidance;
        if (guidance.salt == 0) {
            // Salt-derive from the (shard-specific) campaign seed, the
            // PQS/EET idiom: each shard explores its own trajectory and
            // resume replays it exactly.
            guidance.salt =
                fnv1a(format("guidance|%llu",
                             (unsigned long long)config_.seed));
        }
        guide_ = std::make_unique<GuidedSelector>(guidance, *tracker_,
                                                  registry_);
        SQLPP_GAUGE_SET("generator.guided.mode",
                        static_cast<int64_t>(guidance.mode));
    }
}

void
CampaignRunner::buildState(Connection &connection, CampaignStats &stats,
                           std::vector<std::string> &setup_log)
{
    SQLPP_SPAN("campaign.setup.wall_us");
    GeneratorConfig generator_config = config_.generator;
    generator_config.seed =
        config_.seed * 0x9e3779b97f4a7c15ULL + stats.setupGenerated + 1;
    AdaptiveGenerator generator(generator_config, registry_, *gate_,
                                model_);
    for (size_t i = 0; i < config_.setupStatements; ++i) {
        GeneratedStatement stmt = generator.generateSetupStatement();
        auto result = connection.executeAdapted(stmt.text);
        bool success = result.isOk();
        tracker_->record(stmt.features, success, /*is_query=*/false);
        generator.noteExecution(stmt, success);
        progress::noteSetup(success);
        ++stats.setupGenerated;
        if (success) {
            ++stats.setupSucceeded;
            setup_log.push_back(stmt.text);
        }
    }
}

CampaignStats
CampaignRunner::run()
{
    SQLPP_SPAN("campaign.run.wall_us");
    SQLPP_COUNT("campaign.runs");
    CampaignStats stats;
    const DialectProfile &profile = profile_;
    auto campaign_start = std::chrono::steady_clock::now();

    std::vector<std::unique_ptr<Oracle>> oracles;
    for (const std::string &name : config_.oracles) {
        auto oracle = makeOracle(name);
        if (oracle != nullptr)
            oracles.push_back(std::move(oracle));
    }
    if (oracles.empty())
        oracles.push_back(makeOracle("TLP"));

    BugPrioritizer prioritizer;

    ConnectionOptions connection_options;
    connection_options.budget = config_.budget;
    connection_options.refreshRetry = config_.refreshRetry;
    connection_options.execMode = config_.execMode;
    SQLPP_GAUGE_SET("campaign.exec.mode",
                    static_cast<int64_t>(config_.execMode));
    // Legacy traces must stay byte-identical, so the mode event is only
    // recorded for non-default modes.
    if (config_.execMode != ExecMode::Optimized) {
        SQLPP_TRACE_EVENT(ExecModeSelected,
                          execModeName(config_.execMode),
                          static_cast<uint64_t>(config_.execMode), 0);
    }
    // Budget and retry counters live in the connection; fold them into
    // the stats before a connection is replaced (rebuild) or dropped.
    auto collect_counters = [&stats](const Connection &connection) {
        stats.resourceErrors += connection.resourceErrors();
        stats.refreshRetries += connection.refreshRetries();
    };

    auto connection =
        std::make_unique<Connection>(profile, connection_options);
    std::vector<std::string> setup_log;
    model_ = SchemaModel();
    buildState(*connection, stats, setup_log);

    GeneratorConfig generator_config = config_.generator;
    generator_config.seed = config_.seed;
    AdaptiveGenerator generator(generator_config, registry_, *gate_,
                                model_);

    // Guided generation: attach the bandit to the generator's choice
    // points and install the thread-local coverage capture that
    // supplies the probe half of the novelty reward. The capture is
    // per-thread, so concurrent shards never see each other's hits and
    // guided campaigns stay bit-identical for any worker count.
    std::optional<CoverageCapture> capture;
    if (guide_ != nullptr) {
        generator.setGuidance(guide_.get());
        capture.emplace();
    }

    // Learning-curve window counters, reset at every sample.
    uint64_t window_attempted = 0;
    uint64_t window_valid = 0;

    for (size_t check = 0; check < config_.checks; ++check) {
        // Watchdog deadline: give up on the rest of the check budget
        // and return what was gathered; the scheduler merge still
        // consumes the partial stats deterministically.
        if (config_.deadlineSeconds > 0.0 &&
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - campaign_start)
                    .count() >= config_.deadlineSeconds) {
            logWarn(format("campaign on %s hit its %.1fs deadline after "
                           "%zu/%zu checks; abandoning shard",
                           profile.name.c_str(), config_.deadlineSeconds,
                           check, config_.checks));
            stats.shardsAbandoned = 1;
            progress::noteAbandoned();
            SQLPP_COUNT("campaign.watchdog.abandoned");
            SQLPP_TRACE_EVENT(ShardAbandoned, profile.name, check,
                              config_.checks);
            // Abandonment is exactly the moment buffered log lines are
            // about to be lost (the scheduler may tear the worker down
            // or the process may be checkpoint-killed); push them out.
            flushLogs();
            break;
        }
        if (config_.rebuildEvery > 0 && check > 0 &&
            check % config_.rebuildEvery == 0) {
            SQLPP_COUNT("campaign.rebuilds");
            collect_counters(*connection);
            connection =
                std::make_unique<Connection>(profile, connection_options);
            model_ = SchemaModel();
            setup_log.clear();
            buildState(*connection, stats, setup_log);
            if (guide_ != nullptr) {
                // Setup statements are nobody's pull: fold their plans
                // into the stats and discard their probe novelty so the
                // next check's arms are not credited for them.
                for (uint64_t fingerprint : connection->takeNewPlans())
                    stats.planFingerprints.insert(fingerprint);
                if (capture.has_value())
                    (void)capture->takeNewProbes();
            }
        }
        auto shape = generator.generateQueryShape();
        if (!shape.has_value())
            continue;
        ++stats.checksAttempted;
        // Baseline for truncation detection: any resource error during
        // this check voids its novelty reward (a budget-cut result can
        // fabricate "new" plans).
        uint64_t resources_before =
            guide_ != nullptr ? connection->resourceErrors() : 0;
        SQLPP_SPAN("campaign.check.wall_us");
        SQLPP_COUNT("campaign.checks");
        bool all_ran = true;
        for (auto &oracle : oracles) {
            OracleResult result = oracle->check(*connection, *shape);
            if (result.outcome == OracleOutcome::Inapplicable) {
                // Says nothing about the dialect: the shape is outside
                // the oracle's domain. Leave validity feedback alone.
                ++stats.checksInapplicable;
                SQLPP_COUNT("campaign.checks.inapplicable");
                continue;
            }
            if (result.outcome == OracleOutcome::Skipped) {
                all_ran = false;
                continue;
            }
            if (result.outcome != OracleOutcome::Bug)
                continue;
            ++stats.bugsDetected;
            ++stats.bugsByOracle[oracle->name()];
            progress::noteBug();
            SQLPP_COUNT("campaign.bugs.detected");
            SQLPP_TRACE_EVENT(BugFound, oracle->name(),
                              stats.bugsDetected, 0);
            // Attribute the oracle as a feature: cases flagged by
            // different oracles describe different failure modes and
            // must not subsume one another.
            FeatureSet bug_features = shape->features;
            bug_features.insert(registry_.intern(
                features::oracle(oracle->name()), FeatureKind::Property));
            if (!prioritizer.considerNew(bug_features))
                continue;
            SQLPP_COUNT("campaign.bugs.prioritized");
            BugCase bug;
            bug.dialect = profile.name;
            bug.oracle = oracle->name();
            bug.execMode = execModeName(config_.execMode);
            bug.setup = setup_log;
            bug.baseText = printSelect(*shape->base);
            bug.predicateText = printExpr(*shape->predicate);
            for (FeatureId id : bug_features)
                bug.featureNames.push_back(registry_.name(id));
            bug.details = result.details;
            bug.queries = std::move(result.queries);
            if (config_.reduce) {
                reduceBugCase(bug, [&](const BugCase &candidate) {
                    return reproduces(profile, candidate);
                });
                // The reduced case issues different SQL; refresh the
                // recorded statement list from a final replay so the
                // repro always carries exactly what it runs.
                OracleResult replay;
                if (reproduces(profile, bug, &replay))
                    bug.queries = std::move(replay.queries);
            }
            stats.prioritizedBugs.push_back(std::move(bug));
        }
        if (all_ran)
            ++stats.checksValid;
        progress::noteCheck(all_ran,
                            TraceRecorder::instance().currentTick());
        tracker_->record(shape->features, all_ran, /*is_query=*/true);
        ++window_attempted;
        if (all_ran)
            ++window_valid;
        // Drain only the plans this check added; re-inserting the full
        // seenPlans() set here made a campaign O(checks x plans). Done
        // before the curve sample so CurveSample::cumPlans includes
        // this check's discoveries.
        uint64_t novel_plans = 0;
        for (uint64_t fingerprint : connection->takeNewPlans()) {
            if (stats.planFingerprints.insert(fingerprint).second)
                ++novel_plans;
        }
        if (guide_ != nullptr) {
            uint64_t novel_probes =
                capture.has_value() ? capture->takeNewProbes() : 0;
            bool truncated =
                connection->resourceErrors() > resources_before;
            // Truncated checks earn nothing: a budget-cut execution can
            // surface a "new" plan or probe that a full run never would.
            uint64_t novelty =
                truncated ? 0 : novel_plans + novel_probes;
            if (truncated)
                SQLPP_COUNT("generator.guided.truncated");
            if (novelty > 0) {
                SQLPP_COUNT_N("generator.guided.novelty",
                              static_cast<int64_t>(novelty));
            }
            guide_->reward(shape->arms, novelty);
        }
        // Publish slower-moving totals to the progress board every few
        // dozen checks; suppressedFeatures() and leader() walk the
        // feature table, too heavy for every iteration.
        if (check % 32 == 0) {
            progress::noteTotals(
                stats.planFingerprints.size(),
                stats.resourceErrors + connection->resourceErrors(),
                tracker_->suppressedFeatures().size());
            if (guide_ != nullptr)
                progress::noteBanditLeader(guide_->leader());
        }
        if (config_.curveInterval > 0 &&
            stats.checksAttempted % config_.curveInterval == 0) {
            CurveSample sample;
            sample.tick = stats.checksAttempted;
            sample.cumAttempted = stats.checksAttempted;
            sample.cumValid = stats.checksValid;
            sample.windowAttempted = window_attempted;
            sample.windowValid = window_valid;
            sample.suppressed = tracker_->suppressedFeatures().size();
            sample.cumPlans = stats.planFingerprints.size();
            SQLPP_TRACE_EVENT(CurveSample, "", sample.windowAttempted,
                              sample.windowValid);
            stats.curve.push_back(sample);
            window_attempted = 0;
            window_valid = 0;
        }
    }
    collect_counters(*connection);
    progress::noteTotals(stats.planFingerprints.size(),
                         stats.resourceErrors,
                         tracker_->suppressedFeatures().size());
    if (guide_ != nullptr)
        progress::noteBanditLeader(guide_->leader());
    return stats;
}

bool
CampaignRunner::reproduces(const DialectProfile &profile,
                           const BugCase &bug, OracleResult *replayed)
{
    // Replay under the execution mode the bug was found with: a bug in
    // a batch-only code path would vanish under a row-mode replay.
    ConnectionOptions options;
    if (!bug.execMode.empty())
        (void)parseExecMode(bug.execMode, options.execMode);
    Connection connection(profile, options);
    for (const std::string &statement : bug.setup)
        (void)connection.executeAdapted(statement);
    auto oracle = makeOracle(bug.oracle);
    if (oracle == nullptr)
        return false;
    auto base = parseStatement(bug.baseText);
    auto predicate = parseExpression(bug.predicateText);
    if (!base.isOk() || !predicate.isOk())
        return false;
    if (base.value()->kind() != StmtKind::Select)
        return false;
    OracleResult result = oracle->check(
        connection, static_cast<const SelectStmt &>(*base.value()),
        *predicate.value());
    bool is_bug = result.outcome == OracleOutcome::Bug;
    if (replayed != nullptr)
        *replayed = std::move(result);
    return is_bug;
}

std::optional<FaultId>
CampaignRunner::attributeFault(const DialectProfile &profile,
                               const BugCase &bug)
{
    if (!reproduces(profile, bug))
        return std::nullopt;
    for (FaultId fault : profile.faults.ids()) {
        DialectProfile ablated = profile;
        ablated.faults.disable(fault);
        if (!reproduces(ablated, bug))
            return fault;
    }
    return std::nullopt;
}

size_t
CampaignRunner::countUniqueBugs(const DialectProfile &profile,
                                const std::vector<BugCase> &bugs)
{
    std::set<FaultId> attributed;
    size_t unattributed = 0;
    for (const BugCase &bug : bugs) {
        auto fault = attributeFault(profile, bug);
        if (fault.has_value())
            attributed.insert(*fault);
        else
            ++unattributed;
    }
    // Unattributed cases are conservatively counted as one extra
    // underlying bug (they did flag a real inconsistency).
    return attributed.size() + (unattributed > 0 ? 1 : 0);
}

} // namespace sqlpp
