#include "core/feature.h"

#include <cassert>

#include "engine/functions.h"
#include "util/strutil.h"

namespace sqlpp {

FeatureRegistry::FeatureRegistry()
{
    features::registerAll(*this);
}

FeatureId
FeatureRegistry::intern(const std::string &name, FeatureKind kind)
{
    auto it = by_name_.find(name);
    if (it != by_name_.end())
        return it->second;
    FeatureId id = static_cast<FeatureId>(names_.size());
    names_.push_back(name);
    kinds_.push_back(kind);
    by_name_.emplace(name, id);
    return id;
}

FeatureId
FeatureRegistry::find(const std::string &name) const
{
    auto it = by_name_.find(name);
    return it == by_name_.end() ? static_cast<FeatureId>(-1) : it->second;
}

const std::string &
FeatureRegistry::name(FeatureId id) const
{
    assert(id < names_.size());
    return names_[id];
}

FeatureKind
FeatureRegistry::kind(FeatureId id) const
{
    assert(id < kinds_.size());
    return kinds_[id];
}

std::vector<FeatureId>
FeatureRegistry::ofKind(FeatureKind kind) const
{
    std::vector<FeatureId> out;
    for (FeatureId id = 0; id < kinds_.size(); ++id) {
        if (kinds_[id] == kind)
            out.push_back(id);
    }
    return out;
}

std::string
FeatureRegistry::describe(const FeatureSet &set) const
{
    std::vector<std::string> parts;
    parts.reserve(set.size());
    for (FeatureId id : set)
        parts.push_back(name(id));
    return "{" + join(parts, ", ") + "}";
}

namespace features {

std::string
stmt(StmtKind kind)
{
    switch (kind) {
      case StmtKind::CreateTable: return "STMT_CREATE_TABLE";
      case StmtKind::CreateIndex: return "STMT_CREATE_INDEX";
      case StmtKind::CreateView: return "STMT_CREATE_VIEW";
      case StmtKind::Insert: return "STMT_INSERT";
      case StmtKind::Analyze: return "STMT_ANALYZE";
      case StmtKind::Select: return "STMT_SELECT";
      case StmtKind::DropTable: return "STMT_DROP_TABLE";
      case StmtKind::DropView: return "STMT_DROP_VIEW";
      case StmtKind::DropIndex: return "STMT_DROP_INDEX";
      case StmtKind::Begin: return "STMT_BEGIN";
      case StmtKind::Commit: return "STMT_COMMIT";
      case StmtKind::Rollback: return "STMT_ROLLBACK";
      case StmtKind::Savepoint: return "STMT_SAVEPOINT";
      case StmtKind::RollbackTo: return "STMT_ROLLBACK_TO";
      case StmtKind::Release: return "STMT_RELEASE";
    }
    return "STMT_UNKNOWN";
}

std::string
join(JoinType type)
{
    switch (type) {
      case JoinType::Inner: return "JOIN_INNER";
      case JoinType::Left: return "JOIN_LEFT";
      case JoinType::Right: return "JOIN_RIGHT";
      case JoinType::Full: return "JOIN_FULL";
      case JoinType::Cross: return "JOIN_CROSS";
      case JoinType::Natural: return "JOIN_NATURAL";
    }
    return "JOIN_UNKNOWN";
}

std::string
binaryOp(BinaryOp op)
{
    return std::string("OP_") + binaryOpSymbol(op);
}

std::string
unaryOp(UnaryOp op)
{
    switch (op) {
      case UnaryOp::Neg: return "OP_UNARY_MINUS";
      case UnaryOp::Plus: return "OP_UNARY_PLUS";
      case UnaryOp::BitNot: return "OP_~";
      case UnaryOp::Not: return "OP_NOT";
      case UnaryOp::IsNull: return "OP_IS_NULL";
      case UnaryOp::IsNotNull: return "OP_IS_NOT_NULL";
      case UnaryOp::IsTrue: return "OP_IS_TRUE";
      case UnaryOp::IsFalse: return "OP_IS_FALSE";
      case UnaryOp::IsNotTrue: return "OP_IS_NOT_TRUE";
      case UnaryOp::IsNotFalse: return "OP_IS_NOT_FALSE";
    }
    return "OP_UNKNOWN";
}

std::string
function(const std::string &upper_name)
{
    return "FN_" + upper_name;
}

std::string
functionArg(const std::string &upper_name, size_t arg_index, DataType type)
{
    // Paper Fig. 5 naming: SIN1INT = first argument of SIN is integer.
    const char *type_tag = "?";
    switch (type) {
      case DataType::Int: type_tag = "INT"; break;
      case DataType::Text: type_tag = "STRING"; break;
      case DataType::Bool: type_tag = "BOOL"; break;
    }
    return upper_name + std::to_string(arg_index + 1) + type_tag;
}

std::string
oracle(const std::string &oracle_name)
{
    return "ORACLE_" + oracle_name;
}

std::string
dataType(DataType type)
{
    switch (type) {
      case DataType::Int: return "TYPE_INTEGER";
      case DataType::Text: return "TYPE_STRING";
      case DataType::Bool: return "TYPE_BOOLEAN";
    }
    return "TYPE_UNKNOWN";
}

void
registerAll(FeatureRegistry &registry)
{
    // Statements (6 generated kinds + drops used by the platform).
    for (StmtKind kind :
         {StmtKind::CreateTable, StmtKind::CreateIndex,
          StmtKind::CreateView, StmtKind::Insert, StmtKind::Analyze,
          StmtKind::Select}) {
        registry.intern(stmt(kind), FeatureKind::Statement);
    }
    // Clauses & keywords.
    for (JoinType type :
         {JoinType::Inner, JoinType::Left, JoinType::Right,
          JoinType::Full, JoinType::Cross, JoinType::Natural}) {
        registry.intern(join(type), FeatureKind::Clause);
    }
    for (const char *name :
         {kDistinct, kGroupBy, kHaving, kOrderBy, kLimit, kOffset,
          kSubqueryExpr, kSubqueryFrom, kPartialIndex, kUniqueIndex,
          kIfNotExists, kOrIgnore, kMultiRowInsert, kPrimaryKey,
          kNotNull, kUniqueColumn, kViewColumnList}) {
        registry.intern(name, FeatureKind::Clause);
    }
    // Operators.
    for (BinaryOp op :
         {BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul, BinaryOp::Div,
          BinaryOp::Mod, BinaryOp::Eq, BinaryOp::NotEq,
          BinaryOp::NotEqBang, BinaryOp::Less, BinaryOp::LessEq,
          BinaryOp::Greater, BinaryOp::GreaterEq, BinaryOp::NullSafeEq,
          BinaryOp::And, BinaryOp::Or, BinaryOp::BitAnd, BinaryOp::BitOr,
          BinaryOp::BitXor, BinaryOp::ShiftLeft, BinaryOp::ShiftRight,
          BinaryOp::Concat, BinaryOp::Like, BinaryOp::NotLike,
          BinaryOp::Glob, BinaryOp::IsDistinctFrom,
          BinaryOp::IsNotDistinctFrom}) {
        registry.intern(binaryOp(op), FeatureKind::Operator);
    }
    for (UnaryOp op :
         {UnaryOp::Neg, UnaryOp::Plus, UnaryOp::BitNot, UnaryOp::Not,
          UnaryOp::IsNull, UnaryOp::IsNotNull, UnaryOp::IsTrue,
          UnaryOp::IsFalse, UnaryOp::IsNotTrue, UnaryOp::IsNotFalse}) {
        registry.intern(unaryOp(op), FeatureKind::Operator);
    }
    // Expression constructs counted as operators in Table 1.
    for (const char *name :
         {"OP_CASE_SIMPLE", "OP_CASE_SEARCHED", "OP_BETWEEN",
          "OP_NOT_BETWEEN", "OP_IN_LIST", "OP_NOT_IN_LIST",
          "OP_IN_SUBQUERY", "OP_NOT_IN_SUBQUERY", "OP_EXISTS",
          "OP_NOT_EXISTS", "OP_CAST"}) {
        registry.intern(name, FeatureKind::Operator);
    }
    // Functions.
    for (const std::string &fn : FunctionRegistry::instance().names())
        registry.intern(function(fn), FeatureKind::Function);
    // Data types.
    for (DataType type : {DataType::Int, DataType::Text, DataType::Bool})
        registry.intern(dataType(type), FeatureKind::DataType);
    // Abstract properties.
    registry.intern(kUntypedExpr, FeatureKind::Property);
}

} // namespace features

} // namespace sqlpp
