/**
 * @file
 * Equivalent-expression rewriting for the EET oracle.
 *
 * EET (equivalent expression transformation) rewrites a predicate p
 * into a semantically equivalent but syntactically richer p' and
 * asserts the DBMS treats both identically. The rewrite itself is the
 * test input: wrapper syntax steers the engine onto different planner
 * and evaluator paths (a `NOT (NOT (p))` wrapper de-optimizes an index
 * probe; a `p AND TRUE` wrapper feeds the constant folder), so faults
 * keyed to those paths surface as a result mismatch between Q(p) and
 * Q(p') — even when every other oracle is structurally blind to them.
 *
 * Soundness discipline (SQL three-valued logic):
 *  - `p AND TRUE`, `p OR FALSE`, `NOT (NOT (p))`, and the data-aware
 *    tautology conjunct preserve SQL truthiness for *every* p
 *    (TRUE/FALSE/NULL map to themselves), so they are always safe in
 *    WHERE position.
 *  - `(p) IS TRUE` / `(p) IS NOT FALSE` collapse NULL to FALSE/TRUE,
 *    so they are offered only when p is provably null-free (and
 *    boolean-rooted), making them full value-equivalences.
 *  - In a *projection* (value) position, even `p AND TRUE` changes the
 *    result for non-boolean p (`5 AND TRUE` is TRUE, not 5); the
 *    oracle's projection lane therefore requires exprBooleanRooted(p),
 *    under which every offered rewrite is value-preserving.
 *
 * The data-aware lane needs actual column statistics: a scan of the
 * base's single source yields per-column min/max/null facts, from
 * which `(c BETWEEN min AND max) OR (c IS NULL)` is a row-wise
 * tautology over that table — appending it with AND is an identity.
 * Statistics come from the same client-side scan PQS uses for pivot
 * selection, keeping the oracle DBMS-agnostic (no catalog API).
 *
 * Every choice is a pure function of (predicate text, base text) via
 * an fnv1a salt — no RNG — so checks replay identically across
 * workers, SIGKILL+--resume, and dossier repro playback.
 */
#ifndef SQLPP_CORE_REWRITE_H
#define SQLPP_CORE_REWRITE_H

#include <optional>
#include <string>
#include <vector>

#include "dialect/profile.h"
#include "sqlir/ast.h"
#include "sqlir/value.h"

namespace sqlpp {

/** Facts about one column of the scanned base source. */
struct EetColumnStats
{
    /** Unqualified column name. */
    std::string name;
    /** At least one row holds SQL NULL in this column. */
    bool hasNull = false;
    /** Every non-NULL value is an integer (dynamic typing observed). */
    bool intOnly = true;
    size_t nonNullCount = 0;
    /** Valid when intOnly and nonNullCount > 0. */
    int64_t minInt = 0;
    int64_t maxInt = 0;
};

/** Statistics of the base query's single source, from a full scan. */
struct EetTableStats
{
    /** Binding name of the FROM item (alias if present, else name). */
    std::string binding;
    std::vector<EetColumnStats> columns;
    size_t rowCount = 0;

    /** Stats for an unqualified column name; nullptr when unknown. */
    const EetColumnStats *find(const std::string &column) const;
};

/**
 * Whether the base is a single table/view source EET can scan for
 * statistics: no joins, no derived table. Bases outside this shape
 * still get the identity-wrapper rewrites, just not the data-aware one.
 */
bool eetStatsApplicable(const SelectStmt &base);

/**
 * The statistics scan: `SELECT *` over the single source with
 * DISTINCT/WHERE/GROUP BY/ORDER BY/LIMIT stripped.
 */
std::string eetStatsScanText(const SelectStmt &base);

/** Fold an executed stats scan into per-column statistics. */
EetTableStats computeTableStats(const SelectStmt &base,
                             const ResultSet &scan);

/**
 * Conservative proof that the expression can never evaluate to SQL
 * NULL on any row of the scanned source: non-NULL literals, columns
 * the scan saw no NULL in, and a whitelist of NULL-strict operators
 * over such operands (plus the IS-family, which never returns NULL).
 * Division and modulo are excluded (x / 0 can yield NULL under
 * divZeroIsNull), as are functions, CASE, and subqueries. A null
 * @p stats proves nothing about columns.
 */
bool exprProvablyNullFree(const Expr &expr, const EetTableStats *stats);

/**
 * True when the root node always yields BOOLEAN or NULL (logical and
 * comparison operators, the IS family, BETWEEN, IN, EXISTS, boolean
 * literals). Under this, truth-preserving rewrites are also
 * value-preserving, which is what the oracle's projection lane needs.
 */
bool exprBooleanRooted(const Expr &expr);

/** One legal rewrite of a predicate. */
struct RewriteCandidate
{
    /** Stable kind tag: and_true, or_false, not_not, is_true,
     *  is_not_false, taut_range. */
    const char *kind = "";
    ExprPtr expr;
};

/**
 * Every rewrite legal for this predicate under the dialect's learned
 * operator set (and, when @p stats is non-null, the data-aware
 * tautology conjunct for each eligible integer column). Empty when the
 * dialect supports none of the wrapper operators.
 */
std::vector<RewriteCandidate>
enumerateRewrites(const Expr &predicate, const DialectProfile &profile,
                  const EetTableStats *stats);

/**
 * Deterministic salt-driven choice among enumerateRewrites; nullopt
 * when no rewrite applies. Same (predicate, salt, profile, stats) ->
 * same rewrite, bit for bit.
 */
std::optional<RewriteCandidate>
chooseRewrite(const Expr &predicate, uint64_t salt,
              const DialectProfile &profile, const EetTableStats *stats);

} // namespace sqlpp

#endif // SQLPP_CORE_REWRITE_H
