/**
 * @file
 * Crash-safe campaign checkpoints.
 *
 * Long campaigns (the paper runs 24-hour fleets) must survive a killed
 * process. The scheduler serializes each finished shard into a flat
 * KvStore *payload* — campaign stats, prioritized bugs, the shard's
 * feature registry slice, and its FeedbackTracker posterior — and
 * folds all payloads into one CampaignCheckpoint file, rewritten
 * atomically (KvStore::save is write-temp-then-rename) after every
 * shard completes. A SIGKILL therefore loses at most the in-flight
 * shards; `--resume` reloads the file, skips finished shards, and the
 * deterministic shard-order merge produces bit-identical CampaignStats
 * to an uninterrupted run.
 *
 * To make that guarantee by construction rather than by parallel code
 * paths, the scheduler routes *every* shard — live or resumed —
 * through checkpointShard() → restoreShard() before merging, so the
 * merge consumes identical inputs whether a shard ran just now or in a
 * previous process.
 *
 * Current on-disk format: sqlancerpp-checkpoint-v3 (adds the guided
 * generation arm counters and per-sample plan counts). v1 and v2 files
 * still load — fields they predate restore to zero, so a v2 resume of
 * a guided campaign simply starts the bandit fresh.
 */
#ifndef SQLPP_CORE_CHECKPOINT_H
#define SQLPP_CORE_CHECKPOINT_H

#include <cstdint>
#include <map>
#include <string>

#include "core/campaign.h"
#include "core/feature.h"
#include "core/feedback.h"
#include "util/persist.h"
#include "util/status.h"

namespace sqlpp {

/** A shard reconstructed from its checkpoint payload. */
struct RestoredShard
{
    CampaignStats stats;
    /** Registry the restored feedback ids live in. */
    FeatureRegistry registry;
    FeedbackTracker feedback;
    /** Observability carried through the payload (never merged). */
    size_t workerIndex = 0;
    double seconds = 0.0;
};

/**
 * Serialize one finished shard into a flat payload. Lossless for
 * everything the deterministic merge consumes: stats counters, plan
 * fingerprints, prioritized bugs (all fields), and per-feature
 * feedback counters keyed by feature *name* with their kinds, so a
 * fresh registry can re-intern them on restore.
 */
KvStore checkpointShard(const CampaignStats &stats,
                        const FeedbackTracker &feedback,
                        const FeatureRegistry &registry,
                        size_t worker_index, double seconds);

/**
 * Rebuild a shard from its payload. `feedback_config` parameterizes
 * the reconstructed tracker (the scheduler passes its own merged-view
 * config). Fails on structurally broken payloads; unknown keys are
 * ignored for forward compatibility.
 */
Status restoreShard(const KvStore &payload,
                    const FeedbackConfig &feedback_config,
                    RestoredShard &out);

/**
 * The on-disk campaign checkpoint: shard payloads plus enough metadata
 * to refuse resuming under a different configuration.
 */
class CampaignCheckpoint
{
  public:
    /** Fingerprint of the resolved shard plan (see scheduler). */
    uint64_t configFingerprint = 0;
    /** Shards in the plan (not all need payloads yet). */
    size_t totalShards = 0;
    /** Finished shards by shard index. */
    std::map<size_t, KvStore> shards;

    /** Atomically write the checkpoint (temp file + rename). */
    Status saveTo(const std::string &path) const;

    /** Load a checkpoint; fails on missing file or broken metadata. */
    Status loadFrom(const std::string &path);
};

} // namespace sqlpp

#endif // SQLPP_CORE_CHECKPOINT_H
