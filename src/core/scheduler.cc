#include "core/scheduler.h"

#include <chrono>

#include "util/thread_pool.h"

namespace sqlpp {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

CampaignScheduler::CampaignScheduler(SchedulerConfig config)
    : config_(std::move(config))
{
    if (config_.workers == 0)
        config_.workers = 1;
    FeedbackConfig feedback_config = config_.campaign.feedback;
    if (config_.campaign.mode == GeneratorMode::AdaptiveNoFeedback)
        feedback_config.enabled = false;
    tracker_ = std::make_unique<FeedbackTracker>(feedback_config);
}

std::vector<CampaignConfig>
CampaignScheduler::plan() const
{
    std::vector<CampaignConfig> shards;
    if (config_.mode == ScheduleMode::ShardDialects) {
        std::vector<std::string> dialects = config_.dialects;
        if (dialects.empty()) {
            for (const DialectProfile *profile : campaignDialects())
                dialects.push_back(profile->name);
        }
        for (const std::string &dialect : dialects) {
            CampaignConfig shard = config_.campaign;
            shard.dialect = dialect;
            shards.push_back(std::move(shard));
        }
        return shards;
    }
    size_t slices =
        config_.slices > 0 ? config_.slices : config_.workers;
    size_t per_slice = config_.campaign.checks / slices;
    size_t remainder = config_.campaign.checks % slices;
    for (size_t index = 0; index < slices; ++index) {
        CampaignConfig shard = config_.campaign;
        // Per-shard Rng streams: campaign seed ⊕ shard index, the
        // convention util/rng.h documents. Shard 0 keeps the campaign
        // seed itself.
        shard.seed = config_.campaign.seed ^ index;
        shard.checks = per_slice + (index < remainder ? 1 : 0);
        shards.push_back(std::move(shard));
    }
    return shards;
}

ScheduleReport
CampaignScheduler::run()
{
    std::vector<CampaignConfig> shard_configs = plan();

    /** One slot per shard, written by exactly one worker. */
    struct Slot
    {
        std::unique_ptr<CampaignRunner> runner;
        CampaignStats stats;
        size_t workerIndex = 0;
        double seconds = 0.0;
    };
    std::vector<Slot> slots(shard_configs.size());

    IndexQueue queue(shard_configs.size());
    auto dispatch_start = std::chrono::steady_clock::now();
    runOnWorkers(config_.workers, [&](size_t worker_index) {
        for (;;) {
            size_t shard = queue.pop();
            if (shard >= slots.size())
                return;
            auto shard_start = std::chrono::steady_clock::now();
            Slot &slot = slots[shard];
            slot.runner = std::make_unique<CampaignRunner>(
                shard_configs[shard]);
            slot.stats = slot.runner->run();
            slot.seconds = secondsSince(shard_start);
            slot.workerIndex = worker_index;
        }
    });

    ScheduleReport report;
    report.queueDrainSeconds = secondsSince(dispatch_start);
    report.workers.resize(config_.workers);
    for (size_t index = 0; index < config_.workers; ++index)
        report.workers[index].workerIndex = index;

    // In dialect-sharding mode every shard keeps its own prioritizer
    // semantics (a sequential multi-dialect campaign never dedups
    // across dialects); the merged prioritizer still records the union
    // view. In slice mode the shards split one dialect's budget, so
    // cross-shard duplicates collapse exactly as in a sequential run.
    bool cross_shard_dedup = config_.mode == ScheduleMode::SliceChecks;

    for (size_t index = 0; index < slots.size(); ++index) {
        Slot &slot = slots[index];
        ShardOutcome outcome;
        outcome.shardIndex = index;
        outcome.dialect = shard_configs[index].dialect;
        outcome.seed = shard_configs[index].seed;
        outcome.workerIndex = slot.workerIndex;
        outcome.seconds = slot.seconds;

        WorkerReport &worker = report.workers[slot.workerIndex];
        ++worker.shardsRun;
        worker.checksAttempted += slot.stats.checksAttempted;
        worker.busySeconds += slot.seconds;

        CampaignStats contribution = slot.stats;
        std::vector<BugCase> kept;
        for (BugCase &bug : contribution.prioritizedBugs) {
            FeatureSet features;
            for (const std::string &name : bug.featureNames) {
                FeatureId shard_id = slot.runner->registry().find(name);
                FeatureKind kind =
                    shard_id == static_cast<FeatureId>(-1)
                        ? FeatureKind::Property
                        : slot.runner->registry().kind(shard_id);
                features.insert(registry_.intern(name, kind));
            }
            bool fresh = prioritizer_.considerNew(features);
            if (fresh || !cross_shard_dedup)
                kept.push_back(std::move(bug));
        }
        outcome.bugsKeptAfterMerge = kept.size();
        contribution.prioritizedBugs = std::move(kept);

        tracker_->absorb(slot.runner->feedback(),
                         slot.runner->registry(), registry_);
        outcome.stats = std::move(slot.stats);
        report.merged.merge(contribution);
        report.shards.push_back(std::move(outcome));
        slot.runner.reset();
    }
    return report;
}

} // namespace sqlpp
