#include "core/scheduler.h"

#include <chrono>
#include <mutex>

#include "core/checkpoint.h"
#include "core/dossier.h"
#include "core/progress.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/strutil.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace sqlpp {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Canonical text form of everything that shapes one shard's
 * deterministic result. Anything missing here would let a checkpoint
 * resume under a configuration that produces different stats.
 */
std::string
describeShard(const CampaignConfig &config)
{
    const GeneratorConfig &g = config.generator;
    const FeedbackConfig &f = config.feedback;
    const GuidanceConfig &u = config.guidance;
    return format(
        "%s|%llu|%d|%d|%s|%zu|%zu|%zu|%d|%d|%llu|%llu|%llu|%g|%d|"
        "%llu|%d|%d|%llu|%zu|%zu|%zu|%zu|%zu|%zu|%d|%g|"
        "%d|%g|%g|%llu|%llu|%d|%g|%llu",
        config.dialect.c_str(),
        static_cast<unsigned long long>(config.seed),
        static_cast<int>(config.mode),
        static_cast<int>(config.execMode),
        join(config.oracles, ",").c_str(), config.setupStatements,
        config.checks, config.rebuildEvery,
        config.reduce ? 1 : 0, config.disableFaults ? 1 : 0,
        static_cast<unsigned long long>(config.budget.maxSteps),
        static_cast<unsigned long long>(config.budget.maxRows),
        static_cast<unsigned long long>(
            config.budget.maxIntermediateRows),
        config.deadlineSeconds,
        static_cast<int>(config.curveInterval),
        static_cast<unsigned long long>(g.seed), g.maxDepth,
        g.progressiveDepth ? 1 : 0,
        static_cast<unsigned long long>(g.depthStep), g.maxTables,
        g.maxViews, g.maxColumnsPerTable, g.maxRowsPerInsert,
        g.maxRowsPerTable, g.maxJoins, g.enableSubqueries ? 1 : 0,
        g.looseTypeProbability, f.enabled ? 1 : 0, f.threshold,
        f.credibleMass,
        static_cast<unsigned long long>(f.updateInterval),
        static_cast<unsigned long long>(f.ddlFailureLimit),
        static_cast<int>(u.mode), u.exploration,
        static_cast<unsigned long long>(u.salt));
}

} // namespace

CampaignScheduler::CampaignScheduler(SchedulerConfig config)
    : config_(std::move(config))
{
    if (config_.workers == 0)
        config_.workers = 1;
    feedback_config_ = config_.campaign.feedback;
    if (config_.campaign.mode == GeneratorMode::AdaptiveNoFeedback)
        feedback_config_.enabled = false;
    tracker_ = std::make_unique<FeedbackTracker>(feedback_config_);
}

std::vector<CampaignConfig>
CampaignScheduler::plan() const
{
    std::vector<CampaignConfig> shards;
    if (config_.mode == ScheduleMode::ShardDialects) {
        std::vector<std::string> dialects = config_.dialects;
        if (dialects.empty()) {
            for (const DialectProfile *profile : campaignDialects())
                dialects.push_back(profile->name);
        }
        for (const std::string &dialect : dialects) {
            CampaignConfig shard = config_.campaign;
            shard.dialect = dialect;
            if (config_.shardDeadlineSeconds > 0.0)
                shard.deadlineSeconds = config_.shardDeadlineSeconds;
            shards.push_back(std::move(shard));
        }
        return shards;
    }
    size_t slices =
        config_.slices > 0 ? config_.slices : config_.workers;
    size_t per_slice = config_.campaign.checks / slices;
    size_t remainder = config_.campaign.checks % slices;
    for (size_t index = 0; index < slices; ++index) {
        CampaignConfig shard = config_.campaign;
        // Per-shard Rng streams: campaign seed ⊕ shard index, the
        // convention util/rng.h documents. Shard 0 keeps the campaign
        // seed itself.
        shard.seed = config_.campaign.seed ^ index;
        shard.checks = per_slice + (index < remainder ? 1 : 0);
        if (config_.shardDeadlineSeconds > 0.0)
            shard.deadlineSeconds = config_.shardDeadlineSeconds;
        shards.push_back(std::move(shard));
    }
    return shards;
}

uint64_t
CampaignScheduler::planFingerprint() const
{
    uint64_t hash = fnv1a(format(
        "mode=%d|shards=", static_cast<int>(config_.mode)));
    for (const CampaignConfig &shard : plan())
        hash = fnv1a(describeShard(shard) + "\n", hash);
    return hash;
}

ScheduleReport
CampaignScheduler::run()
{
    std::vector<CampaignConfig> shard_configs = plan();
    uint64_t fingerprint = planFingerprint();

    CampaignCheckpoint checkpoint;
    checkpoint.configFingerprint = fingerprint;
    checkpoint.totalShards = shard_configs.size();

    // Shards already finished by a previous (killed) run. Read-only
    // while workers drain the queue.
    std::vector<char> from_checkpoint(shard_configs.size(), 0);
    if (config_.resume && !config_.checkpointPath.empty()) {
        CampaignCheckpoint loaded;
        Status status = loaded.loadFrom(config_.checkpointPath);
        if (!status.isOk()) {
            logWarn("resume requested but checkpoint is unusable (" +
                    status.toString() + "); starting fresh");
        } else if (loaded.configFingerprint != fingerprint ||
                   loaded.totalShards != shard_configs.size()) {
            logWarn("checkpoint " + config_.checkpointPath +
                    " was written under a different campaign "
                    "configuration; starting fresh");
        } else {
            for (auto &[index, payload] : loaded.shards) {
                if (index >= shard_configs.size())
                    continue;
                from_checkpoint[index] = 1;
                checkpoint.shards[index] = std::move(payload);
            }
        }
    }

    const bool persist = !config_.checkpointPath.empty();
    std::mutex checkpoint_mutex;

    SQLPP_GAUGE_SET("scheduler.workers", config_.workers);
    SQLPP_GAUGE_SET("scheduler.shards.total", shard_configs.size());

    // Describe the campaign to the live progress board before any
    // worker starts. The board is observability-only: /status and the
    // --progress printer read it, nothing deterministic does.
    uint64_t checks_target = 0;
    for (const CampaignConfig &shard : shard_configs)
        checks_target += shard.checks;
    ProgressBoard &board = ProgressBoard::instance();
    board.beginCampaign(config_.workers, shard_configs.size(),
                        checks_target);
    for (size_t index = 0; index < shard_configs.size(); ++index) {
        std::string label =
            config_.mode == ScheduleMode::ShardDialects
                ? shard_configs[index].dialect
                : format("slice%zu", index);
        board.initShard(index, label, shard_configs[index].seed,
                        shard_configs[index].checks,
                        shard_configs[index].deadlineSeconds);
    }

    IndexQueue queue(shard_configs.size());
    auto dispatch_start = std::chrono::steady_clock::now();
    runOnWorkers(config_.workers, [&](size_t worker_index) {
        for (;;) {
            size_t shard = queue.pop();
            if (shard >= shard_configs.size())
                return;
            if (from_checkpoint[shard] != 0)
                continue;
            // Everything the shard records — campaign, connection,
            // engine — lands in the shard's own metric lane, keyed by
            // shard index (never by worker), so per-lane values and
            // their sums are independent of the worker count.
            std::string shard_label =
                config_.mode == ScheduleMode::ShardDialects
                    ? shard_configs[shard].dialect
                    : format("slice%zu", shard);
            MetricsShardScope metrics_scope(shard, shard_label);
            // Flight-recorder lane, keyed the same way: the shard's
            // trace is independent of which worker ran it.
            TraceShardScope trace_scope(shard, shard_label);
            // Progress cell, keyed the same way again.
            ProgressShardScope progress_scope(shard);
            board.setShardState(shard, ShardState::Running);
            SQLPP_TRACE_EVENT(ShardStarted, shard_label, shard,
                              shard_configs[shard].seed);
            SQLPP_COUNT("scheduler.shards.run");
            SQLPP_OBSERVE_TIME(
                "scheduler.shard.queue_us",
                static_cast<uint64_t>(secondsSince(dispatch_start) *
                                      1e6));
            auto shard_start = std::chrono::steady_clock::now();
            CampaignRunner runner(shard_configs[shard]);
            CampaignStats stats = runner.run();
            double shard_seconds = secondsSince(shard_start);
            SQLPP_OBSERVE_TIME(
                "scheduler.shard.exec_us",
                static_cast<uint64_t>(shard_seconds * 1e6));
            // The watchdog marks its own cell Abandoned; everything
            // else finished cleanly.
            if (stats.shardsAbandoned == 0)
                board.setShardState(shard, ShardState::Done);
            KvStore payload = checkpointShard(
                stats, runner.feedback(), runner.registry(),
                worker_index, shard_seconds);
            std::lock_guard<std::mutex> lock(checkpoint_mutex);
            checkpoint.shards[shard] = std::move(payload);
            if (persist) {
                Status saved =
                    checkpoint.saveTo(config_.checkpointPath);
                if (!saved.isOk())
                    logWarn("failed to write campaign checkpoint: " +
                            saved.toString());
            }
        }
    });

    ScheduleReport report;
    report.queueDrainSeconds = secondsSince(dispatch_start);
    report.workers.resize(config_.workers);
    for (size_t index = 0; index < config_.workers; ++index)
        report.workers[index].workerIndex = index;

    // In dialect-sharding mode every shard keeps its own prioritizer
    // semantics (a sequential multi-dialect campaign never dedups
    // across dialects); the merged prioritizer still records the union
    // view. In slice mode the shards split one dialect's budget, so
    // cross-shard duplicates collapse exactly as in a sequential run.
    bool cross_shard_dedup = config_.mode == ScheduleMode::SliceChecks;

    // Merge in shard-index order. Every shard — run just now or
    // restored from disk — passes through the same payload round-trip,
    // so a resumed run merges inputs identical to an uninterrupted one
    // by construction.
    for (size_t index = 0; index < shard_configs.size(); ++index) {
        auto it = checkpoint.shards.find(index);
        if (it == checkpoint.shards.end()) {
            logWarn(format("shard %zu produced no result; merged "
                           "stats are partial",
                           index));
            continue;
        }
        RestoredShard shard;
        Status restored =
            restoreShard(it->second, feedback_config_, shard);
        if (!restored.isOk()) {
            logWarn(format("shard %zu checkpoint payload is broken "
                           "(%s); merged stats are partial",
                           index, restored.toString().c_str()));
            continue;
        }

        ShardOutcome outcome;
        outcome.shardIndex = index;
        outcome.dialect = shard_configs[index].dialect;
        outcome.seed = shard_configs[index].seed;
        outcome.workerIndex = shard.workerIndex;
        outcome.seconds = shard.seconds;
        outcome.fromCheckpoint = from_checkpoint[index] != 0;

        if (outcome.fromCheckpoint) {
            // The restoring run did not spend this time; the payload's
            // worker index may not even exist in this run's pool.
            board.fillRestoredShard(
                index, shard.stats.checksAttempted,
                shard.stats.checksValid, shard.stats.bugsDetected,
                shard.stats.planFingerprints.size(),
                shard.stats.resourceErrors);
            ++report.shardsFromCheckpoint;
            SQLPP_COUNT("scheduler.shards.resumed");
            SQLPP_TRACE_EVENT(CheckpointRestored,
                              shard_configs[index].dialect, index, 0);
        } else {
            WorkerReport &worker =
                report.workers[shard.workerIndex %
                               report.workers.size()];
            ++worker.shardsRun;
            worker.checksAttempted += shard.stats.checksAttempted;
            worker.busySeconds += shard.seconds;
        }

        CampaignStats contribution = shard.stats;
        std::vector<BugCase> kept;
        for (BugCase &bug : contribution.prioritizedBugs) {
            FeatureSet features;
            for (const std::string &name : bug.featureNames) {
                FeatureId shard_id = shard.registry.find(name);
                FeatureKind kind =
                    shard_id == static_cast<FeatureId>(-1)
                        ? FeatureKind::Property
                        : shard.registry.kind(shard_id);
                features.insert(registry_.intern(name, kind));
            }
            bool fresh = prioritizer_.considerNew(features);
            if (fresh || !cross_shard_dedup)
                kept.push_back(std::move(bug));
        }
        outcome.bugsKeptAfterMerge = kept.size();
        contribution.prioritizedBugs = std::move(kept);

        if (!config_.dossierDir.empty()) {
            // Dossiers are written here — inside the deterministic
            // shard-order merge, over the post-dedup bug set — so the
            // dossier ids are identical for any worker count and are
            // re-emitted for bugs restored from a checkpoint.
            DossierConfig dossier_config;
            dossier_config.directory = config_.dossierDir;
            DossierContext dossier_context;
            dossier_context.shardIndex = index;
            dossier_context.fromCheckpoint = outcome.fromCheckpoint;
            dossier_context.feedback = &shard.feedback;
            dossier_context.registry = &shard.registry;
            for (const BugCase &bug : contribution.prioritizedBugs) {
                Status written = writeBugDossier(dossier_config, bug,
                                                 dossier_context);
                if (written.isOk())
                    ++report.dossiersWritten;
                else
                    logWarn("failed to write dossier for bug " +
                            bugCaseId(bug) + ": " +
                            written.toString());
            }
        }

        tracker_->absorb(shard.feedback, shard.registry, registry_);
        outcome.stats = std::move(shard.stats);
        report.merged.merge(contribution);
        report.shards.push_back(std::move(outcome));
    }
    // Export-time accounting of trace-ring overwrite, then freeze the
    // board (cells stay readable for a final /status scrape).
    SQLPP_GAUGE_SET("campaign.trace.dropped", traceDroppedTotal());
    board.finishCampaign();
    return report;
}

} // namespace sqlpp
