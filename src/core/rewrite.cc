#include "core/rewrite.h"

#include "sqlir/printer.h"

namespace sqlpp {

const EetColumnStats *
EetTableStats::find(const std::string &column) const
{
    for (const EetColumnStats &stats : columns)
        if (stats.name == column)
            return &stats;
    return nullptr;
}

bool
eetStatsApplicable(const SelectStmt &base)
{
    return base.from.size() == 1 && base.joins.empty() &&
           base.from[0].subquery == nullptr;
}

std::string
eetStatsScanText(const SelectStmt &base)
{
    SelectPtr scan = base.cloneSelect();
    scan->distinct = false;
    scan->where = nullptr;
    scan->groupBy.clear();
    scan->having = nullptr;
    scan->orderBy.clear();
    scan->limit = -1;
    scan->offset = -1;
    scan->items.clear();
    SelectItem star;
    star.star = true;
    scan->items.push_back(std::move(star));
    return printSelect(*scan);
}

EetTableStats
computeTableStats(const SelectStmt &base, const ResultSet &scan)
{
    EetTableStats stats;
    if (base.from.empty())
        return stats;
    stats.binding = base.from[0].bindingName();
    stats.rowCount = scan.rowCount();

    // The executor names star-projected columns "binding.column"; stats
    // keep them unqualified under the single binding (as the rewritten
    // tautology conjunct will reference them).
    const std::string prefix = stats.binding + ".";
    for (const std::string &column : scan.columns()) {
        EetColumnStats cs;
        cs.name = column.compare(0, prefix.size(), prefix) == 0
                      ? column.substr(prefix.size())
                      : column;
        stats.columns.push_back(std::move(cs));
    }

    for (const Row &row : scan.rows()) {
        for (size_t i = 0; i < row.size() && i < stats.columns.size();
             ++i) {
            EetColumnStats &cs = stats.columns[i];
            const Value &value = row[i];
            if (value.isNull()) {
                cs.hasNull = true;
                continue;
            }
            if (value.kind() != Value::Kind::Int) {
                cs.intOnly = false;
                ++cs.nonNullCount;
                continue;
            }
            int64_t v = value.asInt();
            if (cs.nonNullCount == 0 || !cs.intOnly) {
                cs.minInt = v;
                cs.maxInt = v;
            } else {
                if (v < cs.minInt)
                    cs.minInt = v;
                if (v > cs.maxInt)
                    cs.maxInt = v;
            }
            ++cs.nonNullCount;
        }
    }
    return stats;
}

bool
exprProvablyNullFree(const Expr &expr, const EetTableStats *stats)
{
    switch (expr.kind()) {
      case ExprKind::Literal:
        return !static_cast<const LiteralExpr &>(expr).value.isNull();
      case ExprKind::ColumnRef: {
        if (stats == nullptr)
            return false;
        const auto &ref = static_cast<const ColumnRefExpr &>(expr);
        if (!ref.table.empty() && ref.table != stats->binding)
            return false;
        const EetColumnStats *cs = stats->find(ref.column);
        return cs != nullptr && !cs->hasNull;
      }
      case ExprKind::Unary: {
        const auto &unary = static_cast<const UnaryExpr &>(expr);
        switch (unary.op) {
          // The IS family never returns NULL, whatever the operand.
          case UnaryOp::IsNull:
          case UnaryOp::IsNotNull:
          case UnaryOp::IsTrue:
          case UnaryOp::IsFalse:
          case UnaryOp::IsNotTrue:
          case UnaryOp::IsNotFalse:
            return true;
          case UnaryOp::Not:
          case UnaryOp::Neg:
          case UnaryOp::Plus:
          case UnaryOp::BitNot:
            return exprProvablyNullFree(*unary.operand, stats);
        }
        return false;
      }
      case ExprKind::Binary: {
        const auto &bin = static_cast<const BinaryExpr &>(expr);
        switch (bin.op) {
          // Never NULL regardless of operands.
          case BinaryOp::NullSafeEq:
          case BinaryOp::IsDistinctFrom:
          case BinaryOp::IsNotDistinctFrom:
            return true;
          // NULL-strict: non-NULL operands give a non-NULL result.
          case BinaryOp::And:
          case BinaryOp::Or:
          case BinaryOp::Eq:
          case BinaryOp::NotEq:
          case BinaryOp::NotEqBang:
          case BinaryOp::Less:
          case BinaryOp::LessEq:
          case BinaryOp::Greater:
          case BinaryOp::GreaterEq:
          case BinaryOp::Like:
          case BinaryOp::NotLike:
          case BinaryOp::Glob:
          case BinaryOp::Add:
          case BinaryOp::Sub:
          case BinaryOp::Mul:
          case BinaryOp::BitAnd:
          case BinaryOp::BitOr:
          case BinaryOp::BitXor:
          case BinaryOp::Concat:
            return exprProvablyNullFree(*bin.lhs, stats) &&
                   exprProvablyNullFree(*bin.rhs, stats);
          // x / 0 and x % 0 can yield NULL under divZeroIsNull; shift
          // counts have engine-specific edge behaviour. Not provable.
          case BinaryOp::Div:
          case BinaryOp::Mod:
          case BinaryOp::ShiftLeft:
          case BinaryOp::ShiftRight:
            return false;
        }
        return false;
      }
      case ExprKind::Between: {
        const auto &between = static_cast<const BetweenExpr &>(expr);
        return exprProvablyNullFree(*between.operand, stats) &&
               exprProvablyNullFree(*between.low, stats) &&
               exprProvablyNullFree(*between.high, stats);
      }
      case ExprKind::InList: {
        // `x IN (a, b)` is NULL when x is non-NULL, unmatched, and the
        // list contains a NULL — so every element must be provable too.
        const auto &in = static_cast<const InListExpr &>(expr);
        if (!exprProvablyNullFree(*in.operand, stats))
            return false;
        for (const ExprPtr &item : in.items)
            if (!exprProvablyNullFree(*item, stats))
                return false;
        return true;
      }
      case ExprKind::Cast:
        // CAST propagates NULL and nothing else (coercion of a non-NULL
        // value is total in this engine).
        return exprProvablyNullFree(
            *static_cast<const CastExpr &>(expr).operand, stats);
      // Functions (NULLIF, aggregates over empty sets, ...), CASE
      // without a provable arm analysis, and subqueries stay unproven.
      case ExprKind::Case:
      case ExprKind::Function:
      case ExprKind::Exists:
      case ExprKind::InSubquery:
      case ExprKind::ScalarSubquery:
        return false;
    }
    return false;
}

bool
exprBooleanRooted(const Expr &expr)
{
    switch (expr.kind()) {
      case ExprKind::Literal:
        return static_cast<const LiteralExpr &>(expr).value.kind() ==
               Value::Kind::Bool;
      case ExprKind::Unary:
        switch (static_cast<const UnaryExpr &>(expr).op) {
          case UnaryOp::Not:
          case UnaryOp::IsNull:
          case UnaryOp::IsNotNull:
          case UnaryOp::IsTrue:
          case UnaryOp::IsFalse:
          case UnaryOp::IsNotTrue:
          case UnaryOp::IsNotFalse:
            return true;
          default:
            return false;
        }
      case ExprKind::Binary:
        switch (static_cast<const BinaryExpr &>(expr).op) {
          case BinaryOp::And:
          case BinaryOp::Or:
          case BinaryOp::Eq:
          case BinaryOp::NotEq:
          case BinaryOp::NotEqBang:
          case BinaryOp::Less:
          case BinaryOp::LessEq:
          case BinaryOp::Greater:
          case BinaryOp::GreaterEq:
          case BinaryOp::NullSafeEq:
          case BinaryOp::Like:
          case BinaryOp::NotLike:
          case BinaryOp::Glob:
          case BinaryOp::IsDistinctFrom:
          case BinaryOp::IsNotDistinctFrom:
            return true;
          default:
            return false;
        }
      case ExprKind::Between:
      case ExprKind::InList:
      case ExprKind::Exists:
      case ExprKind::InSubquery:
        return true;
      default:
        return false;
    }
}

namespace {

/** (c BETWEEN min AND max) OR (c IS NULL) — TRUE on every table row. */
ExprPtr
tautologyConjunct(const std::string &binding, const EetColumnStats &cs)
{
    auto column = [&]() {
        return std::make_unique<ColumnRefExpr>(binding, cs.name);
    };
    ExprPtr range = std::make_unique<BetweenExpr>(
        column(),
        std::make_unique<LiteralExpr>(Value::integer(cs.minInt)),
        std::make_unique<LiteralExpr>(Value::integer(cs.maxInt)),
        /*negated=*/false);
    return std::make_unique<BinaryExpr>(
        BinaryOp::Or, std::move(range),
        std::make_unique<UnaryExpr>(UnaryOp::IsNull, column()));
}

} // namespace

std::vector<RewriteCandidate>
enumerateRewrites(const Expr &predicate, const DialectProfile &profile,
                  const EetTableStats *stats)
{
    std::vector<RewriteCandidate> candidates;
    auto add = [&candidates](const char *kind, ExprPtr expr) {
        RewriteCandidate candidate;
        candidate.kind = kind;
        candidate.expr = std::move(expr);
        candidates.push_back(std::move(candidate));
    };

    const bool bool_literals = profile.supportsType(DataType::Bool);

    if (profile.supportsBinaryOp(BinaryOp::And) && bool_literals) {
        add("and_true",
            std::make_unique<BinaryExpr>(
                BinaryOp::And, predicate.clone(),
                std::make_unique<LiteralExpr>(Value::boolean(true))));
    }
    if (profile.supportsBinaryOp(BinaryOp::Or) && bool_literals) {
        add("or_false",
            std::make_unique<BinaryExpr>(
                BinaryOp::Or, predicate.clone(),
                std::make_unique<LiteralExpr>(Value::boolean(false))));
    }
    if (profile.supportsUnaryOp(UnaryOp::Not)) {
        add("not_not",
            std::make_unique<UnaryExpr>(
                UnaryOp::Not, std::make_unique<UnaryExpr>(
                                  UnaryOp::Not, predicate.clone())));
    }

    // The NULL-collapsing wrappers are only equivalences when p can be
    // proven never-NULL (and the proof doubles as a boolean-ness proof
    // requirement, since `5 IS TRUE` is TRUE, not 5).
    if (exprBooleanRooted(predicate) &&
        exprProvablyNullFree(predicate, stats)) {
        if (profile.supportsUnaryOp(UnaryOp::IsTrue))
            add("is_true", std::make_unique<UnaryExpr>(
                               UnaryOp::IsTrue, predicate.clone()));
        if (profile.supportsUnaryOp(UnaryOp::IsNotFalse))
            add("is_not_false",
                std::make_unique<UnaryExpr>(UnaryOp::IsNotFalse,
                                            predicate.clone()));
    }

    // Data-aware constant lane: append a per-column tautology built
    // from the scanned min/max/null facts.
    if (stats != nullptr && profile.supportsBinaryOp(BinaryOp::And) &&
        profile.supportsBinaryOp(BinaryOp::Or) &&
        profile.supportsUnaryOp(UnaryOp::IsNull)) {
        for (const EetColumnStats &cs : stats->columns) {
            if (!cs.intOnly || cs.nonNullCount == 0)
                continue;
            add("taut_range",
                std::make_unique<BinaryExpr>(
                    BinaryOp::And, predicate.clone(),
                    tautologyConjunct(stats->binding, cs)));
        }
    }
    return candidates;
}

std::optional<RewriteCandidate>
chooseRewrite(const Expr &predicate, uint64_t salt,
              const DialectProfile &profile, const EetTableStats *stats)
{
    std::vector<RewriteCandidate> candidates =
        enumerateRewrites(predicate, profile, stats);
    if (candidates.empty())
        return std::nullopt;
    return std::move(candidates[salt % candidates.size()]);
}

} // namespace sqlpp
