#include "core/guidance.h"

#include <cmath>

#include "util/metrics.h"
#include "util/strutil.h"

namespace sqlpp {

namespace {

/** splitmix64 finalizer: cheap, high-quality 64-bit mixing. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Top 53 bits of a mixed word as a uniform in [0, 1). */
double
uniform01(uint64_t word)
{
    return static_cast<double>(word >> 11) * 0x1.0p-53;
}

} // namespace

const char *
guidanceModeName(GuidanceMode mode)
{
    switch (mode) {
      case GuidanceMode::Off:
        return "off";
      case GuidanceMode::Ucb:
        return "ucb";
      case GuidanceMode::Thompson:
        return "thompson";
    }
    return "off";
}

bool
parseGuidanceMode(const std::string &name, GuidanceMode &mode)
{
    std::string lowered = toLower(name);
    if (lowered == "off" || lowered == "none") {
        mode = GuidanceMode::Off;
        return true;
    }
    if (lowered == "ucb" || lowered == "ucb1") {
        mode = GuidanceMode::Ucb;
        return true;
    }
    if (lowered == "thompson" || lowered == "ts") {
        mode = GuidanceMode::Thompson;
        return true;
    }
    return false;
}

GuidedSelector::GuidedSelector(GuidanceConfig config,
                               FeedbackTracker &tracker,
                               FeatureRegistry &registry)
    : config_(config), tracker_(tracker), registry_(registry)
{
}

double
GuidedSelector::ucbScore(uint64_t pulls, uint64_t rewarded,
                         uint64_t total, double exploration)
{
    // Posterior mean under a uniform prior: never 0/0, never exactly 0
    // or 1, and monotone in the evidence. For pulls == 0 the prior mean
    // with a unit-pull bonus keeps the score finite (choose() visits
    // unpulled arms explicitly, so this value only orders unpulled arms
    // against each other, where they tie anyway).
    double pulled = pulls == 0 ? 1.0 : static_cast<double>(pulls);
    double mean = (static_cast<double>(rewarded) + 1.0) /
                  (static_cast<double>(pulls) + 2.0);
    // log1p stays finite at UINT64 scale (~44.4); the bonus shrinks as
    // sqrt(log(total) / pulls) per UCB1.
    double bonus =
        exploration *
        std::sqrt(std::log1p(static_cast<double>(total)) / pulled);
    return mean + bonus;
}

double
GuidedSelector::thompsonSample(uint64_t pulls, uint64_t rewarded,
                               uint64_t salt, uint64_t sequence,
                               const std::string &arm)
{
    // Beta(rewarded + 1, misses + 1) posterior. Clamp misses defensively
    // so even a corrupt checkpoint (rewarded > pulls) cannot produce a
    // negative count, a NaN, or an Inf.
    uint64_t misses = pulls > rewarded ? pulls - rewarded : 0;
    double a = static_cast<double>(rewarded) + 1.0;
    double b = static_cast<double>(misses) + 1.0;
    double mean = a / (a + b);
    double variance = (a * b) / ((a + b) * (a + b) * (a + b + 1.0));
    double stddev = std::sqrt(variance);

    // Salt-derived entropy (the PQS/EET fnv1a idiom): the draw is a
    // pure function of the tuple below, so replay and resume regenerate
    // the exact arm sequence.
    uint64_t state = fnv1a(arm, salt);
    state = mix64(state ^ sequence);
    state = mix64(state ^ pulls);
    state = mix64(state ^ rewarded);

    // Irwin–Hall(4): the sum of four uniforms has mean 2 and variance
    // 1/3; recentered and rescaled it approximates a standard normal
    // with strictly bounded tails (|z| <= 2 * sqrt(3)).
    double sum = 0.0;
    for (int draw = 0; draw < 4; ++draw) {
        state = mix64(state);
        sum += uniform01(state);
    }
    double z = (sum - 2.0) * 1.7320508075688772;

    double sample = mean + z * stddev;
    if (sample < 0.0)
        return 0.0;
    if (sample > 1.0)
        return 1.0;
    return sample;
}

double
GuidedSelector::armScore(FeatureId id, const std::string &name) const
{
    const FeatureStats &stat = tracker_.stats(id);
    double novelty =
        config_.mode == GuidanceMode::Thompson
            ? thompsonSample(stat.guidedPulls, stat.guidedRewarded,
                             config_.salt, selections_, name)
            : ucbScore(stat.guidedPulls, stat.guidedRewarded,
                       selections_, config_.exploration);
    // Multiplicative composition with the validity posterior: an arm
    // the dialect mostly rejects is down-weighted in exact proportion,
    // and a suppressed arm never even reaches this point (choose()
    // filters by shouldGenerate first).
    return novelty * tracker_.estimatedProbability(id);
}

size_t
GuidedSelector::choose(const std::vector<std::string> &arms,
                       FeatureId *chosen)
{
    if (arms.empty())
        return 0;
    ++selections_;
    SQLPP_COUNT("generator.guided.selections");

    // Candidate set: intern every arm, drop the suppressed ones.
    std::vector<FeatureId> ids;
    ids.reserve(arms.size());
    std::vector<size_t> eligible;
    eligible.reserve(arms.size());
    for (size_t index = 0; index < arms.size(); ++index) {
        ids.push_back(
            registry_.intern(arms[index], FeatureKind::Property));
        if (tracker_.shouldGenerate(ids[index]))
            eligible.push_back(index);
    }
    if (eligible.empty()) {
        // Every arm is suppressed: do not pull; return the first arm
        // and let the generator's own gate reject it downstream.
        SQLPP_COUNT("generator.guided.all_suppressed");
        return 0;
    }

    // Deterministic initialization: visit unpulled arms in candidate
    // index order before any scoring.
    size_t best = eligible.front();
    bool found = false;
    for (size_t index : eligible) {
        if (tracker_.stats(ids[index]).guidedPulls == 0) {
            best = index;
            found = true;
            break;
        }
    }
    if (!found) {
        // Strict > keeps ties on the lowest candidate index.
        double best_score = armScore(ids[eligible.front()],
                                     arms[eligible.front()]);
        for (size_t at = 1; at < eligible.size(); ++at) {
            size_t index = eligible[at];
            double score = armScore(ids[index], arms[index]);
            if (score > best_score) {
                best_score = score;
                best = index;
            }
        }
    }

    tracker_.noteGuidedPull(ids[best]);
    if (chosen != nullptr)
        *chosen = ids[best];
    return best;
}

void
GuidedSelector::reward(const std::vector<FeatureId> &arms,
                       uint64_t novelty)
{
    if (novelty == 0 || arms.empty())
        return;
    SQLPP_COUNT_N("generator.guided.rewarded",
                  static_cast<int64_t>(arms.size()));
    for (FeatureId id : arms)
        tracker_.noteGuidedReward(id);
}

std::string
GuidedSelector::leader() const
{
    FeatureId best = 0;
    uint64_t best_pulls = 0;
    uint64_t best_rewarded = 0;
    double best_rate = -1.0;
    for (FeatureId id = 0;
         id < static_cast<FeatureId>(registry_.size()); ++id) {
        const FeatureStats &stats = tracker_.stats(id);
        if (stats.guidedPulls == 0)
            continue;
        double rate = static_cast<double>(stats.guidedRewarded) /
                      static_cast<double>(stats.guidedPulls);
        if (rate > best_rate ||
            (rate == best_rate && stats.guidedPulls > best_pulls)) {
            best = id;
            best_pulls = stats.guidedPulls;
            best_rewarded = stats.guidedRewarded;
            best_rate = rate;
        }
    }
    if (best_rate < 0.0)
        return "";
    return format("%s %llu/%llu", registry_.name(best).c_str(),
                  (unsigned long long)best_rewarded,
                  (unsigned long long)best_pulls);
}

} // namespace sqlpp
