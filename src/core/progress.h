/**
 * @file
 * CampaignProgress: live, lock-free aggregation of campaign state.
 *
 * Metrics count events and the trace records them; neither answers the
 * operator's question mid-run: "how far along is each shard, is
 * anything stuck, and when will this finish?" The ProgressBoard holds
 * one fixed cell per shard — plain relaxed atomics written by the
 * shard's executing thread, read by the status server and the
 * --progress printer. The board is observability only: nothing in it
 * ever feeds back into generation, merging, checkpointing, or dossier
 * writing, so polling it cannot perturb a campaign (the status
 * determinism test pins bit-identical merged stats, checkpoint bytes,
 * and dossier ids with and without a polling storm).
 *
 * Write discipline: exactly one thread writes a cell at a time — the
 * scheduler during init/finish (before workers start / after they
 * join) and the owning shard thread while running. Numeric fields are
 * relaxed atomics; the two short strings (shard label, bandit leader)
 * go through a single-writer seqlock so a concurrent reader can only
 * ever retry, never tear.
 *
 * Stall diagnosis: every check advances the cell's logical tick and a
 * wall-clock "last advanced" stamp. A shard that is Running but has
 * not advanced for longer than the stall threshold gets a `stalled`
 * verdict in the snapshot, and renderStatusJson() attaches the
 * shard's most recent flight-recorder events — turning the watchdog's
 * silent abandonment into an explainable report while it is
 * happening.
 *
 * The same CampaignProgress snapshot renders both the /status JSON
 * document (schema "sqlpp.status.v1") and the periodic one-line
 * --progress report, so the two views can never disagree.
 */
#ifndef SQLPP_CORE_PROGRESS_H
#define SQLPP_CORE_PROGRESS_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace sqlpp {

/** Lifecycle of one shard as the board sees it. */
enum class ShardState : uint64_t
{
    Pending = 0,
    Running,
    Done,
    /** Skipped this run: restored from a resumed checkpoint. */
    Restored,
    /** The watchdog deadline abandoned it mid-run. */
    Abandoned,
};

/** Stable lowercase name of a ShardState ("running"). */
const char *shardStateName(ShardState state);

/** One shard's progress, read out of the board's atomics. */
struct ShardProgress
{
    size_t shardIndex = 0;
    std::string label;
    ShardState state = ShardState::Pending;
    uint64_t seed = 0;
    uint64_t checksTarget = 0;
    uint64_t checksAttempted = 0;
    uint64_t checksValid = 0;
    uint64_t bugsDetected = 0;
    uint64_t plans = 0;
    /** Statements cut short by the execution budget (budget spend). */
    uint64_t resourceErrors = 0;
    /** Features suppressed by the validity posterior. */
    uint64_t suppressed = 0;
    uint64_t setupGenerated = 0;
    uint64_t setupSucceeded = 0;
    /** The shard's trace-lane logical tick (statement index). */
    uint64_t tick = 0;
    /** Watchdog deadline in seconds (0 = none). */
    double deadlineSeconds = 0.0;
    /** Leading bandit arm under guided generation ("" when off). */
    std::string banditLeader;
    /** Seconds since the shard last advanced (< 0: never advanced). */
    double lastAdvanceSeconds = -1.0;
    /** Running, but silent past the stall threshold. */
    bool stalled = false;

    double
    validityRate() const
    {
        return checksAttempted == 0
                   ? 0.0
                   : static_cast<double>(checksValid) /
                         static_cast<double>(checksAttempted);
    }
};

/** A whole-campaign snapshot: what /status and --progress render. */
struct CampaignProgress
{
    /** A campaign is registered and has not finished. */
    bool active = false;
    size_t workers = 0;
    size_t shardsTotal = 0;
    size_t shardsDone = 0;
    size_t shardsRunning = 0;
    size_t shardsRestored = 0;
    size_t shardsAbandoned = 0;
    uint64_t checksTarget = 0;
    uint64_t checksAttempted = 0;
    uint64_t checksValid = 0;
    uint64_t bugsDetected = 0;
    /** Sum of per-shard distinct plan counts (not a cross-shard union). */
    uint64_t plans = 0;
    uint64_t resourceErrors = 0;
    double uptimeSeconds = 0.0;
    /** Attempted checks over uptime. */
    double checksPerSecond = 0.0;
    /** Remaining checks over the current rate (< 0: unknown). */
    double etaSeconds = -1.0;
    double stallThresholdSeconds = 0.0;
    std::vector<ShardProgress> shards;

    double
    validityRate() const
    {
        return checksAttempted == 0
                   ? 0.0
                   : static_cast<double>(checksValid) /
                         static_cast<double>(checksAttempted);
    }
};

/** Process-wide board of per-shard progress cells. */
class ProgressBoard
{
  public:
    /** Cells available; shard index maps modulo (mirrors metrics). */
    static constexpr size_t kMaxShards = 256;
    /**
     * Short-string capacities in 8-byte words (label 32 bytes, leader
     * 48 bytes, both NUL-padded). Strings are stored as relaxed atomic
     * words under the cell's seqlock, so concurrent readers are
     * data-race-free and can only ever retry, never tear.
     */
    static constexpr size_t kLabelWords = 4;
    static constexpr size_t kLeaderWords = 6;

    /** One shard's live cells. Single writer, many readers. */
    struct Cell
    {
        std::atomic<uint64_t> state{0};
        std::atomic<uint64_t> seed{0};
        std::atomic<uint64_t> checksTarget{0};
        std::atomic<uint64_t> checksAttempted{0};
        std::atomic<uint64_t> checksValid{0};
        std::atomic<uint64_t> bugsDetected{0};
        std::atomic<uint64_t> plans{0};
        std::atomic<uint64_t> resourceErrors{0};
        std::atomic<uint64_t> suppressed{0};
        std::atomic<uint64_t> setupGenerated{0};
        std::atomic<uint64_t> setupSucceeded{0};
        std::atomic<uint64_t> tick{0};
        /** Watchdog deadline in milliseconds (0 = none). */
        std::atomic<uint64_t> deadlineMs{0};
        /** Monotonic nanoseconds of the last advance (0 = never). */
        std::atomic<uint64_t> lastAdvanceNs{0};
        /** Seqlock for the strings below; odd while being written. */
        std::atomic<uint32_t> version{0};
        std::atomic<uint64_t> label[kLabelWords] = {};
        std::atomic<uint64_t> leader[kLeaderWords] = {};
    };

    static ProgressBoard &instance();

    /** The cell the calling thread is bound to (nullptr when unbound). */
    static Cell *current();

    /** Monotonic clock in nanoseconds (steady, process-relative). */
    static uint64_t nowNs();

    /**
     * Register a campaign: zero all cells, record the worker count and
     * start time, mark the board active. Called by the scheduler before
     * dispatching shards.
     */
    void beginCampaign(size_t workers, size_t shards,
                       uint64_t checks_target);

    /** Describe one shard before the workers start. */
    void initShard(size_t shard_index, const std::string &label,
                   uint64_t seed, uint64_t checks,
                   double deadline_seconds);

    /** Transition a shard's lifecycle state. */
    void setShardState(size_t shard_index, ShardState state);

    /**
     * Fill a restored shard's cells from its checkpointed totals (the
     * shard never runs in this process, but /status should still show
     * what it contributed).
     */
    void fillRestoredShard(size_t shard_index, uint64_t attempted,
                           uint64_t valid, uint64_t bugs,
                           uint64_t plans, uint64_t resource_errors);

    /** Mark the campaign finished (cells stay for a final scrape). */
    void finishCampaign();

    /**
     * Running-but-silent threshold for the `stalled` verdict
     * (default 10 s). Observability only.
     */
    void setStallThresholdSeconds(double seconds);

    /** Assemble a read-only snapshot (atomic reads only, no locks). */
    CampaignProgress snapshot() const;

    /** Cell lane a shard index maps to (exposed for tests). */
    Cell &cell(size_t shard_index)
    {
        return cells_[shard_index % kMaxShards];
    }

  private:
    friend class ProgressShardScope;

    Cell cells_[kMaxShards];
    std::atomic<bool> active_{false};
    std::atomic<uint64_t> workers_{0};
    std::atomic<uint64_t> shards_{0};
    std::atomic<uint64_t> checksTarget_{0};
    std::atomic<uint64_t> startNs_{0};
    std::atomic<uint64_t> stallThresholdMs_{10000};
};

/**
 * Binds the current thread to a shard's progress cell for the scope's
 * lifetime — the scheduler wraps each shard execution in one, next to
 * MetricsShardScope and TraceShardScope. Scopes nest; the previous
 * binding is restored on destruction.
 */
class ProgressShardScope
{
  public:
    explicit ProgressShardScope(size_t shard_index);
    ~ProgressShardScope();

    ProgressShardScope(const ProgressShardScope &) = delete;
    ProgressShardScope &operator=(const ProgressShardScope &) = delete;

  private:
    ProgressBoard::Cell *previous_;
};

// ---------------------------------------------------------------------
// Hot-path update helpers. Each is a handful of relaxed atomic stores
// into the bound cell and a no-op when the thread is unbound (tests,
// benches, standalone CampaignRunner use).
// ---------------------------------------------------------------------

namespace progress {

/** One oracle check finished; advances the stall clock. */
inline void
noteCheck(bool valid, uint64_t tick)
{
    ProgressBoard::Cell *cell = ProgressBoard::current();
    if (cell == nullptr)
        return;
    cell->checksAttempted.fetch_add(1, std::memory_order_relaxed);
    if (valid)
        cell->checksValid.fetch_add(1, std::memory_order_relaxed);
    cell->tick.store(tick, std::memory_order_relaxed);
    cell->lastAdvanceNs.store(ProgressBoard::nowNs(),
                              std::memory_order_relaxed);
}

/** One setup statement executed; advances the stall clock. */
inline void
noteSetup(bool ok)
{
    ProgressBoard::Cell *cell = ProgressBoard::current();
    if (cell == nullptr)
        return;
    cell->setupGenerated.fetch_add(1, std::memory_order_relaxed);
    if (ok)
        cell->setupSucceeded.fetch_add(1, std::memory_order_relaxed);
    cell->lastAdvanceNs.store(ProgressBoard::nowNs(),
                              std::memory_order_relaxed);
}

inline void
noteBug()
{
    ProgressBoard::Cell *cell = ProgressBoard::current();
    if (cell != nullptr)
        cell->bugsDetected.fetch_add(1, std::memory_order_relaxed);
}

/** Publish running totals that are cheaper to copy than to count. */
inline void
noteTotals(uint64_t plans, uint64_t resource_errors,
           uint64_t suppressed)
{
    ProgressBoard::Cell *cell = ProgressBoard::current();
    if (cell == nullptr)
        return;
    cell->plans.store(plans, std::memory_order_relaxed);
    cell->resourceErrors.store(resource_errors,
                               std::memory_order_relaxed);
    cell->suppressed.store(suppressed, std::memory_order_relaxed);
}

/** Publish the leading bandit arm (single-writer seqlock). */
void noteBanditLeader(const std::string &name);

/** The bound shard marks itself abandoned at the watchdog deadline. */
inline void
noteAbandoned()
{
    ProgressBoard::Cell *cell = ProgressBoard::current();
    if (cell != nullptr)
        cell->state.store(static_cast<uint64_t>(ShardState::Abandoned),
                          std::memory_order_relaxed);
}

} // namespace progress

/**
 * Render a snapshot as the versioned "sqlpp.status.v1" JSON document:
 * campaign totals, per-shard progress, and — for any stalled shard —
 * the most recent flight-recorder events as a diagnosis aid.
 */
std::string renderStatusJson(const CampaignProgress &snapshot);

/**
 * Render a snapshot as the periodic one-line stdout report:
 * checks done/target, rate, validity, bugs, shard states, ETA.
 */
std::string renderProgressLine(const CampaignProgress &snapshot);

} // namespace sqlpp

#endif // SQLPP_CORE_PROGRESS_H
