#include "core/reducer.h"

#include "parser/parser.h"
#include "sqlir/printer.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace sqlpp {

namespace {

size_t
countNodes(const Expr &expr)
{
    size_t count = 0;
    forEachExprNode(expr, [&](const Expr &) { ++count; });
    return count;
}

/**
 * Candidate one-step simplifications of an expression: each direct
 * child (hoisted), plus the constants TRUE, FALSE, and NULL.
 */
std::vector<ExprPtr>
simplifications(const Expr &expr)
{
    std::vector<ExprPtr> out;
    for (const Expr *child : expr.children())
        out.push_back(child->clone());
    if (expr.kind() != ExprKind::Literal) {
        out.push_back(
            std::make_unique<LiteralExpr>(Value::boolean(true)));
        out.push_back(
            std::make_unique<LiteralExpr>(Value::boolean(false)));
        out.push_back(std::make_unique<LiteralExpr>(Value::null()));
    }
    return out;
}

/**
 * Try to replace the root of `expr` with each simplification; on
 * success recurse. Returns true if anything was replaced.
 */
bool
shrinkExpr(ExprPtr &expr, BugCase &bug, const ReplayFn &replay,
           size_t &replays, size_t max_replays)
{
    bool changed = false;
    bool progress = true;
    while (progress && replays < max_replays) {
        progress = false;
        for (ExprPtr &candidate : simplifications(*expr)) {
            if (replays >= max_replays)
                break;
            std::string saved = bug.predicateText;
            bug.predicateText = printExpr(*candidate);
            ++replays;
            if (replay(bug)) {
                expr = std::move(candidate);
                changed = true;
                progress = true;
                break;
            }
            bug.predicateText = saved;
        }
    }
    return changed;
}

} // namespace

ReduceStats
reduceBugCase(BugCase &bug, const ReplayFn &replay, size_t max_replays)
{
    SQLPP_SPAN("reducer.reduce.wall_us");
    SQLPP_COUNT("reducer.cases");
    ReduceStats stats;
    stats.setupBefore = bug.setup.size();

    // Phase 1: greedy statement elimination to a fixed point. After a
    // successful elimination the scan continues from the current index
    // (the next candidate just shifted into it) — restarting from 0
    // would re-replay prefixes already proven necessary this pass.
    bool progress = true;
    while (progress && stats.replays < max_replays) {
        progress = false;
        for (size_t i = 0;
             i < bug.setup.size() && stats.replays < max_replays;) {
            std::vector<std::string> saved = bug.setup;
            bug.setup.erase(bug.setup.begin() + static_cast<long>(i));
            ++stats.replays;
            if (replay(bug)) {
                progress = true;
            } else {
                bug.setup = std::move(saved);
                ++i;
            }
        }
    }
    stats.setupAfter = bug.setup.size();

    // Phase 2: predicate simplification.
    auto parsed = parseExpression(bug.predicateText);
    if (parsed.isOk()) {
        ExprPtr expr = parsed.takeValue();
        stats.predicateNodesBefore = countNodes(*expr);
        shrinkExpr(expr, bug, replay, stats.replays, max_replays);
        bug.predicateText = printExpr(*expr);
        stats.predicateNodesAfter = countNodes(*expr);
    }
    SQLPP_COUNT_N("reducer.replays", stats.replays);
    SQLPP_OBSERVE("reducer.setup.removed",
                  stats.setupBefore - stats.setupAfter);
    if (stats.predicateNodesBefore > 0) {
        // Shrink ratio: surviving predicate nodes as a percentage.
        SQLPP_OBSERVE("reducer.shrink.percent",
                      100 * stats.predicateNodesAfter /
                          stats.predicateNodesBefore);
    }
    SQLPP_TRACE_EVENT(ReduceDone, bug.oracle, stats.replays,
                      stats.setupAfter);
    return stats;
}

} // namespace sqlpp
