#include "core/reducer.h"

#include "parser/parser.h"
#include "sqlir/printer.h"
#include "util/metrics.h"
#include "util/strutil.h"
#include "util/trace.h"

namespace sqlpp {

namespace {

bool
opensTxnBlock(const std::string &statement)
{
    std::string upper = toUpper(std::string(trim(statement)));
    return upper == "BEGIN" || startsWith(upper, "BEGIN ");
}

bool
closesTxnBlock(const std::string &statement)
{
    std::string upper = toUpper(std::string(trim(statement)));
    if (upper == "COMMIT" || startsWith(upper, "COMMIT "))
        return true;
    // ROLLBACK ends the transaction; ROLLBACK TO [SAVEPOINT] does not.
    if (upper == "ROLLBACK")
        return true;
    return startsWith(upper, "ROLLBACK ") &&
           !startsWith(upper, "ROLLBACK TO") &&
           !startsWith(upper, "ROLLBACK TRANSACTION TO");
}

/**
 * Partition the setup into atomic elimination units: a
 * BEGIN … COMMIT/ROLLBACK block is one unit (removing only its BEGIN
 * or only its COMMIT would change the meaning of every following
 * statement — the rest of the block would silently join the
 * surrounding transaction state); everything else is a unit of one.
 * Returned as (start, length) pairs over the current setup.
 */
std::vector<std::pair<size_t, size_t>>
eliminationUnits(const std::vector<std::string> &setup)
{
    std::vector<std::pair<size_t, size_t>> units;
    for (size_t i = 0; i < setup.size();) {
        if (!opensTxnBlock(setup[i])) {
            units.emplace_back(i, 1);
            ++i;
            continue;
        }
        size_t end = i + 1;
        while (end < setup.size() && !closesTxnBlock(setup[end]))
            ++end;
        if (end < setup.size())
            ++end; // include the COMMIT/ROLLBACK
        units.emplace_back(i, end - i);
        i = end;
    }
    return units;
}

size_t
countNodes(const Expr &expr)
{
    size_t count = 0;
    forEachExprNode(expr, [&](const Expr &) { ++count; });
    return count;
}

/**
 * Candidate one-step simplifications of an expression: each direct
 * child (hoisted), plus the constants TRUE, FALSE, and NULL.
 */
std::vector<ExprPtr>
simplifications(const Expr &expr)
{
    std::vector<ExprPtr> out;
    for (const Expr *child : expr.children())
        out.push_back(child->clone());
    if (expr.kind() != ExprKind::Literal) {
        out.push_back(
            std::make_unique<LiteralExpr>(Value::boolean(true)));
        out.push_back(
            std::make_unique<LiteralExpr>(Value::boolean(false)));
        out.push_back(std::make_unique<LiteralExpr>(Value::null()));
    }
    return out;
}

/**
 * Try to replace the root of `expr` with each simplification; on
 * success recurse. Returns true if anything was replaced.
 */
bool
shrinkExpr(ExprPtr &expr, BugCase &bug, const ReplayFn &replay,
           size_t &replays, size_t max_replays)
{
    bool changed = false;
    bool progress = true;
    while (progress && replays < max_replays) {
        progress = false;
        for (ExprPtr &candidate : simplifications(*expr)) {
            if (replays >= max_replays)
                break;
            std::string saved = bug.predicateText;
            bug.predicateText = printExpr(*candidate);
            ++replays;
            if (replay(bug)) {
                expr = std::move(candidate);
                changed = true;
                progress = true;
                break;
            }
            bug.predicateText = saved;
        }
    }
    return changed;
}

} // namespace

ReduceStats
reduceBugCase(BugCase &bug, const ReplayFn &replay, size_t max_replays)
{
    SQLPP_SPAN("reducer.reduce.wall_us");
    SQLPP_COUNT("reducer.cases");
    ReduceStats stats;
    stats.setupBefore = bug.setup.size();

    // Phase 1: greedy unit elimination to a fixed point. Units are
    // single statements, except BEGIN … COMMIT/ROLLBACK blocks, which
    // are removed (or kept) whole — see eliminationUnits(). After a
    // successful elimination the scan continues from the current unit
    // index (the next candidate just shifted into it) — restarting
    // from 0 would re-replay prefixes already proven necessary this
    // pass.
    bool progress = true;
    while (progress && stats.replays < max_replays) {
        progress = false;
        for (size_t u = 0; stats.replays < max_replays;) {
            std::vector<std::pair<size_t, size_t>> units =
                eliminationUnits(bug.setup);
            if (u >= units.size())
                break;
            auto [start, length] = units[u];
            std::vector<std::string> saved = bug.setup;
            bug.setup.erase(
                bug.setup.begin() + static_cast<long>(start),
                bug.setup.begin() + static_cast<long>(start + length));
            ++stats.replays;
            if (replay(bug)) {
                progress = true;
            } else {
                bug.setup = std::move(saved);
                ++u;
            }
        }
    }
    stats.setupAfter = bug.setup.size();

    // Phase 2: predicate simplification.
    auto parsed = parseExpression(bug.predicateText);
    if (parsed.isOk()) {
        ExprPtr expr = parsed.takeValue();
        stats.predicateNodesBefore = countNodes(*expr);
        shrinkExpr(expr, bug, replay, stats.replays, max_replays);
        bug.predicateText = printExpr(*expr);
        stats.predicateNodesAfter = countNodes(*expr);
    }
    SQLPP_COUNT_N("reducer.replays", stats.replays);
    SQLPP_OBSERVE("reducer.setup.removed",
                  stats.setupBefore - stats.setupAfter);
    if (stats.predicateNodesBefore > 0) {
        // Shrink ratio: surviving predicate nodes as a percentage.
        SQLPP_OBSERVE("reducer.shrink.percent",
                      100 * stats.predicateNodesAfter /
                          stats.predicateNodesBefore);
    }
    SQLPP_TRACE_EVENT(ReduceDone, bug.oracle, stats.replays,
                      stats.setupAfter);
    return stats;
}

} // namespace sqlpp
