/**
 * @file
 * Search-guided generation: a deterministic bandit over generator
 * choice points.
 *
 * The adaptive generator learns *validity* (feedback.h suppresses
 * features the dialect rejects) but spends no part of the statement
 * budget chasing *novelty*: it keeps regenerating shapes whose plans
 * the campaign has already seen. GuidedSelector closes that loop. Every
 * choice point in the generator — which expression node, which
 * operator, how many joins — becomes an *arm*; pulling an arm means
 * generating that construct, and an arm is rewarded when the resulting
 * statement surfaces a previously unseen plan fingerprint or a new
 * CoverageRegistry probe (campaign.cc wires the reward signal).
 *
 * Determinism is the hard requirement: replay, reducers, resume and the
 * share-nothing scheduler merge all assume that re-running a shard
 * regenerates identical statements. So there is no entropy anywhere:
 *  - UCB1 scores are pure arithmetic over the arm counters, ties are
 *    broken by candidate index, and unpulled arms are visited in index
 *    order;
 *  - Thompson sampling draws its posterior samples from fnv1a of
 *    (salt, selection sequence number, arm name, arm counters) — the
 *    same salt-derived idiom the PQS and EET oracles use — so the same
 *    salt and pull history always reproduce the same arm sequence.
 *
 * Arm state lives beside the validity counters in FeatureStats
 * (guidedPulls / guidedRewarded), so checkpointing, `absorb()` merging
 * and persistence ride the existing feedback channel unchanged. The
 * novelty estimate composes *multiplicatively* with the validity
 * posterior, and suppressed features are excluded from the candidate
 * set outright: guidance can never resurrect a feature the tracker has
 * learned the dialect rejects.
 */
#ifndef SQLPP_CORE_GUIDANCE_H
#define SQLPP_CORE_GUIDANCE_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/feature.h"
#include "core/feedback.h"

namespace sqlpp {

/** How the generator spends its statement budget. */
enum class GuidanceMode
{
    /** No guidance: every choice point stays uniform (legacy behavior). */
    Off,
    /** UCB1 over arm means with a deterministic index tie-break. */
    Ucb,
    /** Thompson sampling with salt-derived (replayable) draws. */
    Thompson,
};

const char *guidanceModeName(GuidanceMode mode);

/** Parse "off" / "ucb" / "thompson" (case-insensitive). */
bool parseGuidanceMode(const std::string &name, GuidanceMode &mode);

/** Tunables for guided generation. */
struct GuidanceConfig
{
    GuidanceMode mode = GuidanceMode::Off;
    /** UCB1 exploration constant (the classical sqrt(2)). */
    double exploration = 1.41421356237309515;
    /**
     * Salt for Thompson draws. 0 means "derive from the campaign seed"
     * (CampaignRunner does so via fnv1a, so distinct shards explore
     * distinct trajectories while each shard stays replayable).
     */
    uint64_t salt = 0;
};

/**
 * The bandit. Bound to a shard's FeedbackTracker (arm counters live in
 * FeatureStats) and FeatureRegistry (arms are interned features;
 * grammar-rule arms such as RULE_JOIN_COUNT_2 intern as
 * FeatureKind::Property).
 */
class GuidedSelector
{
  public:
    GuidedSelector(GuidanceConfig config, FeedbackTracker &tracker,
                   FeatureRegistry &registry);

    /**
     * Pick one arm among `arms` (feature names) and record the pull.
     * Arms whose features the tracker suppresses are excluded; if every
     * arm is suppressed the first is returned unpulled (the generator's
     * own gate then rejects it — guidance never overrides suppression).
     * Returns the chosen index; `chosen` (optional) receives the
     * interned id so the caller can attribute the eventual reward.
     */
    size_t choose(const std::vector<std::string> &arms,
                  FeatureId *chosen = nullptr);

    /**
     * Credit the pulls behind one generated statement. `novelty` is the
     * number of new plan fingerprints + new coverage probes the
     * statement surfaced (zero when the statement was cut short by the
     * execution budget — truncated results can fabricate "new" plans).
     * Each pulled arm's guidedRewarded advances at most once per pull,
     * so guidedRewarded <= guidedPulls always holds.
     */
    void reward(const std::vector<FeatureId> &arms, uint64_t novelty);

    /** Total choose() calls (the UCB horizon / Thompson sequence). */
    uint64_t selections() const { return selections_; }

    /**
     * The current leading arm — highest reward rate among pulled arms,
     * ties broken toward more pulls then lower feature id — rendered
     * as "name rewarded/pulls" for the live status board ("" before
     * any pull). Observability only; reads nothing the next choose()
     * does not already read.
     */
    std::string leader() const;

    const GuidanceConfig &config() const { return config_; }

    /**
     * UCB1 score for an arm: posterior-mean reward rate plus the
     * exploration bonus. Pure arithmetic, finite for every input —
     * including pulls == 0 and UINT64-scale counters (the property
     * tests pin this).
     */
    static double ucbScore(uint64_t pulls, uint64_t rewarded,
                           uint64_t total, double exploration);

    /**
     * Deterministic Thompson draw from the arm's Beta posterior,
     * clamped to [0, 1]. The draw is a pure function of
     * (salt, sequence, arm name, pulls, rewarded): fnv1a expands the
     * tuple into uniforms and an Irwin–Hall sum approximates the
     * Gaussian shape around the posterior mean. Finite for every
     * input, including UINT64-scale counters.
     */
    static double thompsonSample(uint64_t pulls, uint64_t rewarded,
                                 uint64_t salt, uint64_t sequence,
                                 const std::string &arm);

  private:
    double armScore(FeatureId id, const std::string &name) const;

    GuidanceConfig config_;
    FeedbackTracker &tracker_;
    FeatureRegistry &registry_;
    uint64_t selections_ = 0;
};

} // namespace sqlpp

#endif // SQLPP_CORE_GUIDANCE_H
