/**
 * @file
 * Feature gates: the adaptive gate (learned) and the baseline gate
 * (omniscient).
 *
 * FeedbackGate answers shouldGenerate() from the FeedbackTracker — this
 * is SQLancer++. ProfileGate answers from the dialect's actual
 * capability matrix — this models the paper's baseline, a SQLancer-style
 * generator hand-written for the specific DBMS: it never generates an
 * unsupported feature and it knows the typing discipline a priori,
 * including per-argument function types.
 */
#ifndef SQLPP_CORE_BASELINE_H
#define SQLPP_CORE_BASELINE_H

#include "core/feature.h"
#include "core/feedback.h"
#include "core/generator.h"
#include "dialect/profile.h"

namespace sqlpp {

/** Gate backed by the validity-feedback tracker (the adaptive path). */
class FeedbackGate : public FeatureGate
{
  public:
    explicit FeedbackGate(const FeedbackTracker &tracker)
        : tracker_(tracker) {}

    bool
    allow(FeatureId id) const override
    {
        return tracker_.shouldGenerate(id);
    }

  private:
    const FeedbackTracker &tracker_;
};

/**
 * Gate backed by a dialect's true capability matrix (the baseline).
 *
 * The mapping from feature names back to capabilities also serves the
 * Fig. 6 experiment (feature overlap between the adaptive generator and
 * dialect-specific baseline generators).
 */
class ProfileGate : public FeatureGate
{
  public:
    ProfileGate(const DialectProfile &profile,
                const FeatureRegistry &registry)
        : profile_(profile), registry_(registry) {}

    bool allow(FeatureId id) const override;

    /** Name-level capability check (used by Fig. 6 and by tests). */
    bool allowName(const std::string &feature_name) const;

  private:
    const DialectProfile &profile_;
    const FeatureRegistry &registry_;
};

} // namespace sqlpp

#endif // SQLPP_CORE_BASELINE_H
