/**
 * @file
 * The platform's internal schema model (paper Section 3, Fig. 3).
 *
 * Real DBMSs expose schema metadata through incompatible interfaces
 * (sqlite_master, information_schema, SHOW TABLE, ...). SQLancer++
 * sidesteps them all by *never asking the DBMS*: it simulates the
 * effect of each DDL statement it generates and commits the simulated
 * object to this model only when the DBMS reports success. The model
 * is therefore built purely from (statement, execution status) pairs —
 * the same interface the generator already uses.
 */
#ifndef SQLPP_CORE_SCHEMA_MODEL_H
#define SQLPP_CORE_SCHEMA_MODEL_H

#include <optional>
#include <string>
#include <vector>

#include "sqlir/value.h"
#include "util/rng.h"

namespace sqlpp {

/** Modelled column. */
struct ModelColumn
{
    std::string name;
    DataType type = DataType::Int;
    bool notNull = false;
    bool unique = false;
    bool primaryKey = false;
};

/** Modelled table or view. */
struct ModelTable
{
    std::string name;
    std::vector<ModelColumn> columns;
    bool isView = false;
    /** Rows the model believes were inserted (successful INSERTs). */
    size_t assumedRows = 0;
};

/** Modelled index. */
struct ModelIndex
{
    std::string name;
    std::string table;
};

/**
 * The internal schema model. All mutating calls correspond to a DDL
 * statement that the DBMS reported as successful.
 */
class SchemaModel
{
  public:
    /** Commit a successful CREATE TABLE / CREATE VIEW. */
    void addTable(ModelTable table);
    /** Commit a successful CREATE INDEX. */
    void addIndex(ModelIndex index);
    /** Commit a successful DROP. */
    void dropTable(const std::string &name);
    void dropIndex(const std::string &name);
    /** Commit a successful INSERT of `rows` rows. */
    void noteInsert(const std::string &table, size_t rows);

    bool hasTable(const std::string &name) const;
    const ModelTable *table(const std::string &name) const;

    size_t tableCount(bool views = false) const;
    size_t indexCount() const { return indexes_.size(); }

    const std::vector<ModelTable> &tables() const { return tables_; }
    const std::vector<ModelIndex> &indexes() const { return indexes_; }

    /** A fresh name with the given prefix (t0, t1, ... / i0, v0). */
    std::string freeName(const std::string &prefix) const;

    /** Random existing base table (or view when `views`); nullopt if none. */
    std::optional<std::string> randomTable(Rng &rng,
                                           bool include_views) const;

    /** Random base table only (for INSERT / CREATE INDEX targets). */
    std::optional<std::string> randomBaseTable(Rng &rng) const;

    /** Random index name; nullopt when none exist. */
    std::optional<std::string> randomIndex(Rng &rng) const;

  private:
    std::vector<ModelTable> tables_;
    std::vector<ModelIndex> indexes_;
    /** Monotone counter so dropped names are never reused. */
    size_t name_counter_ = 0;
};

} // namespace sqlpp

#endif // SQLPP_CORE_SCHEMA_MODEL_H
