#include "core/pivot.h"

#include "sqlir/printer.h"

namespace sqlpp {

bool
pqsApplicable(const SelectStmt &base, const Expr &predicate)
{
    if (base.from.size() != 1 || !base.joins.empty())
        return false;
    if (base.from[0].subquery != nullptr)
        return false;
    if (base.items.size() != 1 || !base.items[0].star)
        return false;
    if (!base.groupBy.empty() || base.having != nullptr)
        return false;
    if (base.limit >= 0 || base.offset >= 0)
        return false;
    if (exprContainsAggregate(predicate))
        return false;
    bool plain = true;
    forEachExprNode(predicate, [&plain](const Expr &node) {
        switch (node.kind()) {
          case ExprKind::Exists:
          case ExprKind::InSubquery:
          case ExprKind::ScalarSubquery:
            plain = false;
            break;
          default:
            break;
        }
    });
    return plain;
}

std::string
pivotScanText(const SelectStmt &base)
{
    SelectPtr scan = base.cloneSelect();
    scan->distinct = false;
    scan->where = nullptr;
    scan->groupBy.clear();
    scan->having = nullptr;
    scan->orderBy.clear();
    scan->limit = -1;
    scan->offset = -1;
    scan->items.clear();
    SelectItem star;
    star.star = true;
    scan->items.push_back(std::move(star));
    return printSelect(*scan);
}

std::optional<Pivot>
selectPivot(const SelectStmt &base, const ResultSet &scan, uint64_t salt)
{
    if (scan.rowCount() == 0 || base.from.empty())
        return std::nullopt;

    Pivot pivot;
    pivot.binding = base.from[0].bindingName();
    // The executor names star-projected columns "binding.column"; the
    // pivot scope wants them unqualified under its single binding.
    const std::string prefix = pivot.binding + ".";
    for (const std::string &column : scan.columns()) {
        if (column.compare(0, prefix.size(), prefix) == 0)
            pivot.columns.push_back(column.substr(prefix.size()));
        else
            pivot.columns.push_back(column);
    }
    pivot.tableRows = scan.rowCount();
    pivot.rowIndex = static_cast<size_t>(salt % scan.rowCount());
    pivot.row = scan.rows()[pivot.rowIndex];
    return pivot;
}

PivotTruth
evalOnPivot(const Expr &predicate, const Pivot &pivot,
            const EngineBehavior &behavior)
{
    Scope scope;
    scope.addBinding(pivot.binding, pivot.columns);

    EvalContext ctx;
    ctx.scope = &scope;
    ctx.row = &pivot.row;
    ctx.behavior = &behavior;
    // Reference semantics: no fault set, no subquery runner, unmetered.
    auto value = evalExpr(predicate, ctx);
    if (!value.isOk())
        return PivotTruth::Error;
    auto truth = valueTruth(value.value());
    if (!truth.has_value())
        return PivotTruth::Null;
    return *truth ? PivotTruth::True : PivotTruth::False;
}

ExprPtr
rectifyPredicate(const Expr &predicate, const Pivot &pivot,
                 const DialectProfile &profile)
{
    switch (evalOnPivot(predicate, pivot, profile.behavior)) {
      case PivotTruth::Error:
        return nullptr;
      case PivotTruth::True:
        return predicate.clone();
      case PivotTruth::False:
        if (profile.supportsUnaryOp(UnaryOp::Not))
            return std::make_unique<UnaryExpr>(UnaryOp::Not,
                                               predicate.clone());
        if (profile.supportsUnaryOp(UnaryOp::IsFalse))
            return std::make_unique<UnaryExpr>(UnaryOp::IsFalse,
                                               predicate.clone());
        return nullptr;
      case PivotTruth::Null:
        if (profile.supportsUnaryOp(UnaryOp::IsNull))
            return std::make_unique<UnaryExpr>(UnaryOp::IsNull,
                                               predicate.clone());
        return nullptr;
    }
    return nullptr;
}

} // namespace sqlpp
