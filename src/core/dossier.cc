#include "core/dossier.h"

#include <filesystem>
#include <fstream>
#include <optional>

#include "core/campaign.h"
#include "dialect/profile.h"
#include "util/metrics.h"
#include "util/strutil.h"
#include "util/trace.h"

namespace sqlpp {

namespace {

std::string
jsonEscapeText(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out.push_back(c);
        }
    }
    return out;
}

Status
writeFile(const std::filesystem::path &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return Status::runtimeError("cannot open " + path.string() +
                                    " for writing");
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.close();
    if (!out)
        return Status::runtimeError("short write to " + path.string());
    return Status::ok();
}

std::string
jsonStringArray(const std::vector<std::string> &items)
{
    std::string out = "[";
    for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += "\"" + jsonEscapeText(items[i]) + "\"";
    }
    out += "]";
    return out;
}

std::string
renderDossierJson(const std::string &id, const BugCase &bug,
                  const DossierContext &context)
{
    std::string out = "{\n";
    out += "  \"schema\": \"sqlpp.dossier.v1\",\n";
    out += "  \"id\": \"" + id + "\",\n";
    out += "  \"dialect\": \"" + jsonEscapeText(bug.dialect) + "\",\n";
    out += "  \"oracle\": \"" + jsonEscapeText(bug.oracle) + "\",\n";
    out += "  \"execMode\": \"" + jsonEscapeText(bug.execMode) + "\",\n";
    out += "  \"base\": \"" + jsonEscapeText(bug.baseText) + "\",\n";
    out += "  \"predicate\": \"" + jsonEscapeText(bug.predicateText) +
           "\",\n";
    out += "  \"details\": \"" + jsonEscapeText(bug.details) + "\",\n";
    out += "  \"features\": " + jsonStringArray(bug.featureNames) +
           ",\n";
    out += "  \"setup\": " + jsonStringArray(bug.setup) + ",\n";
    out += "  \"queries\": " + jsonStringArray(bug.queries) + ",\n";
    out += format("  \"shard\": %zu,\n", context.shardIndex);
    out += format("  \"fromCheckpoint\": %s\n",
                  context.fromCheckpoint ? "true" : "false");
    out += "}\n";
    return out;
}

std::string
renderFeedbackJson(const BugCase &bug, const FeedbackTracker &feedback,
                   const FeatureRegistry &registry)
{
    std::string out = "{\n";
    out += "  \"schema\": \"sqlpp.feedback.v1\",\n";
    out += "  \"features\": [\n";
    bool first = true;
    for (const std::string &name : bug.featureNames) {
        FeatureId id = registry.find(name);
        if (id == static_cast<FeatureId>(-1))
            continue;
        const FeatureStats &stat = feedback.stats(id);
        if (!first)
            out += ",\n";
        first = false;
        out += format(
            "    {\"name\": \"%s\", \"executions\": %llu, "
            "\"successes\": %llu, \"posteriorMean\": %.6f, "
            "\"suppressed\": %s}",
            jsonEscapeText(name).c_str(),
            (unsigned long long)stat.executions,
            (unsigned long long)stat.successes,
            feedback.estimatedProbability(id),
            stat.suppressed ? "true" : "false");
    }
    out += "\n  ]\n}\n";
    return out;
}

std::string
renderEventsJsonl(const DossierContext &context, size_t max_events)
{
    const TraceRecorder &recorder = TraceRecorder::instance();
    size_t lane =
        TraceRecorder::laneForShardIndex(context.shardIndex);
    std::string label = recorder.laneLabel(lane);
    std::string out;
    for (const TraceEvent &event :
         recorder.recentShardEvents(context.shardIndex, max_events)) {
        out += traceEventJson(lane, label, event);
        out += "\n";
    }
    return out;
}

} // namespace

std::string
bugCaseId(const BugCase &bug)
{
    std::string identity = bug.dialect;
    identity += "|";
    identity += bug.oracle;
    identity += "|";
    for (const std::string &statement : bug.setup) {
        identity += statement;
        identity += "\x1f";
    }
    identity += "|";
    identity += bug.baseText;
    identity += "|";
    identity += bug.predicateText;
    return format("%016llx", (unsigned long long)fnv1a(identity));
}

std::string
renderReproSql(const BugCase &bug)
{
    std::string out;
    out += "-- sqlancerpp repro " + bugCaseId(bug) + "\n";
    out += "-- dialect: " + bug.dialect + "\n";
    out += "-- oracle: " + bug.oracle + "\n";
    if (!bug.execMode.empty())
        out += "-- mode: " + bug.execMode + "\n";
    out += "-- base: " + bug.baseText + "\n";
    out += "-- predicate: " + bug.predicateText + "\n";
    out += "\n";
    for (const std::string &statement : bug.setup) {
        out += statement;
        out += "\n";
    }
    if (!bug.queries.empty()) {
        out += "\n-- oracle queries (reference, re-derived on replay):\n";
        for (const std::string &query : bug.queries)
            out += "-- " + query + "\n";
    }
    return out;
}

StatusOr<BugCase>
parseReproFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Status::runtimeError("cannot open repro file: " + path);
    BugCase bug;
    std::string line;
    auto metadata = [&line](const char *key) -> std::optional<std::string> {
        std::string prefix = std::string("-- ") + key + ": ";
        if (!startsWith(line, prefix))
            return std::nullopt;
        return line.substr(prefix.size());
    };
    while (std::getline(in, line)) {
        while (!line.empty() &&
               (line.back() == '\r' || line.back() == ' '))
            line.pop_back();
        if (line.empty())
            continue;
        if (startsWith(line, "--")) {
            if (auto value = metadata("dialect"))
                bug.dialect = *value;
            else if (auto value = metadata("oracle"))
                bug.oracle = *value;
            else if (auto value = metadata("mode"))
                bug.execMode = *value;
            else if (auto value = metadata("base"))
                bug.baseText = *value;
            else if (auto value = metadata("predicate"))
                bug.predicateText = *value;
            continue;
        }
        bug.setup.push_back(line);
    }
    if (bug.dialect.empty() || bug.oracle.empty() ||
        bug.baseText.empty() || bug.predicateText.empty())
        return Status::runtimeError(
            "repro file is missing dialect/oracle/base/predicate "
            "metadata: " +
            path);
    return bug;
}

bool
replayReproFile(const std::string &path, std::string *details)
{
    auto parsed = parseReproFile(path);
    if (!parsed.isOk()) {
        if (details != nullptr)
            *details = parsed.status().toString();
        return false;
    }
    const BugCase &bug = parsed.value();
    const DialectProfile *profile = findDialect(bug.dialect);
    if (profile == nullptr) {
        if (details != nullptr)
            *details = "unknown dialect: " + bug.dialect;
        return false;
    }
    OracleResult replayed;
    bool is_bug = CampaignRunner::reproduces(*profile, bug, &replayed);
    if (details != nullptr)
        *details = replayed.details;
    return is_bug;
}

Status
writeBugDossier(const DossierConfig &config, const BugCase &bug,
                const DossierContext &context)
{
    if (config.directory.empty())
        return Status::runtimeError("dossier directory not configured");
    std::string id = bugCaseId(bug);
    std::filesystem::path dir =
        std::filesystem::path(config.directory) / id;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return Status::runtimeError("cannot create dossier directory " +
                                    dir.string() + ": " + ec.message());

    if (Status s = writeFile(dir / "repro.sql", renderReproSql(bug));
        !s.isOk())
        return s;
    if (Status s = writeFile(dir / "dossier.json",
                             renderDossierJson(id, bug, context));
        !s.isOk())
        return s;
    if (context.feedback != nullptr && context.registry != nullptr) {
        if (Status s = writeFile(
                dir / "feedback.json",
                renderFeedbackJson(bug, *context.feedback,
                                   *context.registry));
            !s.isOk())
            return s;
    }
    if (Status s = writeFile(dir / "events.jsonl",
                             renderEventsJsonl(context,
                                               config.maxEvents));
        !s.isOk())
        return s;
    if (Status s = writeFile(dir / "metrics.json", exportMetricsJson());
        !s.isOk())
        return s;
    return Status::ok();
}

} // namespace sqlpp
