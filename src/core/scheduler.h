/**
 * @file
 * CampaignScheduler: fan one campaign out across worker threads.
 *
 * The paper's headline result is scale — SQLancer++ tests 17 DBMSs
 * concurrently with one adaptive generator. The scheduler reproduces
 * that shape: a campaign is carved into *shards* (one per dialect, or
 * fixed slices of one dialect's check budget), a pool of worker
 * threads drains the shard queue, and results are merged
 * deterministically afterwards.
 *
 * Isolation model: each shard owns its own CampaignRunner — and with
 * it its own Connection, SchemaModel, FeatureRegistry, FeedbackTracker,
 * BugPrioritizer, and Rng stream (campaign seed ⊕ shard index, the
 * convention documented in util/rng.h). Workers share *nothing*
 * mutable but the atomic shard queue, so no locks sit on the
 * generation/execution hot path.
 *
 * Determinism model: the shard layout depends only on the config,
 * never on the worker count, and the post-run merge folds shards in
 * shard-index order. Hence the same seed yields bit-identical merged
 * stats for 1 worker and for N workers — worker count changes
 * wall-clock time, nothing else. Crash safety extends this: every
 * finished shard is serialized into an atomically-rewritten
 * checkpoint file (core/checkpoint.h), all shards — live or resumed —
 * reach the merge through the same serialize/restore round-trip, and
 * so a killed-and-resumed run merges to stats bit-identical to an
 * uninterrupted one. The merge re-runs bug prioritization
 * over the concatenated shard stream (translating feature ids by name
 * into a merged registry), so cross-shard duplicate bugs collapse
 * exactly as they would have in one sequential run, and absorbs every
 * shard's FeedbackTracker into a merged posterior view.
 */
#ifndef SQLPP_CORE_SCHEDULER_H
#define SQLPP_CORE_SCHEDULER_H

#include <memory>
#include <string>
#include <vector>

#include "core/campaign.h"

namespace sqlpp {

/** How the scheduler carves a campaign into shards. */
enum class ScheduleMode
{
    /** Split one dialect's check budget into fixed slices. */
    SliceChecks,
    /** One shard per dialect (the paper's 17-DBMS fleet). */
    ShardDialects,
};

/** Scheduler configuration wrapping one base campaign. */
struct SchedulerConfig
{
    /** Base campaign; per-shard copies adjust seed/checks/dialect. */
    CampaignConfig campaign;
    ScheduleMode mode = ScheduleMode::SliceChecks;
    /** Worker threads draining the shard queue. */
    size_t workers = 1;
    /**
     * Logical shards in SliceChecks mode; 0 = one per worker. Merged
     * results depend only on the slice layout — fix this value when
     * comparing runs across different worker counts.
     */
    size_t slices = 0;
    /** Dialects in ShardDialects mode; empty = all campaign dialects. */
    std::vector<std::string> dialects;
    /**
     * Checkpoint file rewritten (atomically) after every finished
     * shard; empty = no checkpointing. A killed run loses at most its
     * in-flight shards.
     */
    std::string checkpointPath;
    /**
     * Load `checkpointPath` before running and skip shards it already
     * holds. The file must match this configuration (shard-plan
     * fingerprint); a mismatched or unreadable checkpoint logs a
     * warning and the run starts fresh.
     */
    bool resume = false;
    /**
     * Watchdog: per-shard wall-clock deadline in seconds (0 = none),
     * copied into every shard's CampaignConfig::deadlineSeconds.
     */
    double shardDeadlineSeconds = 0.0;
    /**
     * Root directory for per-bug forensic dossiers (core/dossier.h);
     * empty = none. Dossiers are written during the deterministic
     * shard-order merge, so the dossier set (bug ids + repro.sql) is
     * identical for any worker count and covers bugs restored from a
     * checkpoint.
     */
    std::string dossierDir;
};

/** One shard's outcome: the deterministic part plus timing. */
struct ShardOutcome
{
    size_t shardIndex = 0;
    std::string dialect;
    uint64_t seed = 0;
    /** The shard's own (pre-merge) campaign stats. */
    CampaignStats stats;
    /** Prioritized bugs that survived the cross-shard merge. */
    size_t bugsKeptAfterMerge = 0;
    /** Observability only — never feeds the deterministic merge. */
    size_t workerIndex = 0;
    double seconds = 0.0;
    /** Restored from a checkpoint instead of run by this process. */
    bool fromCheckpoint = false;
};

/** Per-worker observability (throughput accounting). */
struct WorkerReport
{
    size_t workerIndex = 0;
    size_t shardsRun = 0;
    uint64_t checksAttempted = 0;
    double busySeconds = 0.0;

    double
    checksPerSecond() const
    {
        return busySeconds > 0.0
                   ? static_cast<double>(checksAttempted) / busySeconds
                   : 0.0;
    }
};

/** The full result of a scheduled run. */
struct ScheduleReport
{
    /** Deterministic merge of every shard, in shard-index order. */
    CampaignStats merged;
    std::vector<ShardOutcome> shards;
    std::vector<WorkerReport> workers;
    /** Shards skipped because a resumed checkpoint already held them. */
    size_t shardsFromCheckpoint = 0;
    /** Dossier directories written (when SchedulerConfig::dossierDir). */
    size_t dossiersWritten = 0;
    /** Wall-clock seconds from first dispatch until the queue drained. */
    double queueDrainSeconds = 0.0;

    /** Merged end-to-end throughput over the drain window. */
    double
    checksPerSecond() const
    {
        return queueDrainSeconds > 0.0
                   ? static_cast<double>(merged.checksAttempted) /
                         queueDrainSeconds
                   : 0.0;
    }
};

/** Fans a campaign out across N workers and merges the results. */
class CampaignScheduler
{
  public:
    explicit CampaignScheduler(SchedulerConfig config);

    /** Resolve the shard layout (exposed for tests and benches). */
    std::vector<CampaignConfig> plan() const;

    /**
     * Fingerprint of the resolved shard plan — every field that shapes
     * a shard's deterministic result. A checkpoint written under one
     * fingerprint cannot be resumed under another.
     */
    uint64_t planFingerprint() const;

    /** Run all shards on the worker pool and merge deterministically. */
    ScheduleReport run();

    /** Merged feedback across shards (valid after run()). */
    const FeedbackTracker &mergedFeedback() const { return *tracker_; }
    /** Registry the merged feedback/prioritizer ids live in. */
    FeatureRegistry &mergedRegistry() { return registry_; }
    /** Merged prioritizer state (valid after run()). */
    const BugPrioritizer &mergedPrioritizer() const
    {
        return prioritizer_;
    }

  private:
    SchedulerConfig config_;
    /** Feedback config for the merged view and restored shards. */
    FeedbackConfig feedback_config_;
    FeatureRegistry registry_;
    std::unique_ptr<FeedbackTracker> tracker_;
    BugPrioritizer prioritizer_;
};

} // namespace sqlpp

#endif // SQLPP_CORE_SCHEDULER_H
