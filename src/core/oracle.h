/**
 * @file
 * Test oracles for logic bugs.
 *
 * Both shipped oracles work on a QueryShape (a predicate-free base
 * query Q plus a boolean predicate p) and are DBMS-agnostic — they only
 * issue SQL text and compare result multisets, which is what lets the
 * platform run against any dialect (paper Section 3, "Result
 * validator").
 *
 *  - TLP (Ternary Logic Partitioning, Rigger & Su OOPSLA'20): Q must
 *    equal the multiset union of Q WHERE p, Q WHERE NOT p, and
 *    Q WHERE p IS NULL. Partitions are recombined client-side, so no
 *    UNION support is required of the dialect.
 *  - NoREC (Non-optimizing Reference Engine Construction, ESEC/FSE'20):
 *    SELECT COUNT(*) ... WHERE p (optimized path) must agree with
 *    counting the rows whose projected predicate value is TRUE
 *    (a projection never enters the WHERE optimizer). The projected
 *    form prefers `(p) IS TRUE` and falls back to a CASE expression
 *    when the dialect rejects IS TRUE — learned black-box, per dialect.
 *  - PQS (Pivoted Query Synthesis, OSDI'20): pick a pivot row, rectify
 *    the predicate client-side with our own three-valued evaluator so a
 *    correct engine must keep the pivot, and assert single-row
 *    containment in `SELECT * FROM t WHERE p'` (see core/pivot.h). The
 *    reference is the clean evaluator, so PQS also catches consistent
 *    evaluator deviations that preserve TLP's partition law and both
 *    NoREC sides.
 *  - EET (Equivalent Expression Transformation): rewrite p into a
 *    3VL-equivalent p' (identity wrappers, provably-safe IS-family
 *    expansions, data-aware tautology conjuncts from scanned column
 *    statistics; see core/rewrite.h) and assert Q(p) and Q(p') return
 *    byte-identical result multisets — in WHERE position always, and
 *    in projection position when p is boolean-rooted (so the rewrite
 *    is value-preserving, which makes NULL-vs-FALSE confusions
 *    observable that every WHERE-based oracle collapses).
 */
#ifndef SQLPP_CORE_ORACLE_H
#define SQLPP_CORE_ORACLE_H

#include <memory>
#include <string>
#include <vector>

#include "core/generator.h"
#include "dialect/connection.h"

namespace sqlpp {

enum class OracleOutcome
{
    /** Queries ran and results were consistent. */
    Passed,
    /** Queries ran and results were inconsistent: a logic bug. */
    Bug,
    /** Some query failed to execute; nothing learned about logic. */
    Skipped,
    /**
     * The oracle does not apply to this query shape (e.g. PQS on a
     * join or an empty table). Unlike Skipped this says nothing about
     * the dialect, so it must not count against validity feedback.
     */
    Inapplicable,
};

/** Result of one oracle check. */
struct OracleResult
{
    OracleOutcome outcome = OracleOutcome::Skipped;
    /** Human-readable evidence for bug reports. */
    std::string details;
    /** The SQL queries the oracle issued, in order. */
    std::vector<std::string> queries;
};

/** A DBMS-agnostic logic-bug oracle. */
class Oracle
{
  public:
    virtual ~Oracle() = default;
    virtual const char *name() const = 0;

    /** Run the oracle for one base query + predicate. */
    virtual OracleResult check(Connection &connection,
                               const SelectStmt &base,
                               const Expr &predicate) = 0;

    /** Convenience: run the oracle on a generated QueryShape. */
    OracleResult
    check(Connection &connection, const QueryShape &shape)
    {
        return check(connection, *shape.base, *shape.predicate);
    }
};

/** Ternary Logic Partitioning. */
class TlpOracle : public Oracle
{
  public:
    const char *name() const override { return "TLP"; }
    OracleResult check(Connection &connection, const SelectStmt &base,
                       const Expr &predicate) override;
};

/** Non-optimizing Reference Engine Construction. */
class NorecOracle : public Oracle
{
  public:
    const char *name() const override { return "NOREC"; }
    OracleResult check(Connection &connection, const SelectStmt &base,
                       const Expr &predicate) override;
};

/** Pivoted Query Synthesis (single-row containment; core/pivot.h). */
class PqsOracle : public Oracle
{
  public:
    const char *name() const override { return "PQS"; }
    OracleResult check(Connection &connection, const SelectStmt &base,
                       const Expr &predicate) override;
};

/** Equivalent Expression Transformation (core/rewrite.h). */
class EetOracle : public Oracle
{
  public:
    const char *name() const override { return "EET"; }
    OracleResult check(Connection &connection, const SelectStmt &base,
                       const Expr &predicate) override;
};

/**
 * Isolation-fault oracle (interleaved sessions; core/txn_gen.h).
 *
 * Unlike the single-session oracles, ISO does not test the handed
 * query — it derives a deterministic salt from the shape's printed
 * text (the PQS/EET salt idiom, which is what makes replay, reduction
 * and crash-resume regenerate the identical interleaving) and runs a
 * handful of generated multi-session transaction schedules against a
 * private engine carrying the dialect's faults. Every in-transaction
 * read, and the final committed state, is checked against a
 * serial-order witness: a fault-free engine that replays the sessions
 * committed before the reader's BEGIN serially in commit order, then
 * the reader's own statement prefix. Any divergence is an isolation
 * bug — the schedule vocabulary is too narrow for the single-session
 * fault families to fire (see core/txn_gen.h).
 *
 * Inapplicable on dialects without transaction support and on
 * deferred-visibility (REFRESH) dialects, where snapshot claims are
 * not part of the contract.
 */
class IsolationOracle : public Oracle
{
  public:
    const char *name() const override { return "ISO"; }
    OracleResult check(Connection &connection, const SelectStmt &base,
                       const Expr &predicate) override;
};

/**
 * Factory by oracle name ("TLP", "NOREC", "PQS", "EET", "ISO");
 * nullptr when unknown.
 */
std::unique_ptr<Oracle> makeOracle(const std::string &name);

} // namespace sqlpp

#endif // SQLPP_CORE_ORACLE_H
