/**
 * @file
 * Test oracles for logic bugs.
 *
 * Both shipped oracles work on a QueryShape (a predicate-free base
 * query Q plus a boolean predicate p) and are DBMS-agnostic — they only
 * issue SQL text and compare result multisets, which is what lets the
 * platform run against any dialect (paper Section 3, "Result
 * validator").
 *
 *  - TLP (Ternary Logic Partitioning, Rigger & Su OOPSLA'20): Q must
 *    equal the multiset union of Q WHERE p, Q WHERE NOT p, and
 *    Q WHERE p IS NULL. Partitions are recombined client-side, so no
 *    UNION support is required of the dialect.
 *  - NoREC (Non-optimizing Reference Engine Construction, ESEC/FSE'20):
 *    SELECT COUNT(*) ... WHERE p (optimized path) must agree with
 *    counting the rows whose projected predicate value is TRUE
 *    (a projection never enters the WHERE optimizer). The projected
 *    form prefers `(p) IS TRUE` and falls back to a CASE expression
 *    when the dialect rejects IS TRUE — learned black-box, per dialect.
 */
#ifndef SQLPP_CORE_ORACLE_H
#define SQLPP_CORE_ORACLE_H

#include <memory>
#include <string>
#include <vector>

#include "core/generator.h"
#include "dialect/connection.h"

namespace sqlpp {

enum class OracleOutcome
{
    /** Queries ran and results were consistent. */
    Passed,
    /** Queries ran and results were inconsistent: a logic bug. */
    Bug,
    /** Some query failed to execute; nothing learned about logic. */
    Skipped,
};

/** Result of one oracle check. */
struct OracleResult
{
    OracleOutcome outcome = OracleOutcome::Skipped;
    /** Human-readable evidence for bug reports. */
    std::string details;
    /** The SQL queries the oracle issued, in order. */
    std::vector<std::string> queries;
};

/** A DBMS-agnostic logic-bug oracle. */
class Oracle
{
  public:
    virtual ~Oracle() = default;
    virtual const char *name() const = 0;

    /** Run the oracle for one base query + predicate. */
    virtual OracleResult check(Connection &connection,
                               const SelectStmt &base,
                               const Expr &predicate) = 0;
};

/** Ternary Logic Partitioning. */
class TlpOracle : public Oracle
{
  public:
    const char *name() const override { return "TLP"; }
    OracleResult check(Connection &connection, const SelectStmt &base,
                       const Expr &predicate) override;
};

/** Non-optimizing Reference Engine Construction. */
class NorecOracle : public Oracle
{
  public:
    const char *name() const override { return "NOREC"; }
    OracleResult check(Connection &connection, const SelectStmt &base,
                       const Expr &predicate) override;
};

/** Factory by oracle name ("TLP", "NOREC"); nullptr when unknown. */
std::unique_ptr<Oracle> makeOracle(const std::string &name);

} // namespace sqlpp

#endif // SQLPP_CORE_ORACLE_H
