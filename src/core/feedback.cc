#include "core/feedback.h"

#include <cstdlib>

#include "util/stats.h"
#include "util/strutil.h"
#include "util/trace.h"

namespace sqlpp {

namespace {

/** Posterior mean as parts-per-million (fits a trace payload). */
uint64_t
probabilityPpm(const FeatureStats &stat)
{
    double mean = beta::mean(
        static_cast<double>(stat.successes) + 1.0,
        static_cast<double>(stat.executions - stat.successes) + 1.0);
    return static_cast<uint64_t>(mean * 1e6);
}

} // namespace

FeatureStats &
FeedbackTracker::mutableStats(FeatureId id)
{
    if (id >= stats_.size()) {
        stats_.resize(id + 1);
        is_query_feature_.resize(id + 1, true);
        classified_.resize(id + 1, false);
    }
    return stats_[id];
}

const FeatureStats &
FeedbackTracker::stats(FeatureId id) const
{
    static const FeatureStats empty;
    return id < stats_.size() ? stats_[id] : empty;
}

void
FeedbackTracker::record(const FeatureSet &features, bool success,
                        bool is_query)
{
    for (FeatureId id : features) {
        FeatureStats &stat = mutableStats(id);
        ++stat.executions;
        ++stat.windowExecutions;
        if (success) {
            ++stat.successes;
            ++stat.windowSuccesses;
        }
        // First writer wins: a feature seen in both setup DDL and
        // queries must not flip between the inline DDL-suppression
        // rule and the posterior-verdict path depending on which
        // statement happened to run last.
        if (!classified_[id]) {
            is_query_feature_[id] = is_query;
            classified_[id] = true;
        }
        if (!is_query_feature_[id] && config_.enabled) {
            // DDL/DML rule: repeated failure with no success suppresses
            // immediately once the limit is reached.
            if (stat.successes == 0 &&
                stat.executions >= config_.ddlFailureLimit) {
                if (!stat.suppressed) {
                    SQLPP_TRACE_EVENT(FeatureSuppressed, "ddl", id,
                                      probabilityPpm(stat));
                }
                stat.suppressed = true;
            }
            if (success)
                stat.suppressed = false;
        }
    }
    ++recorded_;
    if (config_.enabled && config_.updateInterval > 0 &&
        recorded_ % config_.updateInterval == 0) {
        refreshVerdicts();
    }
}

double
FeedbackTracker::estimatedProbability(FeatureId id) const
{
    const FeatureStats &stat = stats(id);
    return beta::mean(static_cast<double>(stat.successes) + 1.0,
                      static_cast<double>(stat.executions -
                                          stat.successes) +
                          1.0);
}

double
FeedbackTracker::massBelowThreshold(FeatureId id) const
{
    const FeatureStats &stat = stats(id);
    double alpha = static_cast<double>(stat.successes) + 1.0;
    double beta_param =
        static_cast<double>(stat.executions - stat.successes) + 1.0;
    return beta::cdf(alpha, beta_param, config_.threshold);
}

void
FeedbackTracker::refreshVerdicts()
{
    for (FeatureId id = 0; id < stats_.size(); ++id) {
        if (!is_query_feature_[id])
            continue; // DDL/DML verdicts are updated inline
        FeatureStats &stat = stats_[id];
        if (stat.executions == 0)
            continue;
        bool suppress = massBelowThreshold(id) >= config_.credibleMass;
        if (suppress && !stat.suppressed) {
            SQLPP_TRACE_EVENT(FeatureSuppressed, "posterior", id,
                              probabilityPpm(stat));
        }
        stat.suppressed = suppress;
    }
}

void
FeedbackTracker::updateNow()
{
    refreshVerdicts();
}

bool
FeedbackTracker::classifiedAsQuery(FeatureId id) const
{
    return id < is_query_feature_.size() ? is_query_feature_[id] : true;
}

bool
FeedbackTracker::isClassified(FeatureId id) const
{
    return id < classified_.size() && classified_[id];
}

void
FeedbackTracker::absorb(const FeedbackTracker &other,
                        const FeatureRegistry &other_registry,
                        FeatureRegistry &registry)
{
    for (FeatureId other_id = 0; other_id < other.stats_.size();
         ++other_id) {
        const FeatureStats &theirs = other.stats_[other_id];
        if (theirs.executions == 0 && theirs.guidedPulls == 0)
            continue;
        const std::string &name = other_registry.name(other_id);
        FeatureId id = registry.intern(name, other_registry.kind(other_id));
        FeatureStats &mine = mutableStats(id);
        mine.executions += theirs.executions;
        mine.successes += theirs.successes;
        mine.windowExecutions += theirs.windowExecutions;
        mine.windowSuccesses += theirs.windowSuccesses;
        mine.guidedPulls += theirs.guidedPulls;
        mine.guidedRewarded += theirs.guidedRewarded;
        if (!classified_[id] && other.isClassified(other_id)) {
            is_query_feature_[id] = other.classifiedAsQuery(other_id);
            classified_[id] = true;
        }
    }
    recorded_ += other.recorded_;
    if (!config_.enabled)
        return;
    // Re-derive every verdict from the merged evidence. DDL/DML
    // features replay the inline repeated-failure rule; query features
    // go through the posterior refresh below.
    for (FeatureId id = 0; id < stats_.size(); ++id) {
        if (is_query_feature_[id])
            continue;
        FeatureStats &stat = stats_[id];
        stat.suppressed = stat.successes == 0 &&
                          stat.executions >= config_.ddlFailureLimit;
    }
    refreshVerdicts();
}

bool
FeedbackTracker::shouldGenerate(FeatureId id) const
{
    if (!config_.enabled)
        return true;
    return !stats(id).suppressed;
}

std::vector<FeatureId>
FeedbackTracker::suppressedFeatures() const
{
    std::vector<FeatureId> out;
    for (FeatureId id = 0; id < stats_.size(); ++id) {
        if (stats_[id].suppressed)
            out.push_back(id);
    }
    return out;
}

void
FeedbackTracker::save(const FeatureRegistry &registry,
                      KvStore &store) const
{
    for (FeatureId id = 0; id < stats_.size(); ++id) {
        const FeatureStats &stat = stats_[id];
        // A pull-only arm (guided generation chose it but no statement
        // outcome was ever recorded) must still round-trip, or resume
        // would replay the bandit with amnesia.
        if (stat.executions == 0 && stat.guidedPulls == 0)
            continue;
        const std::string &name = registry.name(id);
        if (stat.guidedPulls > 0) {
            // Decimal text, not putInt: the counters are uint64 and the
            // int64 accessor would fold UINT64-scale values.
            store.put("feature." + name + ".gp",
                      std::to_string(stat.guidedPulls));
            store.put("feature." + name + ".gr",
                      std::to_string(stat.guidedRewarded));
        }
        store.putInt("feature." + name + ".n",
                     static_cast<int64_t>(stat.executions));
        store.putInt("feature." + name + ".y",
                     static_cast<int64_t>(stat.successes));
        store.putInt("feature." + name + ".wn",
                     static_cast<int64_t>(stat.windowExecutions));
        store.putInt("feature." + name + ".wy",
                     static_cast<int64_t>(stat.windowSuccesses));
        store.putInt("feature." + name + ".suppressed",
                     stat.suppressed ? 1 : 0);
        store.putInt("feature." + name + ".query",
                     id < is_query_feature_.size() &&
                             is_query_feature_[id]
                         ? 1
                         : 0);
    }
    // Statement count, so a restored tracker resumes the interval
    // cadence (and absorb() sums) exactly where the saved one stopped.
    store.putInt("tracker.recorded", static_cast<int64_t>(recorded_));
}

void
FeedbackTracker::load(const FeatureRegistry &registry,
                      const KvStore &store)
{
    if (auto recorded = store.getInt("tracker.recorded"))
        recorded_ = static_cast<uint64_t>(*recorded);
    for (const auto &[key, value] : store.entries()) {
        if (!startsWith(key, "feature.") ||
            key.size() <= 10 /* shortest suffix */) {
            continue;
        }
        size_t last_dot = key.rfind('.');
        if (last_dot == std::string::npos || last_dot <= 8)
            continue;
        std::string name = key.substr(8, last_dot - 8);
        std::string field = key.substr(last_dot + 1);
        FeatureId id = registry.find(name);
        if (id == static_cast<FeatureId>(-1))
            continue;
        FeatureStats &stat = mutableStats(id);
        // Guided-arm counters are stored as decimal text (full uint64
        // range); parse them before the int64 path below.
        if (field == "gp") {
            stat.guidedPulls =
                std::strtoull(value.c_str(), nullptr, 10);
            continue;
        }
        if (field == "gr") {
            stat.guidedRewarded =
                std::strtoull(value.c_str(), nullptr, 10);
            continue;
        }
        auto parsed = store.getInt(key);
        if (!parsed)
            continue;
        if (field == "n")
            stat.executions = static_cast<uint64_t>(*parsed);
        else if (field == "y")
            stat.successes = static_cast<uint64_t>(*parsed);
        else if (field == "wn")
            stat.windowExecutions = static_cast<uint64_t>(*parsed);
        else if (field == "wy")
            stat.windowSuccesses = static_cast<uint64_t>(*parsed);
        else if (field == "suppressed")
            stat.suppressed = *parsed != 0;
        else if (field == "query") {
            is_query_feature_[id] = *parsed != 0;
            classified_[id] = true;
        }
    }
}

} // namespace sqlpp
