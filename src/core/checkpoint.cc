#include "core/checkpoint.h"

#include <array>
#include <charconv>

#include "util/metrics.h"
#include "util/strutil.h"
#include "util/trace.h"

namespace sqlpp {

namespace {

/** Separator for feature-name lists; cannot occur in feature names. */
constexpr char kUnitSep = '\x1f';

/**
 * On-disk format tag. v2 added per-oracle bug counts, the
 * inapplicable-check counter, and per-bug query lists; v3 added the
 * guided-generation arm counters (feature.<name>.gp/.gr inside the
 * feedback section) and the cumPlans field on curve samples. Older
 * files are still readable: the added fields restore to their zero
 * defaults, so a v2 resume simply starts the bandit fresh.
 */
constexpr const char *kFormatV1 = "sqlancerpp-checkpoint-v1";
constexpr const char *kFormatV2 = "sqlancerpp-checkpoint-v2";
constexpr const char *kFormatV3 = "sqlancerpp-checkpoint-v3";

std::optional<uint64_t>
parseU64(std::string_view text)
{
    uint64_t value = 0;
    const char *begin = text.data();
    const char *end = begin + text.size();
    auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr != end || text.empty())
        return std::nullopt;
    return value;
}

uint64_t
countAt(const KvStore &payload, const std::string &key)
{
    auto value = payload.getInt(key);
    return value && *value > 0 ? static_cast<uint64_t>(*value) : 0;
}

} // namespace

KvStore
checkpointShard(const CampaignStats &stats,
                const FeedbackTracker &feedback,
                const FeatureRegistry &registry, size_t worker_index,
                double seconds)
{
    KvStore payload;
    payload.putInt("stats.setupGenerated",
                   static_cast<int64_t>(stats.setupGenerated));
    payload.putInt("stats.setupSucceeded",
                   static_cast<int64_t>(stats.setupSucceeded));
    payload.putInt("stats.checksAttempted",
                   static_cast<int64_t>(stats.checksAttempted));
    payload.putInt("stats.checksValid",
                   static_cast<int64_t>(stats.checksValid));
    payload.putInt("stats.bugsDetected",
                   static_cast<int64_t>(stats.bugsDetected));
    for (const auto &[oracle, count] : stats.bugsByOracle)
        payload.putInt("stats.oracleBugs." + oracle,
                       static_cast<int64_t>(count));
    payload.putInt("stats.checksInapplicable",
                   static_cast<int64_t>(stats.checksInapplicable));
    payload.putInt("stats.resourceErrors",
                   static_cast<int64_t>(stats.resourceErrors));
    payload.putInt("stats.refreshRetries",
                   static_cast<int64_t>(stats.refreshRetries));
    payload.putInt("stats.shardsAbandoned",
                   static_cast<int64_t>(stats.shardsAbandoned));

    // Plan fingerprints are full-range uint64 hashes; the int accessor
    // would fold the high bit, so serialize them as decimal text.
    std::vector<std::string> plans;
    plans.reserve(stats.planFingerprints.size());
    for (uint64_t fingerprint : stats.planFingerprints)
        plans.push_back(std::to_string(fingerprint));
    payload.put("plans", join(plans, " "));

    // Learning-curve samples. Optional keys (absent when the sampler
    // is off), so the format stays v2: v2 readers ignore unknown keys
    // and absent keys restore to an empty curve.
    if (!stats.curve.empty()) {
        payload.putInt("curve.count",
                       static_cast<int64_t>(stats.curve.size()));
        for (size_t j = 0; j < stats.curve.size(); ++j) {
            const CurveSample &sample = stats.curve[j];
            payload.put("curve." + std::to_string(j),
                        format("%llu %llu %llu %llu %llu %llu %llu",
                               (unsigned long long)sample.tick,
                               (unsigned long long)sample.cumAttempted,
                               (unsigned long long)sample.cumValid,
                               (unsigned long long)sample.windowAttempted,
                               (unsigned long long)sample.windowValid,
                               (unsigned long long)sample.suppressed,
                               (unsigned long long)sample.cumPlans));
        }
    }

    payload.putInt("bugs.count",
                   static_cast<int64_t>(stats.prioritizedBugs.size()));
    for (size_t j = 0; j < stats.prioritizedBugs.size(); ++j) {
        const BugCase &bug = stats.prioritizedBugs[j];
        std::string prefix = "bug." + std::to_string(j) + ".";
        payload.put(prefix + "dialect", bug.dialect);
        payload.put(prefix + "oracle", bug.oracle);
        payload.put(prefix + "mode", bug.execMode);
        payload.put(prefix + "base", bug.baseText);
        payload.put(prefix + "predicate", bug.predicateText);
        payload.put(prefix + "details", bug.details);
        std::string names;
        for (size_t k = 0; k < bug.featureNames.size(); ++k) {
            if (k > 0)
                names.push_back(kUnitSep);
            names += bug.featureNames[k];
        }
        payload.put(prefix + "features", names);
        payload.putInt(prefix + "setup.count",
                       static_cast<int64_t>(bug.setup.size()));
        for (size_t k = 0; k < bug.setup.size(); ++k)
            payload.put(prefix + "setup." + std::to_string(k),
                        bug.setup[k]);
        payload.putInt(prefix + "queries.count",
                       static_cast<int64_t>(bug.queries.size()));
        for (size_t k = 0; k < bug.queries.size(); ++k)
            payload.put(prefix + "queries." + std::to_string(k),
                        bug.queries[k]);
    }

    payload.putInt("worker", static_cast<int64_t>(worker_index));
    payload.putDouble("seconds", seconds);

    feedback.save(registry, payload);
    // The tracker saves counters by feature *name*; record each saved
    // feature's kind so restore can re-intern composite features that
    // a fresh registry has never seen.
    for (FeatureId id = 0; id < registry.size(); ++id) {
        const std::string &name = registry.name(id);
        if (payload.get("feature." + name + ".n").has_value())
            payload.putInt("feature." + name + ".kind",
                           static_cast<int64_t>(registry.kind(id)));
    }
    return payload;
}

Status
restoreShard(const KvStore &payload,
             const FeedbackConfig &feedback_config, RestoredShard &out)
{
    out = RestoredShard();
    // Pass 1: re-intern every persisted feature, so the tracker load
    // and the bug feature translation below resolve all names.
    for (const auto &[key, value] : payload.entries()) {
        constexpr std::string_view kKindSuffix = ".kind";
        if (!startsWith(key, "feature.") ||
            key.size() <= 8 + kKindSuffix.size() ||
            key.compare(key.size() - kKindSuffix.size(),
                        kKindSuffix.size(), kKindSuffix) != 0)
            continue;
        std::string name =
            key.substr(8, key.size() - 8 - kKindSuffix.size());
        auto kind = parseU64(value);
        if (!kind ||
            *kind > static_cast<uint64_t>(FeatureKind::Property))
            return Status::runtimeError(
                "checkpoint payload: bad feature kind for " + name);
        out.registry.intern(name, static_cast<FeatureKind>(*kind));
    }

    out.feedback = FeedbackTracker(feedback_config);
    out.feedback.load(out.registry, payload);

    auto stat = [&payload](const char *name) {
        return countAt(payload, std::string("stats.") + name);
    };
    out.stats.setupGenerated = stat("setupGenerated");
    out.stats.setupSucceeded = stat("setupSucceeded");
    out.stats.checksAttempted = stat("checksAttempted");
    out.stats.checksValid = stat("checksValid");
    out.stats.bugsDetected = stat("bugsDetected");
    for (const auto &[key, value] : payload.entries()) {
        constexpr std::string_view kOracleBugs = "stats.oracleBugs.";
        if (!startsWith(key, kOracleBugs) ||
            key.size() <= kOracleBugs.size())
            continue;
        auto count = parseU64(value);
        if (!count)
            return Status::runtimeError(
                "checkpoint payload: bad oracle bug count at " + key);
        out.stats.bugsByOracle[key.substr(kOracleBugs.size())] = *count;
    }
    out.stats.checksInapplicable = stat("checksInapplicable");
    out.stats.resourceErrors = stat("resourceErrors");
    out.stats.refreshRetries = stat("refreshRetries");
    out.stats.shardsAbandoned = stat("shardsAbandoned");

    if (auto plans = payload.get("plans")) {
        for (const std::string &item : split(*plans, ' ')) {
            if (item.empty())
                continue;
            auto fingerprint = parseU64(item);
            if (!fingerprint)
                return Status::runtimeError(
                    "checkpoint payload: bad plan fingerprint: " +
                    item);
            out.stats.planFingerprints.insert(*fingerprint);
        }
    }

    uint64_t curve_count = countAt(payload, "curve.count");
    for (uint64_t j = 0; j < curve_count; ++j) {
        auto row = payload.get("curve." + std::to_string(j));
        if (!row)
            return Status::runtimeError(
                "checkpoint payload: truncated curve sample " +
                std::to_string(j));
        std::vector<std::string> fields = split(*row, ' ');
        // 6 fields = v2 (no cumPlans), 7 = v3.
        if (fields.size() != 6 && fields.size() != 7)
            return Status::runtimeError(
                "checkpoint payload: bad curve sample: " + *row);
        std::array<uint64_t, 7> parsed{};
        for (size_t k = 0; k < fields.size(); ++k) {
            auto value = parseU64(fields[k]);
            if (!value)
                return Status::runtimeError(
                    "checkpoint payload: bad curve sample: " + *row);
            parsed[k] = *value;
        }
        CurveSample sample;
        sample.tick = parsed[0];
        sample.cumAttempted = parsed[1];
        sample.cumValid = parsed[2];
        sample.windowAttempted = parsed[3];
        sample.windowValid = parsed[4];
        sample.suppressed = parsed[5];
        sample.cumPlans = parsed[6];
        out.stats.curve.push_back(sample);
    }

    uint64_t bug_count = countAt(payload, "bugs.count");
    for (uint64_t j = 0; j < bug_count; ++j) {
        std::string prefix = "bug." + std::to_string(j) + ".";
        auto dialect = payload.get(prefix + "dialect");
        auto oracle = payload.get(prefix + "oracle");
        auto base = payload.get(prefix + "base");
        auto predicate = payload.get(prefix + "predicate");
        if (!dialect || !oracle || !base || !predicate)
            return Status::runtimeError(
                "checkpoint payload: truncated bug record " +
                std::to_string(j));
        BugCase bug;
        bug.dialect = *dialect;
        bug.oracle = *oracle;
        // Legacy checkpoints predate the field; empty means optimized.
        bug.execMode = payload.get(prefix + "mode").value_or("");
        bug.baseText = *base;
        bug.predicateText = *predicate;
        bug.details = payload.get(prefix + "details").value_or("");
        if (auto names = payload.get(prefix + "features");
            names && !names->empty())
            bug.featureNames = split(*names, kUnitSep);
        uint64_t setup_count = countAt(payload, prefix + "setup.count");
        for (uint64_t k = 0; k < setup_count; ++k) {
            auto statement =
                payload.get(prefix + "setup." + std::to_string(k));
            if (!statement)
                return Status::runtimeError(
                    "checkpoint payload: truncated setup of bug " +
                    std::to_string(j));
            bug.setup.push_back(*statement);
        }
        uint64_t query_count = countAt(payload, prefix + "queries.count");
        for (uint64_t k = 0; k < query_count; ++k) {
            auto query =
                payload.get(prefix + "queries." + std::to_string(k));
            if (!query)
                return Status::runtimeError(
                    "checkpoint payload: truncated query list of bug " +
                    std::to_string(j));
            bug.queries.push_back(*query);
        }
        out.stats.prioritizedBugs.push_back(std::move(bug));
    }

    out.workerIndex = countAt(payload, "worker");
    out.seconds = payload.getDouble("seconds").value_or(0.0);
    return Status::ok();
}

Status
CampaignCheckpoint::saveTo(const std::string &path) const
{
    SQLPP_SPAN("checkpoint.save.wall_us");
    SQLPP_COUNT("checkpoint.saves");
    KvStore store;
    store.put("meta.format", kFormatV3);
    store.put("meta.fingerprint", std::to_string(configFingerprint));
    store.putInt("meta.totalShards",
                 static_cast<int64_t>(totalShards));
    for (const auto &[index, payload] : shards) {
        std::string prefix = "shard." + std::to_string(index) + ".";
        for (const auto &[key, value] : payload.entries())
            store.put(prefix + key, value);
    }
    // Serialized size before escaping: deterministic for a fixed
    // seed, and within a few bytes of the on-disk file.
    size_t bytes = 0;
    for (const auto &[key, value] : store.entries())
        bytes += key.size() + value.size() + 2;
    SQLPP_OBSERVE("checkpoint.save.bytes", bytes);
    SQLPP_TRACE_EVENT(CheckpointWritten, "", bytes, shards.size());
    return store.save(path);
}

Status
CampaignCheckpoint::loadFrom(const std::string &path)
{
    KvStore store;
    if (Status loaded = store.load(path); !loaded.isOk())
        return loaded;
    auto fmt = store.get("meta.format");
    if (!fmt || (*fmt != kFormatV3 && *fmt != kFormatV2 &&
                 *fmt != kFormatV1))
        return Status::runtimeError(
            "not a campaign checkpoint: " + path);
    auto fingerprint = store.get("meta.fingerprint");
    auto total = store.getInt("meta.totalShards");
    if (!fingerprint || !parseU64(*fingerprint) || !total || *total < 0)
        return Status::runtimeError(
            "campaign checkpoint has broken metadata: " + path);
    configFingerprint = *parseU64(*fingerprint);
    totalShards = static_cast<size_t>(*total);
    shards.clear();
    for (const auto &[key, value] : store.entries()) {
        if (!startsWith(key, "shard."))
            continue;
        size_t dot = key.find('.', 6);
        if (dot == std::string::npos)
            continue;
        auto index = parseU64(std::string_view(key).substr(6, dot - 6));
        if (!index)
            return Status::runtimeError(
                "campaign checkpoint has a broken shard key: " + key);
        shards[static_cast<size_t>(*index)].put(key.substr(dot + 1),
                                                value);
    }
    return Status::ok();
}

} // namespace sqlpp
