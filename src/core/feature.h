/**
 * @file
 * SQL features: the vocabulary shared by the adaptive generator, the
 * validity-feedback mechanism, and the bug prioritizer.
 *
 * A feature is "an element or property in the query language which we
 * expect to be either supported or unsupported by a given DBMS"
 * (paper Section 3). Features exist at the granularities of Table 1:
 * statements, clauses & keywords, expressions (functions/operators),
 * data types — plus composite typed-argument features such as SIN1INT
 * ("the first argument of SIN is an integer") and abstract properties
 * such as whether the dialect tolerates untyped expressions.
 *
 * Features are interned strings: stable FeatureIds for cheap set
 * operations, names for persistence and reports.
 */
#ifndef SQLPP_CORE_FEATURE_H
#define SQLPP_CORE_FEATURE_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sqlir/ast.h"

namespace sqlpp {

using FeatureId = uint32_t;

/** Table 1 feature categories. */
enum class FeatureKind
{
    Statement,
    Clause,
    Function,
    Operator,
    DataType,
    /** Abstract property (typing discipline) or composite arg-type. */
    Property,
};

/** A set of features recorded while generating one statement. */
using FeatureSet = std::set<FeatureId>;

/**
 * Interning registry mapping feature names to ids.
 *
 * Static features (operators, statements, clause keywords, base
 * functions, types) are registered at construction; composite
 * typed-argument features are interned on first use by the generator.
 */
class FeatureRegistry
{
  public:
    FeatureRegistry();

    /** Intern a name (registers it on first use). */
    FeatureId intern(const std::string &name, FeatureKind kind);

    /** Lookup an already-registered name; -1u when unknown. */
    FeatureId find(const std::string &name) const;

    const std::string &name(FeatureId id) const;
    FeatureKind kind(FeatureId id) const;

    size_t size() const { return names_.size(); }

    /** All ids of one kind, for Table 1 style accounting. */
    std::vector<FeatureId> ofKind(FeatureKind kind) const;

    /** Render a feature set as a sorted name list (reports, tests). */
    std::string describe(const FeatureSet &set) const;

  private:
    std::vector<std::string> names_;
    std::vector<FeatureKind> kinds_;
    std::map<std::string, FeatureId> by_name_;
};

/** Canonical feature names for language elements. */
namespace features {

std::string stmt(StmtKind kind);
std::string join(JoinType type);
std::string binaryOp(BinaryOp op);
std::string unaryOp(UnaryOp op);
std::string function(const std::string &upper_name);
/** Composite typed-argument feature, e.g. SIN1INT (paper Fig. 5). */
std::string functionArg(const std::string &upper_name, size_t arg_index,
                        DataType type);
std::string dataType(DataType type);
/**
 * Oracle-attribution property (e.g. ORACLE_PQS), recorded on every
 * prioritized bug so cases flagged by different oracles never subsume
 * one another in the prioritizer's feature-set dedup.
 */
std::string oracle(const std::string &oracle_name);

/** Clause & keyword features. */
inline constexpr const char *kDistinct = "CLAUSE_DISTINCT";
inline constexpr const char *kGroupBy = "CLAUSE_GROUP_BY";
inline constexpr const char *kHaving = "CLAUSE_HAVING";
inline constexpr const char *kOrderBy = "CLAUSE_ORDER_BY";
inline constexpr const char *kLimit = "CLAUSE_LIMIT";
inline constexpr const char *kOffset = "CLAUSE_OFFSET";
inline constexpr const char *kWhere = "CLAUSE_WHERE";
inline constexpr const char *kSubqueryExpr = "SUBQUERY";
inline constexpr const char *kSubqueryFrom = "SUBQUERY_FROM";
inline constexpr const char *kPartialIndex = "KW_PARTIAL_INDEX";
inline constexpr const char *kUniqueIndex = "KW_UNIQUE_INDEX";
inline constexpr const char *kIfNotExists = "KW_IF_NOT_EXISTS";
inline constexpr const char *kOrIgnore = "KW_OR_IGNORE";
inline constexpr const char *kMultiRowInsert = "KW_MULTI_ROW_VALUES";
inline constexpr const char *kPrimaryKey = "KW_PRIMARY_KEY";
inline constexpr const char *kNotNull = "KW_NOT_NULL";
inline constexpr const char *kUniqueColumn = "KW_UNIQUE_COLUMN";
inline constexpr const char *kViewColumnList = "KW_VIEW_COLUMN_LIST";

/** Abstract property: ill-typed expressions tolerated (dynamic typing). */
inline constexpr const char *kUntypedExpr = "PROP_UNTYPED_EXPR";

/** Register every static feature into a registry. */
void registerAll(FeatureRegistry &registry);

} // namespace features

} // namespace sqlpp

#endif // SQLPP_CORE_FEATURE_H
