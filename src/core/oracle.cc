#include "core/oracle.h"

#include <algorithm>
#include <optional>
#include <set>

#include "core/pivot.h"
#include "core/rewrite.h"
#include "core/txn_gen.h"
#include "engine/eval.h"
#include "sqlir/printer.h"
#include "util/metrics.h"
#include "util/strutil.h"
#include "util/trace.h"

namespace sqlpp {

namespace {

/** Clone the base query and attach a WHERE predicate. */
SelectPtr
withWhere(const SelectStmt &base, ExprPtr predicate)
{
    SelectPtr query = base.cloneSelect();
    query->where = std::move(predicate);
    return query;
}

/** TLP check body; the member wraps it with span/outcome metrics. */
OracleResult
runTlp(Connection &connection, const SelectStmt &base,
       const Expr &predicate)
{
    OracleResult result;

    std::string q_text = printSelect(base);
    result.queries.push_back(q_text);
    auto q = connection.execute(q_text);
    if (!q.isOk()) {
        result.details = "base query failed: " + q.status().toString();
        return result;
    }

    // Partitions: p / NOT p / p IS NULL.
    SelectPtr p1 = withWhere(base, predicate.clone());
    SelectPtr p2 = withWhere(
        base,
        std::make_unique<UnaryExpr>(UnaryOp::Not, predicate.clone()));
    SelectPtr p3 = withWhere(
        base,
        std::make_unique<UnaryExpr>(UnaryOp::IsNull, predicate.clone()));

    ResultSet combined;
    for (const SelectPtr *partition : {&p1, &p2, &p3}) {
        std::string text = printSelect(**partition);
        result.queries.push_back(text);
        auto rows = connection.execute(text);
        if (!rows.isOk()) {
            result.details =
                "partition failed: " + rows.status().toString();
            return result;
        }
        combined.absorb(rows.value());
    }

    // DISTINCT bases compare as sets: partitions are recombined and
    // deduplicated client-side (as SQLancer's TLP does), so a faulty
    // engine-side DISTINCT cannot hide.
    if (base.distinct) {
        auto dedupe = [](const ResultSet &in) {
            ResultSet out(in.columns());
            std::set<std::string> seen;
            for (const Row &row : in.rows()) {
                std::string key;
                for (const Value &value : row) {
                    key += value.literal();
                    key.push_back('\x1f');
                }
                if (seen.insert(key).second)
                    out.addRow(row);
            }
            return out;
        };
        ResultSet lhs = dedupe(q.value());
        ResultSet rhs = dedupe(combined);
        if (lhs.sameRowMultiset(rhs)) {
            result.outcome = OracleOutcome::Passed;
            return result;
        }
        result.outcome = OracleOutcome::Bug;
        result.details = format(
            "TLP(DISTINCT) mismatch: base has %zu distinct rows, "
            "partitions %zu",
            lhs.rowCount(), rhs.rowCount());
        return result;
    }
    if (q.value().sameRowMultiset(combined)) {
        result.outcome = OracleOutcome::Passed;
        return result;
    }
    result.outcome = OracleOutcome::Bug;
    result.details = format(
        "TLP mismatch: base returned %zu rows, partitions %zu rows",
        q.value().rowCount(), combined.rowCount());
    return result;
}

/** NoREC check body; the member wraps it with span/outcome metrics. */
OracleResult
runNorec(Connection &connection, const SelectStmt &base,
         const Expr &predicate)
{
    OracleResult result;

    // Optimized side: COUNT(*) under WHERE p.
    SelectPtr counting = base.cloneSelect();
    counting->items.clear();
    SelectItem count_item;
    count_item.expr = std::make_unique<FunctionExpr>(
        "COUNT", std::vector<ExprPtr>{}, /*star=*/true);
    counting->items.push_back(std::move(count_item));
    counting->where = predicate.clone();
    counting->orderBy.clear();
    counting->distinct = false; // NoREC rewrites drop DISTINCT bases
    std::string count_text = printSelect(*counting);
    result.queries.push_back(count_text);
    auto counted = connection.execute(count_text);
    if (!counted.isOk()) {
        result.details =
            "counting query failed: " + counted.status().toString();
        return result;
    }
    if (counted.value().rowCount() != 1 ||
        counted.value().columnCount() != 1 ||
        counted.value().rows()[0][0].kind() != Value::Kind::Int) {
        result.details = "counting query returned a malformed result";
        return result;
    }
    int64_t optimized_count = counted.value().rows()[0][0].asInt();

    // Reference side: project the predicate; the planner never touches
    // projections, so this reaches the non-optimizing evaluation path.
    // Prefer (p) IS TRUE; fall back to CASE on dialects without IS TRUE.
    auto project = [&](ExprPtr flag) {
        SelectPtr projected = base.cloneSelect();
        projected->items.clear();
        SelectItem item;
        item.expr = std::move(flag);
        item.alias = "flag";
        projected->items.push_back(std::move(item));
        projected->orderBy.clear();
        projected->distinct = false;
        return projected;
    };

    // Every issued query is recorded *before* execution, so even a
    // skipped check's repro carries the full statement list (including
    // a failed IS TRUE probe that triggered the CASE fallback).
    SelectPtr reference = project(std::make_unique<UnaryExpr>(
        UnaryOp::IsTrue, predicate.clone()));
    std::string reference_text = printSelect(*reference);
    result.queries.push_back(reference_text);
    auto rows = connection.execute(reference_text);
    if (!rows.isOk()) {
        // Dialect may lack IS TRUE: rewrite with a searched CASE.
        std::vector<CaseExpr::Arm> arms;
        arms.push_back(CaseExpr::Arm{
            predicate.clone(),
            std::make_unique<LiteralExpr>(Value::integer(1))});
        SelectPtr fallback = project(std::make_unique<CaseExpr>(
            nullptr, std::move(arms),
            std::make_unique<LiteralExpr>(Value::integer(0))));
        reference_text = printSelect(*fallback);
        result.queries.push_back(reference_text);
        rows = connection.execute(reference_text);
        if (!rows.isOk()) {
            result.details =
                "reference query failed: " + rows.status().toString();
            return result;
        }
    }

    int64_t reference_count = 0;
    for (const Row &row : rows.value().rows()) {
        const Value &cell = row[0];
        if (cell.kind() == Value::Kind::Bool && cell.asBool())
            ++reference_count;
        else if (cell.kind() == Value::Kind::Int && cell.asInt() == 1)
            ++reference_count;
    }

    if (optimized_count == reference_count) {
        result.outcome = OracleOutcome::Passed;
        return result;
    }
    result.outcome = OracleOutcome::Bug;
    result.details = format(
        "NoREC mismatch: optimized COUNT(*) = %lld, reference = %lld",
        static_cast<long long>(optimized_count),
        static_cast<long long>(reference_count));
    return result;
}

/** PQS check body; the member wraps it with span/outcome metrics. */
OracleResult
runPqs(Connection &connection, const SelectStmt &base,
       const Expr &predicate)
{
    OracleResult result;

    if (!pqsApplicable(base, predicate)) {
        result.outcome = OracleOutcome::Inapplicable;
        result.details = "PQS needs a single-source SELECT * base and "
                         "a subquery-free, aggregate-free predicate";
        return result;
    }

    std::string scan_text = pivotScanText(base);
    result.queries.push_back(scan_text);
    auto scan = connection.execute(scan_text);
    if (!scan.isOk()) {
        result.details =
            "pivot scan failed: " + scan.status().toString();
        return result;
    }
    if (scan.value().rowCount() == 0) {
        result.outcome = OracleOutcome::Inapplicable;
        result.details = "pivot source is empty";
        return result;
    }

    // Deterministic pivot: a pure function of the query shape, so the
    // same check replays identically across workers and resumes.
    std::string predicate_text = printExpr(predicate);
    uint64_t salt = fnv1a(predicate_text, fnv1a(scan_text));
    auto pivot = selectPivot(base, scan.value(), salt);
    if (!pivot.has_value()) {
        result.outcome = OracleOutcome::Inapplicable;
        result.details = "pivot selection failed";
        return result;
    }

    const DialectProfile &profile = connection.profile();
    if (evalOnPivot(predicate, *pivot, profile.behavior) ==
        PivotTruth::Error) {
        result.details =
            "client-side predicate evaluation failed on the pivot";
        return result;
    }
    ExprPtr rectified = rectifyPredicate(predicate, *pivot, profile);
    if (rectified == nullptr) {
        result.outcome = OracleOutcome::Inapplicable;
        result.details =
            "dialect lacks the operators PQS rectification needs";
        return result;
    }
    // Rectification contract (the core_pqs_test property): the clean
    // evaluator must find p' TRUE on the pivot before we ask the
    // server anything.
    if (evalOnPivot(*rectified, *pivot, profile.behavior) !=
        PivotTruth::True) {
        result.details = "rectified predicate is not TRUE on the pivot";
        return result;
    }

    SelectPtr containment = withWhere(base, std::move(rectified));
    std::string containment_text = printSelect(*containment);
    result.queries.push_back(containment_text);
    auto rows = connection.execute(containment_text);
    if (!rows.isOk()) {
        result.details =
            "containment query failed: " + rows.status().toString();
        return result;
    }

    auto sameRow = [](const Row &lhs, const Row &rhs) {
        if (lhs.size() != rhs.size())
            return false;
        for (size_t i = 0; i < lhs.size(); ++i)
            if (lhs[i].literal() != rhs[i].literal())
                return false;
        return true;
    };
    for (const Row &row : rows.value().rows()) {
        if (sameRow(row, pivot->row)) {
            result.outcome = OracleOutcome::Passed;
            return result;
        }
    }

    std::vector<std::string> cells;
    cells.reserve(pivot->row.size());
    for (const Value &value : pivot->row)
        cells.push_back(value.literal());
    result.outcome = OracleOutcome::Bug;
    result.details = format(
        "PQS containment violation: pivot row %zu/%zu (%s) satisfies "
        "the rectified predicate client-side but is missing from the "
        "%zu returned rows",
        pivot->rowIndex + 1, pivot->tableRows,
        join(cells, ", ").c_str(), rows.value().rowCount());
    return result;
}

/** EET check body; the member wraps it with span/outcome metrics. */
OracleResult
runEet(Connection &connection, const SelectStmt &base,
       const Expr &predicate)
{
    OracleResult result;
    const DialectProfile &profile = connection.profile();

    // Deterministic rewrite choice: a pure function of the query shape,
    // so the same check replays identically across workers and resumes.
    std::string base_text = printSelect(base);
    std::string predicate_text = printExpr(predicate);
    uint64_t salt = fnv1a(predicate_text, fnv1a(base_text));

    // Data-aware lane: single-source bases get a statistics scan that
    // seeds the tautology-conjunct rewrites. Other shapes degrade to
    // the identity wrappers, not to Inapplicable.
    std::optional<EetTableStats> stats;
    if (eetStatsApplicable(base)) {
        std::string scan_text = eetStatsScanText(base);
        result.queries.push_back(scan_text);
        auto scan = connection.execute(scan_text);
        if (!scan.isOk()) {
            result.details =
                "stats scan failed: " + scan.status().toString();
            return result;
        }
        stats = computeTableStats(base, scan.value());
    }

    auto rewrite = chooseRewrite(predicate, salt, profile,
                                 stats ? &*stats : nullptr);
    if (!rewrite.has_value()) {
        result.outcome = OracleOutcome::Inapplicable;
        result.details = "dialect supports none of EET's 3VL-safe "
                         "wrapper operators for this predicate";
        return result;
    }

    // WHERE lane: truth-preservation is all the rewrite guarantees in
    // general, and all that WHERE membership can observe.
    SelectPtr original = withWhere(base, predicate.clone());
    SelectPtr rewritten = withWhere(base, rewrite->expr->clone());
    std::string original_text = printSelect(*original);
    result.queries.push_back(original_text);
    auto lhs = connection.execute(original_text);
    if (!lhs.isOk()) {
        result.details =
            "original query failed: " + lhs.status().toString();
        return result;
    }
    std::string rewritten_text = printSelect(*rewritten);
    result.queries.push_back(rewritten_text);
    auto rhs = connection.execute(rewritten_text);
    if (!rhs.isOk()) {
        result.details =
            "rewritten query failed: " + rhs.status().toString();
        return result;
    }
    if (!lhs.value().sameRowMultiset(rhs.value())) {
        result.outcome = OracleOutcome::Bug;
        result.details = format(
            "EET WHERE mismatch (%s): original returned %zu rows, "
            "rewrite %zu rows",
            rewrite->kind, lhs.value().rowCount(),
            rhs.value().rowCount());
        return result;
    }

    // Projection lane: evaluate p and p' as *values*, where NULL and
    // FALSE stop being interchangeable. Only sound when the rewrite is
    // value-preserving, i.e. for boolean-rooted predicates; grouped
    // bases are out (a bare predicate is not a grouped expression).
    if (exprBooleanRooted(predicate) && base.groupBy.empty() &&
        base.having == nullptr && !exprContainsAggregate(predicate)) {
        auto project = [&base](const Expr &flag) {
            SelectPtr query = base.cloneSelect();
            query->items.clear();
            SelectItem item;
            item.expr = flag.clone();
            item.alias = "eet";
            query->items.push_back(std::move(item));
            query->distinct = false;
            query->orderBy.clear();
            query->limit = -1;
            query->offset = -1;
            return query;
        };
        SelectPtr p_lane = project(predicate);
        std::string p_text = printSelect(*p_lane);
        result.queries.push_back(p_text);
        auto p_rows = connection.execute(p_text);
        if (!p_rows.isOk()) {
            result.details = "original projection failed: " +
                             p_rows.status().toString();
            return result;
        }
        SelectPtr q_lane = project(*rewrite->expr);
        std::string q_text = printSelect(*q_lane);
        result.queries.push_back(q_text);
        auto q_rows = connection.execute(q_text);
        if (!q_rows.isOk()) {
            result.details = "rewritten projection failed: " +
                             q_rows.status().toString();
            return result;
        }
        if (!p_rows.value().sameRowMultiset(q_rows.value())) {
            result.outcome = OracleOutcome::Bug;
            result.details = format(
                "EET projection mismatch (%s): p and its rewrite "
                "disagree as projected values over %zu rows",
                rewrite->kind, p_rows.value().rowCount());
            return result;
        }
    }

    result.outcome = OracleOutcome::Passed;
    return result;
}

/** Interleaved schedules checked per ISO invocation (sub-salted). */
constexpr size_t kIsoSchedulesPerCheck = 4;

/** Per-session schedule facts the witness construction needs. */
struct IsoSessionMeta
{
    size_t beginTick = 0;
    bool committed = false;
    size_t commitTick = 0;
};

std::vector<IsoSessionMeta>
analyzeSchedule(const TxnSchedule &schedule)
{
    std::vector<IsoSessionMeta> meta(schedule.sessions);
    for (size_t tick = 0; tick < schedule.steps.size(); ++tick) {
        const TxnStep &step = schedule.steps[tick];
        if (step.sql == "BEGIN") {
            meta[step.session].beginTick = tick;
        } else if (step.sql == "COMMIT") {
            meta[step.session].committed = true;
            meta[step.session].commitTick = tick;
        }
    }
    return meta;
}

/** Ordered row rendering for bug evidence and ordered comparison. */
std::string
renderRowsOrdered(const ResultSet &rows)
{
    std::string out;
    for (const Row &row : rows.rows()) {
        if (!out.empty())
            out += " ";
        out += "(";
        for (size_t i = 0; i < row.size(); ++i) {
            if (i > 0)
                out += ", ";
            out += row[i].literal();
        }
        out += ")";
    }
    return out;
}

/**
 * Sessions of `schedule` that committed before `beforeTick`, in commit
 * order — the serial prefix a snapshot taken at that tick must show.
 */
std::vector<size_t>
committedBefore(const std::vector<IsoSessionMeta> &meta,
                size_t beforeTick)
{
    std::vector<size_t> order;
    for (size_t session = 0; session < meta.size(); ++session) {
        if (meta[session].committed &&
            meta[session].commitTick < beforeTick)
            order.push_back(session);
    }
    std::sort(order.begin(), order.end(),
              [&meta](size_t a, size_t b) {
                  return meta[a].commitTick < meta[b].commitTick;
              });
    return order;
}

/**
 * The serial-order witness for one read (or, with readTick ==
 * schedule.steps.size(), for the final committed state): a fault-free
 * engine replays setup, then every session committed before the
 * relevant tick serially in commit order, then — for a read — the
 * reading session's own statement prefix, and finally the probe query.
 */
StatusOr<ResultSet>
isoWitness(const EngineBehavior &behavior, const TxnSchedule &schedule,
           const std::vector<IsoSessionMeta> &meta, size_t readTick)
{
    EngineConfig config;
    config.behavior = behavior;
    Database witness(config);
    for (const std::string &statement : schedule.setup) {
        auto r = witness.execute(statement);
        if (!r.isOk())
            return r.status();
    }
    bool final_state = readTick >= schedule.steps.size();
    size_t reader =
        final_state ? 0 : schedule.steps[readTick].session;
    size_t horizon = final_state ? schedule.steps.size()
                                 : meta[reader].beginTick;
    for (size_t session : committedBefore(meta, horizon)) {
        if (!final_state && session == reader)
            continue;
        for (const TxnStep &step : schedule.steps) {
            if (step.session != session)
                continue;
            auto r = witness.execute(step.sql);
            if (!r.isOk())
                return r.status();
        }
    }
    if (final_state)
        return witness.execute(schedule.finalQuery);
    for (size_t tick = meta[reader].beginTick; tick < readTick; ++tick) {
        const TxnStep &step = schedule.steps[tick];
        if (step.session != reader)
            continue;
        auto r = witness.execute(step.sql);
        if (!r.isOk())
            return r.status();
    }
    return witness.execute(schedule.steps[readTick].sql);
}

/** Run one schedule: observed (faulty) engine vs serial witnesses. */
OracleResult
runIsoSchedule(const DialectProfile &profile,
               const TxnSchedule &schedule)
{
    OracleResult result;
    result.queries = renderTxnSchedule(schedule);
    std::vector<IsoSessionMeta> meta = analyzeSchedule(schedule);

    EngineConfig observed_config;
    observed_config.behavior = profile.behavior;
    observed_config.faults = profile.faults;
    Database observed(observed_config);
    for (const std::string &statement : schedule.setup) {
        auto r = observed.execute(statement);
        if (!r.isOk()) {
            result.details =
                "setup failed: " + r.status().toString();
            return result;
        }
    }
    std::vector<SessionId> sessions;
    for (size_t s = 0; s < schedule.sessions; ++s)
        sessions.push_back(observed.openSession());

    for (size_t tick = 0; tick < schedule.steps.size(); ++tick) {
        const TxnStep &step = schedule.steps[tick];
        auto r = observed.execute(step.sql, sessions[step.session]);
        if (!r.isOk()) {
            result.details = format("t%02zu failed: ", tick) +
                             r.status().toString();
            return result;
        }
        if (!step.isRead)
            continue;
        auto expected = isoWitness(profile.behavior, schedule, meta,
                                   tick);
        if (!expected.isOk()) {
            result.details = "witness failed: " +
                             expected.status().toString();
            return result;
        }
        std::string got = renderRowsOrdered(r.value());
        std::string want = renderRowsOrdered(expected.value());
        if (got != want) {
            result.outcome = OracleOutcome::Bug;
            result.details = format(
                "isolation fault: t%02zu s%zu `%s` returned [%s] but "
                "the serial-order witness returns [%s]",
                tick, step.session, step.sql.c_str(), got.c_str(),
                want.c_str());
            return result;
        }
    }

    // Final committed state vs serial replay of committed sessions.
    auto final_observed = observed.execute(schedule.finalQuery);
    if (!final_observed.isOk()) {
        result.details = "final read failed: " +
                         final_observed.status().toString();
        return result;
    }
    auto final_expected = isoWitness(profile.behavior, schedule, meta,
                                     schedule.steps.size());
    if (!final_expected.isOk()) {
        result.details = "final witness failed: " +
                         final_expected.status().toString();
        return result;
    }
    std::string got = renderRowsOrdered(final_observed.value());
    std::string want = renderRowsOrdered(final_expected.value());
    if (got != want) {
        result.outcome = OracleOutcome::Bug;
        result.details = format(
            "isolation fault: final committed state `%s` returned "
            "[%s] but serial replay of the committed sessions "
            "returns [%s]",
            schedule.finalQuery.c_str(), got.c_str(), want.c_str());
        return result;
    }
    result.outcome = OracleOutcome::Passed;
    return result;
}

/** ISO check body; the member wraps it with span/outcome metrics. */
OracleResult
runIso(Connection &connection, const SelectStmt &base,
       const Expr &predicate)
{
    OracleResult result;
    const DialectProfile &profile = connection.profile();
    if (!profile.clauses.transactions ||
        profile.requiresRefreshAfterInsert) {
        result.outcome = OracleOutcome::Inapplicable;
        result.details =
            "dialect does not support interleaved transactions";
        return result;
    }
    // The salt idiom: the schedules are a pure function of the handed
    // query shape, so every replay path (reducer probes, dossier
    // replay, crash-resume) regenerates the identical interleavings.
    std::string base_text = printSelect(base);
    std::string predicate_text = printExpr(predicate);
    uint64_t salt = fnv1a(predicate_text, fnv1a(base_text));
    for (size_t round = 0; round < kIsoSchedulesPerCheck; ++round) {
        TxnSchedule schedule = generateTxnSchedule(
            salt + round * 0x9e3779b97f4a7c15ULL);
        OracleResult one = runIsoSchedule(profile, schedule);
        if (one.outcome != OracleOutcome::Passed)
            return one;
        if (round == 0)
            result.queries = std::move(one.queries);
    }
    result.outcome = OracleOutcome::Passed;
    return result;
}

} // namespace

OracleResult
TlpOracle::check(Connection &connection, const SelectStmt &base,
                 const Expr &predicate)
{
    SQLPP_SPAN("oracle.tlp.wall_us");
    OracleResult result = runTlp(connection, base, predicate);
    SQLPP_TRACE_EVENT(OracleCheck, "tlp",
                      static_cast<uint64_t>(result.outcome), 0);
    switch (result.outcome) {
      case OracleOutcome::Passed: SQLPP_COUNT("oracle.tlp.pass"); break;
      case OracleOutcome::Bug: SQLPP_COUNT("oracle.tlp.bug"); break;
      case OracleOutcome::Skipped: SQLPP_COUNT("oracle.tlp.skip"); break;
      case OracleOutcome::Inapplicable: break; // TLP always applies
    }
    return result;
}

OracleResult
NorecOracle::check(Connection &connection, const SelectStmt &base,
                   const Expr &predicate)
{
    SQLPP_SPAN("oracle.norec.wall_us");
    OracleResult result = runNorec(connection, base, predicate);
    SQLPP_TRACE_EVENT(OracleCheck, "norec",
                      static_cast<uint64_t>(result.outcome), 0);
    switch (result.outcome) {
      case OracleOutcome::Passed:
        SQLPP_COUNT("oracle.norec.pass");
        break;
      case OracleOutcome::Bug:
        SQLPP_COUNT("oracle.norec.bug");
        break;
      case OracleOutcome::Skipped:
        SQLPP_COUNT("oracle.norec.skip");
        break;
      case OracleOutcome::Inapplicable:
        break; // NoREC always applies
    }
    return result;
}

OracleResult
PqsOracle::check(Connection &connection, const SelectStmt &base,
                 const Expr &predicate)
{
    SQLPP_SPAN("oracle.pqs.wall_us");
    OracleResult result = runPqs(connection, base, predicate);
    SQLPP_TRACE_EVENT(OracleCheck, "pqs",
                      static_cast<uint64_t>(result.outcome), 0);
    switch (result.outcome) {
      case OracleOutcome::Passed:
        SQLPP_COUNT("oracle.pqs.pass");
        break;
      case OracleOutcome::Bug:
        SQLPP_COUNT("oracle.pqs.bug");
        break;
      case OracleOutcome::Skipped:
        SQLPP_COUNT("oracle.pqs.skip");
        break;
      case OracleOutcome::Inapplicable:
        SQLPP_COUNT("oracle.pqs.inapplicable");
        break;
    }
    return result;
}

OracleResult
EetOracle::check(Connection &connection, const SelectStmt &base,
                 const Expr &predicate)
{
    SQLPP_SPAN("oracle.eet.wall_us");
    OracleResult result = runEet(connection, base, predicate);
    SQLPP_TRACE_EVENT(OracleCheck, "eet",
                      static_cast<uint64_t>(result.outcome), 0);
    switch (result.outcome) {
      case OracleOutcome::Passed:
        SQLPP_COUNT("oracle.eet.pass");
        break;
      case OracleOutcome::Bug:
        SQLPP_COUNT("oracle.eet.bug");
        break;
      case OracleOutcome::Skipped:
        SQLPP_COUNT("oracle.eet.skip");
        break;
      case OracleOutcome::Inapplicable:
        SQLPP_COUNT("oracle.eet.inapplicable");
        break;
    }
    return result;
}

OracleResult
IsolationOracle::check(Connection &connection, const SelectStmt &base,
                       const Expr &predicate)
{
    SQLPP_SPAN("oracle.iso.wall_us");
    OracleResult result = runIso(connection, base, predicate);
    SQLPP_TRACE_EVENT(OracleCheck, "iso",
                      static_cast<uint64_t>(result.outcome), 0);
    switch (result.outcome) {
      case OracleOutcome::Passed:
        SQLPP_COUNT("oracle.iso.pass");
        break;
      case OracleOutcome::Bug:
        SQLPP_COUNT("oracle.iso.bug");
        break;
      case OracleOutcome::Skipped:
        SQLPP_COUNT("oracle.iso.skip");
        break;
      case OracleOutcome::Inapplicable:
        SQLPP_COUNT("oracle.iso.inapplicable");
        break;
    }
    return result;
}

std::unique_ptr<Oracle>
makeOracle(const std::string &name)
{
    std::string upper = toUpper(name);
    if (upper == "TLP")
        return std::make_unique<TlpOracle>();
    if (upper == "NOREC")
        return std::make_unique<NorecOracle>();
    if (upper == "PQS")
        return std::make_unique<PqsOracle>();
    if (upper == "EET")
        return std::make_unique<EetOracle>();
    if (upper == "ISO")
        return std::make_unique<IsolationOracle>();
    return nullptr;
}

} // namespace sqlpp
