#include "core/schema_model.h"

#include <algorithm>

namespace sqlpp {

void
SchemaModel::addTable(ModelTable table)
{
    tables_.push_back(std::move(table));
    ++name_counter_;
}

void
SchemaModel::addIndex(ModelIndex index)
{
    indexes_.push_back(std::move(index));
    ++name_counter_;
}

void
SchemaModel::dropTable(const std::string &name)
{
    tables_.erase(std::remove_if(tables_.begin(), tables_.end(),
                                 [&](const ModelTable &table) {
                                     return table.name == name;
                                 }),
                  tables_.end());
    indexes_.erase(std::remove_if(indexes_.begin(), indexes_.end(),
                                  [&](const ModelIndex &index) {
                                      return index.table == name;
                                  }),
                   indexes_.end());
}

void
SchemaModel::dropIndex(const std::string &name)
{
    indexes_.erase(std::remove_if(indexes_.begin(), indexes_.end(),
                                  [&](const ModelIndex &index) {
                                      return index.name == name;
                                  }),
                   indexes_.end());
}

void
SchemaModel::noteInsert(const std::string &table_name, size_t rows)
{
    for (ModelTable &table : tables_) {
        if (table.name == table_name) {
            table.assumedRows += rows;
            return;
        }
    }
}

bool
SchemaModel::hasTable(const std::string &name) const
{
    return table(name) != nullptr;
}

const ModelTable *
SchemaModel::table(const std::string &name) const
{
    for (const ModelTable &table : tables_) {
        if (table.name == name)
            return &table;
    }
    return nullptr;
}

size_t
SchemaModel::tableCount(bool views) const
{
    size_t count = 0;
    for (const ModelTable &table : tables_) {
        if (table.isView == views)
            ++count;
    }
    return count;
}

std::string
SchemaModel::freeName(const std::string &prefix) const
{
    // Monotone counter guarantees freshness even across drops.
    return prefix + std::to_string(name_counter_);
}

std::optional<std::string>
SchemaModel::randomTable(Rng &rng, bool include_views) const
{
    std::vector<const ModelTable *> candidates;
    for (const ModelTable &table : tables_) {
        if (include_views || !table.isView)
            candidates.push_back(&table);
    }
    if (candidates.empty())
        return std::nullopt;
    return candidates[rng.below(candidates.size())]->name;
}

std::optional<std::string>
SchemaModel::randomBaseTable(Rng &rng) const
{
    std::vector<const ModelTable *> candidates;
    for (const ModelTable &table : tables_) {
        if (!table.isView)
            candidates.push_back(&table);
    }
    if (candidates.empty())
        return std::nullopt;
    return candidates[rng.below(candidates.size())]->name;
}

std::optional<std::string>
SchemaModel::randomIndex(Rng &rng) const
{
    if (indexes_.empty())
        return std::nullopt;
    return indexes_[rng.below(indexes_.size())].name;
}

} // namespace sqlpp
