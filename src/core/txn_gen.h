/**
 * @file
 * Multi-session transaction schedule generation.
 *
 * The single-session oracles (TLP/NoREC/PQS/EET) are structurally blind
 * to isolation bugs: every schedule they ever produce has one session
 * and auto-commits, where the FaultId 60-block is an exact no-op. This
 * generator produces the missing stimulus — small, deterministic
 * interleavings of 2–3 sessions over a shared schema, each session an
 * explicit BEGIN … COMMIT/ROLLBACK block with INSERTs, snapshot reads
 * and occasional savepoints, merged into one global tick order.
 *
 * Determinism is the load-bearing property: a schedule is a pure
 * function of a 64-bit salt, and the IsolationOracle derives that salt
 * from the query shape it is handed (the same idiom PQS uses for its
 * pivot and EET for its rewrite choice). Replay, the reducer's
 * reproduction probes, multi-worker campaigns and crash-resume all
 * regenerate bit-identical schedules from the dossier metadata alone.
 *
 * The statement vocabulary is deliberately narrow — integer columns,
 * no NULLs, no indexes, no joins, no aggregates beyond COUNT(*) — so
 * that none of the 22 single-session faults can fire inside a
 * schedule. Any mismatch an interleaving exposes is therefore
 * attributable to the isolation family, which keeps the fault ×
 * oracle ground-truth matrix clean (ISO column zero on every
 * single-session fault, and the 60-block rows ISO-only).
 */
#ifndef SQLPP_CORE_TXN_GEN_H
#define SQLPP_CORE_TXN_GEN_H

#include <cstdint>
#include <string>
#include <vector>

namespace sqlpp {

/** One statement of an interleaved schedule, in global tick order. */
struct TxnStep
{
    /** 0-based index of the issuing session. */
    size_t session = 0;
    /** The statement text (no trailing semicolon). */
    std::string sql;
    /** True for SELECTs whose rows the oracle checks against a witness. */
    bool isRead = false;
};

/** A deterministic interleaved multi-session schedule. */
struct TxnSchedule
{
    /** Number of concurrent sessions (2 or 3). */
    size_t sessions = 2;
    /** Auto-committed schema + seed data, run before the first tick. */
    std::vector<std::string> setup;
    /** The interleaving; a step's index is its tick. */
    std::vector<TxnStep> steps;
    /** Canonical full-table read used for the final-state check. */
    std::string finalQuery;
};

/**
 * Generate the schedule for `salt`. Pure: equal salts yield equal
 * schedules. Every session's block is BEGIN-opened and closed by
 * COMMIT or ROLLBACK, so a full run leaves no transaction open.
 */
TxnSchedule generateTxnSchedule(uint64_t salt);

/**
 * Render the schedule as tick-annotated script lines
 * ("setup: …", "t03 s1: …") — the form embedded in a bug dossier's
 * repro.sql so the interleaving that exposed an isolation fault is
 * readable (and diffable) straight from the dossier.
 */
std::vector<std::string> renderTxnSchedule(const TxnSchedule &schedule);

} // namespace sqlpp

#endif // SQLPP_CORE_TXN_GEN_H
