/**
 * @file
 * Validity feedback: the statistical core of the adaptive generator.
 *
 * For each feature the tracker records total executions N and successes
 * y within the current update window. Queries use the paper's
 * Beta–Binomial model (Section 4): under a uniform prior the posterior
 * of a feature's success probability is Beta(y+1, N−y+1); when at least
 * `credibleMass` of that posterior lies below the user threshold p, the
 * feature is deemed unsupported and its generation probability drops to
 * zero (other alternatives staying uniform). DDL/DML features use the
 * simpler repeated-failure rule the paper describes. Learned state can
 * be persisted and reloaded (paper step 4 → step 1).
 */
#ifndef SQLPP_CORE_FEEDBACK_H
#define SQLPP_CORE_FEEDBACK_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/feature.h"
#include "util/persist.h"
#include "util/status.h"

namespace sqlpp {

/** Tunables of the feedback mechanism. */
struct FeedbackConfig
{
    /** Whether feedback influences generation at all (ablation knob). */
    bool enabled = true;
    /**
     * Minimum acceptable success probability p. The paper uses 1% with
     * an update interval of 100K statements; at this library's bench
     * scale (thousands of statements) the default is 5% so features
     * reach a verdict after ~45 consecutive failures instead of ~300.
     * The paper's setting remains available (the Table 4 bench sweeps
     * it).
     */
    double threshold = 0.05;
    /** Posterior mass below p required to suppress a feature. */
    double credibleMass = 0.90;
    /**
     * Update interval I: probabilities are recomputed every I recorded
     * statements (paper: 100K; defaults lower so benches converge in
     * seconds at our scale).
     */
    uint64_t updateInterval = 500;
    /** DDL/DML rule: failures-without-success before suppression. */
    uint64_t ddlFailureLimit = 10;
};

/** Per-feature counters and the current verdict. */
struct FeatureStats
{
    uint64_t executions = 0;
    uint64_t successes = 0;
    /** Window counters since the last interval update. */
    uint64_t windowExecutions = 0;
    uint64_t windowSuccesses = 0;
    /**
     * Guided-generation arm state (core/guidance.h): how often the
     * bandit pulled this arm, and how many of those pulls surfaced a
     * new plan fingerprint or coverage probe. Kept beside the validity
     * counters so absorb()/save()/load() move the bandit state through
     * the same deterministic channels as the feedback itself.
     */
    uint64_t guidedPulls = 0;
    uint64_t guidedRewarded = 0;
    bool suppressed = false;
};

/** Tracks validity feedback and decides which features to suppress. */
class FeedbackTracker
{
  public:
    explicit FeedbackTracker(FeedbackConfig config = {})
        : config_(config) {}

    /**
     * Record the outcome of executing one statement whose generation
     * used `features`. Success/failure is attributed to every feature
     * in the set (paper Fig. 5 step 2). `is_query` classifies the
     * feature on first sight — the classification is sticky (first
     * writer wins), so a feature seen in both setup DDL and queries is
     * judged by one rule consistently: the Bayesian rule for query
     * features, the repeated-failure rule for DDL/DML features.
     */
    void record(const FeatureSet &features, bool success, bool is_query);

    /** Sticky classification of a feature (true = query rule). */
    bool classifiedAsQuery(FeatureId id) const;

    /** Whether the feature has been classified (recorded or loaded). */
    bool isClassified(FeatureId id) const;

    /**
     * Merge another tracker's observations into this one (the post-run
     * fan-in of a parallel campaign). Feature ids are translated by
     * *name*: `other_registry` names the other tracker's ids and
     * `registry` interns them into this tracker's id space, so shards
     * whose registries interned composite features in different orders
     * merge correctly. Counters are summed, unclassified features adopt
     * the other side's classification, and every verdict is recomputed
     * from the merged evidence — a merged tracker can reach verdicts
     * (e.g. 2x200 failures) that no single shard could.
     */
    void absorb(const FeedbackTracker &other,
                const FeatureRegistry &other_registry,
                FeatureRegistry &registry);

    /**
     * True if the generator may use this feature (paper Listing 2's
     * shouldGenerate). Always true while feedback is disabled.
     */
    bool shouldGenerate(FeatureId id) const;

    /** Posterior mean success probability of a feature. */
    double estimatedProbability(FeatureId id) const;

    /** Posterior mass below the threshold (the suppression statistic). */
    double massBelowThreshold(FeatureId id) const;

    /**
     * Guided-generation hooks (core/guidance.h). Pulls and rewards are
     * plain counters beside the validity stats; they never influence
     * verdicts, only the bandit's scores.
     */
    void noteGuidedPull(FeatureId id) { ++mutableStats(id).guidedPulls; }
    void noteGuidedReward(FeatureId id)
    {
        ++mutableStats(id).guidedRewarded;
    }

    /** Force a probability update outside the interval (tests, load). */
    void updateNow();

    /** Number of statements recorded so far. */
    uint64_t recorded() const { return recorded_; }

    /** Features currently suppressed. */
    std::vector<FeatureId> suppressedFeatures() const;

    const FeedbackConfig &config() const { return config_; }
    const FeatureStats &stats(FeatureId id) const;

    /**
     * Persist learned state into a KvStore, keyed by feature *name*
     * (robust across runs with different interning orders).
     */
    void save(const FeatureRegistry &registry, KvStore &store) const;

    /** Load previously learned state. Unknown keys are ignored. */
    void load(const FeatureRegistry &registry, const KvStore &store);

  private:
    FeatureStats &mutableStats(FeatureId id);
    void refreshVerdicts();

    FeedbackConfig config_;
    std::vector<FeatureStats> stats_;
    std::vector<bool> is_query_feature_;
    /** Whether is_query_feature_[id] has been decided (sticky). */
    std::vector<bool> classified_;
    uint64_t recorded_ = 0;
};

} // namespace sqlpp

#endif // SQLPP_CORE_FEEDBACK_H
