/**
 * @file
 * Pivot selection and predicate rectification for the PQS oracle.
 *
 * PQS (Pivoted Query Synthesis, Rigger & Su OSDI'20) picks one concrete
 * row — the *pivot* — from the query's source, rectifies a random
 * predicate p into p' so that a correct engine must evaluate p' to TRUE
 * on the pivot, and then asserts the pivot row is contained in
 * `SELECT * FROM t WHERE p'`. The reference semantics come from our own
 * three-valued evaluator running client-side with the fault set
 * disabled, so any server-side deviation — planner, evaluator, or
 * executor — surfaces as a missing pivot row. Containment is a
 * single-row check, not multiset equality, which is what lets PQS catch
 * row-loss faults that are invisible to TLP (they deviate consistently
 * across all three partitions) and to NoREC (they affect both the
 * optimized and the reference side).
 *
 * Rectification is feature-gated: the wrappers it may emit (NOT p,
 * (p) IS FALSE, (p) IS NULL) are only used when the dialect's learned
 * capability matrix accepts the operator, so rectified queries stay
 * inside the dialect the generator has discovered.
 */
#ifndef SQLPP_CORE_PIVOT_H
#define SQLPP_CORE_PIVOT_H

#include <optional>
#include <string>
#include <vector>

#include "dialect/profile.h"
#include "engine/eval.h"
#include "sqlir/ast.h"
#include "sqlir/value.h"

namespace sqlpp {

/** One concrete row of the base query's single source. */
struct Pivot
{
    /** Binding name of the FROM item (alias if present, else name). */
    std::string binding;
    /** Unqualified column names, in row order. */
    std::vector<std::string> columns;
    /** The pivot row's values. */
    Row row;
    /** Index of the pivot within the scan result (diagnostics). */
    size_t rowIndex = 0;
    /** Rows the source held when the pivot was chosen (diagnostics). */
    size_t tableRows = 0;
};

/** Three-valued client-side evaluation outcome, plus hard failure. */
enum class PivotTruth
{
    True,
    False,
    Null,
    /** Evaluation raised a runtime/semantic error; nothing learned. */
    Error,
};

/**
 * Whether PQS can check this shape at all: a single base-table/view
 * source (no joins, no derived table), a plain `SELECT *` list with no
 * grouping or row-count clamps, and a predicate free of subqueries and
 * aggregates (the client-side evaluator is deliberately standalone).
 */
bool pqsApplicable(const SelectStmt &base, const Expr &predicate);

/**
 * The scan query PQS issues to fetch candidate pivot rows: the base
 * with DISTINCT/WHERE/ORDER BY/LIMIT stripped, i.e. `SELECT *` over the
 * single source.
 */
std::string pivotScanText(const SelectStmt &base);

/**
 * Deterministically pick the pivot row from an executed scan:
 * `salt % rowCount`, no RNG, so the choice is a pure function of the
 * query shape and replays identically across workers and resumes.
 * nullopt when the scan is empty.
 */
std::optional<Pivot> selectPivot(const SelectStmt &base,
                                 const ResultSet &scan, uint64_t salt);

/**
 * Clean-reference three-valued evaluation of the predicate on the pivot
 * row: the dialect's behaviour knobs apply, its fault set does not.
 */
PivotTruth evalOnPivot(const Expr &predicate, const Pivot &pivot,
                       const EngineBehavior &behavior);

/**
 * Rectify p into p' whose clean evaluation on the pivot is TRUE:
 * p itself when TRUE, `NOT (p)` (or `(p) IS FALSE`) when FALSE, and
 * `(p) IS NULL` when NULL — using only operators the profile accepts.
 * nullptr when evaluation fails or the dialect lacks every applicable
 * wrapper.
 */
ExprPtr rectifyPredicate(const Expr &predicate, const Pivot &pivot,
                         const DialectProfile &profile);

} // namespace sqlpp

#endif // SQLPP_CORE_PIVOT_H
