#include "core/generator.h"

#include <algorithm>

#include "core/guidance.h"
#include "engine/eval.h"
#include "engine/functions.h"
#include "sqlir/printer.h"
#include "util/metrics.h"
#include "util/strutil.h"

namespace sqlpp {

size_t
AdaptiveGenerator::chooseGuided(const std::vector<std::string> &names)
{
    FeatureId chosen = static_cast<FeatureId>(-1);
    size_t index = guide_->choose(names, &chosen);
    if (arm_sink_ != nullptr && chosen != static_cast<FeatureId>(-1))
        arm_sink_->push_back(chosen);
    return index;
}

AdaptiveGenerator::AdaptiveGenerator(GeneratorConfig config,
                                     FeatureRegistry &registry,
                                     const FeatureGate &gate,
                                     SchemaModel &model)
    : config_(config), registry_(registry), gate_(gate), model_(model),
      rng_(config.seed)
{
}

int
AdaptiveGenerator::currentDepth() const
{
    if (!config_.progressiveDepth)
        return config_.maxDepth;
    int depth = 1 + static_cast<int>(generated_ / config_.depthStep);
    return std::min(depth, config_.maxDepth);
}

bool
AdaptiveGenerator::allowName(const std::string &feature_name) const
{
    FeatureId id = registry_.find(feature_name);
    if (id == static_cast<FeatureId>(-1))
        return true; // not yet interned: nothing learned against it
    return gate_.allow(id);
}

bool
AdaptiveGenerator::use(const std::string &feature_name, FeatureKind kind,
                       FeatureSet &features) const
{
    FeatureId id = registry_.intern(feature_name, kind);
    if (!gate_.allow(id)) {
        SQLPP_COUNT("generator.gate.denied");
        return false;
    }
    features.insert(id);
    return true;
}

bool
AdaptiveGenerator::maybe(const std::string &feature_name, FeatureKind kind,
                         double probability, FeatureSet &features)
{
    if (!allowName(feature_name))
        return false;
    if (!rng_.chance(probability))
        return false;
    return use(feature_name, kind, features);
}

DataType
AdaptiveGenerator::randomSupportedType()
{
    std::vector<DataType> candidates;
    for (DataType type :
         {DataType::Int, DataType::Text, DataType::Bool}) {
        if (allowName(features::dataType(type)))
            candidates.push_back(type);
    }
    if (candidates.empty())
        return DataType::Int;
    return candidates[rng_.below(candidates.size())];
}

DataType
AdaptiveGenerator::randomType(FeatureSet &features)
{
    DataType type = randomSupportedType();
    use(features::dataType(type), FeatureKind::DataType, features);
    return type;
}

// ---------------------------------------------------------------------
// Literals and leaves
// ---------------------------------------------------------------------

ExprPtr
AdaptiveGenerator::genLiteral(DataType type, FeatureSet &features)
{
    use(features::dataType(type), FeatureKind::DataType, features);
    if (rng_.chance(0.12))
        return std::make_unique<LiteralExpr>(Value::null());
    switch (type) {
      case DataType::Int: {
        // Small values collide with column data often, which is what
        // comparison predicates need to be selective-but-not-empty.
        int64_t value = rng_.chance(0.85) ? rng_.range(-4, 9)
                                          : rng_.range(-1000000, 1000000);
        return std::make_unique<LiteralExpr>(Value::integer(value));
      }
      case DataType::Text:
        return std::make_unique<LiteralExpr>(Value::text(rng_.text(6)));
      case DataType::Bool:
        return std::make_unique<LiteralExpr>(
            Value::boolean(rng_.coin()));
    }
    return std::make_unique<LiteralExpr>(Value::null());
}

ExprPtr
AdaptiveGenerator::genLeaf(DataType target, const ScopeColumns &scope,
                           FeatureSet &features, bool loose)
{
    // Columns of the target type are preferred; a type-mismatched
    // column is only ever produced in loose mode, and then the
    // PROP_UNTYPED_EXPR feature is recorded so strict dialects can
    // learn the discipline away.
    std::vector<const ScopeColumn *> matching;
    std::vector<const ScopeColumn *> other;
    for (const ScopeColumn &col : scope) {
        if (col.type == target)
            matching.push_back(&col);
        else
            other.push_back(&col);
    }
    if (loose && !other.empty() && rng_.chance(0.3)) {
        use(features::kUntypedExpr, FeatureKind::Property, features);
        const ScopeColumn *col = other[rng_.below(other.size())];
        return std::make_unique<ColumnRefExpr>(col->binding, col->name);
    }
    if (!matching.empty() && rng_.chance(0.65)) {
        const ScopeColumn *col = matching[rng_.below(matching.size())];
        return std::make_unique<ColumnRefExpr>(col->binding, col->name);
    }
    DataType literal_type = target;
    if (loose && rng_.chance(0.4)) {
        DataType random = randomSupportedType();
        if (random != target) {
            use(features::kUntypedExpr, FeatureKind::Property, features);
            literal_type = random;
        }
    }
    return genLiteral(literal_type, features);
}

// ---------------------------------------------------------------------
// Function calls with typed-argument composite features
// ---------------------------------------------------------------------

namespace {

DataType
specToType(TypeSpec spec, Rng &rng)
{
    switch (spec) {
      case TypeSpec::Int: return DataType::Int;
      case TypeSpec::Text: return DataType::Text;
      case TypeSpec::Bool: return DataType::Bool;
      case TypeSpec::Any:
        break;
    }
    switch (rng.below(3)) {
      case 0: return DataType::Int;
      case 1: return DataType::Text;
      default: return DataType::Bool;
    }
}

bool
returnMatches(const FunctionSig &sig, DataType target)
{
    if (sig.retSameAsArg0 || sig.ret == TypeSpec::Any)
        return true;
    switch (sig.ret) {
      case TypeSpec::Int: return target == DataType::Int;
      case TypeSpec::Text: return target == DataType::Text;
      case TypeSpec::Bool: return target == DataType::Bool;
      default: return true;
    }
}

} // namespace

ExprPtr
AdaptiveGenerator::genFunctionCall(DataType target, int depth,
                                   const ScopeColumns &scope,
                                   FeatureSet &features, bool loose)
{
    // Collect allowed scalar functions whose return type fits.
    std::vector<const FunctionImpl *> candidates;
    const FunctionRegistry &fns = FunctionRegistry::instance();
    for (const std::string &name : fns.names()) {
        if (isAggregateFunction(name))
            continue;
        if (!allowName(features::function(name)))
            continue;
        const FunctionImpl *impl = fns.find(name);
        if (impl != nullptr && returnMatches(impl->sig, target))
            candidates.push_back(impl);
    }
    if (candidates.empty())
        return genLeaf(target, scope, features, loose);
    const FunctionImpl *impl = candidates[rng_.below(candidates.size())];
    use(features::function(impl->sig.name), FeatureKind::Function,
        features);

    size_t arg_count = impl->sig.minimumArgs();
    if (impl->sig.variadic && rng_.coin())
        arg_count += rng_.below(2) + 1;

    std::vector<ExprPtr> args;
    // All TypeSpec::Any positions share one type so that polymorphic
    // functions (NULLIF, COALESCE, GREATEST) type-check on strict
    // dialects; when the function returns its first argument's type the
    // shared type must be the target itself. Loose mode may still break
    // the agreement below.
    DataType shared_any_type = impl->sig.retSameAsArg0
                                   ? target
                                   : randomSupportedType();
    for (size_t i = 0; i < arg_count; ++i) {
        size_t spec_index =
            impl->sig.args.empty()
                ? 0
                : std::min(i, impl->sig.args.size() - 1);
        TypeSpec spec = impl->sig.args.empty()
                            ? TypeSpec::Any
                            : impl->sig.args[spec_index];
        DataType arg_type =
            spec == TypeSpec::Any ? shared_any_type
                                  : specToType(spec, rng_);
        if (loose && spec != TypeSpec::Any && rng_.chance(0.5)) {
            // Deliberate mismatch: this is how SIN1STRING gets probed.
            DataType mismatched = randomSupportedType();
            if (mismatched != arg_type) {
                arg_type = mismatched;
                use(features::kUntypedExpr, FeatureKind::Property,
                    features);
            }
        }
        // The composite typed-argument feature can veto this choice
        // (e.g. SIN1STRING learned as unsupported on PostgreSQL).
        std::string composite =
            features::functionArg(impl->sig.name, i, arg_type);
        if (!allowName(composite)) {
            arg_type = specToType(spec, rng_);
            composite =
                features::functionArg(impl->sig.name, i, arg_type);
            if (!allowName(composite))
                return genLeaf(target, scope, features, loose);
        }
        use(composite, FeatureKind::Property, features);
        args.push_back(
            genExpr(arg_type, depth - 1, scope, features, loose));
    }
    return std::make_unique<FunctionExpr>(impl->sig.name,
                                          std::move(args));
}

// ---------------------------------------------------------------------
// Subquery expressions
// ---------------------------------------------------------------------

ExprPtr
AdaptiveGenerator::genSubqueryExpr(DataType target, int depth,
                                   const ScopeColumns &scope,
                                   FeatureSet &features, bool loose)
{
    auto table_name = model_.randomTable(rng_, /*include_views=*/true);
    if (!table_name.has_value() ||
        !use(features::kSubqueryExpr, FeatureKind::Clause, features)) {
        return genLeaf(target, scope, features, loose);
    }
    const ModelTable *table = model_.table(*table_name);
    std::string alias = "sq" + std::to_string(alias_counter_++);

    // Correlated subqueries re-execute per outer row; keep them the
    // minority so query cost stays bounded (uncorrelated ones are
    // cached by the engine).
    ScopeColumns inner_scope;
    if (rng_.chance(0.3))
        inner_scope = scope; // correlation allowed
    for (const ModelColumn &col : table->columns)
        inner_scope.push_back({alias, col.name, col.type});

    auto inner = std::make_unique<SelectStmt>();
    TableRef ref;
    ref.name = *table_name;
    ref.alias = alias;
    inner->from.push_back(std::move(ref));

    if (rng_.chance(0.5))
        inner->where = genSimpleBool(inner_scope, features);

    if (target == DataType::Bool && rng_.coin()) {
        // EXISTS / NOT EXISTS.
        SelectItem item;
        item.expr = std::make_unique<LiteralExpr>(Value::integer(1));
        inner->items.push_back(std::move(item));
        bool negated = rng_.coin();
        use(negated ? "OP_NOT_EXISTS" : "OP_EXISTS",
            FeatureKind::Operator, features);
        return std::make_unique<ExistsExpr>(std::move(inner), negated);
    }

    // Column-producing subquery: prefer a column of the target type so
    // the surrounding expression stays well-typed on strict dialects.
    std::vector<const ModelColumn *> typed;
    for (const ModelColumn &candidate : table->columns) {
        if (candidate.type == target)
            typed.push_back(&candidate);
    }
    const ModelColumn &col =
        !typed.empty()
            ? *typed[rng_.below(typed.size())]
            : table->columns[rng_.below(table->columns.size())];
    if (target == DataType::Bool) {
        // x [NOT] IN (SELECT col FROM t ...).
        SelectItem item;
        item.expr = std::make_unique<ColumnRefExpr>(alias, col.name);
        inner->items.push_back(std::move(item));
        bool negated = rng_.coin();
        use(negated ? "OP_NOT_IN_SUBQUERY" : "OP_IN_SUBQUERY",
            FeatureKind::Operator, features);
        ExprPtr operand =
            genExpr(col.type, depth - 1, scope, features, loose);
        return std::make_unique<InSubqueryExpr>(
            std::move(operand), std::move(inner), negated);
    }

    // Scalar subquery: aggregate to guarantee a single row. When no
    // column of the target type exists, bridge with a CAST so the
    // enclosing expression stays well-typed.
    SelectItem item;
    std::vector<ExprPtr> agg_args;
    agg_args.push_back(std::make_unique<ColumnRefExpr>(alias, col.name));
    const char *agg = rng_.coin() ? "MIN" : "MAX";
    use(features::function(agg), FeatureKind::Function, features);
    item.expr = std::make_unique<FunctionExpr>(agg, std::move(agg_args));
    inner->items.push_back(std::move(item));
    ExprPtr scalar =
        std::make_unique<ScalarSubqueryExpr>(std::move(inner));
    if (col.type != target) {
        use("OP_CAST", FeatureKind::Operator, features);
        scalar = std::make_unique<CastExpr>(std::move(scalar), target);
    }
    return scalar;
}

// ---------------------------------------------------------------------
// Expression generation
// ---------------------------------------------------------------------

ExprPtr
AdaptiveGenerator::genExpr(DataType target, int depth,
                           const ScopeColumns &scope,
                           FeatureSet &features, bool loose)
{
    if (depth <= 0)
        return genLeaf(target, scope, features, loose);

    // Loose mode may retarget the whole subtree to a random type.
    if (loose && rng_.chance(0.25)) {
        DataType retargeted = randomSupportedType();
        if (retargeted != target) {
            use(features::kUntypedExpr, FeatureKind::Property, features);
            target = retargeted;
        }
    }

    enum class Node
    {
        Leaf,
        Comparison,
        Logical,
        NotOp,
        IsForm,
        Between,
        InList,
        LikeOp,
        Arithmetic,
        Bitwise,
        UnaryNum,
        Concat,
        Function,
        CaseOp,
        CastOp,
        Subquery,
    };
    std::vector<Node> choices;
    choices.push_back(Node::Leaf);
    choices.push_back(Node::Function);
    choices.push_back(Node::CaseOp);
    if (allowName("OP_CAST"))
        choices.push_back(Node::CastOp);
    if (config_.enableSubqueries &&
        allowName(features::kSubqueryExpr)) {
        choices.push_back(Node::Subquery);
    }
    switch (target) {
      case DataType::Bool:
        choices.insert(choices.end(),
                       {Node::Comparison, Node::Comparison,
                        Node::Logical, Node::Logical, Node::NotOp,
                        Node::IsForm, Node::Between, Node::InList,
                        Node::LikeOp});
        break;
      case DataType::Int:
        choices.insert(choices.end(),
                       {Node::Arithmetic, Node::Arithmetic,
                        Node::Bitwise, Node::UnaryNum});
        break;
      case DataType::Text:
        choices.insert(choices.end(), {Node::Concat, Node::Concat});
        break;
    }

    Node node;
    if (guide_ == nullptr) {
        node = choices[rng_.below(choices.size())];
    } else {
        // Guided: the weighted lottery becomes a bandit pick over the
        // distinct grammar rules available at this point.
        auto rule_name = [](Node candidate) -> std::string {
            switch (candidate) {
              case Node::Leaf:
                return "RULE_EXPR_LEAF";
              case Node::Comparison:
                return "RULE_EXPR_COMPARISON";
              case Node::Logical:
                return "RULE_EXPR_LOGICAL";
              case Node::NotOp:
                return "RULE_EXPR_NOT";
              case Node::IsForm:
                return "RULE_EXPR_IS_FORM";
              case Node::Between:
                return "RULE_EXPR_BETWEEN";
              case Node::InList:
                return "RULE_EXPR_IN_LIST";
              case Node::LikeOp:
                return "RULE_EXPR_LIKE";
              case Node::Arithmetic:
                return "RULE_EXPR_ARITHMETIC";
              case Node::Bitwise:
                return "RULE_EXPR_BITWISE";
              case Node::UnaryNum:
                return "RULE_EXPR_UNARY_NUM";
              case Node::Concat:
                return "RULE_EXPR_CONCAT";
              case Node::Function:
                return "RULE_EXPR_FUNCTION";
              case Node::CaseOp:
                return "RULE_EXPR_CASE";
              case Node::CastOp:
                return "RULE_EXPR_CAST";
              case Node::Subquery:
                return "RULE_EXPR_SUBQUERY";
            }
            return "RULE_EXPR_LEAF";
        };
        std::vector<Node> unique;
        unique.reserve(choices.size());
        for (Node candidate : choices) {
            if (std::find(unique.begin(), unique.end(), candidate) ==
                unique.end()) {
                unique.push_back(candidate);
            }
        }
        node = unique[pickArm(unique, rule_name)];
    }

    switch (node) {
      case Node::Leaf:
        return genLeaf(target, scope, features, loose);
      case Node::Comparison: {
        static const BinaryOp ops[] = {
            BinaryOp::Eq,        BinaryOp::NotEq,
            BinaryOp::NotEqBang, BinaryOp::Less,
            BinaryOp::LessEq,    BinaryOp::Greater,
            BinaryOp::GreaterEq, BinaryOp::NullSafeEq,
            BinaryOp::IsDistinctFrom, BinaryOp::IsNotDistinctFrom};
        std::vector<BinaryOp> allowed;
        for (BinaryOp op : ops) {
            if (allowName(features::binaryOp(op)))
                allowed.push_back(op);
        }
        if (allowed.empty())
            return genLeaf(target, scope, features, loose);
        BinaryOp op = allowed[pickArm(allowed, [](BinaryOp candidate) {
            return features::binaryOp(candidate);
        })];
        use(features::binaryOp(op), FeatureKind::Operator, features);
        DataType operand_type = randomSupportedType();
        DataType rhs_type = operand_type;
        if (loose && rng_.chance(0.4)) {
            rhs_type = randomSupportedType();
            if (rhs_type != operand_type) {
                use(features::kUntypedExpr, FeatureKind::Property,
                    features);
            }
        }
        return std::make_unique<BinaryExpr>(
            op,
            genExpr(operand_type, depth - 1, scope, features, loose),
            genExpr(rhs_type, depth - 1, scope, features, loose));
      }
      case Node::Logical: {
        BinaryOp op;
        if (guide_ == nullptr) {
            op = rng_.coin() ? BinaryOp::And : BinaryOp::Or;
        } else {
            const std::vector<BinaryOp> options{BinaryOp::And,
                                                BinaryOp::Or};
            op = options[pickArm(options, [](BinaryOp candidate) {
                return features::binaryOp(candidate);
            })];
        }
        if (!use(features::binaryOp(op), FeatureKind::Operator,
                 features)) {
            return genLeaf(target, scope, features, loose);
        }
        return std::make_unique<BinaryExpr>(
            op,
            genExpr(DataType::Bool, depth - 1, scope, features, loose),
            genExpr(DataType::Bool, depth - 1, scope, features, loose));
      }
      case Node::NotOp: {
        if (!use(features::unaryOp(UnaryOp::Not), FeatureKind::Operator,
                 features)) {
            return genLeaf(target, scope, features, loose);
        }
        return std::make_unique<UnaryExpr>(
            UnaryOp::Not,
            genExpr(DataType::Bool, depth - 1, scope, features, loose));
      }
      case Node::IsForm: {
        static const UnaryOp ops[] = {
            UnaryOp::IsNull, UnaryOp::IsNotNull, UnaryOp::IsTrue,
            UnaryOp::IsFalse, UnaryOp::IsNotTrue, UnaryOp::IsNotFalse};
        std::vector<UnaryOp> allowed;
        for (UnaryOp op : ops) {
            if (allowName(features::unaryOp(op)))
                allowed.push_back(op);
        }
        if (allowed.empty())
            return genLeaf(target, scope, features, loose);
        UnaryOp op = allowed[pickArm(allowed, [](UnaryOp candidate) {
            return features::unaryOp(candidate);
        })];
        use(features::unaryOp(op), FeatureKind::Operator, features);
        DataType operand =
            (op == UnaryOp::IsNull || op == UnaryOp::IsNotNull)
                ? randomSupportedType()
                : DataType::Bool;
        return std::make_unique<UnaryExpr>(
            op, genExpr(operand, depth - 1, scope, features, loose));
      }
      case Node::Between: {
        bool negated = rng_.coin();
        const char *feature = negated ? "OP_NOT_BETWEEN" : "OP_BETWEEN";
        if (!use(feature, FeatureKind::Operator, features))
            return genLeaf(target, scope, features, loose);
        DataType operand_type = randomSupportedType();
        return std::make_unique<BetweenExpr>(
            genExpr(operand_type, depth - 1, scope, features, loose),
            genExpr(operand_type, depth - 1, scope, features, loose),
            genExpr(operand_type, depth - 1, scope, features, loose),
            negated);
      }
      case Node::InList: {
        bool negated = rng_.coin();
        const char *feature = negated ? "OP_NOT_IN_LIST" : "OP_IN_LIST";
        if (!use(feature, FeatureKind::Operator, features))
            return genLeaf(target, scope, features, loose);
        DataType operand_type = randomSupportedType();
        std::vector<ExprPtr> items;
        size_t count = 1 + rng_.below(3);
        for (size_t i = 0; i < count; ++i) {
            items.push_back(genExpr(operand_type, depth - 1, scope,
                                    features, loose));
        }
        return std::make_unique<InListExpr>(
            genExpr(operand_type, depth - 1, scope, features, loose),
            std::move(items), negated);
      }
      case Node::LikeOp: {
        static const BinaryOp ops[] = {BinaryOp::Like, BinaryOp::NotLike,
                                       BinaryOp::Glob};
        std::vector<BinaryOp> allowed;
        for (BinaryOp op : ops) {
            if (allowName(features::binaryOp(op)))
                allowed.push_back(op);
        }
        if (allowed.empty())
            return genLeaf(target, scope, features, loose);
        BinaryOp op = allowed[pickArm(allowed, [](BinaryOp candidate) {
            return features::binaryOp(candidate);
        })];
        use(features::binaryOp(op), FeatureKind::Operator, features);
        // Pattern: a text literal with wildcards, occasionally an expr.
        ExprPtr pattern;
        if (rng_.chance(0.8)) {
            std::string text = rng_.text(4);
            const char *wildcards =
                op == BinaryOp::Glob ? "*?" : "%_";
            if (rng_.coin())
                text.push_back(wildcards[0]);
            if (rng_.coin())
                text.insert(text.begin(), wildcards[rng_.below(2)]);
            pattern = std::make_unique<LiteralExpr>(Value::text(text));
            use(features::dataType(DataType::Text),
                FeatureKind::DataType, features);
        } else {
            pattern = genExpr(DataType::Text, depth - 1, scope, features,
                              loose);
        }
        return std::make_unique<BinaryExpr>(
            op,
            genExpr(DataType::Text, depth - 1, scope, features, loose),
            std::move(pattern));
      }
      case Node::Arithmetic: {
        static const BinaryOp ops[] = {BinaryOp::Add, BinaryOp::Sub,
                                       BinaryOp::Mul, BinaryOp::Div,
                                       BinaryOp::Mod};
        std::vector<BinaryOp> allowed;
        for (BinaryOp op : ops) {
            if (allowName(features::binaryOp(op)))
                allowed.push_back(op);
        }
        if (allowed.empty())
            return genLeaf(target, scope, features, loose);
        BinaryOp op = allowed[pickArm(allowed, [](BinaryOp candidate) {
            return features::binaryOp(candidate);
        })];
        use(features::binaryOp(op), FeatureKind::Operator, features);
        return std::make_unique<BinaryExpr>(
            op, genExpr(DataType::Int, depth - 1, scope, features, loose),
            genExpr(DataType::Int, depth - 1, scope, features, loose));
      }
      case Node::Bitwise: {
        static const BinaryOp ops[] = {
            BinaryOp::BitAnd, BinaryOp::BitOr, BinaryOp::BitXor,
            BinaryOp::ShiftLeft, BinaryOp::ShiftRight};
        std::vector<BinaryOp> allowed;
        for (BinaryOp op : ops) {
            if (allowName(features::binaryOp(op)))
                allowed.push_back(op);
        }
        if (allowed.empty())
            return genLeaf(target, scope, features, loose);
        BinaryOp op = allowed[pickArm(allowed, [](BinaryOp candidate) {
            return features::binaryOp(candidate);
        })];
        use(features::binaryOp(op), FeatureKind::Operator, features);
        return std::make_unique<BinaryExpr>(
            op, genExpr(DataType::Int, depth - 1, scope, features, loose),
            genExpr(DataType::Int, depth - 1, scope, features, loose));
      }
      case Node::UnaryNum: {
        static const UnaryOp ops[] = {UnaryOp::Neg, UnaryOp::Plus,
                                      UnaryOp::BitNot};
        std::vector<UnaryOp> allowed;
        for (UnaryOp op : ops) {
            if (allowName(features::unaryOp(op)))
                allowed.push_back(op);
        }
        if (allowed.empty())
            return genLeaf(target, scope, features, loose);
        UnaryOp op = allowed[pickArm(allowed, [](UnaryOp candidate) {
            return features::unaryOp(candidate);
        })];
        use(features::unaryOp(op), FeatureKind::Operator, features);
        return std::make_unique<UnaryExpr>(
            op,
            genExpr(DataType::Int, depth - 1, scope, features, loose));
      }
      case Node::Concat: {
        if (!use(features::binaryOp(BinaryOp::Concat),
                 FeatureKind::Operator, features)) {
            return genLeaf(target, scope, features, loose);
        }
        return std::make_unique<BinaryExpr>(
            BinaryOp::Concat,
            genExpr(DataType::Text, depth - 1, scope, features, loose),
            genExpr(DataType::Text, depth - 1, scope, features, loose));
      }
      case Node::Function:
        return genFunctionCall(target, depth, scope, features, loose);
      case Node::CaseOp: {
        bool simple = rng_.coin();
        const char *feature =
            simple ? "OP_CASE_SIMPLE" : "OP_CASE_SEARCHED";
        if (!use(feature, FeatureKind::Operator, features))
            return genLeaf(target, scope, features, loose);
        ExprPtr operand;
        DataType when_type = DataType::Bool;
        if (simple) {
            when_type = randomSupportedType();
            operand =
                genExpr(when_type, depth - 1, scope, features, loose);
        }
        std::vector<CaseExpr::Arm> arms;
        size_t arm_count = 1 + rng_.below(2);
        for (size_t i = 0; i < arm_count; ++i) {
            arms.push_back(CaseExpr::Arm{
                genExpr(when_type, depth - 1, scope, features, loose),
                genExpr(target, depth - 1, scope, features, loose)});
        }
        ExprPtr else_expr;
        if (rng_.coin()) {
            else_expr =
                genExpr(target, depth - 1, scope, features, loose);
        }
        return std::make_unique<CaseExpr>(std::move(operand),
                                          std::move(arms),
                                          std::move(else_expr));
      }
      case Node::CastOp: {
        use("OP_CAST", FeatureKind::Operator, features);
        use(features::dataType(target), FeatureKind::DataType, features);
        DataType source = randomSupportedType();
        return std::make_unique<CastExpr>(
            genExpr(source, depth - 1, scope, features, loose), target);
      }
      case Node::Subquery:
        return genSubqueryExpr(target, depth, scope, features, loose);
    }
    return genLeaf(target, scope, features, loose);
}

ExprPtr
AdaptiveGenerator::genSimpleBool(const ScopeColumns &scope,
                                 FeatureSet &features)
{
    static const BinaryOp ops[] = {BinaryOp::Eq,      BinaryOp::NotEq,
                                   BinaryOp::Less,    BinaryOp::LessEq,
                                   BinaryOp::Greater, BinaryOp::GreaterEq};
    std::vector<BinaryOp> allowed;
    for (BinaryOp op : ops) {
        if (allowName(features::binaryOp(op)))
            allowed.push_back(op);
    }
    // IS NOT NULL is the fallback shape when no comparison is allowed.
    if (allowed.empty() || rng_.chance(0.25)) {
        DataType type = randomSupportedType();
        ExprPtr operand = genLeaf(type, scope, features, /*loose=*/false);
        UnaryOp op =
            rng_.coin() ? UnaryOp::IsNull : UnaryOp::IsNotNull;
        if (!allowName(features::unaryOp(op)))
            op = UnaryOp::IsNull;
        use(features::unaryOp(op), FeatureKind::Operator, features);
        return std::make_unique<UnaryExpr>(op, std::move(operand));
    }
    BinaryOp op = allowed[pickArm(allowed, [](BinaryOp candidate) {
        return features::binaryOp(candidate);
    })];
    use(features::binaryOp(op), FeatureKind::Operator, features);
    DataType type = randomSupportedType();
    return std::make_unique<BinaryExpr>(
        op, genLeaf(type, scope, features, /*loose=*/false),
        genLeaf(type, scope, features, /*loose=*/false));
}

// ---------------------------------------------------------------------
// Statement generators
// ---------------------------------------------------------------------

GeneratedStatement
AdaptiveGenerator::genCreateTable()
{
    SQLPP_COUNT("generator.setup.create_table");
    GeneratedStatement out;
    out.kind = StmtKind::CreateTable;
    use(features::stmt(StmtKind::CreateTable), FeatureKind::Statement,
        out.features);

    CreateTableStmt stmt;
    stmt.name = model_.freeName("t");
    if (maybe(features::kIfNotExists, FeatureKind::Clause, 0.2,
              out.features)) {
        stmt.ifNotExists = true;
    }
    size_t column_count = 1 + rng_.below(config_.maxColumnsPerTable);
    for (size_t i = 0; i < column_count; ++i) {
        ColumnDef col;
        col.name = "c" + std::to_string(i);
        col.type = randomType(out.features);
        if (i == 0 &&
            maybe(features::kPrimaryKey, FeatureKind::Clause, 0.25,
                  out.features)) {
            col.primaryKey = true;
        } else if (maybe(features::kUniqueColumn, FeatureKind::Clause,
                         0.12, out.features)) {
            col.unique = true;
        }
        if (!col.primaryKey &&
            maybe(features::kNotNull, FeatureKind::Clause, 0.12,
                  out.features)) {
            col.notNull = true;
        }
        stmt.columns.push_back(col);
    }
    out.text = printStmt(stmt);

    ModelTable model_table;
    model_table.name = stmt.name;
    for (const ColumnDef &col : stmt.columns) {
        model_table.columns.push_back({col.name, col.type, col.notNull,
                                       col.unique, col.primaryKey});
    }
    out.pendingTable = std::move(model_table);
    return out;
}

GeneratedStatement
AdaptiveGenerator::genCreateIndex()
{
    SQLPP_COUNT("generator.setup.create_index");
    GeneratedStatement out;
    out.kind = StmtKind::CreateIndex;
    use(features::stmt(StmtKind::CreateIndex), FeatureKind::Statement,
        out.features);

    CreateIndexStmt stmt;
    auto table_name = model_.randomBaseTable(rng_);
    const ModelTable *table =
        table_name ? model_.table(*table_name) : nullptr;
    if (table == nullptr) {
        // No table yet: still emit something (it will fail and teach
        // nothing wrong — failure lands on STMT_CREATE_INDEX which also
        // succeeds elsewhere).
        stmt.table = "t0";
        stmt.columns.push_back("c0");
    } else {
        stmt.table = table->name;
        size_t count = 1 + rng_.below(std::min<size_t>(
                               2, table->columns.size()));
        // Distinct random columns.
        std::vector<size_t> ordinals(table->columns.size());
        for (size_t i = 0; i < ordinals.size(); ++i)
            ordinals[i] = i;
        for (size_t i = 0; i < count; ++i) {
            size_t j = i + rng_.below(ordinals.size() - i);
            std::swap(ordinals[i], ordinals[j]);
            stmt.columns.push_back(table->columns[ordinals[i]].name);
        }
    }
    stmt.name = model_.freeName("i");
    if (maybe(features::kUniqueIndex, FeatureKind::Clause, 0.3,
              out.features)) {
        stmt.unique = true;
    }
    if (table != nullptr &&
        maybe(features::kPartialIndex, FeatureKind::Clause, 0.25,
              out.features)) {
        ScopeColumns scope;
        for (const ModelColumn &col : table->columns)
            scope.push_back({"", col.name, col.type});
        stmt.where = genSimpleBool(scope, out.features);
    }
    out.text = printStmt(stmt);
    out.pendingIndex = ModelIndex{stmt.name, stmt.table};
    return out;
}

GeneratedStatement
AdaptiveGenerator::genCreateView()
{
    SQLPP_COUNT("generator.setup.create_view");
    GeneratedStatement out;
    out.kind = StmtKind::CreateView;
    use(features::stmt(StmtKind::CreateView), FeatureKind::Statement,
        out.features);

    CreateViewStmt stmt;
    stmt.name = model_.freeName("v");

    auto table_name = model_.randomBaseTable(rng_);
    auto select = std::make_unique<SelectStmt>();
    ModelTable model_table;
    model_table.name = stmt.name;
    model_table.isView = true;

    if (table_name.has_value()) {
        const ModelTable *table = model_.table(*table_name);
        TableRef ref;
        ref.name = *table_name;
        select->from.push_back(std::move(ref));
        ScopeColumns scope;
        for (const ModelColumn &col : table->columns)
            scope.push_back({*table_name, col.name, col.type});
        size_t item_count = 1 + rng_.below(2);
        for (size_t i = 0; i < item_count; ++i) {
            SelectItem item;
            DataType type = randomSupportedType();
            item.expr = genExpr(type, 1, scope, out.features,
                                /*loose=*/false);
            select->items.push_back(std::move(item));
            model_table.columns.push_back(
                {"vc" + std::to_string(i), type, false, false, false});
        }
        if (rng_.chance(0.4))
            select->where = genSimpleBool(scope, out.features);
    } else {
        SelectItem item;
        item.expr = genLiteral(DataType::Int, out.features);
        select->items.push_back(std::move(item));
        model_table.columns.push_back(
            {"vc0", DataType::Int, false, false, false});
    }
    if (maybe(features::kViewColumnList, FeatureKind::Clause, 0.7,
              out.features)) {
        for (size_t i = 0; i < model_table.columns.size(); ++i)
            stmt.columnNames.push_back("vc" + std::to_string(i));
    } else {
        // Without an explicit list the view exposes expression texts as
        // names; the model cannot predict them reliably, so name them
        // per position anyway and accept the small mismatch risk by
        // aliasing each item.
        for (size_t i = 0; i < select->items.size(); ++i)
            select->items[i].alias = "vc" + std::to_string(i);
    }
    stmt.select = std::move(select);
    out.text = printStmt(stmt);
    out.pendingTable = std::move(model_table);
    return out;
}

GeneratedStatement
AdaptiveGenerator::genInsert()
{
    SQLPP_COUNT("generator.setup.insert");
    GeneratedStatement out;
    out.kind = StmtKind::Insert;
    use(features::stmt(StmtKind::Insert), FeatureKind::Statement,
        out.features);

    InsertStmt stmt;
    // Prefer tables still below the row cap, bounding join fan-out.
    std::vector<const ModelTable *> open_tables;
    for (const ModelTable &candidate : model_.tables()) {
        if (!candidate.isView &&
            candidate.assumedRows < config_.maxRowsPerTable) {
            open_tables.push_back(&candidate);
        }
    }
    const ModelTable *table =
        open_tables.empty() ? nullptr
                            : open_tables[rng_.below(open_tables.size())];
    if (table == nullptr) {
        auto any = model_.randomBaseTable(rng_);
        table = any ? model_.table(*any) : nullptr;
    }
    stmt.table = table != nullptr ? table->name : "t0";
    if (maybe(features::kOrIgnore, FeatureKind::Clause, 0.25,
              out.features)) {
        stmt.orIgnore = true;
    }
    size_t row_count = 1;
    if (config_.maxRowsPerInsert > 1 &&
        maybe(features::kMultiRowInsert, FeatureKind::Clause, 0.35,
              out.features)) {
        row_count = 2 + rng_.below(config_.maxRowsPerInsert - 1);
    }
    size_t width = table != nullptr ? table->columns.size() : 1;
    for (size_t r = 0; r < row_count; ++r) {
        std::vector<ExprPtr> row;
        for (size_t c = 0; c < width; ++c) {
            DataType type = table != nullptr ? table->columns[c].type
                                             : DataType::Int;
            bool constrained =
                table != nullptr && (table->columns[c].primaryKey ||
                                     table->columns[c].unique ||
                                     table->columns[c].notNull);
            if (constrained) {
                // Wide-spread non-NULL values keep the collision rate
                // against PRIMARY KEY / UNIQUE constraints low.
                use(features::dataType(type), FeatureKind::DataType,
                    out.features);
                switch (type) {
                  case DataType::Int:
                    row.push_back(std::make_unique<LiteralExpr>(
                        Value::integer(rng_.range(-1000000000,
                                                  1000000000))));
                    break;
                  case DataType::Text:
                    row.push_back(std::make_unique<LiteralExpr>(
                        Value::text(rng_.identifier(10))));
                    break;
                  case DataType::Bool:
                    // Only two distinct values exist; collisions are
                    // unavoidable and realistic.
                    row.push_back(std::make_unique<LiteralExpr>(
                        Value::boolean(rng_.coin())));
                    break;
                }
                continue;
            }
            row.push_back(genLiteral(type, out.features));
        }
        stmt.rows.push_back(std::move(row));
    }
    out.text = printStmt(stmt);
    out.pendingInsertTable = stmt.table;
    out.pendingInsertRows = row_count;
    return out;
}

GeneratedStatement
AdaptiveGenerator::genAnalyze()
{
    SQLPP_COUNT("generator.setup.analyze");
    GeneratedStatement out;
    out.kind = StmtKind::Analyze;
    use(features::stmt(StmtKind::Analyze), FeatureKind::Statement,
        out.features);
    AnalyzeStmt stmt;
    auto table_name = model_.randomBaseTable(rng_);
    if (table_name.has_value() && rng_.coin())
        stmt.table = *table_name;
    out.text = printStmt(stmt);
    return out;
}

GeneratedStatement
AdaptiveGenerator::generateSetupStatement()
{
    ++generated_;
    // Choose by what the schema model lacks; statement features that
    // have been learned unsupported drop out of the lottery.
    bool need_table = model_.tableCount(false) < config_.maxTables;
    bool can_index =
        model_.tableCount(false) > 0 &&
        allowName(features::stmt(StmtKind::CreateIndex));
    bool can_view = model_.tableCount(false) > 0 &&
                    model_.tableCount(true) < config_.maxViews &&
                    allowName(features::stmt(StmtKind::CreateView));
    bool can_analyze =
        model_.tableCount(false) > 0 &&
        allowName(features::stmt(StmtKind::Analyze));

    bool has_open_table = false;
    for (const ModelTable &table : model_.tables()) {
        if (!table.isView &&
            table.assumedRows < config_.maxRowsPerTable) {
            has_open_table = true;
        }
    }

    if (need_table && (model_.tableCount(false) == 0 || rng_.chance(0.5)))
        return genCreateTable();
    if (can_index && rng_.chance(0.18))
        return genCreateIndex();
    if (can_view && rng_.chance(0.15))
        return genCreateView();
    if (can_analyze && rng_.chance(0.06))
        return genAnalyze();
    if (model_.tableCount(false) == 0)
        return genCreateTable();
    if (!has_open_table) {
        // All tables are at the row cap: stop growing the database and
        // spend the statement on metadata work instead.
        if (can_index && rng_.coin())
            return genCreateIndex();
        if (can_analyze)
            return genAnalyze();
        if (can_view)
            return genCreateView();
    }
    return genInsert();
}

SelectPtr
AdaptiveGenerator::genFromClause(FeatureSet &features,
                                 ScopeColumns &scope,
                                 bool allow_subquery_from)
{
    auto select = std::make_unique<SelectStmt>();

    auto bind_table = [&](const std::string &name,
                          const std::string &alias) {
        const ModelTable *table = model_.table(name);
        std::string binding = alias.empty() ? name : alias;
        if (table != nullptr) {
            for (const ModelColumn &col : table->columns)
                scope.push_back({binding, col.name, col.type});
        }
    };

    auto first = model_.randomTable(rng_, /*include_views=*/true);
    if (!first.has_value())
        return select; // FROM-less shell

    std::set<std::string> used{*first};
    TableRef ref;
    ref.name = *first;
    select->from.push_back(std::move(ref));
    bind_table(*first, "");

    // Optional derived table as an extra comma source is avoided (the
    // engine rejects comma+JOIN mixes); instead we sometimes make the
    // single source a derived table.
    bool derive;
    if (guide_ == nullptr) {
        derive = allow_subquery_from && config_.enableSubqueries &&
                 select->from.size() == 1 && rng_.chance(0.18) &&
                 allowName(features::kSubqueryFrom);
    } else {
        // Guided: the fixed 18% coin becomes a two-arm decision, so the
        // bandit can learn that derived-table FROMs open new plan
        // shapes (or that the dialect rejects them).
        bool eligible = allow_subquery_from &&
                        config_.enableSubqueries &&
                        select->from.size() == 1 &&
                        allowName(features::kSubqueryFrom);
        derive = eligible &&
                 chooseGuided({"RULE_FROM_TABLE", "RULE_FROM_DERIVED"}) ==
                     1;
    }
    if (derive) {
        use(features::kSubqueryFrom, FeatureKind::Clause, features);
        // Wrap the first table in (SELECT * FROM t) AS dN.
        std::string alias = "d" + std::to_string(alias_counter_++);
        auto inner = std::make_unique<SelectStmt>();
        SelectItem star;
        star.star = true;
        inner->items.push_back(std::move(star));
        TableRef inner_ref;
        inner_ref.name = *first;
        inner->from.push_back(std::move(inner_ref));
        TableRef derived;
        derived.subquery = std::move(inner);
        derived.alias = alias;
        select->from.clear();
        scope.clear();
        select->from.push_back(std::move(derived));
        bind_table(*first, alias);
        // Rebind scope to the derived alias.
        for (ScopeColumn &col : scope)
            col.binding = alias;
    }

    size_t join_count;
    if (guide_ == nullptr) {
        join_count = rng_.below(config_.maxJoins + 1);
    } else {
        // Join fan-out dominates plan-shape diversity; give every
        // cardinality its own arm so the bandit can seek the widths
        // that still yield unseen plans.
        std::vector<size_t> counts;
        for (size_t n = 0; n <= config_.maxJoins; ++n)
            counts.push_back(n);
        join_count = counts[pickArm(counts, [](size_t n) {
            return "RULE_JOIN_COUNT_" + std::to_string(n);
        })];
    }
    for (size_t j = 0; j < join_count; ++j) {
        auto next = model_.randomTable(rng_, /*include_views=*/true);
        if (!next.has_value())
            break;
        static const JoinType join_types[] = {
            JoinType::Inner, JoinType::Left, JoinType::Right,
            JoinType::Full, JoinType::Cross, JoinType::Natural};
        std::vector<JoinType> allowed;
        for (JoinType type : join_types) {
            if (allowName(features::join(type)))
                allowed.push_back(type);
        }
        if (allowed.empty())
            break;
        JoinType type = allowed[pickArm(allowed, [](JoinType candidate) {
            return features::join(candidate);
        })];
        use(features::join(type), FeatureKind::Clause, features);

        JoinClause join;
        join.type = type;
        join.table.name = *next;
        std::string binding = *next;
        if (used.count(*next) > 0) {
            binding = "j" + std::to_string(alias_counter_++);
            join.table.alias = binding;
        }
        used.insert(binding);
        ScopeColumns right_scope;
        const ModelTable *right = model_.table(*next);
        if (right != nullptr) {
            for (const ModelColumn &col : right->columns)
                right_scope.push_back({binding, col.name, col.type});
        }
        if (type != JoinType::Cross && type != JoinType::Natural) {
            // ON: equality between one left and one right column when
            // possible, else a generated boolean over both sides.
            ScopeColumns joint = scope;
            joint.insert(joint.end(), right_scope.begin(),
                         right_scope.end());
            // Prefer equality over a type-matched column pair so the
            // ON clause type-checks on strict dialects.
            std::vector<std::pair<const ScopeColumn *,
                                  const ScopeColumn *>> pairs;
            for (const ScopeColumn &l : scope) {
                for (const ScopeColumn &r : right_scope) {
                    if (l.type == r.type)
                        pairs.emplace_back(&l, &r);
                }
            }
            if (!pairs.empty() && rng_.chance(0.75)) {
                auto [l, r] = pairs[rng_.below(pairs.size())];
                use(features::binaryOp(BinaryOp::Eq),
                    FeatureKind::Operator, features);
                join.on = std::make_unique<BinaryExpr>(
                    BinaryOp::Eq,
                    std::make_unique<ColumnRefExpr>(l->binding, l->name),
                    std::make_unique<ColumnRefExpr>(r->binding,
                                                    r->name));
            } else {
                join.on = genSimpleBool(joint, features);
            }
        }
        scope.insert(scope.end(), right_scope.begin(),
                     right_scope.end());
        select->joins.push_back(std::move(join));
    }
    return select;
}

GeneratedStatement
AdaptiveGenerator::generateSelect()
{
    ++generated_;
    SQLPP_COUNT("generator.select");
    GeneratedStatement out;
    out.kind = StmtKind::Select;
    out.isQuery = true;
    use(features::stmt(StmtKind::Select), FeatureKind::Statement,
        out.features);

    ScopeColumns scope;
    SelectPtr select = genFromClause(out.features, scope,
                                     /*allow_subquery_from=*/true);
    // Per-statement depth is drawn up to the schedule's current cap, so
    // shallow expressions (index-probe-shaped predicates, single
    // comparisons) keep appearing even late in a run.
    int depth = static_cast<int>(rng_.range(1, currentDepth()));
    bool loose = allowName(features::kUntypedExpr) &&
                 rng_.chance(config_.looseTypeProbability);

    bool aggregate = rng_.chance(0.2) && !scope.empty();
    if (aggregate &&
        maybe(features::kGroupBy, FeatureKind::Clause, 0.7,
              out.features)) {
        const ScopeColumn &key = scope[rng_.below(scope.size())];
        select->groupBy.push_back(
            std::make_unique<ColumnRefExpr>(key.binding, key.name));
        SelectItem key_item;
        key_item.expr =
            std::make_unique<ColumnRefExpr>(key.binding, key.name);
        select->items.push_back(std::move(key_item));
        SelectItem agg_item;
        const char *agg = rng_.coin() ? "COUNT" : "SUM";
        use(features::function(agg), FeatureKind::Function,
            out.features);
        if (std::string(agg) == "COUNT" && rng_.coin()) {
            agg_item.expr = std::make_unique<FunctionExpr>(
                "COUNT", std::vector<ExprPtr>{}, /*star=*/true);
        } else {
            std::vector<ExprPtr> args;
            args.push_back(
                genExpr(DataType::Int, 1, scope, out.features, loose));
            agg_item.expr =
                std::make_unique<FunctionExpr>(agg, std::move(args));
        }
        select->items.push_back(std::move(agg_item));
        if (maybe(features::kHaving, FeatureKind::Clause, 0.3,
                  out.features)) {
            std::vector<ExprPtr> args;
            args.push_back(std::make_unique<ColumnRefExpr>(key.binding,
                                                           key.name));
            ExprPtr count = std::make_unique<FunctionExpr>(
                "COUNT", std::vector<ExprPtr>{}, /*star=*/true);
            use(features::binaryOp(BinaryOp::Greater),
                FeatureKind::Operator, out.features);
            select->having = std::make_unique<BinaryExpr>(
                BinaryOp::Greater, std::move(count),
                std::make_unique<LiteralExpr>(
                    Value::integer(rng_.range(0, 2))));
        }
    } else if (!scope.empty() && rng_.chance(0.25)) {
        SelectItem star;
        star.star = true;
        select->items.push_back(std::move(star));
    } else {
        size_t item_count = 1 + rng_.below(2);
        for (size_t i = 0; i < item_count; ++i) {
            SelectItem item;
            item.expr = genExpr(randomSupportedType(), depth, scope,
                                out.features, loose);
            select->items.push_back(std::move(item));
        }
    }

    if (maybe(features::kDistinct, FeatureKind::Clause, 0.15,
              out.features)) {
        select->distinct = true;
    }
    if (rng_.chance(0.75)) {
        use(features::kWhere, FeatureKind::Clause, out.features);
        select->where =
            genExpr(DataType::Bool, depth, scope, out.features, loose);
    }
    if (!scope.empty() &&
        maybe(features::kOrderBy, FeatureKind::Clause, 0.2,
              out.features)) {
        OrderTerm term;
        const ScopeColumn &col = scope[rng_.below(scope.size())];
        term.expr =
            std::make_unique<ColumnRefExpr>(col.binding, col.name);
        term.ascending = rng_.coin();
        select->orderBy.push_back(std::move(term));
    }
    if (maybe(features::kLimit, FeatureKind::Clause, 0.15,
              out.features)) {
        select->limit = rng_.range(0, 10);
        if (maybe(features::kOffset, FeatureKind::Clause, 0.4,
                  out.features)) {
            select->offset = rng_.range(0, 5);
        }
    }
    out.text = printStmt(*select);
    return out;
}

std::optional<QueryShape>
AdaptiveGenerator::generateQueryShape()
{
    if (model_.tableCount(false) == 0 && model_.tableCount(true) == 0) {
        SQLPP_COUNT("generator.shape.rejected.no_tables");
        return std::nullopt;
    }
    ++generated_;
    QueryShape shape;
    use(features::stmt(StmtKind::Select), FeatureKind::Statement,
        shape.features);

    // Record every bandit pull into the shape so the campaign can
    // credit exactly the arms behind this statement.
    arm_sink_ = &shape.arms;

    ScopeColumns scope;
    shape.base = genFromClause(shape.features, scope,
                               /*allow_subquery_from=*/true);
    if (shape.base->from.empty()) {
        SQLPP_COUNT("generator.shape.rejected.empty_from");
        arm_sink_ = nullptr;
        return std::nullopt;
    }

    // Oracle constraint (as in SQLancer): no aggregates / LIMIT in the
    // base, and the select list must make row multiplicity observable.
    SelectItem star;
    star.star = true;
    shape.base->items.push_back(std::move(star));
    // DISTINCT bases are compared with set semantics by TLP.
    if (maybe(features::kDistinct, FeatureKind::Clause, 0.15,
              shape.features)) {
        shape.base->distinct = true;
    }

    int depth = static_cast<int>(rng_.range(1, currentDepth()));
    bool loose = allowName(features::kUntypedExpr) &&
                 rng_.chance(config_.looseTypeProbability);
    use(features::kWhere, FeatureKind::Clause, shape.features);
    shape.predicate =
        genExpr(DataType::Bool, depth, scope, shape.features, loose);
    arm_sink_ = nullptr;
    SQLPP_COUNT("generator.shape.ok");
    return shape;
}

void
AdaptiveGenerator::noteExecution(const GeneratedStatement &stmt,
                                 bool success)
{
    if (!success)
        return;
    if (stmt.pendingTable.has_value())
        model_.addTable(*stmt.pendingTable);
    if (stmt.pendingIndex.has_value())
        model_.addIndex(*stmt.pendingIndex);
    if (!stmt.pendingInsertTable.empty())
        model_.noteInsert(stmt.pendingInsertTable, stmt.pendingInsertRows);
}

} // namespace sqlpp
