/**
 * @file
 * Bug dossiers: one self-contained forensic directory per BugCase.
 *
 * A reduced statement list tells you *what* triggers a bug; a dossier
 * keeps *how the campaign got there*. For every prioritized bug the
 * writer emits `<dossier-dir>/<bug-id>/` containing
 *
 *   repro.sql      self-contained replay script: metadata comments
 *                  (dialect, oracle, base query, predicate) plus the
 *                  setup statements — replayReproFile() re-runs the
 *                  oracle on a fresh connection from this file alone
 *                  (`dialect_probe --replay` wraps it);
 *   dossier.json   the case summary: id, dialect, oracle, details,
 *                  feature names, shard index, restored-from-checkpoint
 *                  flag, and the oracle's recorded query list;
 *   feedback.json  the FeedbackTracker posterior snapshot for the
 *                  features involved in the case (executions,
 *                  successes, posterior mean, suppression verdict);
 *   events.jsonl   the shard's last-N flight-recorder events
 *                  (sqlpp.trace.v1 lines; empty for shards restored
 *                  from a checkpoint — their rings died with the
 *                  original process);
 *   metrics.json   the sqlpp.metrics.v1 snapshot at dossier time.
 *
 * Bug ids hash only the deterministic identity of the case
 * (dialect|oracle|setup|base|predicate), so the id set — and every
 * repro.sql — is identical for any worker count and across
 * SIGKILL+--resume. The scheduler writes dossiers during its
 * deterministic shard-order merge, covering restored shards too.
 */
#ifndef SQLPP_CORE_DOSSIER_H
#define SQLPP_CORE_DOSSIER_H

#include <string>

#include "core/feedback.h"
#include "core/reducer.h"
#include "util/status.h"

namespace sqlpp {

/** Dossier writer configuration. */
struct DossierConfig
{
    /** Root directory; one subdirectory is created per bug id. */
    std::string directory;
    /** Flight-recorder events to keep in events.jsonl (newest N). */
    size_t maxEvents = 64;
};

/** Campaign-side context captured alongside the case. */
struct DossierContext
{
    /** Shard the bug came from (selects the flight-recorder lane). */
    size_t shardIndex = 0;
    /** The shard was restored from a checkpoint (no live ring). */
    bool fromCheckpoint = false;
    /** Posterior source for feedback.json (null = omit the file). */
    const FeedbackTracker *feedback = nullptr;
    /** Registry naming the tracker's feature ids. */
    const FeatureRegistry *registry = nullptr;
};

/**
 * Deterministic bug id: fnv1a over dialect|oracle|setup|base|predicate
 * rendered as 16 hex digits. Independent of worker count, resume, and
 * trace compilation.
 */
std::string bugCaseId(const BugCase &bug);

/** Render the self-contained repro.sql text for a case. */
std::string renderReproSql(const BugCase &bug);

/**
 * Parse a repro.sql back into the BugCase fields replay needs
 * (dialect, oracle, setup, base, predicate).
 */
StatusOr<BugCase> parseReproFile(const std::string &path);

/**
 * Replay a repro.sql on a fresh connection: rebuild the setup, rerun
 * the oracle. True when the bug still manifests. `details`, when
 * non-null, receives the oracle's evidence (or the failure reason).
 */
bool replayReproFile(const std::string &path,
                     std::string *details = nullptr);

/**
 * Write the full dossier directory for one case. Creates
 * `config.directory/<bugCaseId(bug)>/`; an existing dossier for the
 * same id is overwritten file-by-file (the id pins the content, so a
 * rewrite is a no-op in the fields that matter).
 */
Status writeBugDossier(const DossierConfig &config, const BugCase &bug,
                       const DossierContext &context);

} // namespace sqlpp

#endif // SQLPP_CORE_DOSSIER_H
