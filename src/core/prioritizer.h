/**
 * @file
 * Bug prioritization by feature-set subsumption (paper Section 3,
 * Fig. 4).
 *
 * A newly found bug-inducing test case is reported only if no
 * previously reported case's feature set is a subset of its own —
 * the intuition being that the earlier case already exercises the
 * (presumably faulty) features. The check is deliberately pragmatic:
 * false positives (two distinct bugs sharing features) and false
 * negatives (one bug reachable through disjoint feature sets) exist, as
 * the paper acknowledges; the benches quantify both against the fault
 * ground truth.
 */
#ifndef SQLPP_CORE_PRIORITIZER_H
#define SQLPP_CORE_PRIORITIZER_H

#include <vector>

#include "core/feature.h"

namespace sqlpp {

/** The paper's bug prioritizer. */
class BugPrioritizer
{
  public:
    /**
     * Decide whether a bug-inducing feature set is new. If it is, the
     * set is recorded and true is returned; otherwise (some known set
     * is a subset of it) it is classified a potential duplicate.
     */
    bool considerNew(const FeatureSet &features);

    /** Pure query form of the subset check, with no recording. */
    bool isPotentialDuplicate(const FeatureSet &features) const;

    /**
     * Merge another prioritizer's reported sets (same feature-id
     * space), preserving single-run semantics: each set goes through
     * considerNew() in order, so sets already subsumed by this
     * prioritizer's known sets are dropped. Returns how many sets were
     * adopted. Parallel shards with independently interned registries
     * must translate ids by name first (the scheduler does).
     */
    size_t absorb(const BugPrioritizer &other);

    /** Feature sets of the bugs reported so far. */
    const std::vector<FeatureSet> &knownSets() const { return known_; }

    size_t size() const { return known_.size(); }
    void clear() { known_.clear(); }

  private:
    std::vector<FeatureSet> known_;
};

} // namespace sqlpp

#endif // SQLPP_CORE_PRIORITIZER_H
