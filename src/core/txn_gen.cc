#include "core/txn_gen.h"

#include <algorithm>

#include "util/rng.h"
#include "util/strutil.h"

namespace sqlpp {

namespace {

/**
 * Interleaved writes keep their `a` values inside [0, 4] and every
 * phantom-probe predicate uses a cut point in [5, 9], so a predicated
 * read always covers the rows concurrent sessions insert — the
 * TXN_PHANTOM_CLAIMED_SNAPSHOT leak is observable by construction,
 * never lost to an unlucky predicate.
 */
constexpr int64_t kWriteALo = 0;
constexpr int64_t kWriteAHi = 4;
constexpr int64_t kCutLo = 5;
constexpr int64_t kCutHi = 9;

std::string
fullRead()
{
    return "SELECT a, b FROM tx0";
}

std::string
countRead()
{
    return "SELECT COUNT(*) FROM tx0";
}

std::string
predRead(Rng &rng)
{
    return format("SELECT a, b FROM tx0 WHERE a < %lld",
                  (long long)rng.range(kCutLo, kCutHi));
}

/** An unpredicated read — sees every pending/committed row. */
std::string
wideRead(Rng &rng)
{
    return rng.coin() ? fullRead() : countRead();
}

std::string
anyRead(Rng &rng)
{
    switch (rng.below(3)) {
      case 0: return fullRead();
      case 1: return countRead();
      default: return predRead(rng);
    }
}

} // namespace

TxnSchedule
generateTxnSchedule(uint64_t salt)
{
    Rng rng(fnv1a("txn-schedule-v1", salt));
    TxnSchedule schedule;
    schedule.finalQuery = fullRead();

    // Shared schema + seed rows. Integer-only, NULL-free, unindexed —
    // see the header comment for why the vocabulary is this narrow.
    schedule.setup.push_back("CREATE TABLE tx0 (a INT, b INT)");
    size_t seed_rows = 2 + rng.below(3);
    for (size_t i = 0; i < seed_rows; ++i) {
        schedule.setup.push_back(
            format("INSERT INTO tx0 VALUES (%lld, %lld)",
                   (long long)rng.range(0, 9), (long long)(10 + i)));
    }

    // Every insert carries a unique `b`, so any visibility difference
    // between the observed run and the witness shows up as concrete
    // missing/extra rows rather than a coincidental collision.
    int64_t next_b = 100;
    auto insertStmt = [&]() {
        return format("INSERT INTO tx0 VALUES (%lld, %lld)",
                      (long long)rng.range(kWriteALo, kWriteAHi),
                      (long long)next_b++);
    };

    // The two-session core: a fixed skeleton that opens every
    // isolation-fault window in one interleaving —
    //   s1 holds uncommitted writes while s0 reads   (dirty read),
    //   s1 commits inside s0's transaction and s0 re-reads
    //   unpredicated                                  (non-repeatable),
    //   then predicated                               (phantom),
    //   and both sessions commit writes that overlap  (lost update,
    //   s0's COMMIT last so a wholesale publish clobbers s1's rows).
    // Randomness varies the decoration (optional reads, savepoints, a
    // third session), never the windows.
    std::vector<TxnStep> core;
    auto push = [&core](size_t session, std::string sql,
                        bool is_read = false) {
        core.push_back(TxnStep{session, std::move(sql), is_read});
    };
    push(0, "BEGIN");
    if (rng.chance(0.5))
        push(0, anyRead(rng), true);
    push(1, "BEGIN");
    if (rng.chance(0.4))
        push(1, anyRead(rng), true);
    push(1, insertStmt());
    if (rng.chance(0.3))
        push(1, insertStmt());
    push(0, wideRead(rng), true); // dirty-read window
    push(1, "COMMIT");
    push(0, wideRead(rng), true); // non-repeatable-read window
    push(0, predRead(rng), true); // phantom window
    bool savepoint = rng.chance(0.3);
    if (savepoint)
        push(0, "SAVEPOINT sp0");
    push(0, insertStmt());
    if (savepoint) {
        if (rng.chance(0.5)) {
            push(0, "ROLLBACK TO sp0");
            if (rng.chance(0.5))
                push(0, insertStmt());
        } else {
            push(0, "RELEASE sp0");
        }
    }
    push(0, "COMMIT"); // lost-update window

    // Optional third session: a full block spliced into the core at
    // random ticks (internal order preserved), widening the state
    // space without touching the guaranteed windows above.
    schedule.sessions = 2;
    std::vector<TxnStep> extra;
    if (rng.chance(0.35)) {
        schedule.sessions = 3;
        auto epush = [&extra](size_t session, std::string sql,
                              bool is_read = false) {
            extra.push_back(TxnStep{session, std::move(sql), is_read});
        };
        epush(2, "BEGIN");
        size_t actions = 1 + rng.below(3);
        for (size_t i = 0; i < actions; ++i) {
            if (rng.chance(0.55))
                epush(2, insertStmt());
            else
                epush(2, anyRead(rng), true);
        }
        epush(2, rng.chance(0.3) ? "ROLLBACK" : "COMMIT");
    }

    if (extra.empty()) {
        schedule.steps = std::move(core);
        return schedule;
    }
    std::vector<size_t> slots;
    for (size_t i = 0; i < extra.size(); ++i)
        slots.push_back(rng.below(core.size() + 1));
    std::sort(slots.begin(), slots.end());
    size_t extra_index = 0;
    for (size_t i = 0; i <= core.size(); ++i) {
        while (extra_index < extra.size() && slots[extra_index] == i)
            schedule.steps.push_back(std::move(extra[extra_index++]));
        if (i < core.size())
            schedule.steps.push_back(std::move(core[i]));
    }
    return schedule;
}

std::vector<std::string>
renderTxnSchedule(const TxnSchedule &schedule)
{
    std::vector<std::string> lines;
    lines.push_back(format("txn-schedule sessions=%zu",
                           schedule.sessions));
    for (const std::string &statement : schedule.setup)
        lines.push_back("setup: " + statement);
    for (size_t tick = 0; tick < schedule.steps.size(); ++tick) {
        const TxnStep &step = schedule.steps[tick];
        lines.push_back(format("t%02zu s%zu: %s", tick, step.session,
                               step.sql.c_str()));
    }
    lines.push_back("final: " + schedule.finalQuery);
    return lines;
}

} // namespace sqlpp
