#include "dialect/connection.h"

#include "parser/parser.h"
#include "util/strutil.h"

namespace sqlpp {

Connection::Connection(const DialectProfile &profile) : profile_(profile)
{
    EngineConfig config;
    config.behavior = profile.behavior;
    config.faults = profile.faults;
    db_ = std::make_unique<Database>(config);
}

size_t
Connection::pendingRows() const
{
    size_t total = 0;
    for (const auto &insert : pending_)
        total += insert->rows.size();
    return total;
}

StatusOr<ResultSet>
Connection::handleRefresh(const std::string &table)
{
    ResultSet result(std::vector<std::string>{});
    std::vector<std::unique_ptr<InsertStmt>> keep;
    Status first_error = Status::ok();
    for (auto &insert : pending_) {
        if (!table.empty() && insert->table != table) {
            keep.push_back(std::move(insert));
            continue;
        }
        auto flushed = db_->executeStmt(*insert, ExecMode::Optimized);
        if (!flushed.isOk() && first_error.isOk())
            first_error = flushed.status();
    }
    pending_ = std::move(keep);
    if (!first_error.isOk())
        return first_error;
    return result;
}

StatusOr<ResultSet>
Connection::execute(const std::string &sql)
{
    ++statements_;
    // REFRESH is not part of the engine grammar; it is a dialect-level
    // statement only refresh-required dialects accept.
    std::string trimmed(trim(sql));
    if (equalsIgnoreCase(trimmed.substr(0, 8), "REFRESH ") ||
        equalsIgnoreCase(trimmed, "REFRESH")) {
        if (!profile_.requiresRefreshAfterInsert) {
            return Status::syntaxError("syntax error near REFRESH");
        }
        std::string table;
        if (trimmed.size() > 8)
            table = std::string(trim(trimmed.substr(8)));
        if (!table.empty() && table.back() == ';')
            table.pop_back();
        return handleRefresh(table);
    }

    auto parsed = parseStatement(sql);
    if (!parsed.isOk())
        return parsed.status();
    const Stmt &stmt = *parsed.value();

    if (Status s = profile_.validate(stmt); !s.isOk())
        return s;

    if (stmt.kind() == StmtKind::Select) {
        auto result = db_->executeStmt(stmt, ExecMode::Optimized);
        // Only completed executions count as explored plans (failed
        // statements never finish a plan; counting them would let
        // invalid queries inflate the Fig. 8 metric).
        if (result.isOk())
            seen_plans_.insert(db_->lastPlanFingerprint());
        return result;
    }
    if (profile_.requiresRefreshAfterInsert &&
        stmt.kind() == StmtKind::Insert) {
        // Rows become visible (and constraints fire) at REFRESH time.
        auto clone = stmt.clone();
        pending_.emplace_back(
            static_cast<InsertStmt *>(clone.release()));
        return ResultSet(std::vector<std::string>{});
    }
    return db_->executeStmt(stmt, ExecMode::Optimized);
}

StatusOr<ResultSet>
Connection::executeAdapted(const std::string &sql)
{
    auto result = execute(sql);
    if (!result.isOk())
        return result;
    if (profile_.requiresRefreshAfterInsert && !pending_.empty()) {
        // The per-dialect adapter: flush immediately so the platform
        // sees constraint errors attached to the INSERT it issued.
        auto refreshed = execute("REFRESH");
        if (!refreshed.isOk())
            return refreshed.status();
    }
    return result;
}

} // namespace sqlpp
