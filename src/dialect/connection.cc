#include "dialect/connection.h"

#include <chrono>
#include <thread>

#include "parser/parser.h"
#include "util/metrics.h"
#include "util/strutil.h"
#include "util/trace.h"

namespace sqlpp {

namespace {

/** Per-error-class counters (pre-resolved slots; names are stable). */
void
noteExecuteOutcome(const Status &status)
{
    switch (status.code()) {
      case ErrorCode::Ok:
        SQLPP_COUNT("connection.execute.ok");
        SQLPP_TRACE_EVENT(StatementExecuted, "", 1, 0);
        break;
      case ErrorCode::SyntaxError:
        SQLPP_COUNT("connection.error.syntax");
        SQLPP_TRACE_EVENT(ErrorClass, "syntax", 0, 0);
        break;
      case ErrorCode::SemanticError:
        SQLPP_COUNT("connection.error.semantic");
        SQLPP_TRACE_EVENT(ErrorClass, "semantic", 0, 0);
        break;
      case ErrorCode::RuntimeError:
        SQLPP_COUNT("connection.error.runtime");
        SQLPP_TRACE_EVENT(ErrorClass, "runtime", 0, 0);
        break;
      case ErrorCode::Unsupported:
        SQLPP_COUNT("connection.error.unsupported");
        SQLPP_TRACE_EVENT(ErrorClass, "unsupported", 0, 0);
        break;
      case ErrorCode::Internal:
        SQLPP_COUNT("connection.error.internal");
        SQLPP_TRACE_EVENT(ErrorClass, "internal", 0, 0);
        break;
      case ErrorCode::BudgetExhausted:
        SQLPP_COUNT("connection.error.budget");
        SQLPP_TRACE_EVENT(BudgetExhausted, "", 0, 0);
        break;
    }
}

} // namespace

Connection::Connection(const DialectProfile &profile,
                       const ConnectionOptions &options)
    : profile_(profile), options_(options)
{
    EngineConfig config;
    config.behavior = profile.behavior;
    config.faults = profile.faults;
    config.budget = options.budget;
    db_ = std::make_shared<Database>(config);
}

Connection::Connection(const DialectProfile &profile,
                       const ConnectionOptions &options,
                       std::shared_ptr<Database> db)
    : profile_(profile), options_(options), db_(std::move(db))
{
    session_ = db_->openSession();
}

std::vector<uint64_t>
Connection::takeNewPlans()
{
    std::vector<uint64_t> drained;
    drained.swap(new_plans_);
    return drained;
}

size_t
Connection::pendingRows() const
{
    size_t total = 0;
    for (const auto &insert : pending_)
        total += insert->rows.size();
    return total;
}

StatusOr<ResultSet>
Connection::handleRefresh(const std::string &table)
{
    if (transient_failures_ > 0) {
        // Injected transient failure: fail before touching buffered
        // rows, so a retry sees the exact same pending queue.
        --transient_failures_;
        last_refresh_transient_ = true;
        return Status::runtimeError("transient REFRESH failure");
    }
    last_refresh_transient_ = false;
    ResultSet result(std::vector<std::string>{});
    std::vector<std::unique_ptr<InsertStmt>> keep;
    Status error = Status::ok();
    size_t index = 0;
    for (; index < pending_.size(); ++index) {
        auto &insert = pending_[index];
        if (!table.empty() && insert->table != table) {
            keep.push_back(std::move(insert));
            continue;
        }
        auto flushed = db_->executeStmt(*insert, options_.execMode,
                                        session_);
        if (!flushed.isOk()) {
            // Stop at the first failure: the failing INSERT is
            // consumed (its verdict is this error), but inserts that
            // were never attempted stay buffered for the next REFRESH
            // instead of being silently dropped.
            error = flushed.status();
            ++index;
            break;
        }
    }
    for (; index < pending_.size(); ++index)
        keep.push_back(std::move(pending_[index]));
    pending_ = std::move(keep);
    if (!error.isOk())
        return error;
    return result;
}

StatusOr<ResultSet>
Connection::execute(const std::string &sql)
{
    SQLPP_SPAN("connection.execute.wall_us");
    SQLPP_COUNT("connection.statements");
    auto result = executeInternal(sql);
    noteExecuteOutcome(result.status());
    // Budget exhaustion is a resource condition, not a wrong answer:
    // count it so campaigns can report it, distinct from real errors.
    if (!result.isOk() &&
        result.status().code() == ErrorCode::BudgetExhausted) {
        ++resource_errors_;
    }
    return result;
}

StatusOr<ResultSet>
Connection::executeInternal(const std::string &sql)
{
    ++statements_;
    // The flight recorder's logical clock: one tick per statement the
    // connection attempts, so traces never depend on wall time.
    SQLPP_TRACE_TICK();
    // REFRESH is not part of the engine grammar; it is a dialect-level
    // statement only refresh-required dialects accept.
    std::string trimmed(trim(sql));
    if (equalsIgnoreCase(trimmed.substr(0, 8), "REFRESH ") ||
        equalsIgnoreCase(trimmed, "REFRESH")) {
        if (!profile_.requiresRefreshAfterInsert) {
            return Status::syntaxError("syntax error near REFRESH");
        }
        std::string table;
        if (trimmed.size() > 8)
            table = std::string(trim(trimmed.substr(8)));
        if (!table.empty() && table.back() == ';')
            table.pop_back();
        return handleRefresh(table);
    }

    auto parsed = parseStatement(sql);
    if (!parsed.isOk())
        return parsed.status();
    const Stmt &stmt = *parsed.value();

    if (Status s = profile_.validate(stmt); !s.isOk())
        return s;

    if (stmt.kind() == StmtKind::Select) {
        auto result = db_->executeStmt(stmt, options_.execMode, session_);
        // Only completed executions count as explored plans (failed
        // statements never finish a plan; counting them would let
        // invalid queries inflate the Fig. 8 metric).
        if (result.isOk() &&
            seen_plans_.insert(db_->lastPlanFingerprint()).second) {
            new_plans_.push_back(db_->lastPlanFingerprint());
            SQLPP_TRACE_EVENT(PlanDiscovered, "",
                              db_->lastPlanFingerprint(),
                              seen_plans_.size());
        }
        return result;
    }
    if (profile_.requiresRefreshAfterInsert &&
        stmt.kind() == StmtKind::Insert) {
        // Rows become visible (and constraints fire) at REFRESH time.
        auto clone = stmt.clone();
        pending_.emplace_back(
            static_cast<InsertStmt *>(clone.release()));
        return ResultSet(std::vector<std::string>{});
    }
    return db_->executeStmt(stmt, options_.execMode, session_);
}

StatusOr<ResultSet>
Connection::executeAdapted(const std::string &sql)
{
    size_t already_pending = pending_.size();
    auto result = execute(sql);
    if (!result.isOk())
        return result;
    if (profile_.requiresRefreshAfterInsert && !pending_.empty()) {
        // The per-dialect adapter: flush immediately so the platform
        // sees constraint errors attached to the INSERT it issued.
        bool buffered_now = pending_.size() > already_pending;
        auto refreshed = execute("REFRESH");
        // Transient flush failures are retried with exponential backoff
        // before the error is surfaced — the watchdog's second line of
        // defense after the per-statement budget.
        double backoff = options_.refreshRetry.backoffBaseMicros;
        for (size_t attempt = 0;
             !refreshed.isOk() && last_refresh_transient_ &&
             attempt < options_.refreshRetry.maxRetries;
             ++attempt) {
            ++refresh_retries_;
            SQLPP_COUNT("connection.refresh.retries");
            if (backoff >= 1.0) {
                std::this_thread::sleep_for(std::chrono::microseconds(
                    static_cast<int64_t>(backoff)));
            }
            backoff *= options_.refreshRetry.backoffMultiplier;
            refreshed = execute("REFRESH");
        }
        if (!refreshed.isOk()) {
            // A transient failure that survived every retry touched no
            // insert at all; it is this statement's verdict. Otherwise
            // the flush stopped at the first failing INSERT: if this
            // statement's own insert failed (nothing buffered after it,
            // so a failure leaves the queue empty), the error is its
            // verdict; if an *older* buffered insert failed, this
            // statement's insert was never attempted and stays pending
            // — its result stands, and the error belongs to the
            // statement that buffered the failing insert.
            if (last_refresh_transient_ || !buffered_now ||
                pending_.empty())
                return refreshed.status();
        }
    }
    return result;
}

} // namespace sqlpp
