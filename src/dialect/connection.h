/**
 * @file
 * Connection: the platform's JDBC equivalent.
 *
 * A Connection binds a dialect profile to a fresh Database instance and
 * exposes the one operation the testing platform relies on:
 * execute(text) -> rows or a coded error. It also implements the
 * dialect adaptation the paper describes as the remaining manual effort
 * (Section 6): for dialects with deferred visibility (cratedb-like),
 * INSERTed rows stay invisible until a REFRESH <table> statement runs,
 * and executeAdapted() issues that REFRESH automatically after each
 * INSERT — the equivalent of the paper's ~16-LoC-per-DBMS adapters.
 */
#ifndef SQLPP_DIALECT_CONNECTION_H
#define SQLPP_DIALECT_CONNECTION_H

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dialect/profile.h"
#include "engine/database.h"

namespace sqlpp {

/**
 * Retry policy for transient REFRESH failures (a distributed store's
 * flush can fail transiently; real adapters retry with backoff before
 * giving up on the shard).
 */
struct RefreshRetryPolicy
{
    /** Retries after the initial attempt; 0 disables retrying. */
    size_t maxRetries = 3;
    /** Sleep before the first retry, in microseconds. */
    unsigned backoffBaseMicros = 500;
    /** Multiplier applied to the sleep after each failed retry. */
    double backoffMultiplier = 2.0;
};

/** Session knobs a campaign applies to every connection it opens. */
struct ConnectionOptions
{
    /** Per-statement execution budget for the underlying engine. */
    StepBudget budget;
    RefreshRetryPolicy refreshRetry;
    /** Execution pipeline every statement on this session runs under. */
    ExecMode execMode = ExecMode::Optimized;
};

/** One open session against one dialect's DBMS instance. */
class Connection
{
  public:
    explicit Connection(const DialectProfile &profile,
                        const ConnectionOptions &options = {});

    /**
     * Open an additional session against an existing Database — the
     * multi-session form used by interleaved transaction testing. The
     * first connection is built normally; subsequent ones share its
     * engine via sharedDatabase() and get their own SessionId, so
     * transactions on each connection are isolated from one another.
     */
    Connection(const DialectProfile &profile,
               const ConnectionOptions &options,
               std::shared_ptr<Database> db);

    /**
     * Execute one SQL statement exactly as a client would: parse,
     * dialect validation, then engine execution. On refresh-required
     * dialects, INSERT buffers rows until `REFRESH <table>` runs.
     */
    StatusOr<ResultSet> execute(const std::string &sql);

    /**
     * Execute with the per-dialect adaptation applied: after an INSERT
     * on a refresh-required dialect, automatically issue the REFRESH
     * and surface its status (so constraint violations are not lost).
     */
    StatusOr<ResultSet> executeAdapted(const std::string &sql);

    const DialectProfile &profile() const { return profile_; }

    /** Instrumentation access (plan fingerprints, catalog inspection). */
    const Database &database() const { return *db_; }

    /** The shared engine, for opening further sessions against it. */
    std::shared_ptr<Database> sharedDatabase() const { return db_; }

    /** This connection's engine session id. */
    SessionId sessionId() const { return session_; }

    /** True while this connection has an explicit transaction open. */
    bool inTransaction() const { return db_->inTransaction(session_); }

    /** Number of rows currently buffered awaiting REFRESH. */
    size_t pendingRows() const;

    /** Statements executed through this connection. */
    uint64_t statementsIssued() const { return statements_; }

    /**
     * Distinct plan fingerprints of every SELECT executed through this
     * connection — the paper's unique-query-plan metric (Fig. 8).
     */
    const std::set<uint64_t> &seenPlans() const { return seen_plans_; }

    /**
     * Fingerprints first seen since the previous call, drained. Lets a
     * campaign accumulate plans incrementally in O(new) per check
     * instead of re-scanning the full seenPlans() set every time.
     */
    std::vector<uint64_t> takeNewPlans();

    /**
     * Statements that failed with ErrorCode::BudgetExhausted — resource
     * conditions, never bugs; campaigns report them separately.
     */
    uint64_t resourceErrors() const { return resource_errors_; }

    /** REFRESH retries performed after transient failures. */
    uint64_t refreshRetries() const { return refresh_retries_; }

    /**
     * Test hook: make the next @p count REFRESH flushes fail with a
     * transient runtime error before touching buffered rows.
     */
    void injectTransientRefreshFailures(size_t count)
    {
        transient_failures_ = count;
    }

  private:
    StatusOr<ResultSet> executeInternal(const std::string &sql);
    StatusOr<ResultSet> handleRefresh(const std::string &table);

    const DialectProfile &profile_;
    ConnectionOptions options_;
    std::shared_ptr<Database> db_;
    /** Engine session this connection's statements run on. */
    SessionId session_ = Database::kDefaultSession;
    /** Buffered INSERTs per refresh-required dialect semantics. */
    std::vector<std::unique_ptr<InsertStmt>> pending_;
    uint64_t statements_ = 0;
    uint64_t resource_errors_ = 0;
    uint64_t refresh_retries_ = 0;
    /** Injected transient REFRESH failures still owed (test hook). */
    size_t transient_failures_ = 0;
    /** True when the most recent REFRESH failed transiently. */
    bool last_refresh_transient_ = false;
    std::set<uint64_t> seen_plans_;
    /** Fingerprints added to seen_plans_ since the last drain. */
    std::vector<uint64_t> new_plans_;
};

} // namespace sqlpp

#endif // SQLPP_DIALECT_CONNECTION_H
