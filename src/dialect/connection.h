/**
 * @file
 * Connection: the platform's JDBC equivalent.
 *
 * A Connection binds a dialect profile to a fresh Database instance and
 * exposes the one operation the testing platform relies on:
 * execute(text) -> rows or a coded error. It also implements the
 * dialect adaptation the paper describes as the remaining manual effort
 * (Section 6): for dialects with deferred visibility (cratedb-like),
 * INSERTed rows stay invisible until a REFRESH <table> statement runs,
 * and executeAdapted() issues that REFRESH automatically after each
 * INSERT — the equivalent of the paper's ~16-LoC-per-DBMS adapters.
 */
#ifndef SQLPP_DIALECT_CONNECTION_H
#define SQLPP_DIALECT_CONNECTION_H

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dialect/profile.h"
#include "engine/database.h"

namespace sqlpp {

/** One open session against one dialect's DBMS instance. */
class Connection
{
  public:
    explicit Connection(const DialectProfile &profile);

    /**
     * Execute one SQL statement exactly as a client would: parse,
     * dialect validation, then engine execution. On refresh-required
     * dialects, INSERT buffers rows until `REFRESH <table>` runs.
     */
    StatusOr<ResultSet> execute(const std::string &sql);

    /**
     * Execute with the per-dialect adaptation applied: after an INSERT
     * on a refresh-required dialect, automatically issue the REFRESH
     * and surface its status (so constraint violations are not lost).
     */
    StatusOr<ResultSet> executeAdapted(const std::string &sql);

    const DialectProfile &profile() const { return profile_; }

    /** Instrumentation access (plan fingerprints, catalog inspection). */
    const Database &database() const { return *db_; }

    /** Number of rows currently buffered awaiting REFRESH. */
    size_t pendingRows() const;

    /** Statements executed through this connection. */
    uint64_t statementsIssued() const { return statements_; }

    /**
     * Distinct plan fingerprints of every SELECT executed through this
     * connection — the paper's unique-query-plan metric (Fig. 8).
     */
    const std::set<uint64_t> &seenPlans() const { return seen_plans_; }

    /**
     * Fingerprints first seen since the previous call, drained. Lets a
     * campaign accumulate plans incrementally in O(new) per check
     * instead of re-scanning the full seenPlans() set every time.
     */
    std::vector<uint64_t> takeNewPlans();

  private:
    StatusOr<ResultSet> handleRefresh(const std::string &table);

    const DialectProfile &profile_;
    std::unique_ptr<Database> db_;
    /** Buffered INSERTs per refresh-required dialect semantics. */
    std::vector<std::unique_ptr<InsertStmt>> pending_;
    uint64_t statements_ = 0;
    std::set<uint64_t> seen_plans_;
    /** Fingerprints added to seen_plans_ since the last drain. */
    std::vector<uint64_t> new_plans_;
};

} // namespace sqlpp

#endif // SQLPP_DIALECT_CONNECTION_H
