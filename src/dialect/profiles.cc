/**
 * @file
 * The built-in dialect profiles.
 *
 * Every profile is derived from a fully-featured base by removing
 * capabilities and adding quirks and ground-truth faults. The matrices
 * are modelled on the real systems' public documentation where the
 * paper mentions a concrete fact (CrateDB lacks CREATE INDEX and needs
 * REFRESH; MySQL has <=> but no FULL JOIN or ||; SQLite is dynamically
 * typed with GLOB; Virtuoso's dialect diverges hardest — the paper
 * reports only 4% of foreign test cases run on it) and otherwise chosen
 * to produce a *diverse* matrix, which is the property the paper's
 * experiments actually exercise.
 *
 * Fault assignments are fixed (not seeded) so every experiment is
 * reproducible; counts are proportioned like Table 2 (Umbra and
 * CrateDB-like systems carry many bugs, MySQL-like few).
 */
#include "dialect/profile.h"

#include <algorithm>

namespace sqlpp {

namespace {

template <typename T>
void
addAll(std::set<T> &target, std::initializer_list<T> items)
{
    target.insert(items.begin(), items.end());
}

void
addFunctions(DialectProfile &profile,
             std::initializer_list<const char *> names)
{
    for (const char *name : names)
        profile.functions.insert(name);
}

void
removeFunctions(DialectProfile &profile,
                std::initializer_list<const char *> names)
{
    for (const char *name : names)
        profile.functions.erase(name);
}

/** Function groups of the registry's 58 functions. */
constexpr std::initializer_list<const char *> kMathBasic = {
    "ABS", "SIGN", "MOD", "POWER", "SQRT", "FLOOR", "CEIL", "ROUND"};
constexpr std::initializer_list<const char *> kTrig = {
    "SIN", "COS", "TAN", "ASIN", "ACOS", "ATAN", "ATAN2",
    "PI", "DEGREES", "RADIANS"};
constexpr std::initializer_list<const char *> kLogExp = {
    "EXP", "LN", "LOG10", "LOG2"};
constexpr std::initializer_list<const char *> kStringBasic = {
    "LENGTH", "LOWER", "UPPER", "TRIM", "LTRIM", "RTRIM",
    "SUBSTR", "INSTR", "REPLACE", "CONCAT"};
constexpr std::initializer_list<const char *> kStringExt = {
    "CONCAT_WS", "REVERSE", "REPEAT", "LEFT", "RIGHT", "ASCII",
    "CHR", "HEX", "QUOTE", "SPACE", "LPAD", "RPAD", "STARTS_WITH"};
constexpr std::initializer_list<const char *> kConditional = {
    "NULLIF", "COALESCE", "IFNULL", "NVL", "IIF", "GREATEST",
    "LEAST", "TYPEOF"};
constexpr std::initializer_list<const char *> kAggregates = {
    "COUNT", "SUM", "AVG", "MIN", "MAX"};

/** A dialect that understands everything the engine implements. */
DialectProfile
fullBase(const std::string &name)
{
    DialectProfile profile;
    profile.name = name;
    addAll(profile.statements,
           {StmtKind::CreateTable, StmtKind::CreateIndex,
            StmtKind::CreateView, StmtKind::Insert, StmtKind::Analyze,
            StmtKind::Select, StmtKind::DropTable, StmtKind::DropView,
            StmtKind::DropIndex});
    addAll(profile.joins,
           {JoinType::Inner, JoinType::Left, JoinType::Right,
            JoinType::Full, JoinType::Cross, JoinType::Natural});
    addAll(profile.binaryOps,
           {BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul, BinaryOp::Div,
            BinaryOp::Mod, BinaryOp::Eq, BinaryOp::NotEq,
            BinaryOp::NotEqBang, BinaryOp::Less, BinaryOp::LessEq,
            BinaryOp::Greater, BinaryOp::GreaterEq, BinaryOp::NullSafeEq,
            BinaryOp::And, BinaryOp::Or, BinaryOp::BitAnd,
            BinaryOp::BitOr, BinaryOp::BitXor, BinaryOp::ShiftLeft,
            BinaryOp::ShiftRight, BinaryOp::Concat, BinaryOp::Like,
            BinaryOp::NotLike, BinaryOp::Glob, BinaryOp::IsDistinctFrom,
            BinaryOp::IsNotDistinctFrom});
    addAll(profile.unaryOps,
           {UnaryOp::Neg, UnaryOp::Plus, UnaryOp::BitNot, UnaryOp::Not,
            UnaryOp::IsNull, UnaryOp::IsNotNull, UnaryOp::IsTrue,
            UnaryOp::IsFalse, UnaryOp::IsNotTrue, UnaryOp::IsNotFalse});
    addFunctions(profile, kMathBasic);
    addFunctions(profile, kTrig);
    addFunctions(profile, kLogExp);
    addFunctions(profile, kStringBasic);
    addFunctions(profile, kStringExt);
    addFunctions(profile, kConditional);
    addFunctions(profile, kAggregates);
    addAll(profile.dataTypes,
           {DataType::Int, DataType::Text, DataType::Bool});
    return profile;
}

/** MySQL-family baseline: dynamic typing, <=>, no ||/GLOB/FULL JOIN. */
DialectProfile
mysqlFamily(const std::string &name)
{
    DialectProfile profile = fullBase(name);
    profile.behavior.staticTyping = false;
    profile.behavior.divZeroIsNull = true;
    profile.behavior.caseInsensitiveLike = true;
    profile.joins.erase(JoinType::Full);
    profile.binaryOps.erase(BinaryOp::Concat);
    profile.binaryOps.erase(BinaryOp::Glob);
    profile.binaryOps.erase(BinaryOp::IsDistinctFrom);
    profile.binaryOps.erase(BinaryOp::IsNotDistinctFrom);
    profile.clauses.partialIndex = false;
    removeFunctions(profile, {"TYPEOF", "IIF", "STARTS_WITH"});
    return profile;
}

/** PostgreSQL-family baseline: static typing, strict errors. */
DialectProfile
postgresFamily(const std::string &name)
{
    DialectProfile profile = fullBase(name);
    profile.behavior.staticTyping = true;
    profile.behavior.divZeroIsNull = false;
    profile.behavior.domainErrorIsNull = false;
    profile.behavior.caseInsensitiveLike = false;
    profile.binaryOps.erase(BinaryOp::NullSafeEq);
    profile.binaryOps.erase(BinaryOp::Glob);
    profile.binaryOps.erase(BinaryOp::NotEqBang); // spelled <> only? no:
    profile.binaryOps.insert(BinaryOp::NotEqBang); // pg accepts both
    profile.clauses.insertOrIgnore = false;
    removeFunctions(profile, {"IFNULL", "TYPEOF", "IIF", "INSTR"});
    return profile;
}

std::vector<DialectProfile>
buildProfiles()
{
    std::vector<DialectProfile> profiles;

    // ------------------------------------------------------------ //
    // cedardb-like: Umbra-derived start-up system; strict, modern.
    {
        DialectProfile p = postgresFamily("cedardb-like");
        removeFunctions(p, {"NVL", "RADIANS"});
        p.faults.enable(FaultId::OnToWhereRightJoin);
        p.faults.enable(FaultId::ConstFoldNullifIdentity);
        profiles.push_back(std::move(p));
    }
    // cratedb-like: PostgreSQL-compatible distributed store. No
    // CREATE INDEX (paper Section 4), REFRESH needed after INSERT
    // (paper Section 6), and the campaign's richest fault load
    // (Table 5 is measured on it).
    {
        DialectProfile p = postgresFamily("cratedb-like");
        p.statements.erase(StmtKind::CreateIndex);
        p.statements.erase(StmtKind::DropIndex);
        p.requiresRefreshAfterInsert = true;
        p.clauses.partialIndex = false;
        // Eventually-consistent distributed store: no interactive
        // transactions (BEGIN is rejected, like CrateDB).
        p.clauses.transactions = false;
        removeFunctions(p, {"REVERSE", "CHR", "SPACE"});
        p.faults.enable(FaultId::WhereNullAsTrue);
        p.faults.enable(FaultId::NotNullTrue);
        p.faults.enable(FaultId::IsNullFalseForBoolNull);
        p.faults.enable(FaultId::PushdownThroughOuterJoin);
        p.faults.enable(FaultId::HashJoinNullMatch);
        p.faults.enable(FaultId::ConstFoldNullifIdentity);
        p.faults.enable(FaultId::DistinctNullCollapse);
        p.faults.enable(FaultId::NegContextMixedEq);
        p.faults.enable(FaultId::IsTrueFalseTrue);
        p.faults.enable(FaultId::GroupByNullSeparate);
        profiles.push_back(std::move(p));
    }
    // cubrid-like: legacy system, reduced feature set, no booleans.
    {
        DialectProfile p = postgresFamily("cubrid-like");
        p.dataTypes.erase(DataType::Bool);
        p.joins.erase(JoinType::Full);
        p.joins.erase(JoinType::Natural);
        p.clauses.offset = false;
        p.unaryOps.erase(UnaryOp::IsTrue);
        p.unaryOps.erase(UnaryOp::IsFalse);
        p.unaryOps.erase(UnaryOp::IsNotTrue);
        p.unaryOps.erase(UnaryOp::IsNotFalse);
        removeFunctions(p, {"LOG2", "ATAN2", "CONCAT_WS", "LPAD",
                            "RPAD", "HEX"});
        p.faults.enable(FaultId::NotNullTrue);
        profiles.push_back(std::move(p));
    }
    // dolt-like: MySQL-compatible versioned database.
    {
        DialectProfile p = mysqlFamily("dolt-like");
        removeFunctions(p, {"HEX", "QUOTE"});
        p.faults.enable(FaultId::IndexRangeGtIncludesEqual);
        p.faults.enable(FaultId::IndexSkipsNull);
        p.faults.enable(FaultId::NotNullTrue);
        p.faults.enable(FaultId::NegContextMixedEq);
        p.faults.enable(FaultId::LikeUnderscoreLiteral);
        p.faults.enable(FaultId::GroupByNullSeparate);
        // Isolation fault: uncommitted writes of concurrent sessions
        // are visible to every read (dirty read).
        p.faults.enable(FaultId::TxnDirtyRead);
        profiles.push_back(std::move(p));
    }
    // duckdb-like: analytics engine, strict typing, friendly dialect.
    {
        DialectProfile p = postgresFamily("duckdb-like");
        p.behavior.divZeroIsNull = true; // DuckDB yields NULL (pre-1.0)
        p.binaryOps.insert(BinaryOp::Glob);
        addFunctions(p, {"IFNULL", "TYPEOF", "INSTR"});
        p.faults.enable(FaultId::ConstFoldNullifIdentity);
        p.faults.enable(FaultId::HashJoinNullMatch);
        p.faults.enable(FaultId::IsNullFalseForBoolNull);
        profiles.push_back(std::move(p));
    }
    // firebird-like: classic strict system, no NATURAL JOIN.
    {
        DialectProfile p = postgresFamily("firebird-like");
        p.joins.erase(JoinType::Natural);
        p.statements.erase(StmtKind::Analyze);
        p.clauses.partialIndex = false;
        p.clauses.multiRowInsert = false;
        removeFunctions(p, {"CONCAT_WS", "REPEAT", "STARTS_WITH",
                            "LOG2", "QUOTE"});
        p.faults.enable(FaultId::IndexRangeLtIncludesEqual);
        p.faults.enable(FaultId::WhereNullAsTrue);
        p.faults.enable(FaultId::PushdownThroughOuterJoin);
        p.faults.enable(FaultId::SumEmptyZero);
        profiles.push_back(std::move(p));
    }
    // h2-like: embedded Java SQL engine.
    {
        DialectProfile p = postgresFamily("h2-like");
        addFunctions(p, {"IFNULL", "INSTR"});
        p.faults.enable(FaultId::IsTrueFalseTrue);
        profiles.push_back(std::move(p));
    }
    // mariadb-like.
    {
        DialectProfile p = mysqlFamily("mariadb-like");
        removeFunctions(p, {"ATAN2"});
        p.faults.enable(FaultId::IsNullFalseForBoolNull);
        p.faults.enable(FaultId::GroupByNullSeparate);
        // Isolation fault: commits publish the session's private state
        // wholesale, clobbering concurrent committers (lost update).
        p.faults.enable(FaultId::TxnLostUpdate);
        profiles.push_back(std::move(p));
    }
    // monetdb-like: column store with a strict dialect.
    {
        DialectProfile p = postgresFamily("monetdb-like");
        p.joins.erase(JoinType::Natural);
        p.clauses.partialIndex = false;
        p.clauses.uniqueIndex = false;
        removeFunctions(p, {"GREATEST", "LEAST", "SPACE", "REPEAT"});
        p.faults.enable(FaultId::IndexEqTextCoerce);
        p.faults.enable(FaultId::PushdownThroughOuterJoin);
        p.faults.enable(FaultId::WhereNullAsTrue);
        p.faults.enable(FaultId::DistinctNullCollapse);
        p.faults.enable(FaultId::SumEmptyZero);
        p.faults.enable(FaultId::HashJoinNullMatch);
        // Isolation fault: predicated reads rescan latest-committed
        // state inside a claimed snapshot (phantoms).
        p.faults.enable(FaultId::TxnPhantomClaimedSnapshot);
        profiles.push_back(std::move(p));
    }
    // mysql-like.
    {
        DialectProfile p = mysqlFamily("mysql-like");
        p.faults.enable(FaultId::HashJoinNullMatch);
        p.faults.enable(FaultId::LikeUnderscoreLiteral);
        profiles.push_back(std::move(p));
    }
    // percona-like: MySQL fork.
    {
        DialectProfile p = mysqlFamily("percona-like");
        removeFunctions(p, {"LOG2"});
        p.faults.enable(FaultId::IndexRangeGtIncludesEqual);
        p.faults.enable(FaultId::NullSafeEqBothNullFalse);
        profiles.push_back(std::move(p));
    }
    // risingwave-like: streaming SQL engine; no indexes over streams.
    {
        DialectProfile p = postgresFamily("risingwave-like");
        p.statements.erase(StmtKind::CreateIndex);
        p.statements.erase(StmtKind::DropIndex);
        p.statements.erase(StmtKind::Analyze);
        p.joins.erase(JoinType::Natural);
        // Streaming materialization: no interactive transactions.
        p.clauses.transactions = false;
        removeFunctions(p, {"HEX", "QUOTE", "SPACE"});
        p.faults.enable(FaultId::PushdownThroughOuterJoin);
        p.faults.enable(FaultId::DistinctNullCollapse);
        profiles.push_back(std::move(p));
    }
    // sqlite-like: dynamic typing, GLOB, lax errors; carries the two
    // listing bugs the paper dissects plus one latent fault.
    {
        DialectProfile p = fullBase("sqlite-like");
        p.behavior.staticTyping = false;
        p.behavior.divZeroIsNull = true;
        p.behavior.domainErrorIsNull = true;
        p.behavior.caseInsensitiveLike = true;
        p.binaryOps.erase(BinaryOp::NullSafeEq);
        p.binaryOps.erase(BinaryOp::IsDistinctFrom);
        p.binaryOps.erase(BinaryOp::IsNotDistinctFrom);
        removeFunctions(p, {"CONCAT_WS", "LPAD", "RPAD", "SPACE",
                            "REPEAT", "STARTS_WITH", "CHR",
                            "GREATEST", "LEAST", "NVL"});
        p.faults.enable(FaultId::NegContextMixedEq);      // Listing 3
        p.faults.enable(FaultId::ReplaceNumericSubject);  // Listing 3
        p.faults.enable(FaultId::OnToWhereRightJoin);     // Listing 4
        p.faults.enable(FaultId::SumEmptyZero);           // latent
        profiles.push_back(std::move(p));
    }
    // tidb-like: distributed MySQL-compatible engine.
    {
        DialectProfile p = mysqlFamily("tidb-like");
        removeFunctions(p, {"SPACE", "CHR"});
        p.joins.erase(JoinType::Natural);
        p.faults.enable(FaultId::IndexEqTextCoerce);
        p.faults.enable(FaultId::NegContextMixedEq);
        p.faults.enable(FaultId::HashJoinNullMatch);
        // Isolation fault: in-transaction reads leak concurrently
        // committed rows (read committed under a claimed snapshot).
        p.faults.enable(FaultId::TxnNonRepeatableRead);
        profiles.push_back(std::move(p));
    }
    // umbra-like: research engine; the campaign's largest bug count
    // (Table 2: 47 reports) concentrated in its young optimizer.
    {
        DialectProfile p = postgresFamily("umbra-like");
        removeFunctions(p, {"QUOTE", "HEX", "NVL"});
        p.joins.erase(JoinType::Natural);
        p.faults.enable(FaultId::IndexRangeGtIncludesEqual);
        p.faults.enable(FaultId::IndexRangeLtIncludesEqual);
        p.faults.enable(FaultId::IndexSkipsNull);
        p.faults.enable(FaultId::PartialIndexIgnoresPredicate);
        p.faults.enable(FaultId::OnToWhereRightJoin);
        p.faults.enable(FaultId::NotNullTrue);
        p.faults.enable(FaultId::IsTrueFalseTrue);
        p.faults.enable(FaultId::ConstFoldNullifIdentity);
        profiles.push_back(std::move(p));
    }
    // virtuoso-like: the outlier dialect (SPARQL heritage): tiny
    // overlap with SQL dialects — no views, no booleans, no
    // subqueries, minimal operator and function sets.
    {
        DialectProfile p = fullBase("virtuoso-like");
        p.behavior.staticTyping = true;
        p.behavior.divZeroIsNull = false;
        p.statements.erase(StmtKind::CreateView);
        p.statements.erase(StmtKind::DropView);
        p.statements.erase(StmtKind::Analyze);
        p.dataTypes.erase(DataType::Bool);
        p.joins.erase(JoinType::Right);
        p.joins.erase(JoinType::Full);
        p.joins.erase(JoinType::Natural);
        p.clauses.subqueryInFrom = false;
        p.clauses.subqueryInExpr = false;
        p.clauses.partialIndex = false;
        p.clauses.offset = false;
        p.clauses.insertOrIgnore = false;
        p.clauses.ifNotExists = false;
        p.binaryOps.erase(BinaryOp::NullSafeEq);
        p.binaryOps.erase(BinaryOp::Glob);
        p.binaryOps.erase(BinaryOp::IsDistinctFrom);
        p.binaryOps.erase(BinaryOp::IsNotDistinctFrom);
        p.binaryOps.erase(BinaryOp::ShiftLeft);
        p.binaryOps.erase(BinaryOp::ShiftRight);
        p.binaryOps.erase(BinaryOp::BitXor);
        p.unaryOps.erase(UnaryOp::IsTrue);
        p.unaryOps.erase(UnaryOp::IsFalse);
        p.unaryOps.erase(UnaryOp::IsNotTrue);
        p.unaryOps.erase(UnaryOp::IsNotFalse);
        p.unaryOps.erase(UnaryOp::BitNot);
        p.functions.clear();
        addFunctions(p, {"ABS", "SIGN", "MOD", "LENGTH", "LOWER",
                         "UPPER", "SUBSTR", "COALESCE", "NULLIF",
                         "COUNT", "SUM", "AVG", "MIN", "MAX"});
        p.faults.enable(FaultId::WhereNullAsTrue);
        p.faults.enable(FaultId::IndexRangeGtIncludesEqual);
        p.faults.enable(FaultId::SumEmptyZero);
        profiles.push_back(std::move(p));
    }
    // vitess-like: sharding layer over MySQL.
    {
        DialectProfile p = mysqlFamily("vitess-like");
        removeFunctions(p, {"REPEAT", "REVERSE"});
        p.statements.erase(StmtKind::CreateView);
        p.statements.erase(StmtKind::DropView);
        p.faults.enable(FaultId::NotNullTrue);
        p.faults.enable(FaultId::LikeUnderscoreLiteral);
        profiles.push_back(std::move(p));
    }

    // ------------------------------------------------------------ //
    // postgres-like: fault-free strict reference dialect, used by the
    // validity and coverage experiments (Tables 3 and 4), not by the
    // bug campaign.
    profiles.push_back(postgresFamily("postgres-like"));

    return profiles;
}

} // namespace

const std::vector<DialectProfile> &
allDialectProfiles()
{
    static const std::vector<DialectProfile> profiles = buildProfiles();
    return profiles;
}

std::vector<const DialectProfile *>
campaignDialects()
{
    std::vector<const DialectProfile *> out;
    for (const DialectProfile &profile : allDialectProfiles()) {
        if (profile.name != "postgres-like")
            out.push_back(&profile);
    }
    return out;
}

const DialectProfile *
findDialect(const std::string &name)
{
    for (const DialectProfile &profile : allDialectProfiles()) {
        if (profile.name == name)
            return &profile;
    }
    return nullptr;
}

} // namespace sqlpp
