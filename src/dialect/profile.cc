#include "dialect/profile.h"

#include "engine/eval.h"
#include "util/strutil.h"

namespace sqlpp {

namespace {

Status
unsupported(const std::string &what)
{
    // Real dialects answer with a parser error; we do the same so the
    // generator's feedback loop sees the authentic error class.
    return Status::syntaxError("syntax error near " + what);
}

const char *
stmtKindName(StmtKind kind)
{
    switch (kind) {
      case StmtKind::CreateTable: return "CREATE TABLE";
      case StmtKind::CreateIndex: return "CREATE INDEX";
      case StmtKind::CreateView: return "CREATE VIEW";
      case StmtKind::Insert: return "INSERT";
      case StmtKind::Analyze: return "ANALYZE";
      case StmtKind::Select: return "SELECT";
      case StmtKind::DropTable: return "DROP TABLE";
      case StmtKind::DropView: return "DROP VIEW";
      case StmtKind::DropIndex: return "DROP INDEX";
      case StmtKind::Begin: return "BEGIN";
      case StmtKind::Commit: return "COMMIT";
      case StmtKind::Rollback: return "ROLLBACK";
      case StmtKind::Savepoint: return "SAVEPOINT";
      case StmtKind::RollbackTo: return "ROLLBACK TO";
      case StmtKind::Release: return "RELEASE";
    }
    return "?";
}

const char *
unaryOpName(UnaryOp op)
{
    switch (op) {
      case UnaryOp::Neg: return "-";
      case UnaryOp::Plus: return "+";
      case UnaryOp::BitNot: return "~";
      case UnaryOp::Not: return "NOT";
      case UnaryOp::IsNull: return "IS NULL";
      case UnaryOp::IsNotNull: return "IS NOT NULL";
      case UnaryOp::IsTrue: return "IS TRUE";
      case UnaryOp::IsFalse: return "IS FALSE";
      case UnaryOp::IsNotTrue: return "IS NOT TRUE";
      case UnaryOp::IsNotFalse: return "IS NOT FALSE";
    }
    return "?";
}

} // namespace

std::string
describeProfile(const DialectProfile &profile)
{
    // Every container below is a std::set (ordered by enum value or
    // string), so the rendering is stable across platforms and runs.
    std::string out;
    out += "== " + profile.name + " ==\n";
    out += format("behavior: div_zero_is_null=%d domain_error_is_null=%d "
                  "static_typing=%d case_insensitive_like=%d\n",
                  profile.behavior.divZeroIsNull ? 1 : 0,
                  profile.behavior.domainErrorIsNull ? 1 : 0,
                  profile.behavior.staticTyping ? 1 : 0,
                  profile.behavior.caseInsensitiveLike ? 1 : 0);
    out += format("refresh_after_insert: %d\n",
                  profile.requiresRefreshAfterInsert ? 1 : 0);

    std::vector<std::string> names;
    for (StmtKind kind : profile.statements)
        names.push_back(stmtKindName(kind));
    out += "statements: " + join(names, ", ") + "\n";

    names.clear();
    for (JoinType type : profile.joins)
        names.push_back(joinTypeName(type));
    out += "joins: " + join(names, ", ") + "\n";

    names.clear();
    for (BinaryOp op : profile.binaryOps)
        names.push_back(binaryOpSymbol(op));
    out += "binary_ops: " + join(names, " ") + "\n";

    names.clear();
    for (UnaryOp op : profile.unaryOps)
        names.push_back(unaryOpName(op));
    out += "unary_ops: " + join(names, ", ") + "\n";

    names.clear();
    for (const std::string &fn : profile.functions)
        names.push_back(fn);
    out += "functions: " + join(names, ", ") + "\n";

    names.clear();
    for (DataType type : profile.dataTypes)
        names.push_back(dataTypeName(type));
    out += "types: " + join(names, ", ") + "\n";

    const ClauseSupport &c = profile.clauses;
    out += format(
        "clauses: distinct=%d group_by=%d having=%d order_by=%d "
        "limit=%d offset=%d subquery_in_from=%d subquery_in_expr=%d "
        "unique_index=%d partial_index=%d if_not_exists=%d "
        "insert_or_ignore=%d primary_key=%d not_null=%d "
        "unique_column=%d multi_row_insert=%d view_column_list=%d\n",
        c.distinct ? 1 : 0, c.groupBy ? 1 : 0, c.having ? 1 : 0,
        c.orderBy ? 1 : 0, c.limit ? 1 : 0, c.offset ? 1 : 0,
        c.subqueryInFrom ? 1 : 0, c.subqueryInExpr ? 1 : 0,
        c.uniqueIndex ? 1 : 0, c.partialIndex ? 1 : 0,
        c.ifNotExists ? 1 : 0, c.insertOrIgnore ? 1 : 0,
        c.primaryKey ? 1 : 0, c.notNull ? 1 : 0, c.uniqueColumn ? 1 : 0,
        c.multiRowInsert ? 1 : 0, c.viewColumnList ? 1 : 0);
    out += format("transactions: %d\n", c.transactions ? 1 : 0);

    names.clear();
    for (FaultId fault : profile.faults.ids())
        names.push_back(faultName(fault));
    out += "faults: " + join(names, ", ") + "\n";
    return out;
}

Status
DialectProfile::validateExpr(const Expr &expr) const
{
    switch (expr.kind()) {
      case ExprKind::Literal: {
        const Value &value =
            static_cast<const LiteralExpr &>(expr).value;
        if (value.kind() == Value::Kind::Bool &&
            !supportsType(DataType::Bool)) {
            return unsupported("boolean literal");
        }
        return Status::ok();
      }
      case ExprKind::ColumnRef:
        return Status::ok();
      case ExprKind::Unary: {
        const auto &unary = static_cast<const UnaryExpr &>(expr);
        if (!supportsUnaryOp(unary.op))
            return unsupported("unary operator");
        return validateExpr(*unary.operand);
      }
      case ExprKind::Binary: {
        const auto &bin = static_cast<const BinaryExpr &>(expr);
        if (!supportsBinaryOp(bin.op))
            return unsupported(binaryOpSymbol(bin.op));
        if (Status s = validateExpr(*bin.lhs); !s.isOk())
            return s;
        return validateExpr(*bin.rhs);
      }
      case ExprKind::Between: {
        const auto &between = static_cast<const BetweenExpr &>(expr);
        if (Status s = validateExpr(*between.operand); !s.isOk())
            return s;
        if (Status s = validateExpr(*between.low); !s.isOk())
            return s;
        return validateExpr(*between.high);
      }
      case ExprKind::InList: {
        const auto &in = static_cast<const InListExpr &>(expr);
        if (Status s = validateExpr(*in.operand); !s.isOk())
            return s;
        for (const ExprPtr &item : in.items) {
            if (Status s = validateExpr(*item); !s.isOk())
                return s;
        }
        return Status::ok();
      }
      case ExprKind::Case: {
        const auto &case_expr = static_cast<const CaseExpr &>(expr);
        if (case_expr.operand != nullptr) {
            if (Status s = validateExpr(*case_expr.operand); !s.isOk())
                return s;
        }
        for (const CaseExpr::Arm &arm : case_expr.arms) {
            if (Status s = validateExpr(*arm.when); !s.isOk())
                return s;
            if (Status s = validateExpr(*arm.then); !s.isOk())
                return s;
        }
        if (case_expr.elseExpr != nullptr)
            return validateExpr(*case_expr.elseExpr);
        return Status::ok();
      }
      case ExprKind::Function: {
        const auto &fn = static_cast<const FunctionExpr &>(expr);
        if (!supportsFunction(fn.name))
            return unsupported(fn.name + "(");
        for (const ExprPtr &arg : fn.args) {
            if (Status s = validateExpr(*arg); !s.isOk())
                return s;
        }
        return Status::ok();
      }
      case ExprKind::Cast: {
        const auto &cast = static_cast<const CastExpr &>(expr);
        if (!supportsType(cast.target))
            return unsupported(dataTypeName(cast.target));
        return validateExpr(*cast.operand);
      }
      case ExprKind::Exists: {
        if (!clauses.subqueryInExpr)
            return unsupported("EXISTS");
        const auto &exists = static_cast<const ExistsExpr &>(expr);
        return validateSelect(*exists.subquery);
      }
      case ExprKind::InSubquery: {
        if (!clauses.subqueryInExpr)
            return unsupported("IN (SELECT");
        const auto &in = static_cast<const InSubqueryExpr &>(expr);
        if (Status s = validateExpr(*in.operand); !s.isOk())
            return s;
        return validateSelect(*in.subquery);
      }
      case ExprKind::ScalarSubquery: {
        if (!clauses.subqueryInExpr)
            return unsupported("(SELECT");
        const auto &sub = static_cast<const ScalarSubqueryExpr &>(expr);
        return validateSelect(*sub.subquery);
      }
    }
    return Status::internal("unhandled expression kind");
}

Status
DialectProfile::validateTableRef(const TableRef &ref) const
{
    if (ref.subquery != nullptr) {
        if (!clauses.subqueryInFrom)
            return unsupported("derived table");
        return validateSelect(*ref.subquery);
    }
    return Status::ok();
}

Status
DialectProfile::validateSelect(const SelectStmt &select) const
{
    if (select.distinct && !clauses.distinct)
        return unsupported("DISTINCT");
    if (!select.groupBy.empty() && !clauses.groupBy)
        return unsupported("GROUP BY");
    if (select.having != nullptr && !clauses.having)
        return unsupported("HAVING");
    if (!select.orderBy.empty() && !clauses.orderBy)
        return unsupported("ORDER BY");
    if (select.limit >= 0 && !clauses.limit)
        return unsupported("LIMIT");
    if (select.offset >= 0 && !clauses.offset)
        return unsupported("OFFSET");
    for (const TableRef &ref : select.from) {
        if (Status s = validateTableRef(ref); !s.isOk())
            return s;
    }
    for (const JoinClause &join : select.joins) {
        if (!supportsJoin(join.type))
            return unsupported(joinTypeName(join.type));
        if (Status s = validateTableRef(join.table); !s.isOk())
            return s;
        if (join.on != nullptr) {
            if (Status s = validateExpr(*join.on); !s.isOk())
                return s;
        }
    }
    for (const SelectItem &item : select.items) {
        if (item.star)
            continue;
        if (Status s = validateExpr(*item.expr); !s.isOk())
            return s;
    }
    if (select.where != nullptr) {
        if (Status s = validateExpr(*select.where); !s.isOk())
            return s;
    }
    for (const ExprPtr &key : select.groupBy) {
        if (Status s = validateExpr(*key); !s.isOk())
            return s;
    }
    if (select.having != nullptr) {
        if (Status s = validateExpr(*select.having); !s.isOk())
            return s;
    }
    for (const OrderTerm &term : select.orderBy) {
        if (Status s = validateExpr(*term.expr); !s.isOk())
            return s;
    }
    return Status::ok();
}

Status
DialectProfile::validate(const Stmt &stmt) const
{
    // Transaction control is a clause-level capability: it never
    // appears in the `statements` set (the adaptive generator does not
    // emit it), so gate it before the statement-kind check.
    if (isTxnStmtKind(stmt.kind())) {
        if (!clauses.transactions)
            return unsupported(stmtKindName(stmt.kind()));
        return Status::ok();
    }
    if (!supportsStatement(stmt.kind())) {
        switch (stmt.kind()) {
          case StmtKind::CreateIndex:
            return unsupported("CREATE INDEX");
          case StmtKind::CreateView:
            return unsupported("CREATE VIEW");
          case StmtKind::Analyze:
            return unsupported("ANALYZE");
          default:
            return unsupported("statement");
        }
    }
    switch (stmt.kind()) {
      case StmtKind::CreateTable: {
        const auto &create = static_cast<const CreateTableStmt &>(stmt);
        if (create.ifNotExists && !clauses.ifNotExists)
            return unsupported("IF NOT EXISTS");
        for (const ColumnDef &col : create.columns) {
            if (!supportsType(col.type))
                return unsupported(dataTypeName(col.type));
            if (col.primaryKey && !clauses.primaryKey)
                return unsupported("PRIMARY KEY");
            if (col.unique && !clauses.uniqueColumn)
                return unsupported("UNIQUE");
            if (col.notNull && !clauses.notNull)
                return unsupported("NOT NULL");
        }
        return Status::ok();
      }
      case StmtKind::CreateIndex: {
        const auto &index = static_cast<const CreateIndexStmt &>(stmt);
        if (index.unique && !clauses.uniqueIndex)
            return unsupported("UNIQUE INDEX");
        if (index.where != nullptr) {
            if (!clauses.partialIndex)
                return unsupported("partial index WHERE");
            return validateExpr(*index.where);
        }
        return Status::ok();
      }
      case StmtKind::CreateView: {
        const auto &view = static_cast<const CreateViewStmt &>(stmt);
        if (!view.columnNames.empty() && !clauses.viewColumnList)
            return unsupported("view column list");
        return validateSelect(*view.select);
      }
      case StmtKind::Insert: {
        const auto &insert = static_cast<const InsertStmt &>(stmt);
        if (insert.orIgnore && !clauses.insertOrIgnore)
            return unsupported("OR IGNORE");
        if (insert.rows.size() > 1 && !clauses.multiRowInsert)
            return unsupported("multi-row VALUES");
        for (const auto &row : insert.rows) {
            for (const ExprPtr &expr : row) {
                if (Status s = validateExpr(*expr); !s.isOk())
                    return s;
            }
        }
        return Status::ok();
      }
      case StmtKind::Analyze:
        return Status::ok();
      case StmtKind::Select:
        return validateSelect(static_cast<const SelectStmt &>(stmt));
      case StmtKind::DropTable:
      case StmtKind::DropView:
      case StmtKind::DropIndex:
        return Status::ok();
      case StmtKind::Begin:
      case StmtKind::Commit:
      case StmtKind::Rollback:
      case StmtKind::Savepoint:
      case StmtKind::RollbackTo:
      case StmtKind::Release:
        // Handled by the capability gate above.
        return Status::ok();
    }
    return Status::internal("unhandled statement kind");
}

} // namespace sqlpp
