#include "dialect/profile.h"

#include "engine/eval.h"
#include "util/strutil.h"

namespace sqlpp {

namespace {

Status
unsupported(const std::string &what)
{
    // Real dialects answer with a parser error; we do the same so the
    // generator's feedback loop sees the authentic error class.
    return Status::syntaxError("syntax error near " + what);
}

} // namespace

Status
DialectProfile::validateExpr(const Expr &expr) const
{
    switch (expr.kind()) {
      case ExprKind::Literal: {
        const Value &value =
            static_cast<const LiteralExpr &>(expr).value;
        if (value.kind() == Value::Kind::Bool &&
            !supportsType(DataType::Bool)) {
            return unsupported("boolean literal");
        }
        return Status::ok();
      }
      case ExprKind::ColumnRef:
        return Status::ok();
      case ExprKind::Unary: {
        const auto &unary = static_cast<const UnaryExpr &>(expr);
        if (!supportsUnaryOp(unary.op))
            return unsupported("unary operator");
        return validateExpr(*unary.operand);
      }
      case ExprKind::Binary: {
        const auto &bin = static_cast<const BinaryExpr &>(expr);
        if (!supportsBinaryOp(bin.op))
            return unsupported(binaryOpSymbol(bin.op));
        if (Status s = validateExpr(*bin.lhs); !s.isOk())
            return s;
        return validateExpr(*bin.rhs);
      }
      case ExprKind::Between: {
        const auto &between = static_cast<const BetweenExpr &>(expr);
        if (Status s = validateExpr(*between.operand); !s.isOk())
            return s;
        if (Status s = validateExpr(*between.low); !s.isOk())
            return s;
        return validateExpr(*between.high);
      }
      case ExprKind::InList: {
        const auto &in = static_cast<const InListExpr &>(expr);
        if (Status s = validateExpr(*in.operand); !s.isOk())
            return s;
        for (const ExprPtr &item : in.items) {
            if (Status s = validateExpr(*item); !s.isOk())
                return s;
        }
        return Status::ok();
      }
      case ExprKind::Case: {
        const auto &case_expr = static_cast<const CaseExpr &>(expr);
        if (case_expr.operand != nullptr) {
            if (Status s = validateExpr(*case_expr.operand); !s.isOk())
                return s;
        }
        for (const CaseExpr::Arm &arm : case_expr.arms) {
            if (Status s = validateExpr(*arm.when); !s.isOk())
                return s;
            if (Status s = validateExpr(*arm.then); !s.isOk())
                return s;
        }
        if (case_expr.elseExpr != nullptr)
            return validateExpr(*case_expr.elseExpr);
        return Status::ok();
      }
      case ExprKind::Function: {
        const auto &fn = static_cast<const FunctionExpr &>(expr);
        if (!supportsFunction(fn.name))
            return unsupported(fn.name + "(");
        for (const ExprPtr &arg : fn.args) {
            if (Status s = validateExpr(*arg); !s.isOk())
                return s;
        }
        return Status::ok();
      }
      case ExprKind::Cast: {
        const auto &cast = static_cast<const CastExpr &>(expr);
        if (!supportsType(cast.target))
            return unsupported(dataTypeName(cast.target));
        return validateExpr(*cast.operand);
      }
      case ExprKind::Exists: {
        if (!clauses.subqueryInExpr)
            return unsupported("EXISTS");
        const auto &exists = static_cast<const ExistsExpr &>(expr);
        return validateSelect(*exists.subquery);
      }
      case ExprKind::InSubquery: {
        if (!clauses.subqueryInExpr)
            return unsupported("IN (SELECT");
        const auto &in = static_cast<const InSubqueryExpr &>(expr);
        if (Status s = validateExpr(*in.operand); !s.isOk())
            return s;
        return validateSelect(*in.subquery);
      }
      case ExprKind::ScalarSubquery: {
        if (!clauses.subqueryInExpr)
            return unsupported("(SELECT");
        const auto &sub = static_cast<const ScalarSubqueryExpr &>(expr);
        return validateSelect(*sub.subquery);
      }
    }
    return Status::internal("unhandled expression kind");
}

Status
DialectProfile::validateTableRef(const TableRef &ref) const
{
    if (ref.subquery != nullptr) {
        if (!clauses.subqueryInFrom)
            return unsupported("derived table");
        return validateSelect(*ref.subquery);
    }
    return Status::ok();
}

Status
DialectProfile::validateSelect(const SelectStmt &select) const
{
    if (select.distinct && !clauses.distinct)
        return unsupported("DISTINCT");
    if (!select.groupBy.empty() && !clauses.groupBy)
        return unsupported("GROUP BY");
    if (select.having != nullptr && !clauses.having)
        return unsupported("HAVING");
    if (!select.orderBy.empty() && !clauses.orderBy)
        return unsupported("ORDER BY");
    if (select.limit >= 0 && !clauses.limit)
        return unsupported("LIMIT");
    if (select.offset >= 0 && !clauses.offset)
        return unsupported("OFFSET");
    for (const TableRef &ref : select.from) {
        if (Status s = validateTableRef(ref); !s.isOk())
            return s;
    }
    for (const JoinClause &join : select.joins) {
        if (!supportsJoin(join.type))
            return unsupported(joinTypeName(join.type));
        if (Status s = validateTableRef(join.table); !s.isOk())
            return s;
        if (join.on != nullptr) {
            if (Status s = validateExpr(*join.on); !s.isOk())
                return s;
        }
    }
    for (const SelectItem &item : select.items) {
        if (item.star)
            continue;
        if (Status s = validateExpr(*item.expr); !s.isOk())
            return s;
    }
    if (select.where != nullptr) {
        if (Status s = validateExpr(*select.where); !s.isOk())
            return s;
    }
    for (const ExprPtr &key : select.groupBy) {
        if (Status s = validateExpr(*key); !s.isOk())
            return s;
    }
    if (select.having != nullptr) {
        if (Status s = validateExpr(*select.having); !s.isOk())
            return s;
    }
    for (const OrderTerm &term : select.orderBy) {
        if (Status s = validateExpr(*term.expr); !s.isOk())
            return s;
    }
    return Status::ok();
}

Status
DialectProfile::validate(const Stmt &stmt) const
{
    if (!supportsStatement(stmt.kind())) {
        switch (stmt.kind()) {
          case StmtKind::CreateIndex:
            return unsupported("CREATE INDEX");
          case StmtKind::CreateView:
            return unsupported("CREATE VIEW");
          case StmtKind::Analyze:
            return unsupported("ANALYZE");
          default:
            return unsupported("statement");
        }
    }
    switch (stmt.kind()) {
      case StmtKind::CreateTable: {
        const auto &create = static_cast<const CreateTableStmt &>(stmt);
        if (create.ifNotExists && !clauses.ifNotExists)
            return unsupported("IF NOT EXISTS");
        for (const ColumnDef &col : create.columns) {
            if (!supportsType(col.type))
                return unsupported(dataTypeName(col.type));
            if (col.primaryKey && !clauses.primaryKey)
                return unsupported("PRIMARY KEY");
            if (col.unique && !clauses.uniqueColumn)
                return unsupported("UNIQUE");
            if (col.notNull && !clauses.notNull)
                return unsupported("NOT NULL");
        }
        return Status::ok();
      }
      case StmtKind::CreateIndex: {
        const auto &index = static_cast<const CreateIndexStmt &>(stmt);
        if (index.unique && !clauses.uniqueIndex)
            return unsupported("UNIQUE INDEX");
        if (index.where != nullptr) {
            if (!clauses.partialIndex)
                return unsupported("partial index WHERE");
            return validateExpr(*index.where);
        }
        return Status::ok();
      }
      case StmtKind::CreateView: {
        const auto &view = static_cast<const CreateViewStmt &>(stmt);
        if (!view.columnNames.empty() && !clauses.viewColumnList)
            return unsupported("view column list");
        return validateSelect(*view.select);
      }
      case StmtKind::Insert: {
        const auto &insert = static_cast<const InsertStmt &>(stmt);
        if (insert.orIgnore && !clauses.insertOrIgnore)
            return unsupported("OR IGNORE");
        if (insert.rows.size() > 1 && !clauses.multiRowInsert)
            return unsupported("multi-row VALUES");
        for (const auto &row : insert.rows) {
            for (const ExprPtr &expr : row) {
                if (Status s = validateExpr(*expr); !s.isOk())
                    return s;
            }
        }
        return Status::ok();
      }
      case StmtKind::Analyze:
        return Status::ok();
      case StmtKind::Select:
        return validateSelect(static_cast<const SelectStmt &>(stmt));
      case StmtKind::DropTable:
      case StmtKind::DropView:
      case StmtKind::DropIndex:
        return Status::ok();
    }
    return Status::internal("unhandled statement kind");
}

} // namespace sqlpp
