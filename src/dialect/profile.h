/**
 * @file
 * Dialect profiles: the observable "SQL dialect" of a DBMS under test.
 *
 * A DialectProfile is the substitution for one of the paper's 17 real
 * DBMSs. It wraps the engine with: a capability matrix (which
 * statements, clauses, operators, functions, join types, and data types
 * the dialect understands), a typing discipline and error behaviours,
 * quirks (CrateDB-style REFRESH visibility), and a ground-truth fault
 * set. Statements that use an unsupported feature are rejected with a
 * SyntaxError, exactly the signal a real dialect's parser would emit —
 * and exactly what the adaptive generator learns from.
 *
 * The 17 campaign profiles are named after the paper's Table 2 systems
 * ("sqlite-like", "cratedb-like", ...); an additional "postgres-like"
 * profile supports the validity and coverage experiments (Tables 3/4).
 */
#ifndef SQLPP_DIALECT_PROFILE_H
#define SQLPP_DIALECT_PROFILE_H

#include <set>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/faults.h"
#include "sqlir/ast.h"

namespace sqlpp {

/** Optional clause/keyword capabilities (Table 1 "Clause & Keyword"). */
struct ClauseSupport
{
    bool distinct = true;
    bool groupBy = true;
    bool having = true;
    bool orderBy = true;
    bool limit = true;
    bool offset = true;
    bool subqueryInFrom = true;
    bool subqueryInExpr = true;
    bool uniqueIndex = true;
    bool partialIndex = true;
    bool ifNotExists = true;
    bool insertOrIgnore = true;
    bool primaryKey = true;
    bool notNull = true;
    bool uniqueColumn = true;
    bool multiRowInsert = true;
    bool viewColumnList = true;
    /**
     * BEGIN/COMMIT/ROLLBACK plus savepoints. Gated as a clause-level
     * capability (not a StmtKind in `statements`) so the adaptive
     * generator's statement-feature learning is untouched: transaction
     * control is driven by the interleaving generator (core/txn_gen),
     * never emitted by the single-session statement generator.
     */
    bool transactions = true;
};

/** Full capability matrix plus behaviour of one dialect. */
class DialectProfile
{
  public:
    std::string name;

    /** Engine behaviour knobs (typing, NULL-vs-error choices). */
    EngineBehavior behavior;
    /** Ground-truth injected logic bugs. */
    FaultSet faults;

    /** Supported statement kinds. */
    std::set<StmtKind> statements;
    /** Supported join types. */
    std::set<JoinType> joins;
    /** Supported binary operators. */
    std::set<BinaryOp> binaryOps;
    /** Supported unary operators. */
    std::set<UnaryOp> unaryOps;
    /** Supported scalar/aggregate function names (uppercase). */
    std::set<std::string> functions;
    /** Supported data types (column types and typed literals). */
    std::set<DataType> dataTypes;
    ClauseSupport clauses;

    /**
     * CrateDB-style visibility quirk: INSERTs are not visible to queries
     * until a REFRESH <table> statement runs (paper Section 6,
     * "Manual efforts").
     */
    bool requiresRefreshAfterInsert = false;

    /** Convenience capability queries. */
    bool supportsStatement(StmtKind kind) const
    {
        return statements.count(kind) > 0;
    }
    bool supportsJoin(JoinType type) const { return joins.count(type) > 0; }
    bool supportsBinaryOp(BinaryOp op) const
    {
        return binaryOps.count(op) > 0;
    }
    bool supportsUnaryOp(UnaryOp op) const
    {
        return unaryOps.count(op) > 0;
    }
    bool supportsFunction(const std::string &upper_name) const
    {
        return functions.count(upper_name) > 0;
    }
    bool supportsType(DataType type) const
    {
        return dataTypes.count(type) > 0;
    }

    /**
     * Check a parsed statement against the capability matrix. Returns a
     * SyntaxError naming the first unsupported feature, mirroring how a
     * real dialect front end rejects foreign syntax.
     */
    Status validate(const Stmt &stmt) const;

  private:
    Status validateSelect(const SelectStmt &select) const;
    Status validateExpr(const Expr &expr) const;
    Status validateTableRef(const TableRef &ref) const;
};

/**
 * Stable multi-line text rendering of one profile's full capability
 * matrix, behaviour knobs, and ground-truth fault set. The golden-file
 * test (tests/golden/profiles.txt) diffs this for every built-in
 * profile, so any profile change must be made deliberately, with the
 * golden file regenerated alongside it.
 */
std::string describeProfile(const DialectProfile &profile);

/** All built-in profiles (17 campaign systems + postgres-like). */
const std::vector<DialectProfile> &allDialectProfiles();

/** The 17 campaign profiles only (Table 2 order, alphabetical). */
std::vector<const DialectProfile *> campaignDialects();

/** Find a profile by name; nullptr when unknown. */
const DialectProfile *findDialect(const std::string &name);

} // namespace sqlpp

#endif // SQLPP_DIALECT_PROFILE_H
