/**
 * @file
 * Coverage-probe registry: a line/branch-coverage proxy for the engine.
 *
 * The paper measures gcov line and branch coverage of the DBMS under
 * test (Table 3). Our DBMS substrate is in-process, so instead of gcov
 * we place named probes at the entry of every engine component path
 * (each physical operator, each rewrite rule, each scalar-function
 * implementation, each coercion path). The reported metric is the
 * fraction of registered probes hit since the last reset; it orders
 * configurations the same way line coverage does — richer generated SQL
 * touches more engine paths.
 *
 * Probes sit on per-row evaluation hot paths, so hits must be cheap:
 * call sites resolve their name to a slot once (function-local static)
 * and afterwards a hit is a single relaxed atomic increment.
 *
 * The registry is shared by every campaign worker thread (the engine
 * probes always hit the process-wide instance), so slot counters live
 * in a fixed-capacity atomic array that never reallocates: hits need
 * no lock, and only name registration takes the registry mutex.
 */
#ifndef SQLPP_UTIL_COVERAGE_H
#define SQLPP_UTIL_COVERAGE_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sqlpp {

/**
 * Process-wide registry of named coverage probes.
 *
 * Probes self-register on first use. Registration of the full probe
 * universe happens up front via declareEngineCoverageProbes() so that
 * the denominator is stable even for probes never hit.
 */
class CoverageRegistry
{
  public:
    /**
     * Upper bound on probes per registry. Counters live in a
     * fixed-capacity array so hitSlot() never races a reallocation;
     * the engine universe is a few hundred probes, far below this.
     */
    static constexpr size_t kMaxProbes = 4096;

    CoverageRegistry();

    /** The process-wide instance used by the engine's probes. */
    static CoverageRegistry &instance();

    /**
     * Resolve a probe name to its slot, declaring it if unknown.
     * Slots are stable for the process lifetime. Thread-safe.
     */
    size_t slot(const std::string &name);

    /** Declare a probe without hitting it (fixes the denominator). */
    void declare(const std::string &name) { (void)slot(name); }

    /**
     * Record one hit via a pre-resolved slot (hot path). Lock-free;
     * safe to call concurrently from campaign worker threads. Hits are
     * additionally mirrored into the calling thread's CoverageCapture,
     * if one is installed (guided generation's novelty signal).
     */
    void hitSlot(size_t slot_index);

    /** Record one hit by name (cold path; resolves the slot). */
    void hit(const std::string &name) { hitSlot(slot(name)); }

    /** Number of declared probes. */
    size_t declared() const
    {
        return declared_.load(std::memory_order_acquire);
    }

    /** Number of probes with at least one hit. */
    size_t covered() const;

    /** covered() / declared(), or 0 when nothing is declared. */
    double ratio() const;

    /** Total hits of the named probe since the last reset. */
    uint64_t hits(const std::string &name) const;

    /** Reset all hit counts; declared probes stay declared. */
    void reset();

    /** Names of declared probes that have never been hit. */
    std::vector<std::string> uncovered() const;

  private:
    /** Guards slots_ and names_; counters themselves are atomic. */
    mutable std::mutex mutex_;
    std::map<std::string, size_t> slots_;
    std::vector<std::string> names_;
    /** Published count of declared probes (reads need no lock). */
    std::atomic<size_t> declared_{0};
    /** Fixed-capacity hit counters: indexes never move or reallocate. */
    std::unique_ptr<std::atomic<uint64_t>[]> counts_;
};

/** Hit a probe on the process-wide registry (cold path). */
inline void
coverProbe(const std::string &name)
{
    CoverageRegistry::instance().hit(name);
}

/**
 * Thread-local view of coverage-probe novelty.
 *
 * The registry's counters are process-wide, so "did this statement hit
 * a new probe?" computed from them would depend on what concurrent
 * shards happen to be doing — a nondeterminism the guided generator
 * cannot tolerate (merged campaigns must be bit-identical for any
 * worker count). A CoverageCapture instead records, per *thread*, the
 * set of probe slots hit while it is installed; a share-nothing shard
 * runs entirely on one worker thread, so its capture sees exactly its
 * own hits in a reproducible order regardless of worker count.
 *
 * RAII: constructing installs the capture on the current thread
 * (stacking over any previous one), destructing restores the previous
 * capture. Campaign code drains novelty between statements via
 * takeNewProbes().
 */
class CoverageCapture
{
  public:
    CoverageCapture();
    ~CoverageCapture();
    CoverageCapture(const CoverageCapture &) = delete;
    CoverageCapture &operator=(const CoverageCapture &) = delete;

    /**
     * Probes hit since the last take that were new to this capture's
     * lifetime. Resets the pending count; the lifetime "seen" set keeps
     * accumulating.
     */
    size_t takeNewProbes();

    /** Distinct probes hit over this capture's lifetime. */
    size_t probesSeen() const { return seen_count_; }

    /** Called from CoverageRegistry::hitSlot on the owning thread. */
    void noteHit(size_t slot_index);

  private:
    /** One flag per slot; sized kMaxProbes so noteHit never resizes. */
    std::vector<char> seen_;
    size_t fresh_ = 0;
    size_t seen_count_ = 0;
    CoverageCapture *previous_ = nullptr;
};

/**
 * Hot-path probe: resolves the slot once per call site, then each hit
 * is a single increment.
 */
#define SQLPP_COVER(name)                                              \
    do {                                                               \
        static const size_t sqlpp_cover_slot =                         \
            ::sqlpp::CoverageRegistry::instance().slot(name);          \
        ::sqlpp::CoverageRegistry::instance().hitSlot(                 \
            sqlpp_cover_slot);                                         \
    } while (0)

} // namespace sqlpp

#endif // SQLPP_UTIL_COVERAGE_H
