#include "util/metrics.h"

#include <algorithm>
#include <bit>

#include "util/strutil.h"

namespace sqlpp {

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Gauge: return "gauge";
      case MetricKind::Histogram: return "histogram";
      case MetricKind::Timer: return "timer";
    }
    return "unknown";
}

namespace {

/** Cells one metric occupies: histograms add a trailing sum cell. */
size_t
cellCount(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
      case MetricKind::Gauge:
        return 1;
      case MetricKind::Histogram:
      case MetricKind::Timer:
        return MetricsRegistry::kHistogramBuckets + 1;
    }
    return 1;
}

/** The thread's current lane (0 = unlabeled process totals). */
thread_local size_t tls_lane = 0;

} // namespace

MetricsRegistry::MetricsRegistry()
{
    // Fixed capacity up front: hot-path readers index metrics_ without
    // the mutex, so registration must never reallocate the vector.
    metrics_.reserve(kMaxMetrics);
    for (auto &lane : lanes_)
        lane.store(nullptr, std::memory_order_relaxed);
    // Lane 0 always exists so unlabeled hits never branch on creation.
    (void)laneForShard(static_cast<size_t>(-1), "");
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

size_t
MetricsRegistry::laneForShard(size_t shard_index, const std::string &label)
{
    size_t lane_index =
        shard_index == static_cast<size_t>(-1)
            ? 0
            : (shard_index % kMaxShards) + 1;
    // Cold path (once per shard scope): the mutex also orders label
    // writes against the exporters, which read labels under it.
    std::lock_guard<std::mutex> lock(mutex_);
    if (Lane *existing =
            lanes_[lane_index].load(std::memory_order_relaxed);
        existing != nullptr) {
        // A later in-process run may bind the same lane under a new
        // shard layout (slice N, then a dialect): the label follows
        // the latest binding.
        if (existing->label != label)
            existing->label = label;
        return lane_index;
    }
    auto lane = std::make_unique<Lane>();
    lane->label = label;
    lane->cells = std::make_unique<std::atomic<uint64_t>[]>(kMaxCells);
    for (size_t i = 0; i < kMaxCells; ++i)
        lane->cells[i].store(0, std::memory_order_relaxed);
    lanes_[lane_index].store(lane.get(), std::memory_order_release);
    lane_storage_.push_back(std::move(lane));
    return lane_index;
}

size_t
MetricsRegistry::metricId(const std::string &name, MetricKind kind)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = ids_.find(name);
    if (it != ids_.end())
        return it->second;
    size_t cells = cellCount(kind);
    if (metrics_.size() >= kMaxMetrics ||
        next_cell_ + cells > kMaxCells) {
        // Registry full: fold the overflow into slot 0 rather than
        // aborting a campaign over an observability limit.
        return 0;
    }
    Metric metric;
    metric.name = name;
    metric.kind = kind;
    metric.cell = next_cell_;
    next_cell_ += cells;
    size_t id = metrics_.size();
    metrics_.push_back(std::move(metric));
    ids_.emplace(name, id);
    registered_.store(metrics_.size(), std::memory_order_release);
    return id;
}

void
MetricsRegistry::add(size_t id, uint64_t delta)
{
    if (id >= registered_.load(std::memory_order_acquire))
        return;
    Lane *lane_ptr = lane(tls_lane);
    lane_ptr->cells[metrics_[id].cell].fetch_add(
        delta, std::memory_order_relaxed);
}

void
MetricsRegistry::set(size_t id, uint64_t value)
{
    if (id >= registered_.load(std::memory_order_acquire))
        return;
    Lane *lane_ptr = lane(tls_lane);
    lane_ptr->cells[metrics_[id].cell].store(value,
                                             std::memory_order_relaxed);
}

size_t
MetricsRegistry::bucketIndex(uint64_t value)
{
    if (value == 0)
        return 0;
    size_t width = static_cast<size_t>(std::bit_width(value));
    return std::min(width, kHistogramBuckets - 1);
}

uint64_t
MetricsRegistry::bucketUpperBound(size_t bucket)
{
    if (bucket == 0)
        return 0;
    if (bucket >= kHistogramBuckets - 1)
        return UINT64_MAX;
    return (uint64_t{1} << bucket) - 1;
}

void
MetricsRegistry::observe(size_t id, uint64_t value)
{
    if (id >= registered_.load(std::memory_order_acquire))
        return;
    const Metric &metric = metrics_[id];
    Lane *lane_ptr = lane(tls_lane);
    lane_ptr->cells[metric.cell + bucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    lane_ptr->cells[metric.cell + kHistogramBuckets].fetch_add(
        value, std::memory_order_relaxed);
}

void
MetricsRegistry::addByName(const std::string &name, uint64_t delta)
{
    add(metricId(name, MetricKind::Counter), delta);
}

void
MetricsRegistry::setByName(const std::string &name, uint64_t value)
{
    set(metricId(name, MetricKind::Gauge), value);
}

void
MetricsRegistry::observeByName(const std::string &name, uint64_t value)
{
    observe(metricId(name, MetricKind::Histogram), value);
}

size_t
MetricsRegistry::registered() const
{
    return registered_.load(std::memory_order_acquire);
}

uint64_t
MetricsRegistry::counterTotal(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = ids_.find(name);
    if (it == ids_.end())
        return 0;
    const Metric &metric = metrics_[it->second];
    uint64_t total = 0;
    for (size_t index = 0; index <= kMaxShards; ++index) {
        Lane *lane_ptr = lane(index);
        if (lane_ptr == nullptr)
            continue;
        uint64_t value =
            lane_ptr->cells[metric.cell].load(std::memory_order_relaxed);
        if (metric.kind == MetricKind::Gauge)
            total = std::max(total, value);
        else
            total += value;
    }
    return total;
}

uint64_t
MetricsRegistry::histogramCount(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = ids_.find(name);
    if (it == ids_.end())
        return 0;
    const Metric &metric = metrics_[it->second];
    uint64_t total = 0;
    for (size_t index = 0; index <= kMaxShards; ++index) {
        Lane *lane_ptr = lane(index);
        if (lane_ptr == nullptr)
            continue;
        for (size_t bucket = 0; bucket < kHistogramBuckets; ++bucket)
            total += lane_ptr->cells[metric.cell + bucket].load(
                std::memory_order_relaxed);
    }
    return total;
}

std::vector<uint64_t>
MetricsRegistry::histogramBucketTotals(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = ids_.find(name);
    if (it == ids_.end())
        return {};
    const Metric &metric = metrics_[it->second];
    if (metric.kind != MetricKind::Histogram &&
        metric.kind != MetricKind::Timer)
        return {};
    std::vector<uint64_t> totals(kHistogramBuckets, 0);
    for (size_t index = 0; index <= kMaxShards; ++index) {
        Lane *lane_ptr = lane(index);
        if (lane_ptr == nullptr)
            continue;
        for (size_t bucket = 0; bucket < kHistogramBuckets; ++bucket)
            totals[bucket] += lane_ptr->cells[metric.cell + bucket].load(
                std::memory_order_relaxed);
    }
    return totals;
}

uint64_t
MetricsRegistry::histogramSum(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = ids_.find(name);
    if (it == ids_.end())
        return 0;
    const Metric &metric = metrics_[it->second];
    uint64_t total = 0;
    for (size_t index = 0; index <= kMaxShards; ++index) {
        Lane *lane_ptr = lane(index);
        if (lane_ptr == nullptr)
            continue;
        total += lane_ptr->cells[metric.cell + kHistogramBuckets].load(
            std::memory_order_relaxed);
    }
    return total;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t index = 0; index <= kMaxShards; ++index) {
        Lane *lane_ptr = lane(index);
        if (lane_ptr == nullptr)
            continue;
        for (size_t cell = 0; cell < kMaxCells; ++cell)
            lane_ptr->cells[cell].store(0, std::memory_order_relaxed);
    }
}

MetricsShardScope::MetricsShardScope(size_t shard_index,
                                     const std::string &label)
    : previous_lane_(tls_lane)
{
    tls_lane =
        MetricsRegistry::instance().laneForShard(shard_index, label);
}

MetricsShardScope::~MetricsShardScope()
{
    tls_lane = previous_lane_;
}

// ---------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------

namespace {

/** JSON string escaping (metric names and labels are plain ASCII). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out.push_back(c);
        }
    }
    return out;
}

/** One metric's values snapshotted across lanes. */
struct MetricSnapshot
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
    /** (lane label, scalar value) for counters/gauges, lane order. */
    std::vector<std::pair<std::string, uint64_t>> laneValues;
    uint64_t total = 0;
    /** Histogram data summed across lanes. */
    uint64_t buckets[MetricsRegistry::kHistogramBuckets] = {};
    uint64_t count = 0;
    uint64_t sum = 0;
};

} // namespace

std::string
exportMetricsJson(const MetricsJsonOptions &options)
{
    MetricsRegistry &registry = MetricsRegistry::instance();
    std::vector<MetricSnapshot> snapshots;
    {
        std::lock_guard<std::mutex> lock(registry.mutex_);
        for (const auto &metric : registry.metrics_) {
            MetricSnapshot snap;
            snap.name = metric.name;
            snap.kind = metric.kind;
            for (size_t index = 0;
                 index <= MetricsRegistry::kMaxShards; ++index) {
                const MetricsRegistry::Lane *lane_ptr =
                    registry.lane(index);
                if (lane_ptr == nullptr)
                    continue;
                if (metric.kind == MetricKind::Counter ||
                    metric.kind == MetricKind::Gauge) {
                    uint64_t value = lane_ptr->cells[metric.cell].load(
                        std::memory_order_relaxed);
                    if (value != 0 && index != 0)
                        snap.laneValues.emplace_back(lane_ptr->label,
                                                     value);
                    if (metric.kind == MetricKind::Gauge)
                        snap.total = std::max(snap.total, value);
                    else
                        snap.total += value;
                } else {
                    for (size_t b = 0;
                         b < MetricsRegistry::kHistogramBuckets; ++b) {
                        uint64_t hits =
                            lane_ptr->cells[metric.cell + b].load(
                                std::memory_order_relaxed);
                        snap.buckets[b] += hits;
                        snap.count += hits;
                    }
                    snap.sum +=
                        lane_ptr
                            ->cells[metric.cell +
                                    MetricsRegistry::kHistogramBuckets]
                            .load(std::memory_order_relaxed);
                }
            }
            snapshots.push_back(std::move(snap));
        }
    }
    std::sort(snapshots.begin(), snapshots.end(),
              [](const MetricSnapshot &a, const MetricSnapshot &b) {
                  return a.name < b.name;
              });

    std::string out = "{\n  \"schema\": \"sqlpp.metrics.v1\",\n"
                      "  \"metrics\": [";
    bool first = true;
    for (const MetricSnapshot &snap : snapshots) {
        bool scalar = snap.kind == MetricKind::Counter ||
                      snap.kind == MetricKind::Gauge;
        if (!options.includeZero) {
            if (scalar && snap.total == 0)
                continue;
            if (!scalar && snap.count == 0)
                continue;
        }
        if (!first)
            out += ",";
        first = false;
        out += format("\n    {\"name\": \"%s\", \"kind\": \"%s\"",
                      jsonEscape(snap.name).c_str(),
                      metricKindName(snap.kind));
        if (scalar) {
            out += format(", \"total\": %llu",
                          (unsigned long long)snap.total);
            if (options.includeShards && !snap.laneValues.empty()) {
                out += ", \"shards\": [";
                for (size_t i = 0; i < snap.laneValues.size(); ++i) {
                    if (i > 0)
                        out += ", ";
                    out += format(
                        "{\"shard\": \"%s\", \"value\": %llu}",
                        jsonEscape(snap.laneValues[i].first).c_str(),
                        (unsigned long long)snap.laneValues[i].second);
                }
                out += "]";
            }
        } else {
            out += format(", \"count\": %llu",
                          (unsigned long long)snap.count);
            bool values = snap.kind == MetricKind::Histogram ||
                          options.includeTimings;
            if (values) {
                out += format(", \"sum\": %llu",
                              (unsigned long long)snap.sum);
                out += ", \"buckets\": [";
                bool first_bucket = true;
                for (size_t b = 0;
                     b < MetricsRegistry::kHistogramBuckets; ++b) {
                    if (snap.buckets[b] == 0)
                        continue;
                    if (!first_bucket)
                        out += ", ";
                    first_bucket = false;
                    uint64_t bound =
                        MetricsRegistry::bucketUpperBound(b);
                    if (bound == UINT64_MAX)
                        out += format("{\"le\": \"inf\", \"count\": "
                                      "%llu}",
                                      (unsigned long long)
                                          snap.buckets[b]);
                    else
                        out += format(
                            "{\"le\": %llu, \"count\": %llu}",
                            (unsigned long long)bound,
                            (unsigned long long)snap.buckets[b]);
                }
                out += "]";
            }
        }
        out += "}";
    }
    out += "\n  ]\n}\n";
    return out;
}

std::string
metricsSummaryTable()
{
    MetricsRegistry &registry = MetricsRegistry::instance();
    std::vector<MetricSnapshot> snapshots;
    {
        std::lock_guard<std::mutex> lock(registry.mutex_);
        for (const auto &metric : registry.metrics_) {
            MetricSnapshot snap;
            snap.name = metric.name;
            snap.kind = metric.kind;
            for (size_t index = 0;
                 index <= MetricsRegistry::kMaxShards; ++index) {
                const MetricsRegistry::Lane *lane_ptr =
                    registry.lane(index);
                if (lane_ptr == nullptr)
                    continue;
                if (metric.kind == MetricKind::Counter ||
                    metric.kind == MetricKind::Gauge) {
                    uint64_t value = lane_ptr->cells[metric.cell].load(
                        std::memory_order_relaxed);
                    if (metric.kind == MetricKind::Gauge)
                        snap.total = std::max(snap.total, value);
                    else
                        snap.total += value;
                } else {
                    for (size_t b = 0;
                         b < MetricsRegistry::kHistogramBuckets; ++b) {
                        uint64_t hits =
                            lane_ptr->cells[metric.cell + b].load(
                                std::memory_order_relaxed);
                        snap.buckets[b] += hits;
                        snap.count += hits;
                    }
                    snap.sum +=
                        lane_ptr
                            ->cells[metric.cell +
                                    MetricsRegistry::kHistogramBuckets]
                            .load(std::memory_order_relaxed);
                }
            }
            snapshots.push_back(std::move(snap));
        }
    }
    std::sort(snapshots.begin(), snapshots.end(),
              [](const MetricSnapshot &a, const MetricSnapshot &b) {
                  return a.name < b.name;
              });

    std::string out =
        format("%-40s %-9s %12s %14s %10s %10s %10s\n", "metric",
               "kind", "count", "total/avg", "p50", "p95", "p99");
    for (const MetricSnapshot &snap : snapshots) {
        double p50 = histogramQuantileFromBuckets(
            snap.buckets, MetricsRegistry::kHistogramBuckets, 0.50);
        double p95 = histogramQuantileFromBuckets(
            snap.buckets, MetricsRegistry::kHistogramBuckets, 0.95);
        double p99 = histogramQuantileFromBuckets(
            snap.buckets, MetricsRegistry::kHistogramBuckets, 0.99);
        switch (snap.kind) {
          case MetricKind::Counter:
          case MetricKind::Gauge:
            if (snap.total == 0)
                continue;
            out += format("%-40s %-9s %12s %14llu %10s %10s %10s\n",
                          snap.name.c_str(), metricKindName(snap.kind),
                          "-", (unsigned long long)snap.total, "-", "-",
                          "-");
            break;
          case MetricKind::Histogram:
            if (snap.count == 0)
                continue;
            out += format(
                "%-40s %-9s %12llu %14.1f %10.0f %10.0f %10.0f\n",
                snap.name.c_str(), metricKindName(snap.kind),
                (unsigned long long)snap.count,
                static_cast<double>(snap.sum) /
                    static_cast<double>(snap.count),
                p50, p95, p99);
            break;
          case MetricKind::Timer:
            if (snap.count == 0)
                continue;
            out += format(
                "%-40s %-9s %12llu %12.1fus %8.0fus %8.0fus %8.0fus\n",
                snap.name.c_str(), metricKindName(snap.kind),
                (unsigned long long)snap.count,
                static_cast<double>(snap.sum) /
                    static_cast<double>(snap.count),
                p50, p95, p99);
            break;
        }
    }
    return out;
}

double
histogramQuantileFromBuckets(const uint64_t *buckets,
                             size_t bucket_count, double q)
{
    if (buckets == nullptr || bucket_count == 0)
        return 0.0;
    uint64_t total = 0;
    for (size_t i = 0; i < bucket_count; ++i)
        total += buckets[i];
    if (total == 0)
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    double rank = q * static_cast<double>(total);
    double cumulative = 0.0;
    for (size_t i = 0; i < bucket_count; ++i) {
        if (buckets[i] == 0)
            continue;
        double next = cumulative + static_cast<double>(buckets[i]);
        if (next >= rank) {
            // Bucket 0 holds the value 0 exactly; bucket i covers
            // [2^(i-1), 2^i - 1]. Interpolate linearly within the
            // bucket's bounds, Prometheus-style.
            if (i == 0)
                return 0.0;
            double lower = static_cast<double>(uint64_t{1} << (i - 1));
            if (i >= bucket_count - 1)
                return lower; // overflow bucket: clamp to lower bound
            double upper =
                static_cast<double>((uint64_t{1} << i) - 1);
            double within =
                (rank - cumulative) / static_cast<double>(buckets[i]);
            return lower + (upper - lower) * within;
        }
        cumulative = next;
    }
    // Unreachable when total > 0; keep the compiler satisfied.
    return 0.0;
}

bool
metricQuantiles(const std::string &name, HistogramQuantiles &out)
{
    std::vector<uint64_t> buckets =
        MetricsRegistry::instance().histogramBucketTotals(name);
    if (buckets.empty())
        return false;
    uint64_t total = 0;
    for (uint64_t hits : buckets)
        total += hits;
    if (total == 0)
        return false;
    out.p50 =
        histogramQuantileFromBuckets(buckets.data(), buckets.size(),
                                     0.50);
    out.p95 =
        histogramQuantileFromBuckets(buckets.data(), buckets.size(),
                                     0.95);
    out.p99 =
        histogramQuantileFromBuckets(buckets.data(), buckets.size(),
                                     0.99);
    return true;
}

namespace {

/** Map a dotted metric name to Prometheus form ("sqlpp_a_b_c"). */
std::string
prometheusName(const std::string &name)
{
    std::string out = "sqlpp_";
    out.reserve(out.size() + name.size());
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

} // namespace

std::string
exportMetricsPrometheus()
{
    MetricsRegistry &registry = MetricsRegistry::instance();
    std::vector<MetricSnapshot> snapshots;
    {
        std::lock_guard<std::mutex> lock(registry.mutex_);
        for (const auto &metric : registry.metrics_) {
            MetricSnapshot snap;
            snap.name = metric.name;
            snap.kind = metric.kind;
            for (size_t index = 0;
                 index <= MetricsRegistry::kMaxShards; ++index) {
                const MetricsRegistry::Lane *lane_ptr =
                    registry.lane(index);
                if (lane_ptr == nullptr)
                    continue;
                if (metric.kind == MetricKind::Counter ||
                    metric.kind == MetricKind::Gauge) {
                    uint64_t value = lane_ptr->cells[metric.cell].load(
                        std::memory_order_relaxed);
                    if (metric.kind == MetricKind::Gauge)
                        snap.total = std::max(snap.total, value);
                    else
                        snap.total += value;
                } else {
                    for (size_t b = 0;
                         b < MetricsRegistry::kHistogramBuckets; ++b) {
                        uint64_t hits =
                            lane_ptr->cells[metric.cell + b].load(
                                std::memory_order_relaxed);
                        snap.buckets[b] += hits;
                        snap.count += hits;
                    }
                    snap.sum +=
                        lane_ptr
                            ->cells[metric.cell +
                                    MetricsRegistry::kHistogramBuckets]
                            .load(std::memory_order_relaxed);
                }
            }
            snapshots.push_back(std::move(snap));
        }
    }
    std::sort(snapshots.begin(), snapshots.end(),
              [](const MetricSnapshot &a, const MetricSnapshot &b) {
                  return a.name < b.name;
              });

    // Every declared metric is emitted, zero or not: a scraper wants a
    // stable series set, not one that flickers as counters first fire.
    std::string out;
    for (const MetricSnapshot &snap : snapshots) {
        std::string name = prometheusName(snap.name);
        switch (snap.kind) {
          case MetricKind::Counter:
          case MetricKind::Gauge:
            out += format("# TYPE %s %s\n", name.c_str(),
                          snap.kind == MetricKind::Counter ? "counter"
                                                           : "gauge");
            out += format("%s %llu\n", name.c_str(),
                          (unsigned long long)snap.total);
            break;
          case MetricKind::Histogram:
          case MetricKind::Timer: {
            out += format("# TYPE %s histogram\n", name.c_str());
            // Cumulative counts at each non-empty upper bound, then
            // the mandatory +Inf bucket carrying the full count.
            uint64_t cumulative = 0;
            for (size_t b = 0;
                 b < MetricsRegistry::kHistogramBuckets; ++b) {
                if (snap.buckets[b] == 0)
                    continue;
                cumulative += snap.buckets[b];
                uint64_t bound = MetricsRegistry::bucketUpperBound(b);
                if (bound == UINT64_MAX)
                    continue; // folded into +Inf below
                out += format("%s_bucket{le=\"%llu\"} %llu\n",
                              name.c_str(), (unsigned long long)bound,
                              (unsigned long long)cumulative);
            }
            out += format("%s_bucket{le=\"+Inf\"} %llu\n",
                          name.c_str(),
                          (unsigned long long)snap.count);
            out += format("%s_sum %llu\n", name.c_str(),
                          (unsigned long long)snap.sum);
            out += format("%s_count %llu\n", name.c_str(),
                          (unsigned long long)snap.count);
            break;
          }
        }
    }
    return out;
}

void
declarePlatformMetrics()
{
#ifndef SQLPP_NO_METRICS
    MetricsRegistry &registry = MetricsRegistry::instance();
    struct Declaration
    {
        const char *name;
        MetricKind kind;
    };
    // The canonical metric universe; EXPERIMENTS.md documents each
    // entry. Keep both lists in sync.
    static const Declaration kDeclarations[] = {
        // Generator.
        {"generator.setup.create_table", MetricKind::Counter},
        {"generator.setup.create_index", MetricKind::Counter},
        {"generator.setup.create_view", MetricKind::Counter},
        {"generator.setup.insert", MetricKind::Counter},
        {"generator.setup.analyze", MetricKind::Counter},
        {"generator.select", MetricKind::Counter},
        {"generator.shape.ok", MetricKind::Counter},
        {"generator.shape.rejected.no_tables", MetricKind::Counter},
        {"generator.shape.rejected.empty_from", MetricKind::Counter},
        {"generator.gate.denied", MetricKind::Counter},
        // Guided generation (the bandit over generator choice points).
        {"generator.guided.selections", MetricKind::Counter},
        {"generator.guided.rewarded", MetricKind::Counter},
        {"generator.guided.novelty", MetricKind::Counter},
        {"generator.guided.truncated", MetricKind::Counter},
        {"generator.guided.all_suppressed", MetricKind::Counter},
        {"generator.guided.mode", MetricKind::Gauge},
        // Connection / statement execution.
        {"connection.statements", MetricKind::Counter},
        {"connection.execute.ok", MetricKind::Counter},
        {"connection.error.syntax", MetricKind::Counter},
        {"connection.error.semantic", MetricKind::Counter},
        {"connection.error.runtime", MetricKind::Counter},
        {"connection.error.unsupported", MetricKind::Counter},
        {"connection.error.internal", MetricKind::Counter},
        {"connection.error.budget", MetricKind::Counter},
        {"connection.refresh.retries", MetricKind::Counter},
        {"connection.execute.wall_us", MetricKind::Timer},
        // Oracles.
        {"oracle.tlp.pass", MetricKind::Counter},
        {"oracle.tlp.bug", MetricKind::Counter},
        {"oracle.tlp.skip", MetricKind::Counter},
        {"oracle.tlp.wall_us", MetricKind::Timer},
        {"oracle.norec.pass", MetricKind::Counter},
        {"oracle.norec.bug", MetricKind::Counter},
        {"oracle.norec.skip", MetricKind::Counter},
        {"oracle.norec.wall_us", MetricKind::Timer},
        {"oracle.pqs.pass", MetricKind::Counter},
        {"oracle.pqs.bug", MetricKind::Counter},
        {"oracle.pqs.skip", MetricKind::Counter},
        {"oracle.pqs.inapplicable", MetricKind::Counter},
        {"oracle.pqs.wall_us", MetricKind::Timer},
        {"oracle.eet.pass", MetricKind::Counter},
        {"oracle.eet.bug", MetricKind::Counter},
        {"oracle.eet.skip", MetricKind::Counter},
        {"oracle.eet.inapplicable", MetricKind::Counter},
        {"oracle.eet.wall_us", MetricKind::Timer},
        {"oracle.iso.pass", MetricKind::Counter},
        {"oracle.iso.bug", MetricKind::Counter},
        {"oracle.iso.skip", MetricKind::Counter},
        {"oracle.iso.inapplicable", MetricKind::Counter},
        {"oracle.iso.wall_us", MetricKind::Timer},
        // Reducer.
        {"reducer.cases", MetricKind::Counter},
        {"reducer.replays", MetricKind::Counter},
        {"reducer.setup.removed", MetricKind::Histogram},
        {"reducer.shrink.percent", MetricKind::Histogram},
        {"reducer.reduce.wall_us", MetricKind::Timer},
        // Engine budget.
        {"budget.exhausted.steps", MetricKind::Counter},
        {"budget.exhausted.rows", MetricKind::Counter},
        {"budget.exhausted.intermediate", MetricKind::Counter},
        // Campaign phases.
        {"campaign.runs", MetricKind::Counter},
        {"campaign.checks", MetricKind::Counter},
        {"campaign.checks.inapplicable", MetricKind::Counter},
        {"campaign.rebuilds", MetricKind::Counter},
        {"campaign.bugs.detected", MetricKind::Counter},
        {"campaign.bugs.prioritized", MetricKind::Counter},
        {"campaign.watchdog.abandoned", MetricKind::Counter},
        // Trace events lost to ring overwrite, set at export time.
        {"campaign.trace.dropped", MetricKind::Gauge},
        {"campaign.setup.wall_us", MetricKind::Timer},
        {"campaign.check.wall_us", MetricKind::Timer},
        {"campaign.run.wall_us", MetricKind::Timer},
        // Batch execution path. The campaign.exec.* family is the one
        // documented exception to cross-mode metrics byte-identity.
        {"campaign.exec.mode", MetricKind::Gauge},
        {"campaign.exec.batch.chunks", MetricKind::Counter},
        {"campaign.exec.batch.rows.kernel", MetricKind::Counter},
        {"campaign.exec.batch.rows.fallback", MetricKind::Counter},
        {"campaign.exec.batch.filter.compiled", MetricKind::Counter},
        {"campaign.exec.batch.filter.fallback", MetricKind::Counter},
        {"campaign.exec.batch.project.compiled", MetricKind::Counter},
        {"campaign.exec.batch.project.fallback", MetricKind::Counter},
        // Checkpointing.
        {"checkpoint.saves", MetricKind::Counter},
        {"checkpoint.save.bytes", MetricKind::Histogram},
        {"checkpoint.save.wall_us", MetricKind::Timer},
        // Scheduler.
        {"scheduler.workers", MetricKind::Gauge},
        {"scheduler.shards.total", MetricKind::Gauge},
        {"scheduler.shards.run", MetricKind::Counter},
        {"scheduler.shards.resumed", MetricKind::Counter},
        {"scheduler.shard.queue_us", MetricKind::Timer},
        {"scheduler.shard.exec_us", MetricKind::Timer},
    };
    for (const Declaration &declaration : kDeclarations)
        (void)registry.metricId(declaration.name, declaration.kind);
#endif // SQLPP_NO_METRICS
}

} // namespace sqlpp
