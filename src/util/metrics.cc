#include "util/metrics.h"

#include <algorithm>
#include <bit>

#include "util/strutil.h"

namespace sqlpp {

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Gauge: return "gauge";
      case MetricKind::Histogram: return "histogram";
      case MetricKind::Timer: return "timer";
    }
    return "unknown";
}

namespace {

/** Cells one metric occupies: histograms add a trailing sum cell. */
size_t
cellCount(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
      case MetricKind::Gauge:
        return 1;
      case MetricKind::Histogram:
      case MetricKind::Timer:
        return MetricsRegistry::kHistogramBuckets + 1;
    }
    return 1;
}

/** The thread's current lane (0 = unlabeled process totals). */
thread_local size_t tls_lane = 0;

} // namespace

MetricsRegistry::MetricsRegistry()
{
    // Fixed capacity up front: hot-path readers index metrics_ without
    // the mutex, so registration must never reallocate the vector.
    metrics_.reserve(kMaxMetrics);
    for (auto &lane : lanes_)
        lane.store(nullptr, std::memory_order_relaxed);
    // Lane 0 always exists so unlabeled hits never branch on creation.
    (void)laneForShard(static_cast<size_t>(-1), "");
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

size_t
MetricsRegistry::laneForShard(size_t shard_index, const std::string &label)
{
    size_t lane_index =
        shard_index == static_cast<size_t>(-1)
            ? 0
            : (shard_index % kMaxShards) + 1;
    // Cold path (once per shard scope): the mutex also orders label
    // writes against the exporters, which read labels under it.
    std::lock_guard<std::mutex> lock(mutex_);
    if (Lane *existing =
            lanes_[lane_index].load(std::memory_order_relaxed);
        existing != nullptr) {
        // A later in-process run may bind the same lane under a new
        // shard layout (slice N, then a dialect): the label follows
        // the latest binding.
        if (existing->label != label)
            existing->label = label;
        return lane_index;
    }
    auto lane = std::make_unique<Lane>();
    lane->label = label;
    lane->cells = std::make_unique<std::atomic<uint64_t>[]>(kMaxCells);
    for (size_t i = 0; i < kMaxCells; ++i)
        lane->cells[i].store(0, std::memory_order_relaxed);
    lanes_[lane_index].store(lane.get(), std::memory_order_release);
    lane_storage_.push_back(std::move(lane));
    return lane_index;
}

size_t
MetricsRegistry::metricId(const std::string &name, MetricKind kind)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = ids_.find(name);
    if (it != ids_.end())
        return it->second;
    size_t cells = cellCount(kind);
    if (metrics_.size() >= kMaxMetrics ||
        next_cell_ + cells > kMaxCells) {
        // Registry full: fold the overflow into slot 0 rather than
        // aborting a campaign over an observability limit.
        return 0;
    }
    Metric metric;
    metric.name = name;
    metric.kind = kind;
    metric.cell = next_cell_;
    next_cell_ += cells;
    size_t id = metrics_.size();
    metrics_.push_back(std::move(metric));
    ids_.emplace(name, id);
    registered_.store(metrics_.size(), std::memory_order_release);
    return id;
}

void
MetricsRegistry::add(size_t id, uint64_t delta)
{
    if (id >= registered_.load(std::memory_order_acquire))
        return;
    Lane *lane_ptr = lane(tls_lane);
    lane_ptr->cells[metrics_[id].cell].fetch_add(
        delta, std::memory_order_relaxed);
}

void
MetricsRegistry::set(size_t id, uint64_t value)
{
    if (id >= registered_.load(std::memory_order_acquire))
        return;
    Lane *lane_ptr = lane(tls_lane);
    lane_ptr->cells[metrics_[id].cell].store(value,
                                             std::memory_order_relaxed);
}

size_t
MetricsRegistry::bucketIndex(uint64_t value)
{
    if (value == 0)
        return 0;
    size_t width = static_cast<size_t>(std::bit_width(value));
    return std::min(width, kHistogramBuckets - 1);
}

uint64_t
MetricsRegistry::bucketUpperBound(size_t bucket)
{
    if (bucket == 0)
        return 0;
    if (bucket >= kHistogramBuckets - 1)
        return UINT64_MAX;
    return (uint64_t{1} << bucket) - 1;
}

void
MetricsRegistry::observe(size_t id, uint64_t value)
{
    if (id >= registered_.load(std::memory_order_acquire))
        return;
    const Metric &metric = metrics_[id];
    Lane *lane_ptr = lane(tls_lane);
    lane_ptr->cells[metric.cell + bucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    lane_ptr->cells[metric.cell + kHistogramBuckets].fetch_add(
        value, std::memory_order_relaxed);
}

void
MetricsRegistry::addByName(const std::string &name, uint64_t delta)
{
    add(metricId(name, MetricKind::Counter), delta);
}

void
MetricsRegistry::setByName(const std::string &name, uint64_t value)
{
    set(metricId(name, MetricKind::Gauge), value);
}

void
MetricsRegistry::observeByName(const std::string &name, uint64_t value)
{
    observe(metricId(name, MetricKind::Histogram), value);
}

size_t
MetricsRegistry::registered() const
{
    return registered_.load(std::memory_order_acquire);
}

uint64_t
MetricsRegistry::counterTotal(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = ids_.find(name);
    if (it == ids_.end())
        return 0;
    const Metric &metric = metrics_[it->second];
    uint64_t total = 0;
    for (size_t index = 0; index <= kMaxShards; ++index) {
        Lane *lane_ptr = lane(index);
        if (lane_ptr == nullptr)
            continue;
        uint64_t value =
            lane_ptr->cells[metric.cell].load(std::memory_order_relaxed);
        if (metric.kind == MetricKind::Gauge)
            total = std::max(total, value);
        else
            total += value;
    }
    return total;
}

uint64_t
MetricsRegistry::histogramCount(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = ids_.find(name);
    if (it == ids_.end())
        return 0;
    const Metric &metric = metrics_[it->second];
    uint64_t total = 0;
    for (size_t index = 0; index <= kMaxShards; ++index) {
        Lane *lane_ptr = lane(index);
        if (lane_ptr == nullptr)
            continue;
        for (size_t bucket = 0; bucket < kHistogramBuckets; ++bucket)
            total += lane_ptr->cells[metric.cell + bucket].load(
                std::memory_order_relaxed);
    }
    return total;
}

uint64_t
MetricsRegistry::histogramSum(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = ids_.find(name);
    if (it == ids_.end())
        return 0;
    const Metric &metric = metrics_[it->second];
    uint64_t total = 0;
    for (size_t index = 0; index <= kMaxShards; ++index) {
        Lane *lane_ptr = lane(index);
        if (lane_ptr == nullptr)
            continue;
        total += lane_ptr->cells[metric.cell + kHistogramBuckets].load(
            std::memory_order_relaxed);
    }
    return total;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t index = 0; index <= kMaxShards; ++index) {
        Lane *lane_ptr = lane(index);
        if (lane_ptr == nullptr)
            continue;
        for (size_t cell = 0; cell < kMaxCells; ++cell)
            lane_ptr->cells[cell].store(0, std::memory_order_relaxed);
    }
}

MetricsShardScope::MetricsShardScope(size_t shard_index,
                                     const std::string &label)
    : previous_lane_(tls_lane)
{
    tls_lane =
        MetricsRegistry::instance().laneForShard(shard_index, label);
}

MetricsShardScope::~MetricsShardScope()
{
    tls_lane = previous_lane_;
}

// ---------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------

namespace {

/** JSON string escaping (metric names and labels are plain ASCII). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out.push_back(c);
        }
    }
    return out;
}

/** One metric's values snapshotted across lanes. */
struct MetricSnapshot
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
    /** (lane label, scalar value) for counters/gauges, lane order. */
    std::vector<std::pair<std::string, uint64_t>> laneValues;
    uint64_t total = 0;
    /** Histogram data summed across lanes. */
    uint64_t buckets[MetricsRegistry::kHistogramBuckets] = {};
    uint64_t count = 0;
    uint64_t sum = 0;
};

} // namespace

std::string
exportMetricsJson(const MetricsJsonOptions &options)
{
    MetricsRegistry &registry = MetricsRegistry::instance();
    std::vector<MetricSnapshot> snapshots;
    {
        std::lock_guard<std::mutex> lock(registry.mutex_);
        for (const auto &metric : registry.metrics_) {
            MetricSnapshot snap;
            snap.name = metric.name;
            snap.kind = metric.kind;
            for (size_t index = 0;
                 index <= MetricsRegistry::kMaxShards; ++index) {
                const MetricsRegistry::Lane *lane_ptr =
                    registry.lane(index);
                if (lane_ptr == nullptr)
                    continue;
                if (metric.kind == MetricKind::Counter ||
                    metric.kind == MetricKind::Gauge) {
                    uint64_t value = lane_ptr->cells[metric.cell].load(
                        std::memory_order_relaxed);
                    if (value != 0 && index != 0)
                        snap.laneValues.emplace_back(lane_ptr->label,
                                                     value);
                    if (metric.kind == MetricKind::Gauge)
                        snap.total = std::max(snap.total, value);
                    else
                        snap.total += value;
                } else {
                    for (size_t b = 0;
                         b < MetricsRegistry::kHistogramBuckets; ++b) {
                        uint64_t hits =
                            lane_ptr->cells[metric.cell + b].load(
                                std::memory_order_relaxed);
                        snap.buckets[b] += hits;
                        snap.count += hits;
                    }
                    snap.sum +=
                        lane_ptr
                            ->cells[metric.cell +
                                    MetricsRegistry::kHistogramBuckets]
                            .load(std::memory_order_relaxed);
                }
            }
            snapshots.push_back(std::move(snap));
        }
    }
    std::sort(snapshots.begin(), snapshots.end(),
              [](const MetricSnapshot &a, const MetricSnapshot &b) {
                  return a.name < b.name;
              });

    std::string out = "{\n  \"schema\": \"sqlpp.metrics.v1\",\n"
                      "  \"metrics\": [";
    bool first = true;
    for (const MetricSnapshot &snap : snapshots) {
        bool scalar = snap.kind == MetricKind::Counter ||
                      snap.kind == MetricKind::Gauge;
        if (!options.includeZero) {
            if (scalar && snap.total == 0)
                continue;
            if (!scalar && snap.count == 0)
                continue;
        }
        if (!first)
            out += ",";
        first = false;
        out += format("\n    {\"name\": \"%s\", \"kind\": \"%s\"",
                      jsonEscape(snap.name).c_str(),
                      metricKindName(snap.kind));
        if (scalar) {
            out += format(", \"total\": %llu",
                          (unsigned long long)snap.total);
            if (options.includeShards && !snap.laneValues.empty()) {
                out += ", \"shards\": [";
                for (size_t i = 0; i < snap.laneValues.size(); ++i) {
                    if (i > 0)
                        out += ", ";
                    out += format(
                        "{\"shard\": \"%s\", \"value\": %llu}",
                        jsonEscape(snap.laneValues[i].first).c_str(),
                        (unsigned long long)snap.laneValues[i].second);
                }
                out += "]";
            }
        } else {
            out += format(", \"count\": %llu",
                          (unsigned long long)snap.count);
            bool values = snap.kind == MetricKind::Histogram ||
                          options.includeTimings;
            if (values) {
                out += format(", \"sum\": %llu",
                              (unsigned long long)snap.sum);
                out += ", \"buckets\": [";
                bool first_bucket = true;
                for (size_t b = 0;
                     b < MetricsRegistry::kHistogramBuckets; ++b) {
                    if (snap.buckets[b] == 0)
                        continue;
                    if (!first_bucket)
                        out += ", ";
                    first_bucket = false;
                    uint64_t bound =
                        MetricsRegistry::bucketUpperBound(b);
                    if (bound == UINT64_MAX)
                        out += format("{\"le\": \"inf\", \"count\": "
                                      "%llu}",
                                      (unsigned long long)
                                          snap.buckets[b]);
                    else
                        out += format(
                            "{\"le\": %llu, \"count\": %llu}",
                            (unsigned long long)bound,
                            (unsigned long long)snap.buckets[b]);
                }
                out += "]";
            }
        }
        out += "}";
    }
    out += "\n  ]\n}\n";
    return out;
}

std::string
metricsSummaryTable()
{
    MetricsRegistry &registry = MetricsRegistry::instance();
    std::vector<MetricSnapshot> snapshots;
    {
        std::lock_guard<std::mutex> lock(registry.mutex_);
        for (const auto &metric : registry.metrics_) {
            MetricSnapshot snap;
            snap.name = metric.name;
            snap.kind = metric.kind;
            for (size_t index = 0;
                 index <= MetricsRegistry::kMaxShards; ++index) {
                const MetricsRegistry::Lane *lane_ptr =
                    registry.lane(index);
                if (lane_ptr == nullptr)
                    continue;
                if (metric.kind == MetricKind::Counter ||
                    metric.kind == MetricKind::Gauge) {
                    uint64_t value = lane_ptr->cells[metric.cell].load(
                        std::memory_order_relaxed);
                    if (metric.kind == MetricKind::Gauge)
                        snap.total = std::max(snap.total, value);
                    else
                        snap.total += value;
                } else {
                    for (size_t b = 0;
                         b < MetricsRegistry::kHistogramBuckets; ++b) {
                        uint64_t hits =
                            lane_ptr->cells[metric.cell + b].load(
                                std::memory_order_relaxed);
                        snap.buckets[b] += hits;
                        snap.count += hits;
                    }
                    snap.sum +=
                        lane_ptr
                            ->cells[metric.cell +
                                    MetricsRegistry::kHistogramBuckets]
                            .load(std::memory_order_relaxed);
                }
            }
            snapshots.push_back(std::move(snap));
        }
    }
    std::sort(snapshots.begin(), snapshots.end(),
              [](const MetricSnapshot &a, const MetricSnapshot &b) {
                  return a.name < b.name;
              });

    std::string out =
        format("%-40s %-9s %12s %14s\n", "metric", "kind", "count",
               "total/avg");
    for (const MetricSnapshot &snap : snapshots) {
        switch (snap.kind) {
          case MetricKind::Counter:
          case MetricKind::Gauge:
            if (snap.total == 0)
                continue;
            out += format("%-40s %-9s %12s %14llu\n",
                          snap.name.c_str(), metricKindName(snap.kind),
                          "-", (unsigned long long)snap.total);
            break;
          case MetricKind::Histogram:
            if (snap.count == 0)
                continue;
            out += format("%-40s %-9s %12llu %14.1f\n",
                          snap.name.c_str(), metricKindName(snap.kind),
                          (unsigned long long)snap.count,
                          static_cast<double>(snap.sum) /
                              static_cast<double>(snap.count));
            break;
          case MetricKind::Timer:
            if (snap.count == 0)
                continue;
            out += format("%-40s %-9s %12llu %12.1fus\n",
                          snap.name.c_str(), metricKindName(snap.kind),
                          (unsigned long long)snap.count,
                          static_cast<double>(snap.sum) /
                              static_cast<double>(snap.count));
            break;
        }
    }
    return out;
}

void
declarePlatformMetrics()
{
#ifndef SQLPP_NO_METRICS
    MetricsRegistry &registry = MetricsRegistry::instance();
    struct Declaration
    {
        const char *name;
        MetricKind kind;
    };
    // The canonical metric universe; EXPERIMENTS.md documents each
    // entry. Keep both lists in sync.
    static const Declaration kDeclarations[] = {
        // Generator.
        {"generator.setup.create_table", MetricKind::Counter},
        {"generator.setup.create_index", MetricKind::Counter},
        {"generator.setup.create_view", MetricKind::Counter},
        {"generator.setup.insert", MetricKind::Counter},
        {"generator.setup.analyze", MetricKind::Counter},
        {"generator.select", MetricKind::Counter},
        {"generator.shape.ok", MetricKind::Counter},
        {"generator.shape.rejected.no_tables", MetricKind::Counter},
        {"generator.shape.rejected.empty_from", MetricKind::Counter},
        {"generator.gate.denied", MetricKind::Counter},
        // Guided generation (the bandit over generator choice points).
        {"generator.guided.selections", MetricKind::Counter},
        {"generator.guided.rewarded", MetricKind::Counter},
        {"generator.guided.novelty", MetricKind::Counter},
        {"generator.guided.truncated", MetricKind::Counter},
        {"generator.guided.all_suppressed", MetricKind::Counter},
        {"generator.guided.mode", MetricKind::Gauge},
        // Connection / statement execution.
        {"connection.statements", MetricKind::Counter},
        {"connection.execute.ok", MetricKind::Counter},
        {"connection.error.syntax", MetricKind::Counter},
        {"connection.error.semantic", MetricKind::Counter},
        {"connection.error.runtime", MetricKind::Counter},
        {"connection.error.unsupported", MetricKind::Counter},
        {"connection.error.internal", MetricKind::Counter},
        {"connection.error.budget", MetricKind::Counter},
        {"connection.refresh.retries", MetricKind::Counter},
        {"connection.execute.wall_us", MetricKind::Timer},
        // Oracles.
        {"oracle.tlp.pass", MetricKind::Counter},
        {"oracle.tlp.bug", MetricKind::Counter},
        {"oracle.tlp.skip", MetricKind::Counter},
        {"oracle.tlp.wall_us", MetricKind::Timer},
        {"oracle.norec.pass", MetricKind::Counter},
        {"oracle.norec.bug", MetricKind::Counter},
        {"oracle.norec.skip", MetricKind::Counter},
        {"oracle.norec.wall_us", MetricKind::Timer},
        {"oracle.pqs.pass", MetricKind::Counter},
        {"oracle.pqs.bug", MetricKind::Counter},
        {"oracle.pqs.skip", MetricKind::Counter},
        {"oracle.pqs.inapplicable", MetricKind::Counter},
        {"oracle.pqs.wall_us", MetricKind::Timer},
        {"oracle.eet.pass", MetricKind::Counter},
        {"oracle.eet.bug", MetricKind::Counter},
        {"oracle.eet.skip", MetricKind::Counter},
        {"oracle.eet.inapplicable", MetricKind::Counter},
        {"oracle.eet.wall_us", MetricKind::Timer},
        {"oracle.iso.pass", MetricKind::Counter},
        {"oracle.iso.bug", MetricKind::Counter},
        {"oracle.iso.skip", MetricKind::Counter},
        {"oracle.iso.inapplicable", MetricKind::Counter},
        {"oracle.iso.wall_us", MetricKind::Timer},
        // Reducer.
        {"reducer.cases", MetricKind::Counter},
        {"reducer.replays", MetricKind::Counter},
        {"reducer.setup.removed", MetricKind::Histogram},
        {"reducer.shrink.percent", MetricKind::Histogram},
        {"reducer.reduce.wall_us", MetricKind::Timer},
        // Engine budget.
        {"budget.exhausted.steps", MetricKind::Counter},
        {"budget.exhausted.rows", MetricKind::Counter},
        {"budget.exhausted.intermediate", MetricKind::Counter},
        // Campaign phases.
        {"campaign.runs", MetricKind::Counter},
        {"campaign.checks", MetricKind::Counter},
        {"campaign.checks.inapplicable", MetricKind::Counter},
        {"campaign.rebuilds", MetricKind::Counter},
        {"campaign.bugs.detected", MetricKind::Counter},
        {"campaign.bugs.prioritized", MetricKind::Counter},
        {"campaign.watchdog.abandoned", MetricKind::Counter},
        {"campaign.setup.wall_us", MetricKind::Timer},
        {"campaign.check.wall_us", MetricKind::Timer},
        {"campaign.run.wall_us", MetricKind::Timer},
        // Batch execution path. The campaign.exec.* family is the one
        // documented exception to cross-mode metrics byte-identity.
        {"campaign.exec.mode", MetricKind::Gauge},
        {"campaign.exec.batch.chunks", MetricKind::Counter},
        {"campaign.exec.batch.rows.kernel", MetricKind::Counter},
        {"campaign.exec.batch.rows.fallback", MetricKind::Counter},
        {"campaign.exec.batch.filter.compiled", MetricKind::Counter},
        {"campaign.exec.batch.filter.fallback", MetricKind::Counter},
        {"campaign.exec.batch.project.compiled", MetricKind::Counter},
        {"campaign.exec.batch.project.fallback", MetricKind::Counter},
        // Checkpointing.
        {"checkpoint.saves", MetricKind::Counter},
        {"checkpoint.save.bytes", MetricKind::Histogram},
        {"checkpoint.save.wall_us", MetricKind::Timer},
        // Scheduler.
        {"scheduler.workers", MetricKind::Gauge},
        {"scheduler.shards.total", MetricKind::Gauge},
        {"scheduler.shards.run", MetricKind::Counter},
        {"scheduler.shards.resumed", MetricKind::Counter},
        {"scheduler.shard.queue_us", MetricKind::Timer},
        {"scheduler.shard.exec_us", MetricKind::Timer},
    };
    for (const Declaration &declaration : kDeclarations)
        (void)registry.metricId(declaration.name, declaration.kind);
#endif // SQLPP_NO_METRICS
}

} // namespace sqlpp
