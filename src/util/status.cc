#include "util/status.h"

namespace sqlpp {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok: return "OK";
      case ErrorCode::SyntaxError: return "SYNTAX_ERROR";
      case ErrorCode::SemanticError: return "SEMANTIC_ERROR";
      case ErrorCode::RuntimeError: return "RUNTIME_ERROR";
      case ErrorCode::Unsupported: return "UNSUPPORTED";
      case ErrorCode::Internal: return "INTERNAL";
      case ErrorCode::BudgetExhausted: return "BUDGET_EXHAUSTED";
    }
    return "UNKNOWN";
}

std::string
Status::toString() const
{
    if (isOk())
        return "OK";
    std::string out = errorCodeName(code_);
    out += ": ";
    out += message_;
    return out;
}

} // namespace sqlpp
