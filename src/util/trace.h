/**
 * @file
 * Campaign flight recorder: low-overhead structured event tracing.
 *
 * Metrics (util/metrics.h) answer "how many"; the flight recorder
 * answers "what happened, in what order, right before X". Every shard
 * owns a fixed-capacity ring buffer of typed events — statement
 * executed, error class, oracle check, feature suppressed, plan
 * discovered, budget exhausted, bug found, checkpoint written, shard
 * abandoned — each stamped with a *logical tick*: the shard's
 * statement index, never a wall clock. Because ticks are logical and
 * lanes are keyed by shard index (exactly like MetricsShardScope's
 * lanes), a trace is byte-identical across runs for a fixed seed with
 * one worker and merges deterministically in shard order for any
 * worker count — worker threads change nothing but wall-clock time.
 *
 * Hot-path discipline mirrors util/metrics.h: recording an event is a
 * single fetch_add to reserve a ring slot plus a bounded copy into
 * fixed storage; no locks, no allocation. Each shard executes on one
 * thread at a time (the scheduler's share-nothing contract), so slot
 * reservation is the only synchronization the writer needs. The ring
 * keeps the newest kRingCapacity events per lane; older events are
 * dropped (counted, reported in the export header) — a flight
 * recorder keeps the tail of the story, the metrics keep the totals.
 *
 * Export: exportTraceJsonl() renders the recorder as line-oriented
 * JSON (schema "sqlpp.trace.v1"): one header line, then one line per
 * event, lanes in lane-index order, events oldest first. The document
 * contains no wall-clock values, so it inherits the determinism
 * contract above. scripts/trace_to_chrome.py converts the JSONL into
 * the Chrome trace-event format for rendering in Perfetto.
 *
 * Compile-out: building with -DSQLPP_TRACE=OFF (the SQLPP_NO_TRACE
 * macro) turns every instrumentation macro into a no-op with zero
 * hot-path cost (bench/micro_throughput's BM_TraceEvent measures both
 * sides); the recorder class and exporter stay available and simply
 * see no events.
 */
#ifndef SQLPP_UTIL_TRACE_H
#define SQLPP_UTIL_TRACE_H

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace sqlpp {

/** What a flight-recorder event witnessed. */
enum class TraceEventType : uint8_t
{
    /** A statement executed successfully (a = 1). */
    StatementExecuted = 0,
    /** A statement failed; detail names the error class. */
    ErrorClass,
    /** An oracle check finished; detail = oracle, a = outcome. */
    OracleCheck,
    /** Validity feedback suppressed a feature (a = id, b = ppm). */
    FeatureSuppressed,
    /** A never-before-seen plan fingerprint (a = fingerprint). */
    PlanDiscovered,
    /** The execution budget cut a statement short. */
    BudgetExhausted,
    /** An oracle flagged a bug; detail = oracle, a = bug ordinal. */
    BugFound,
    /** The reducer finished a case (a = replays, b = setup kept). */
    ReduceDone,
    /** Learning-curve sample (a = window attempted, b = window valid). */
    CurveSample,
    /** A campaign checkpoint was rewritten (a = payload bytes). */
    CheckpointWritten,
    /** A shard was restored from a checkpoint (a = shard index). */
    CheckpointRestored,
    /** A shard began executing; detail = dialect/slice label. */
    ShardStarted,
    /** The watchdog abandoned a shard at its deadline. */
    ShardAbandoned,
    /**
     * A campaign selected a non-default execution pipeline; detail =
     * execModeName(), a = ExecMode ordinal. Not emitted for Optimized,
     * so legacy traces are unchanged. Appended last to preserve the
     * serialized ids of every earlier type.
     */
    ExecModeSelected,
};

/** Number of distinct event types (bounds arrays and validation). */
inline constexpr size_t kTraceEventTypes =
    static_cast<size_t>(TraceEventType::ExecModeSelected) + 1;

/** Stable snake_case name of an event type ("statement_executed"). */
const char *traceEventTypeName(TraceEventType type);

/** One recorded event. Fixed-size so the ring never allocates. */
struct TraceEvent
{
    /** Capacity of the inline detail string (including the NUL). */
    static constexpr size_t kDetailCapacity = 23;

    /** Logical tick: the lane's statement index at record time. */
    uint64_t tick = 0;
    /** Type-specific payloads (fingerprints, counts, ids). */
    uint64_t a = 0;
    uint64_t b = 0;
    TraceEventType type = TraceEventType::StatementExecuted;
    /** Short context string (oracle name, error class); truncated. */
    char detail[kDetailCapacity] = {};
};

// The ring stores events as word-packed relaxed atomics so the live
// /trace endpoint can read concurrently with campaign writers.
static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent must memcpy in and out of the ring");
static_assert(sizeof(TraceEvent) % sizeof(uint64_t) == 0,
              "TraceEvent must pack into whole uint64_t words");

/** Process-wide flight recorder with per-shard ring-buffer lanes. */
class TraceRecorder
{
  public:
    /** Events retained per lane; older events are dropped. */
    static constexpr size_t kRingCapacity = 4096;
    /** Lane 0 = unlabeled; lanes 1.. = shard (index % kMaxShards) + 1. */
    static constexpr size_t kMaxShards = 256;

    TraceRecorder();

    /** The process-wide instance all instrumentation feeds. */
    static TraceRecorder &instance();

    /**
     * Advance the current lane's logical tick by one (called once per
     * executed statement) and return the new tick value.
     */
    uint64_t bumpTick();

    /** The current lane's tick without advancing it. */
    uint64_t currentTick() const;

    /**
     * Record one event into the current lane, stamped with the lane's
     * current tick (hot path; lock-free).
     */
    void record(TraceEventType type, std::string_view detail,
                uint64_t a = 0, uint64_t b = 0);

    /** Events currently retained in a lane (ring order, oldest first). */
    std::vector<TraceEvent> laneEvents(size_t lane_index) const;

    /**
     * The newest `max_events` events of the lane bound to a shard
     * index (the dossier writer's "last N before the bug" view).
     */
    std::vector<TraceEvent> recentShardEvents(size_t shard_index,
                                              size_t max_events) const;

    /** Events ever recorded into a lane (retained + dropped). */
    uint64_t laneRecorded(size_t lane_index) const;

    /** Label of a lane ("" when unlabeled/unused). */
    std::string laneLabel(size_t lane_index) const;

    /** Lane index a shard index maps to (mirrors metrics lanes). */
    static size_t laneForShardIndex(size_t shard_index)
    {
        return shard_index == static_cast<size_t>(-1)
                   ? 0
                   : (shard_index % kMaxShards) + 1;
    }

    /**
     * Zero every lane's ring, tick, and event count. Campaign drivers
     * call this before a run so repeated in-process runs start clean.
     */
    void reset();

  private:
    friend class TraceShardScope;
    friend std::string exportTraceJsonl();

    /** Words one packed event occupies in the ring. */
    static constexpr size_t kEventWords =
        sizeof(TraceEvent) / sizeof(uint64_t);

    /** One shard's ring. Allocated lazily; pointer never moves. */
    struct Lane
    {
        std::string label;
        std::atomic<uint64_t> tick{0};
        /** Events ever recorded; head slot = recorded % capacity. */
        std::atomic<uint64_t> recorded{0};
        /**
         * kRingCapacity slots of kEventWords relaxed-atomic words
         * each, plus a per-slot seqlock version (odd while a writer
         * is mid-copy). Writers were always safe (one thread per
         * shard); the packing is for the *readers* the status
         * server added — laneEvents() now snapshots a slot without
         * tearing while the campaign is still recording into it.
         */
        std::unique_ptr<std::atomic<uint64_t>[]> ring;
        std::unique_ptr<std::atomic<uint64_t>[]> versions;
    };

    /** Seqlock read of one slot; false when a writer kept racing it. */
    static bool readSlot(const Lane &lane, size_t slot,
                         TraceEvent *out);

    /** Get or create the lane for a shard index; returns lane index. */
    size_t laneForShard(size_t shard_index, const std::string &label);

    Lane *lane(size_t lane_index) const
    {
        return lanes_[lane_index].load(std::memory_order_acquire);
    }

    /** Guards lane creation and label writes only. */
    mutable std::mutex mutex_;
    std::atomic<Lane *> lanes_[kMaxShards + 1];
    std::vector<std::unique_ptr<Lane>> lane_storage_;
};

/**
 * Binds the current thread to a shard's trace lane for the scope's
 * lifetime — the scheduler wraps each shard execution in one, next to
 * its MetricsShardScope. Lane choice depends only on the shard index,
 * so traces are worker-count independent. Scopes nest; the previous
 * lane is restored on destruction.
 */
class TraceShardScope
{
  public:
    TraceShardScope(size_t shard_index, const std::string &label);
    ~TraceShardScope();

    TraceShardScope(const TraceShardScope &) = delete;
    TraceShardScope &operator=(const TraceShardScope &) = delete;

  private:
    size_t previous_lane_;
};

/**
 * Serialize the recorder as line-oriented JSON (schema
 * "sqlpp.trace.v1"): one header line, then one line per retained
 * event, lanes in lane-index order, events oldest first. Contains no
 * wall-clock values — byte-identical across runs for a fixed seed
 * with one worker, and identical for any worker count.
 */
std::string exportTraceJsonl();

/**
 * Incremental drain for the status server's /trace endpoint: only
 * events with tick > `since_tick`, same line format as
 * exportTraceJsonl() but with header schema "sqlpp.trace.delta.v1"
 * carrying `since` and `tick` (the maximum tick across lanes) so a
 * client can resume from where this response left off.
 */
std::string exportTraceDeltaJsonl(uint64_t since_tick);

/**
 * Events lost to ring overwrite across all lanes (recorded minus
 * retained) — the number the campaign.trace.dropped gauge carries.
 */
uint64_t traceDroppedTotal();

/** Render one event as its JSONL line (no trailing newline). */
std::string traceEventJson(size_t lane_index, const std::string &label,
                           const TraceEvent &event);

/**
 * Stable description of the sqlpp.trace.v1 schema — field names,
 * field types, and the event-type vocabulary — pinned by the golden
 * test in tests/golden/trace_schema.txt.
 */
std::string traceSchemaDescription();

// ---------------------------------------------------------------------
// Instrumentation macros. All compile to nothing under SQLPP_NO_TRACE;
// hot call sites pay one fetch_add + bounded copy when enabled.
// ---------------------------------------------------------------------

#ifdef SQLPP_NO_TRACE

#define SQLPP_TRACE_TICK() do {} while (0)
#define SQLPP_TRACE_EVENT(type, detail, a, b) do {} while (0)

#else

/** Advance the current lane's logical tick (one executed statement). */
#define SQLPP_TRACE_TICK()                                              \
    do {                                                                \
        ::sqlpp::TraceRecorder::instance().bumpTick();                  \
    } while (0)

/** Record one flight-recorder event in the current lane. */
#define SQLPP_TRACE_EVENT(type, detail, a, b)                           \
    do {                                                                \
        ::sqlpp::TraceRecorder::instance().record(                      \
            ::sqlpp::TraceEventType::type, (detail),                    \
            static_cast<uint64_t>(a), static_cast<uint64_t>(b));        \
    } while (0)

#endif // SQLPP_NO_TRACE

} // namespace sqlpp

#endif // SQLPP_UTIL_TRACE_H
