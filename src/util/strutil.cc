#include "util/strutil.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace sqlpp {

std::string
toUpper(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return out;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
equalsIgnoreCase(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::toupper(static_cast<unsigned char>(a[i])) !=
            std::toupper(static_cast<unsigned char>(b[i]))) {
            return false;
        }
    }
    return true;
}

std::string
join(const std::vector<std::string> &items, std::string_view separator)
{
    std::string out;
    for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0)
            out += separator;
        out += items[i];
    }
    return out;
}

std::vector<std::string>
split(std::string_view s, char separator)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == separator) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string_view
trim(std::string_view s)
{
    size_t begin = 0;
    size_t end = s.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(s[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1]))) {
        --end;
    }
    return s.substr(begin, end - begin);
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::string
sqlQuote(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('\'');
    for (char c : s) {
        if (c == '\'')
            out += "''";
        else
            out.push_back(c);
    }
    out.push_back('\'');
    return out;
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<size_t>(needed));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

uint64_t
fnv1a(std::string_view s, uint64_t seed)
{
    uint64_t hash = seed;
    for (char c : s) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace sqlpp
