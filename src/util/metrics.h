/**
 * @file
 * Campaign observability: a process-wide metrics and tracing registry.
 *
 * The platform is judged by campaign-level signals — validity rate,
 * plan coverage, bugs over time (paper Tables 2–5, Fig. 8) — but a
 * production fleet also needs to see *where* statements and wall-clock
 * time go inside a shard. The registry holds three metric kinds:
 *
 *  - Counter: a monotonically increasing event count.
 *  - Gauge: a last-written value (configuration facts, sizes).
 *  - Histogram / Timer: fixed power-of-two buckets over a uint64
 *    value. A Timer is a histogram of wall-clock microseconds fed by
 *    RAII spans (SQLPP_SPAN); a plain Histogram observes logical,
 *    deterministic values (bytes, node counts, percentages).
 *
 * Hot-path discipline mirrors util/coverage.h: call sites resolve a
 * metric name to an id once (function-local static), after which every
 * event is a single relaxed atomic increment into fixed-capacity
 * storage that never reallocates. Registration alone takes the mutex.
 *
 * Shard label dimension: every value cell is replicated per *lane*.
 * Lane 0 collects unlabeled process totals; the scheduler wraps each
 * shard in a MetricsShardScope, which binds the executing thread to
 * the shard's lane. Because lane assignment depends only on the shard
 * index — never on which worker ran the shard — per-lane values and
 * their sums are independent of the worker count, exactly like the
 * scheduler's deterministic CampaignStats merge.
 *
 * Determinism contract of the JSON export (exportMetricsJson):
 * counters, gauges, and logical histograms are functions of the
 * campaign seed alone, and Timer metrics export only their observation
 * *count* by default — wall-clock durations appear only under
 * MetricsJsonOptions::includeTimings (or in the human summary table).
 * The default document is therefore byte-identical across runs for a
 * fixed seed with one worker.
 *
 * Compile-out: building with -DSQLPP_METRICS=OFF (the SQLPP_NO_METRICS
 * macro) turns every instrumentation macro and helper into a no-op so
 * the hot paths carry zero overhead; the registry class itself stays
 * available (it just records nothing through the helpers).
 */
#ifndef SQLPP_UTIL_METRICS_H
#define SQLPP_UTIL_METRICS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sqlpp {

/** What a metric measures; fixed at first registration. */
enum class MetricKind
{
    Counter,
    Gauge,
    /** Fixed-bucket histogram of a logical (deterministic) value. */
    Histogram,
    /** Histogram of wall-clock microseconds (nondeterministic values). */
    Timer,
};

/** Stable name of a MetricKind ("counter", "gauge", ...). */
const char *metricKindName(MetricKind kind);

/** Options for exportMetricsJson(). */
struct MetricsJsonOptions
{
    /**
     * Include wall-clock sums and bucket counts for Timer metrics.
     * Off by default: timing values vary run to run, and the default
     * document must be byte-identical for a fixed seed.
     */
    bool includeTimings = false;
    /** Include per-shard lane breakdowns (on by default). */
    bool includeShards = true;
    /** Include metrics whose every value is zero (schema stability). */
    bool includeZero = true;
};

/** Process-wide registry of named campaign metrics. */
class MetricsRegistry
{
  public:
    /** Upper bound on registered metrics. */
    static constexpr size_t kMaxMetrics = 512;
    /**
     * Histogram buckets: bucket 0 holds the value 0, bucket i holds
     * values whose bit width is i (2^(i-1) .. 2^i - 1); the last
     * bucket absorbs everything larger. 28 buckets span ~134 seconds
     * in microseconds and ~128 MiB in bytes.
     */
    static constexpr size_t kHistogramBuckets = 28;
    /** Value cells per lane (counters 1, gauges 1, histograms B+1). */
    static constexpr size_t kMaxCells = 8192;
    /** Lane 0 = unlabeled; lanes 1.. = shard (index % kMaxShards) + 1. */
    static constexpr size_t kMaxShards = 256;

    MetricsRegistry();

    /** The process-wide instance all instrumentation feeds. */
    static MetricsRegistry &instance();

    /**
     * Resolve a name to a metric id, registering it if unknown. Ids
     * are stable for the process lifetime. Registering the same name
     * under a different kind keeps the first kind (and logs nothing:
     * the declared universe in declarePlatformMetrics() is the source
     * of truth). Thread-safe; takes the registry mutex.
     */
    size_t metricId(const std::string &name, MetricKind kind);

    /** Add to a counter (hot path; lock-free). */
    void add(size_t id, uint64_t delta = 1);

    /** Set a gauge to a value (hot path; lock-free). */
    void set(size_t id, uint64_t value);

    /** Observe a histogram/timer value (hot path; lock-free). */
    void observe(size_t id, uint64_t value);

    /** Cold-path conveniences resolving the name every call. */
    void addByName(const std::string &name, uint64_t delta = 1);
    void setByName(const std::string &name, uint64_t value);
    void observeByName(const std::string &name, uint64_t value);

    /** Number of registered metrics. */
    size_t registered() const;

    /** Sum of a counter/gauge across lanes (gauge: max, see export). */
    uint64_t counterTotal(const std::string &name) const;

    /** Total observations of a histogram/timer across lanes. */
    uint64_t histogramCount(const std::string &name) const;

    /** Sum of observed values of a histogram/timer across lanes. */
    uint64_t histogramSum(const std::string &name) const;

    /**
     * Per-bucket observation counts of a histogram/timer summed across
     * lanes (kHistogramBuckets entries); empty for unknown names and
     * scalar metrics.
     */
    std::vector<uint64_t>
    histogramBucketTotals(const std::string &name) const;

    /**
     * Zero every value in every lane; registrations, lane labels, and
     * resolved ids stay valid. Campaign drivers call this before a
     * run so repeated in-process runs (tests, benches) start clean.
     */
    void reset();

    /** Bucket index for a histogram value (exposed for tests). */
    static size_t bucketIndex(uint64_t value);

    /** Inclusive upper bound of a bucket (UINT64_MAX for the last). */
    static uint64_t bucketUpperBound(size_t bucket);

  private:
    friend class MetricsShardScope;
    friend std::string exportMetricsJson(const MetricsJsonOptions &);
    friend std::string metricsSummaryTable();
    friend std::string exportMetricsPrometheus();

    struct Metric
    {
        std::string name;
        MetricKind kind = MetricKind::Counter;
        /** First value cell; histograms use [cell, cell + B + 1). */
        size_t cell = 0;
    };

    /** One label dimension's worth of value cells. */
    struct Lane
    {
        std::string label;
        std::unique_ptr<std::atomic<uint64_t>[]> cells;
    };

    /** Get or create the lane for a shard index; returns lane index. */
    size_t laneForShard(size_t shard_index, const std::string &label);

    Lane *lane(size_t lane_index) const
    {
        return lanes_[lane_index].load(std::memory_order_acquire);
    }

    /** Guards metric registration and lane creation. */
    mutable std::mutex mutex_;
    std::map<std::string, size_t> ids_;
    std::vector<Metric> metrics_;
    /** Published metric count (hot-path reads need no lock). */
    std::atomic<size_t> registered_{0};
    size_t next_cell_ = 0;
    /** Fixed-capacity lane table: pointers never move once published. */
    std::atomic<Lane *> lanes_[kMaxShards + 1];
    std::vector<std::unique_ptr<Lane>> lane_storage_;
};

/**
 * Binds the current thread to a shard's metric lane for the scope's
 * lifetime (the scheduler wraps each shard execution in one). Lane
 * choice depends only on the shard index, so per-lane values are
 * worker-count independent. Scopes nest; the previous lane is
 * restored on destruction.
 */
class MetricsShardScope
{
  public:
    MetricsShardScope(size_t shard_index, const std::string &label);
    ~MetricsShardScope();

    MetricsShardScope(const MetricsShardScope &) = delete;
    MetricsShardScope &operator=(const MetricsShardScope &) = delete;

  private:
    size_t previous_lane_;
};

/**
 * RAII wall-clock span feeding a Timer metric in microseconds. Use
 * through SQLPP_SPAN so disabled builds compile the span away.
 */
class MetricsSpan
{
  public:
    explicit MetricsSpan(size_t id)
        : id_(id), start_(std::chrono::steady_clock::now())
    {
    }

    ~MetricsSpan()
    {
        auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_);
        MetricsRegistry::instance().observe(
            id_, static_cast<uint64_t>(elapsed.count()));
    }

    MetricsSpan(const MetricsSpan &) = delete;
    MetricsSpan &operator=(const MetricsSpan &) = delete;

  private:
    size_t id_;
    std::chrono::steady_clock::time_point start_;
};

/**
 * Serialize the registry as a stable JSON document (schema
 * "sqlpp.metrics.v1"): metrics sorted by name, lanes by index, sparse
 * non-empty buckets. See the determinism contract in the file header.
 */
std::string exportMetricsJson(const MetricsJsonOptions &options = {});

/** Human-readable summary table (includes wall-clock timings). */
std::string metricsSummaryTable();

/**
 * Serialize the registry in the Prometheus text exposition format
 * (text/plain; version=0.0.4): counters and gauges as single samples,
 * histograms and timers in cumulative `_bucket{le="..."}` form with
 * `_sum` and `_count`, from which Prometheus derives quantiles.
 * Metric names are prefixed "sqlpp_" with non-alphanumeric characters
 * mapped to '_'. Served live by the status server's /metrics endpoint.
 */
std::string exportMetricsPrometheus();

/**
 * Quantile estimate from power-of-two histogram buckets (the
 * registry's layout: bucket 0 holds the value 0, bucket i covers
 * [2^(i-1), 2^i - 1]). Finds the bucket containing the q-rank and
 * interpolates linearly inside its bounds, Prometheus-style; the
 * overflow bucket returns its lower bound. Returns 0 on empty data.
 */
double histogramQuantileFromBuckets(const uint64_t *buckets,
                                    size_t bucket_count, double q);

/** p50/p95/p99 estimates for one histogram/timer metric. */
struct HistogramQuantiles
{
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/**
 * Compute p50/p95/p99 for a registered histogram/timer from its
 * bucket counts summed across lanes. False when the metric is
 * unknown, scalar, or has no observations.
 */
bool metricQuantiles(const std::string &name, HistogramQuantiles &out);

/**
 * Pre-register the platform's metric universe so exported documents
 * have a stable shape regardless of which code paths ran. Idempotent.
 * EXPERIMENTS.md documents every name listed here.
 */
void declarePlatformMetrics();

// ---------------------------------------------------------------------
// Instrumentation helpers. All compile to nothing under
// SQLPP_NO_METRICS; names passed to the macros must be string
// literals (they are resolved once per call site).
// ---------------------------------------------------------------------

namespace metrics {

#ifdef SQLPP_NO_METRICS

inline void count(const std::string &, uint64_t = 1) {}
inline void gaugeSet(const std::string &, uint64_t) {}
inline void observe(const std::string &, uint64_t) {}

#else

/** Cold path: count by a runtime-computed name. */
inline void
count(const std::string &name, uint64_t delta = 1)
{
    MetricsRegistry::instance().addByName(name, delta);
}

/** Cold path: set a gauge by a runtime-computed name. */
inline void
gaugeSet(const std::string &name, uint64_t value)
{
    MetricsRegistry::instance().setByName(name, value);
}

/** Cold path: observe a histogram value by a runtime-computed name. */
inline void
observe(const std::string &name, uint64_t value)
{
    MetricsRegistry::instance().observeByName(name, value);
}

#endif // SQLPP_NO_METRICS

} // namespace metrics

#define SQLPP_METRICS_CAT2(a, b) a##b
#define SQLPP_METRICS_CAT(a, b) SQLPP_METRICS_CAT2(a, b)

#ifdef SQLPP_NO_METRICS

#define SQLPP_COUNT(name) do {} while (0)
#define SQLPP_COUNT_N(name, n) do {} while (0)
#define SQLPP_OBSERVE(name, value) do {} while (0)
#define SQLPP_OBSERVE_TIME(name, micros) do {} while (0)
#define SQLPP_GAUGE_SET(name, value) do {} while (0)
#define SQLPP_SPAN(name) do {} while (0)

#else

/** Hot-path counter increment; resolves the slot once per call site. */
#define SQLPP_COUNT(name) SQLPP_COUNT_N(name, 1)

#define SQLPP_COUNT_N(name, n)                                          \
    do {                                                                \
        static const size_t sqlpp_metric_slot =                         \
            ::sqlpp::MetricsRegistry::instance().metricId(              \
                name, ::sqlpp::MetricKind::Counter);                    \
        ::sqlpp::MetricsRegistry::instance().add(sqlpp_metric_slot,     \
                                                 (n));                  \
    } while (0)

/** Hot-path histogram observation of a logical value. */
#define SQLPP_OBSERVE(name, value)                                      \
    do {                                                                \
        static const size_t sqlpp_metric_slot =                         \
            ::sqlpp::MetricsRegistry::instance().metricId(              \
                name, ::sqlpp::MetricKind::Histogram);                  \
        ::sqlpp::MetricsRegistry::instance().observe(sqlpp_metric_slot, \
                                                     (value));          \
    } while (0)

/**
 * Observe a wall-clock duration in microseconds. Distinct from
 * SQLPP_OBSERVE: the metric registers as a Timer, so its
 * (nondeterministic) values stay out of the default JSON export.
 */
#define SQLPP_OBSERVE_TIME(name, micros)                                \
    do {                                                                \
        static const size_t sqlpp_metric_slot =                         \
            ::sqlpp::MetricsRegistry::instance().metricId(              \
                name, ::sqlpp::MetricKind::Timer);                      \
        ::sqlpp::MetricsRegistry::instance().observe(sqlpp_metric_slot, \
                                                     (micros));         \
    } while (0)

/** Hot-path gauge store. */
#define SQLPP_GAUGE_SET(name, value)                                    \
    do {                                                                \
        static const size_t sqlpp_metric_slot =                         \
            ::sqlpp::MetricsRegistry::instance().metricId(              \
                name, ::sqlpp::MetricKind::Gauge);                      \
        ::sqlpp::MetricsRegistry::instance().set(sqlpp_metric_slot,     \
                                                 (value));              \
    } while (0)

/**
 * RAII timing span: records wall-clock microseconds into the named
 * Timer metric when the enclosing scope exits.
 */
#define SQLPP_SPAN(name)                                                \
    static const size_t SQLPP_METRICS_CAT(sqlpp_span_slot_,             \
                                          __LINE__) =                   \
        ::sqlpp::MetricsRegistry::instance().metricId(                  \
            name, ::sqlpp::MetricKind::Timer);                          \
    ::sqlpp::MetricsSpan SQLPP_METRICS_CAT(sqlpp_span_, __LINE__)(      \
        SQLPP_METRICS_CAT(sqlpp_span_slot_, __LINE__))

#endif // SQLPP_NO_METRICS

} // namespace sqlpp

#endif // SQLPP_UTIL_METRICS_H
