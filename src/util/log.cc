#include "util/log.h"

#include <cstdio>
#include <mutex>

#include "util/strutil.h"

namespace sqlpp {

namespace {
LogLevel g_level = LogLevel::Warn;

/** Buffered Debug/Info lines flush once the buffer reaches this. */
constexpr size_t kFlushThreshold = 8 * 1024;

std::mutex &
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

/** Guarded by logMutex(). */
std::string &
lineBuffer()
{
    static std::string buffer;
    return buffer;
}

std::function<void(const std::string &)> &
logSink()
{
    static std::function<void(const std::string &)> sink;
    return sink;
}

/** Caller holds logMutex(). */
void
emit(const std::string &text)
{
    if (text.empty())
        return;
    if (auto &sink = logSink(); sink) {
        sink(text);
        return;
    }
    std::fwrite(text.data(), 1, text.size(), stderr);
    std::fflush(stderr);
}

/** Caller holds logMutex(). */
void
flushLocked()
{
    std::string &buffer = lineBuffer();
    if (buffer.empty())
        return;
    std::string drained;
    drained.swap(buffer);
    emit(drained);
}

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Silent: return "SILENT";
    }
    return "?";
}
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

std::optional<LogLevel>
logLevelFromName(const std::string &name)
{
    std::string lower = toLower(name);
    if (lower == "quiet" || lower == "silent")
        return LogLevel::Silent;
    if (lower == "error")
        return LogLevel::Error;
    if (lower == "warn" || lower == "warning")
        return LogLevel::Warn;
    if (lower == "info")
        return LogLevel::Info;
    if (lower == "debug")
        return LogLevel::Debug;
    return std::nullopt;
}

void
logMessage(LogLevel level, const std::string &message)
{
    if (level < g_level || g_level == LogLevel::Silent)
        return;
    /* Build the whole line first and append/emit it in one piece under
     * a mutex, so concurrent campaign workers never interleave or tear
     * log lines. */
    std::string line = "[";
    line += levelName(level);
    line += "] ";
    line += message;
    line += "\n";
    std::lock_guard<std::mutex> lock(logMutex());
    if (level >= LogLevel::Warn) {
        /* Warnings and errors must not sit in a buffer: drain anything
         * queued ahead of them (order preserved), then write through. */
        flushLocked();
        emit(line);
        return;
    }
    std::string &buffer = lineBuffer();
    buffer += line;
    if (buffer.size() >= kFlushThreshold)
        flushLocked();
}

void
flushLogs()
{
    std::lock_guard<std::mutex> lock(logMutex());
    flushLocked();
}

size_t
pendingLogBytes()
{
    std::lock_guard<std::mutex> lock(logMutex());
    return lineBuffer().size();
}

void
setLogSink(std::function<void(const std::string &)> sink)
{
    std::lock_guard<std::mutex> lock(logMutex());
    /* Don't let lines queued for the old sink leak into the new one. */
    flushLocked();
    logSink() = std::move(sink);
}

} // namespace sqlpp
