#include "util/log.h"

#include <cstdio>

namespace sqlpp {

namespace {
LogLevel g_level = LogLevel::Warn;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Silent: return "SILENT";
    }
    return "?";
}
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
logMessage(LogLevel level, const std::string &message)
{
    if (level < g_level || g_level == LogLevel::Silent)
        return;
    std::fprintf(stderr, "[%s] %s\n", levelName(level), message.c_str());
}

} // namespace sqlpp
