#include "util/log.h"

#include <cstdio>
#include <mutex>

namespace sqlpp {

namespace {
LogLevel g_level = LogLevel::Warn;

std::mutex &
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Silent: return "SILENT";
    }
    return "?";
}
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
logMessage(LogLevel level, const std::string &message)
{
    if (level < g_level || g_level == LogLevel::Silent)
        return;
    /* Build the whole line first and emit it in one write under a
     * mutex, so concurrent campaign workers never interleave or tear
     * log lines. */
    std::string line = "[";
    line += levelName(level);
    line += "] ";
    line += message;
    line += "\n";
    std::lock_guard<std::mutex> lock(logMutex());
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

} // namespace sqlpp
