#include "util/rng.h"

#include <cmath>

namespace sqlpp {

Rng::Rng(uint64_t seed)
{
    reseed(seed);
}

void
Rng::reseed(uint64_t seed)
{
    // PCG32 initialization: fixed odd increment, seed mixed through one step.
    state_ = 0;
    inc_ = (seed << 1u) | 1u;
    next32();
    state_ += 0x853c49e6748fea9bULL + seed;
    next32();
}

uint32_t
Rng::next32()
{
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
}

uint64_t
Rng::next64()
{
    return (static_cast<uint64_t>(next32()) << 32) | next32();
}

uint64_t
Rng::below(uint64_t bound)
{
    if (bound <= 1)
        return 0;
    // Rejection sampling to remove modulo bias.
    uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        uint64_t r = next64();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(below(span));
}

double
Rng::uniform()
{
    return (next64() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

bool
Rng::coin()
{
    return (next32() & 1u) != 0;
}

size_t
Rng::pickWeighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights)
        total += (w > 0.0 ? w : 0.0);
    if (total <= 0.0)
        return below(weights.size());
    double target = uniform() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        if (weights[i] <= 0.0)
            continue;
        acc += weights[i];
        if (target < acc)
            return i;
    }
    // Floating-point slop: fall back to the last positive-weight entry.
    for (size_t i = weights.size(); i-- > 0;) {
        if (weights[i] > 0.0)
            return i;
    }
    return weights.size() - 1;
}

std::string
Rng::identifier(size_t length)
{
    static const char alphabet[] = "abcdefghijklmnopqrstuvwxyz";
    std::string out;
    out.reserve(length);
    for (size_t i = 0; i < length; ++i)
        out.push_back(alphabet[below(26)]);
    return out;
}

std::string
Rng::text(size_t max_length)
{
    static const char alphabet[] =
        "abcdefghijklmnopqrstuvwxyz"
        "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
        "0123456789 _%.-";
    size_t len = below(max_length + 1);
    std::string out;
    out.reserve(len);
    for (size_t i = 0; i < len; ++i)
        out.push_back(alphabet[below(sizeof(alphabet) - 1)]);
    return out;
}

} // namespace sqlpp
