#include "util/status_server.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/log.h"
#include "util/strutil.h"

namespace sqlpp {

uint64_t
HttpRequest::queryU64(const std::string &key, uint64_t fallback) const
{
    auto it = query.find(key);
    if (it == query.end() || it->second.empty())
        return fallback;
    errno = 0;
    char *end = nullptr;
    unsigned long long value =
        std::strtoull(it->second.c_str(), &end, 10);
    if (errno != 0 || end == it->second.c_str() || *end != '\0')
        return fallback;
    return static_cast<uint64_t>(value);
}

StatusServer::StatusServer() = default;

StatusServer::~StatusServer()
{
    stop();
}

void
StatusServer::handle(std::string path, StatusHandler handler)
{
    handlers_.emplace_back(std::move(path), std::move(handler));
}

#ifdef SQLPP_NO_STATUS

Status
StatusServer::start(uint16_t)
{
    return Status::unsupported(
        "status server compiled out (SQLPP_STATUS=OFF)");
}

void
StatusServer::stop()
{
}

void
StatusServer::serveLoop()
{
}

void
StatusServer::serveOne(int)
{
}

#else // SQLPP_NO_STATUS

namespace {

const char *
httpStatusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 500: return "Internal Server Error";
    }
    return "OK";
}

/** Parse "GET /path?a=1&b=2 HTTP/1.x"; false on anything else. */
bool
parseRequestLine(const std::string &line, HttpRequest &request,
                 bool &not_get)
{
    not_get = false;
    size_t method_end = line.find(' ');
    if (method_end == std::string::npos)
        return false;
    if (line.substr(0, method_end) != "GET") {
        not_get = true;
        return false;
    }
    size_t target_end = line.find(' ', method_end + 1);
    if (target_end == std::string::npos)
        return false;
    std::string target =
        line.substr(method_end + 1, target_end - method_end - 1);
    if (target.empty() || target[0] != '/')
        return false;
    size_t question = target.find('?');
    request.path = target.substr(0, question);
    if (question != std::string::npos) {
        for (const std::string &pair :
             split(target.substr(question + 1), '&')) {
            if (pair.empty())
                continue;
            size_t eq = pair.find('=');
            if (eq == std::string::npos)
                request.query[pair] = "";
            else
                request.query[pair.substr(0, eq)] =
                    pair.substr(eq + 1);
        }
    }
    return true;
}

void
sendAll(int fd, const std::string &data)
{
    size_t sent = 0;
    while (sent < data.size()) {
        ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                           MSG_NOSIGNAL);
        if (n <= 0)
            return;
        sent += static_cast<size_t>(n);
    }
}

} // namespace

Status
StatusServer::start(uint16_t port)
{
    if (running_.load())
        return Status::runtimeError("status server already running");
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return Status::runtimeError(format("socket() failed: %s",
                                           std::strerror(errno)));
    int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        Status status = Status::runtimeError(
            format("bind(127.0.0.1:%u) failed: %s", port,
                   std::strerror(errno)));
        ::close(fd);
        return status;
    }
    socklen_t addr_len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                      &addr_len) != 0) {
        Status status = Status::runtimeError(
            format("getsockname() failed: %s", std::strerror(errno)));
        ::close(fd);
        return status;
    }
    if (::listen(fd, 16) != 0) {
        Status status = Status::runtimeError(
            format("listen() failed: %s", std::strerror(errno)));
        ::close(fd);
        return status;
    }
    listen_fd_ = fd;
    port_.store(ntohs(addr.sin_port));
    stopping_.store(false);
    running_.store(true);
    thread_ = std::thread([this] { serveLoop(); });
    return Status::ok();
}

void
StatusServer::stop()
{
    if (!running_.exchange(false)) {
        if (thread_.joinable())
            thread_.join();
        return;
    }
    stopping_.store(true);
    // shutdown() wakes the blocking accept(); the fd itself is closed
    // only after the thread joined, so it can never be reused under a
    // racing accept call.
    if (listen_fd_ >= 0)
        (void)::shutdown(listen_fd_, SHUT_RDWR);
    if (thread_.joinable())
        thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void
StatusServer::serveLoop()
{
    for (;;) {
        int client = ::accept(listen_fd_, nullptr, nullptr);
        if (stopping_.load()) {
            if (client >= 0)
                ::close(client);
            return;
        }
        if (client < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            return;
        }
        serveOne(client);
        ::close(client);
    }
}

void
StatusServer::serveOne(int client_fd)
{
    // Bound both the read size and the wait: a stalled client must
    // never wedge the introspection loop.
    timeval timeout;
    timeout.tv_sec = 2;
    timeout.tv_usec = 0;
    (void)::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                       sizeof(timeout));
    std::string raw;
    char buffer[1024];
    while (raw.size() < 8192 &&
           raw.find("\r\n\r\n") == std::string::npos &&
           raw.find("\n\n") == std::string::npos) {
        ssize_t n = ::recv(client_fd, buffer, sizeof(buffer), 0);
        if (n <= 0)
            break;
        raw.append(buffer, static_cast<size_t>(n));
    }
    size_t line_end = raw.find_first_of("\r\n");
    std::string request_line =
        line_end == std::string::npos ? raw : raw.substr(0, line_end);

    HttpRequest request;
    HttpResponse response;
    bool not_get = false;
    if (request_line.empty() ||
        !parseRequestLine(request_line, request, not_get)) {
        response.status = not_get ? 405 : 400;
        response.contentType = "text/plain";
        response.body = not_get ? "only GET is supported\n"
                                : "malformed request\n";
    } else {
        bool matched = false;
        for (const auto &[path, handler] : handlers_) {
            if (path != request.path)
                continue;
            matched = true;
            response = handler(request);
            break;
        }
        if (!matched) {
            response.status = 404;
            response.contentType = "text/plain";
            response.body = "unknown path " + request.path + "\n";
        }
    }

    std::string head = format(
        "HTTP/1.0 %d %s\r\nContent-Type: %s\r\n"
        "Content-Length: %zu\r\nConnection: close\r\n\r\n",
        response.status, httpStatusText(response.status),
        response.contentType.c_str(), response.body.size());
    sendAll(client_fd, head);
    sendAll(client_fd, response.body);
    served_.fetch_add(1, std::memory_order_relaxed);
}

#endif // SQLPP_NO_STATUS

Status
httpGetLocal(uint16_t port, const std::string &target,
             std::string *body, int *http_status)
{
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return Status::runtimeError(format("socket() failed: %s",
                                           std::strerror(errno)));
    timeval timeout;
    timeout.tv_sec = 5;
    timeout.tv_usec = 0;
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                       sizeof(timeout));
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout,
                       sizeof(timeout));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        Status status = Status::runtimeError(
            format("connect(127.0.0.1:%u) failed: %s", port,
                   std::strerror(errno)));
        ::close(fd);
        return status;
    }
    std::string request =
        "GET " + target + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
    size_t sent = 0;
    while (sent < request.size()) {
        ssize_t n = ::send(fd, request.data() + sent,
                           request.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            ::close(fd);
            return Status::runtimeError("send() failed");
        }
        sent += static_cast<size_t>(n);
    }
    std::string raw;
    char buffer[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0)
            break;
        raw.append(buffer, static_cast<size_t>(n));
    }
    ::close(fd);
    if (raw.empty())
        return Status::runtimeError("empty HTTP response");
    size_t header_end = raw.find("\r\n\r\n");
    size_t body_start =
        header_end == std::string::npos ? 0 : header_end + 4;
    if (http_status != nullptr) {
        *http_status = 0;
        size_t space = raw.find(' ');
        if (space != std::string::npos)
            *http_status =
                static_cast<int>(std::strtol(raw.c_str() + space + 1,
                                             nullptr, 10));
    }
    if (body != nullptr)
        *body = raw.substr(body_start);
    return Status::ok();
}

} // namespace sqlpp
