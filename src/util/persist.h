/**
 * @file
 * Flat key/value persistence for learned generator state.
 *
 * The paper notes that the probabilities computed in step (4) of the
 * adaptive generator "can be persisted in a file and loaded in step (1)
 * of future executions". KvStore is that file format: a line-oriented
 * `key=value` store with a format-version header, robust to missing
 * files and unknown keys so learned state survives tool upgrades.
 */
#ifndef SQLPP_UTIL_PERSIST_H
#define SQLPP_UTIL_PERSIST_H

#include <map>
#include <optional>
#include <string>

#include "util/status.h"

namespace sqlpp {

/**
 * In-memory string map with load/save to a versioned text file.
 *
 * Arbitrary keys and values round-trip: '=', '%' and newlines are
 * percent-escaped on disk (format v2; v1 files load unchanged).
 * Numeric accessors are locale-independent — a store saved under a
 * comma-decimal locale reloads identically.
 *
 * save() writes a sibling temp file and rename()s it over the target,
 * so a crash mid-save never leaves a half-written state file.
 */
class KvStore
{
  public:
    /** Set (or overwrite) a key. */
    void put(const std::string &key, const std::string &value);

    /** Convenience numeric setters. */
    void putDouble(const std::string &key, double value);
    void putInt(const std::string &key, int64_t value);

    /** Fetch a key if present. */
    std::optional<std::string> get(const std::string &key) const;
    std::optional<double> getDouble(const std::string &key) const;
    std::optional<int64_t> getInt(const std::string &key) const;

    /** Remove a key; no-op when absent. */
    void erase(const std::string &key);

    /** Number of stored keys. */
    size_t size() const { return entries_.size(); }

    /** All entries, sorted by key (stable file output). */
    const std::map<std::string, std::string> &entries() const
    {
        return entries_;
    }

    /** Write the store to a file, replacing its contents. */
    Status save(const std::string &path) const;

    /** Load a store from a file; fails on missing file or bad header. */
    Status load(const std::string &path);

  private:
    std::map<std::string, std::string> entries_;
};

} // namespace sqlpp

#endif // SQLPP_UTIL_PERSIST_H
