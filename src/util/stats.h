/**
 * @file
 * Streaming statistics used by benches to report means across runs.
 */
#ifndef SQLPP_UTIL_STATS_H
#define SQLPP_UTIL_STATS_H

#include <cstddef>
#include <string>

namespace sqlpp {

/**
 * Welford-style running mean/variance accumulator.
 *
 * The evaluation reports averages across 5 or 10 runs; RunningStat
 * accumulates those without storing the samples.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double sample);

    size_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;
    double stddev() const;

    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** "mean ± stddev (n=count)" for bench tables. */
    std::string summary() const;

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Beta-distribution helpers for the feedback mechanism's posterior.
 *
 * The posterior for a feature's success probability is
 * Beta(y + 1, N - y + 1) under the paper's uniform prior. The feedback
 * mechanism needs the CDF at the user threshold p to decide whether the
 * probability mass is "predominantly" below p.
 */
namespace beta {

/** Regularized incomplete beta function I_x(a, b). */
double regularizedIncomplete(double a, double b, double x);

/** CDF of Beta(a, b) at x. */
double cdf(double a, double b, double x);

/** Mean of Beta(a, b). */
inline double
mean(double a, double b)
{
    return a / (a + b);
}

} // namespace beta

} // namespace sqlpp

#endif // SQLPP_UTIL_STATS_H
