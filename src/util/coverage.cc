#include "util/coverage.h"

#include <cassert>

namespace sqlpp {

namespace {

/**
 * The calling thread's active capture, or nullptr. Thread-local, so
 * hitSlot stays lock-free and captures never observe another thread's
 * hits.
 */
thread_local CoverageCapture *t_active_capture = nullptr;

} // namespace

void
CoverageRegistry::hitSlot(size_t slot_index)
{
    counts_[slot_index].fetch_add(1, std::memory_order_relaxed);
    if (t_active_capture != nullptr)
        t_active_capture->noteHit(slot_index);
}

CoverageCapture::CoverageCapture()
    : seen_(CoverageRegistry::kMaxProbes, 0)
{
    previous_ = t_active_capture;
    t_active_capture = this;
}

CoverageCapture::~CoverageCapture()
{
    t_active_capture = previous_;
}

void
CoverageCapture::noteHit(size_t slot_index)
{
    if (slot_index >= seen_.size() || seen_[slot_index] != 0)
        return;
    seen_[slot_index] = 1;
    ++fresh_;
    ++seen_count_;
}

size_t
CoverageCapture::takeNewProbes()
{
    size_t fresh = fresh_;
    fresh_ = 0;
    return fresh;
}

CoverageRegistry::CoverageRegistry()
    : counts_(new std::atomic<uint64_t>[kMaxProbes])
{
    for (size_t i = 0; i < kMaxProbes; ++i)
        counts_[i].store(0, std::memory_order_relaxed);
}

CoverageRegistry &
CoverageRegistry::instance()
{
    static CoverageRegistry registry;
    return registry;
}

size_t
CoverageRegistry::slot(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = slots_.find(name);
    if (it != slots_.end())
        return it->second;
    size_t index = names_.size();
    assert(index < kMaxProbes && "coverage probe universe overflow");
    slots_.emplace(name, index);
    names_.push_back(name);
    declared_.store(names_.size(), std::memory_order_release);
    return index;
}

size_t
CoverageRegistry::covered() const
{
    size_t total = declared();
    size_t n = 0;
    for (size_t i = 0; i < total; ++i) {
        if (counts_[i].load(std::memory_order_relaxed) > 0)
            ++n;
    }
    return n;
}

double
CoverageRegistry::ratio() const
{
    size_t total = declared();
    if (total == 0)
        return 0.0;
    return static_cast<double>(covered()) / static_cast<double>(total);
}

uint64_t
CoverageRegistry::hits(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = slots_.find(name);
    if (it == slots_.end())
        return 0;
    return counts_[it->second].load(std::memory_order_relaxed);
}

void
CoverageRegistry::reset()
{
    size_t total = declared();
    for (size_t i = 0; i < total; ++i)
        counts_[i].store(0, std::memory_order_relaxed);
}

std::vector<std::string>
CoverageRegistry::uncovered() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    for (size_t i = 0; i < names_.size(); ++i) {
        if (counts_[i].load(std::memory_order_relaxed) == 0)
            out.push_back(names_[i]);
    }
    return out;
}

} // namespace sqlpp
