#include "util/coverage.h"

namespace sqlpp {

CoverageRegistry &
CoverageRegistry::instance()
{
    static CoverageRegistry registry;
    return registry;
}

size_t
CoverageRegistry::slot(const std::string &name)
{
    auto it = slots_.find(name);
    if (it != slots_.end())
        return it->second;
    size_t index = counts_.size();
    slots_.emplace(name, index);
    names_.push_back(name);
    counts_.push_back(0);
    return index;
}

size_t
CoverageRegistry::covered() const
{
    size_t n = 0;
    for (uint64_t count : counts_) {
        if (count > 0)
            ++n;
    }
    return n;
}

double
CoverageRegistry::ratio() const
{
    if (counts_.empty())
        return 0.0;
    return static_cast<double>(covered()) /
           static_cast<double>(declared());
}

uint64_t
CoverageRegistry::hits(const std::string &name) const
{
    auto it = slots_.find(name);
    return it == slots_.end() ? 0 : counts_[it->second];
}

void
CoverageRegistry::reset()
{
    for (uint64_t &count : counts_)
        count = 0;
}

std::vector<std::string>
CoverageRegistry::uncovered() const
{
    std::vector<std::string> out;
    for (size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            out.push_back(names_[i]);
    }
    return out;
}

} // namespace sqlpp
