#include "util/persist.h"

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define SQLPP_HAVE_FSYNC 1
#endif

#include "util/strutil.h"

namespace sqlpp {

namespace {
/*
 * v2 percent-escapes '=', '%', '\r' and '\n' in keys and values, so any
 * string round-trips (feature names like "OP_=" broke the v1 format).
 * v1 files are still accepted on load, unescaped.
 */
constexpr const char *kHeader = "sqlancerpp-kv-v2";
constexpr const char *kHeaderV1 = "sqlancerpp-kv-v1";

std::string
escapeField(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        switch (c) {
          case '%': out += "%25"; break;
          case '=': out += "%3D"; break;
          case '\n': out += "%0A"; break;
          case '\r': out += "%0D"; break;
          default: out += c;
        }
    }
    return out;
}

int
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

std::string
unescapeField(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
        if (raw[i] == '%' && i + 2 < raw.size()) {
            int hi = hexDigit(raw[i + 1]);
            int lo = hexDigit(raw[i + 2]);
            if (hi >= 0 && lo >= 0) {
                out += static_cast<char>(hi * 16 + lo);
                i += 2;
                continue;
            }
        }
        out += raw[i];
    }
    return out;
}
} // namespace

void
KvStore::put(const std::string &key, const std::string &value)
{
    entries_[key] = value;
}

void
KvStore::putDouble(const std::string &key, double value)
{
    /* std::to_chars is locale-independent (always '.') and emits the
     * shortest representation that round-trips exactly. */
    char buf[64];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
    if (ec != std::errc()) {
        put(key, "0");
        return;
    }
    put(key, std::string(buf, ptr));
}

void
KvStore::putInt(const std::string &key, int64_t value)
{
    put(key, format("%lld", static_cast<long long>(value)));
}

std::optional<std::string>
KvStore::get(const std::string &key) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return std::nullopt;
    return it->second;
}

std::optional<double>
KvStore::getDouble(const std::string &key) const
{
    auto raw = get(key);
    if (!raw || raw->empty())
        return std::nullopt;
    double value = 0.0;
    const char *first = raw->data();
    const char *last = first + raw->size();
    auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last)
        return std::nullopt;
    return value;
}

std::optional<int64_t>
KvStore::getInt(const std::string &key) const
{
    auto raw = get(key);
    if (!raw || raw->empty())
        return std::nullopt;
    int64_t value = 0;
    const char *first = raw->data();
    const char *last = first + raw->size();
    auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last)
        return std::nullopt;
    return value;
}

void
KvStore::erase(const std::string &key)
{
    entries_.erase(key);
}

Status
KvStore::save(const std::string &path) const
{
    /* Write-temp-then-rename: the target file is replaced atomically,
     * so a crash mid-save leaves either the old state or the new one,
     * never a truncated half-write. */
    const std::string tmp_path = path + ".tmp";
    std::FILE *out = std::fopen(tmp_path.c_str(), "wb");
    if (out == nullptr)
        return Status::runtimeError("cannot open for write: " + tmp_path);

    std::string body = kHeader;
    body += '\n';
    for (const auto &[key, value] : entries_) {
        body += escapeField(key);
        body += '=';
        body += escapeField(value);
        body += '\n';
    }

    bool ok = std::fwrite(body.data(), 1, body.size(), out) == body.size();
    ok = (std::fflush(out) == 0) && ok;
#ifdef SQLPP_HAVE_FSYNC
    ok = (::fsync(::fileno(out)) == 0) && ok;
#endif
    ok = (std::fclose(out) == 0) && ok;
    if (!ok) {
        std::remove(tmp_path.c_str());
        return Status::runtimeError("write failed: " + tmp_path);
    }
    if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
        std::remove(tmp_path.c_str());
        return Status::runtimeError("rename failed: " + tmp_path + " -> " +
                                    path + " (" + std::strerror(errno) +
                                    ")");
    }
    return Status::ok();
}

Status
KvStore::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Status::runtimeError("cannot open for read: " + path);
    std::string line;
    if (!std::getline(in, line))
        return Status::runtimeError("bad header in: " + path);
    bool escaped;
    if (line == kHeader)
        escaped = true;
    else if (line == kHeaderV1)
        escaped = false;
    else
        return Status::runtimeError("bad header in: " + path);
    entries_.clear();
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        size_t eq = line.find('=');
        if (eq == std::string::npos)
            return Status::runtimeError("bad line in " + path + ": " + line);
        std::string key = line.substr(0, eq);
        std::string value = line.substr(eq + 1);
        if (escaped) {
            key = unescapeField(key);
            value = unescapeField(value);
        }
        entries_[key] = value;
    }
    return Status::ok();
}

} // namespace sqlpp
