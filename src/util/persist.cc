#include "util/persist.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/strutil.h"

namespace sqlpp {

namespace {
constexpr const char *kHeader = "sqlancerpp-kv-v1";
} // namespace

void
KvStore::put(const std::string &key, const std::string &value)
{
    entries_[key] = value;
}

void
KvStore::putDouble(const std::string &key, double value)
{
    put(key, format("%.17g", value));
}

void
KvStore::putInt(const std::string &key, int64_t value)
{
    put(key, format("%lld", static_cast<long long>(value)));
}

std::optional<std::string>
KvStore::get(const std::string &key) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return std::nullopt;
    return it->second;
}

std::optional<double>
KvStore::getDouble(const std::string &key) const
{
    auto raw = get(key);
    if (!raw)
        return std::nullopt;
    try {
        size_t pos = 0;
        double value = std::stod(*raw, &pos);
        if (pos != raw->size())
            return std::nullopt;
        return value;
    } catch (...) {
        return std::nullopt;
    }
}

std::optional<int64_t>
KvStore::getInt(const std::string &key) const
{
    auto raw = get(key);
    if (!raw)
        return std::nullopt;
    try {
        size_t pos = 0;
        long long value = std::stoll(*raw, &pos);
        if (pos != raw->size())
            return std::nullopt;
        return static_cast<int64_t>(value);
    } catch (...) {
        return std::nullopt;
    }
}

void
KvStore::erase(const std::string &key)
{
    entries_.erase(key);
}

Status
KvStore::save(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return Status::runtimeError("cannot open for write: " + path);
    out << kHeader << "\n";
    for (const auto &[key, value] : entries_)
        out << key << "=" << value << "\n";
    out.flush();
    if (!out)
        return Status::runtimeError("write failed: " + path);
    return Status::ok();
}

Status
KvStore::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Status::runtimeError("cannot open for read: " + path);
    std::string line;
    if (!std::getline(in, line) || line != kHeader)
        return Status::runtimeError("bad header in: " + path);
    entries_.clear();
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        size_t eq = line.find('=');
        if (eq == std::string::npos)
            return Status::runtimeError("bad line in " + path + ": " + line);
        entries_[line.substr(0, eq)] = line.substr(eq + 1);
    }
    return Status::ok();
}

} // namespace sqlpp
