/**
 * @file
 * Small string helpers shared across parser, printer, and reporting.
 */
#ifndef SQLPP_UTIL_STRUTIL_H
#define SQLPP_UTIL_STRUTIL_H

#include <string>
#include <string_view>
#include <vector>

namespace sqlpp {

/** Uppercase ASCII copy (SQL keywords are case-insensitive). */
std::string toUpper(std::string_view s);

/** Lowercase ASCII copy. */
std::string toLower(std::string_view s);

/** Case-insensitive ASCII equality. */
bool equalsIgnoreCase(std::string_view a, std::string_view b);

/** Join items with a separator. */
std::string join(const std::vector<std::string> &items,
                 std::string_view separator);

/** Split on a single character; keeps empty fields. */
std::vector<std::string> split(std::string_view s, char separator);

/** Strip leading and trailing ASCII whitespace. */
std::string_view trim(std::string_view s);

/** True if `s` starts with `prefix` (case-sensitive). */
bool startsWith(std::string_view s, std::string_view prefix);

/**
 * Quote a string as a SQL literal: wraps in single quotes and doubles
 * embedded quotes ('it''s').
 */
std::string sqlQuote(std::string_view s);

/** printf-style formatting into a std::string. */
std::string
format(const char *fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 1, 2)))
#endif
    ;

/** FNV-1a 64-bit hash, used for plan fingerprints and dedup keys. */
uint64_t fnv1a(std::string_view s, uint64_t seed = 0xcbf29ce484222325ULL);

} // namespace sqlpp

#endif // SQLPP_UTIL_STRUTIL_H
