#include "util/thread_pool.h"

#include <thread>
#include <vector>

namespace sqlpp {

void
runOnWorkers(size_t workers, const std::function<void(size_t)> &body)
{
    if (workers <= 1) {
        body(0);
        return;
    }
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t index = 0; index < workers; ++index)
        threads.emplace_back([&body, index] { body(index); });
    for (std::thread &thread : threads)
        thread.join();
}

} // namespace sqlpp
