#include "util/trace.h"

#include <algorithm>

#include "util/strutil.h"

namespace sqlpp {

const char *
traceEventTypeName(TraceEventType type)
{
    switch (type) {
      case TraceEventType::StatementExecuted:
        return "statement_executed";
      case TraceEventType::ErrorClass: return "error_class";
      case TraceEventType::OracleCheck: return "oracle_check";
      case TraceEventType::FeatureSuppressed:
        return "feature_suppressed";
      case TraceEventType::PlanDiscovered: return "plan_discovered";
      case TraceEventType::BudgetExhausted: return "budget_exhausted";
      case TraceEventType::BugFound: return "bug_found";
      case TraceEventType::ReduceDone: return "reduce_done";
      case TraceEventType::CurveSample: return "curve_sample";
      case TraceEventType::CheckpointWritten:
        return "checkpoint_written";
      case TraceEventType::CheckpointRestored:
        return "checkpoint_restored";
      case TraceEventType::ShardStarted: return "shard_started";
      case TraceEventType::ShardAbandoned: return "shard_abandoned";
      case TraceEventType::ExecModeSelected:
        return "exec_mode_selected";
    }
    return "unknown";
}

namespace {

/** The thread's current lane (0 = unlabeled process lane). */
thread_local size_t tls_trace_lane = 0;

/** JSON string escaping (details and labels are plain ASCII). */
std::string
traceJsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out.push_back(c);
        }
    }
    return out;
}

} // namespace

TraceRecorder::TraceRecorder()
{
    for (auto &lane : lanes_)
        lane.store(nullptr, std::memory_order_relaxed);
    // Lane 0 always exists so unscoped recording never branches on
    // creation.
    (void)laneForShard(static_cast<size_t>(-1), "");
}

TraceRecorder &
TraceRecorder::instance()
{
    static TraceRecorder recorder;
    return recorder;
}

size_t
TraceRecorder::laneForShard(size_t shard_index, const std::string &label)
{
    size_t lane_index = laneForShardIndex(shard_index);
    // Cold path (once per shard scope); the mutex also orders label
    // writes against the exporter, which reads labels under it.
    std::lock_guard<std::mutex> lock(mutex_);
    if (Lane *existing =
            lanes_[lane_index].load(std::memory_order_relaxed);
        existing != nullptr) {
        // A later in-process run may bind the same lane under a new
        // shard layout; the label follows the latest binding.
        if (existing->label != label)
            existing->label = label;
        return lane_index;
    }
    auto lane = std::make_unique<Lane>();
    lane->label = label;
    lane->ring = std::make_unique<std::atomic<uint64_t>[]>(
        kRingCapacity * kEventWords);
    lane->versions =
        std::make_unique<std::atomic<uint64_t>[]>(kRingCapacity);
    lanes_[lane_index].store(lane.get(), std::memory_order_release);
    lane_storage_.push_back(std::move(lane));
    return lane_index;
}

uint64_t
TraceRecorder::bumpTick()
{
    Lane *lane_ptr = lane(tls_trace_lane);
    return lane_ptr->tick.fetch_add(1, std::memory_order_relaxed) + 1;
}

uint64_t
TraceRecorder::currentTick() const
{
    const Lane *lane_ptr = lane(tls_trace_lane);
    return lane_ptr->tick.load(std::memory_order_relaxed);
}

void
TraceRecorder::record(TraceEventType type, std::string_view detail,
                      uint64_t a, uint64_t b)
{
    Lane *lane_ptr = lane(tls_trace_lane);
    // Reserve a slot. A shard runs on one thread at a time, so the
    // reservation doubles as full ownership of the slot; concurrent
    // writers only ever share lane 0, where a wrapped race merely
    // overwrites one flight-recorder entry.
    uint64_t sequence =
        lane_ptr->recorded.fetch_add(1, std::memory_order_acq_rel);
    size_t slot = static_cast<size_t>(sequence % kRingCapacity);
    TraceEvent event;
    event.tick = lane_ptr->tick.load(std::memory_order_relaxed);
    event.type = type;
    event.a = a;
    event.b = b;
    size_t copy =
        std::min(detail.size(), TraceEvent::kDetailCapacity - 1);
    std::memcpy(event.detail, detail.data(), copy);
    event.detail[copy] = '\0';
    // Seqlock publish (same idiom as ProgressBoard strings): bump the
    // slot version to odd, store the packed words relaxed, bump back
    // to even. Live readers (the status server's /trace handler) skip
    // the slot while the version is odd or changed underneath them.
    uint64_t words[kEventWords];
    std::memcpy(words, &event, sizeof(event));
    std::atomic<uint64_t> &version = lane_ptr->versions[slot];
    uint64_t v = version.load(std::memory_order_relaxed);
    version.store(v + 1, std::memory_order_release);
    for (size_t w = 0; w < kEventWords; ++w)
        lane_ptr->ring[slot * kEventWords + w].store(
            words[w], std::memory_order_relaxed);
    version.store(v + 2, std::memory_order_release);
}

bool
TraceRecorder::readSlot(const Lane &lane, size_t slot, TraceEvent *out)
{
    for (int attempt = 0; attempt < 64; ++attempt) {
        uint64_t before =
            lane.versions[slot].load(std::memory_order_acquire);
        if (before & 1)
            continue;
        uint64_t words[kEventWords];
        for (size_t w = 0; w < kEventWords; ++w)
            words[w] = lane.ring[slot * kEventWords + w].load(
                std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        uint64_t after =
            lane.versions[slot].load(std::memory_order_relaxed);
        if (before == after) {
            std::memcpy(out, words, sizeof(*out));
            return true;
        }
    }
    return false;
}

std::vector<TraceEvent>
TraceRecorder::laneEvents(size_t lane_index) const
{
    std::vector<TraceEvent> out;
    if (lane_index > kMaxShards)
        return out;
    const Lane *lane_ptr = lane(lane_index);
    if (lane_ptr == nullptr)
        return out;
    uint64_t recorded = lane_ptr->recorded.load(std::memory_order_acquire);
    uint64_t retained = std::min<uint64_t>(recorded, kRingCapacity);
    out.reserve(static_cast<size_t>(retained));
    for (uint64_t i = recorded - retained; i < recorded; ++i) {
        TraceEvent event;
        // A slot that stays torn across all retries is one the
        // campaign is rewriting right now; only live status-server
        // reads can see that, and they simply skip it. Post-run
        // exports have no concurrent writers, so every slot reads
        // clean and the deterministic byte-identity contract holds.
        if (readSlot(*lane_ptr, static_cast<size_t>(i % kRingCapacity),
                     &event))
            out.push_back(event);
    }
    return out;
}

std::vector<TraceEvent>
TraceRecorder::recentShardEvents(size_t shard_index,
                                 size_t max_events) const
{
    std::vector<TraceEvent> events =
        laneEvents(laneForShardIndex(shard_index));
    if (events.size() > max_events)
        events.erase(events.begin(),
                     events.end() - static_cast<long>(max_events));
    return events;
}

uint64_t
TraceRecorder::laneRecorded(size_t lane_index) const
{
    if (lane_index > kMaxShards)
        return 0;
    const Lane *lane_ptr = lane(lane_index);
    return lane_ptr == nullptr
               ? 0
               : lane_ptr->recorded.load(std::memory_order_acquire);
}

std::string
TraceRecorder::laneLabel(size_t lane_index) const
{
    if (lane_index > kMaxShards)
        return "";
    std::lock_guard<std::mutex> lock(mutex_);
    const Lane *lane_ptr = lane(lane_index);
    return lane_ptr == nullptr ? "" : lane_ptr->label;
}

void
TraceRecorder::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t index = 0; index <= kMaxShards; ++index) {
        Lane *lane_ptr = lane(index);
        if (lane_ptr == nullptr)
            continue;
        lane_ptr->tick.store(0, std::memory_order_relaxed);
        lane_ptr->recorded.store(0, std::memory_order_relaxed);
    }
}

TraceShardScope::TraceShardScope(size_t shard_index,
                                 const std::string &label)
    : previous_lane_(tls_trace_lane)
{
    tls_trace_lane =
        TraceRecorder::instance().laneForShard(shard_index, label);
}

TraceShardScope::~TraceShardScope()
{
    tls_trace_lane = previous_lane_;
}

std::string
traceEventJson(size_t lane_index, const std::string &label,
               const TraceEvent &event)
{
    return format(
        "{\"lane\": %zu, \"shard\": \"%s\", \"tick\": %llu, "
        "\"type\": \"%s\", \"detail\": \"%s\", \"a\": %llu, "
        "\"b\": %llu}",
        lane_index, traceJsonEscape(label).c_str(),
        (unsigned long long)event.tick, traceEventTypeName(event.type),
        traceJsonEscape(event.detail).c_str(),
        (unsigned long long)event.a, (unsigned long long)event.b);
}

std::string
exportTraceJsonl()
{
    TraceRecorder &recorder = TraceRecorder::instance();
    // Snapshot lanes under the mutex so labels are consistent; ring
    // contents are read via the same acquire protocol laneEvents uses.
    size_t lanes_used = 0;
    uint64_t total_retained = 0;
    uint64_t total_dropped = 0;
    std::vector<std::pair<std::string, std::vector<TraceEvent>>> lanes;
    lanes.resize(TraceRecorder::kMaxShards + 1);
    for (size_t index = 0; index <= TraceRecorder::kMaxShards;
         ++index) {
        uint64_t recorded = recorder.laneRecorded(index);
        if (recorded == 0)
            continue;
        lanes[index].first = recorder.laneLabel(index);
        lanes[index].second = recorder.laneEvents(index);
        ++lanes_used;
        total_retained += lanes[index].second.size();
        total_dropped += recorded - lanes[index].second.size();
    }
    std::string out = format(
        "{\"schema\": \"sqlpp.trace.v1\", \"ring\": %zu, "
        "\"lanes\": %zu, \"events\": %llu, \"dropped\": %llu}\n",
        TraceRecorder::kRingCapacity, lanes_used,
        (unsigned long long)total_retained,
        (unsigned long long)total_dropped);
    for (size_t index = 0; index <= TraceRecorder::kMaxShards;
         ++index) {
        for (const TraceEvent &event : lanes[index].second) {
            out += traceEventJson(index, lanes[index].first, event);
            out += "\n";
        }
    }
    return out;
}

std::string
exportTraceDeltaJsonl(uint64_t since_tick)
{
    TraceRecorder &recorder = TraceRecorder::instance();
    size_t lanes_used = 0;
    uint64_t max_tick = 0;
    uint64_t total_events = 0;
    std::vector<std::pair<std::string, std::vector<TraceEvent>>> lanes;
    lanes.resize(TraceRecorder::kMaxShards + 1);
    for (size_t index = 0; index <= TraceRecorder::kMaxShards;
         ++index) {
        if (recorder.laneRecorded(index) == 0)
            continue;
        std::vector<TraceEvent> events = recorder.laneEvents(index);
        std::vector<TraceEvent> fresh;
        for (const TraceEvent &event : events) {
            max_tick = std::max(max_tick, event.tick);
            if (event.tick > since_tick)
                fresh.push_back(event);
        }
        if (fresh.empty())
            continue;
        lanes[index].first = recorder.laneLabel(index);
        lanes[index].second = std::move(fresh);
        ++lanes_used;
        total_events += lanes[index].second.size();
    }
    std::string out = format(
        "{\"schema\": \"sqlpp.trace.delta.v1\", \"since\": %llu, "
        "\"tick\": %llu, \"lanes\": %zu, \"events\": %llu}\n",
        (unsigned long long)since_tick, (unsigned long long)max_tick,
        lanes_used, (unsigned long long)total_events);
    for (size_t index = 0; index <= TraceRecorder::kMaxShards;
         ++index) {
        for (const TraceEvent &event : lanes[index].second) {
            out += traceEventJson(index, lanes[index].first, event);
            out += "\n";
        }
    }
    return out;
}

uint64_t
traceDroppedTotal()
{
    TraceRecorder &recorder = TraceRecorder::instance();
    uint64_t dropped = 0;
    for (size_t index = 0; index <= TraceRecorder::kMaxShards;
         ++index) {
        uint64_t recorded = recorder.laneRecorded(index);
        uint64_t retained =
            std::min<uint64_t>(recorded, TraceRecorder::kRingCapacity);
        dropped += recorded - retained;
    }
    return dropped;
}

std::string
traceSchemaDescription()
{
    std::string out = "sqlpp.trace.v1\n";
    out += "header: schema=string ring=int lanes=int events=int "
           "dropped=int\n";
    out += "event: lane=int shard=string tick=int type=string "
           "detail=string a=int b=int\n";
    out += "types:\n";
    for (size_t index = 0; index < kTraceEventTypes; ++index) {
        out += "  ";
        out += traceEventTypeName(static_cast<TraceEventType>(index));
        out += "\n";
    }
    return out;
}

} // namespace sqlpp
