/**
 * @file
 * Lightweight error propagation for the engine and platform.
 *
 * A real DBMS signals statement failure with an error code and message;
 * the adaptive generator learns from exactly that signal. Status carries
 * the same information across module boundaries without exceptions, which
 * keeps failure handling explicit on the generation hot path.
 */
#ifndef SQLPP_UTIL_STATUS_H
#define SQLPP_UTIL_STATUS_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace sqlpp {

/** Broad error classes mirroring how a DBMS rejects a statement. */
enum class ErrorCode
{
    Ok,
    /** The statement could not be parsed (unknown keyword, bad syntax). */
    SyntaxError,
    /** Parsed but invalid: unknown table/column/function, type mismatch. */
    SemanticError,
    /** Valid statement whose execution failed (constraint, overflow). */
    RuntimeError,
    /** Feature recognised but not available in this dialect. */
    Unsupported,
    /** Internal invariant violation in the engine itself. */
    Internal,
    /**
     * The statement exceeded its execution budget (steps/rows). A
     * resource limit, not a wrong answer: oracles must skip, never
     * compare, results cut short by this code.
     */
    BudgetExhausted,
};

/** Human-readable name of an ErrorCode. */
const char *errorCodeName(ErrorCode code);

/**
 * Result of an operation that can fail with a coded message.
 *
 * Cheap to copy in the Ok case (empty message); failure paths are cold
 * relative to generation but common relative to typical C++ error rates,
 * so no allocation-free trickery is attempted.
 */
class Status
{
  public:
    Status() : code_(ErrorCode::Ok) {}
    Status(ErrorCode code, std::string message)
        : code_(code), message_(std::move(message)) {}

    static Status ok() { return Status(); }

    static Status
    syntaxError(std::string msg)
    {
        return Status(ErrorCode::SyntaxError, std::move(msg));
    }

    static Status
    semanticError(std::string msg)
    {
        return Status(ErrorCode::SemanticError, std::move(msg));
    }

    static Status
    runtimeError(std::string msg)
    {
        return Status(ErrorCode::RuntimeError, std::move(msg));
    }

    static Status
    unsupported(std::string msg)
    {
        return Status(ErrorCode::Unsupported, std::move(msg));
    }

    static Status
    internal(std::string msg)
    {
        return Status(ErrorCode::Internal, std::move(msg));
    }

    static Status
    budgetExhausted(std::string msg)
    {
        return Status(ErrorCode::BudgetExhausted, std::move(msg));
    }

    bool isOk() const { return code_ == ErrorCode::Ok; }
    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "OK" or "<code>: <message>", for logs and bug reports. */
    std::string toString() const;

  private:
    ErrorCode code_;
    std::string message_;
};

/**
 * Either a value or a failure Status.
 *
 * @tparam T Payload type; must be movable.
 */
template <typename T>
class StatusOr
{
  public:
    /* implicit */ StatusOr(T value)
        : status_(Status::ok()), value_(std::move(value)) {}
    /* implicit */ StatusOr(Status status) : status_(std::move(status))
    {
        assert(!status_.isOk() && "StatusOr from Ok status needs a value");
    }

    bool isOk() const { return status_.isOk(); }
    const Status &status() const { return status_; }

    const T &
    value() const
    {
        assert(isOk());
        return *value_;
    }

    T &
    value()
    {
        assert(isOk());
        return *value_;
    }

    T
    takeValue()
    {
        assert(isOk());
        return std::move(*value_);
    }

  private:
    Status status_;
    std::optional<T> value_;
};

} // namespace sqlpp

#endif // SQLPP_UTIL_STATUS_H
