/**
 * @file
 * Join-based worker pool for fan-out/fan-in parallelism.
 *
 * The scheduler's concurrency model is deliberately minimal: a fixed
 * set of worker threads drains an atomic index queue, each worker owns
 * all of its mutable state, and results land in pre-sized slots that
 * only one worker ever writes. No mutexes, no condition variables —
 * the only synchronization points are the atomic queue head and the
 * final join, which keeps the model trivially ThreadSanitizer-clean.
 */
#ifndef SQLPP_UTIL_THREAD_POOL_H
#define SQLPP_UTIL_THREAD_POOL_H

#include <atomic>
#include <cstddef>
#include <functional>

namespace sqlpp {

/**
 * Hand out the indices [0, size) at most once each, in claim order.
 * pop() returns size when the queue is drained. Safe to call from any
 * number of threads concurrently.
 */
class IndexQueue
{
  public:
    explicit IndexQueue(size_t size) : size_(size) {}

    /** Claim the next index; returns size() once exhausted. */
    size_t
    pop()
    {
        size_t index = next_.fetch_add(1, std::memory_order_relaxed);
        return index < size_ ? index : size_;
    }

    size_t size() const { return size_; }

  private:
    std::atomic<size_t> next_{0};
    size_t size_;
};

/**
 * Run body(worker_index) on `workers` threads and join them all before
 * returning. With workers <= 1 the body runs inline on the calling
 * thread (index 0) — no thread is spawned, which keeps single-worker
 * runs easy to step through in a debugger.
 */
void runOnWorkers(size_t workers,
                  const std::function<void(size_t)> &body);

} // namespace sqlpp

#endif // SQLPP_UTIL_THREAD_POOL_H
