/**
 * @file
 * Live campaign status service: a minimal localhost HTTP server.
 *
 * Long campaigns (the paper runs 24-hour fleets against 17 DBMSs) are
 * a black box between launch and the post-mortem metrics/trace export.
 * StatusServer closes that gap: a running campaign registers handlers
 * and the server answers GET requests over a 127.0.0.1 TCP socket —
 * `/status` (sqlpp.status.v1 snapshots), `/metrics` (Prometheus text
 * exposition), `/trace?since=<tick>` (incremental NDJSON drain).
 *
 * The server is deliberately tiny: HTTP/1.0, GET only, one request per
 * connection, sequential accept loop on one background thread. It is
 * an introspection side door for a human or a scraper on the same
 * machine, never a production web server. Handlers run on the server
 * thread and must be read-only with respect to campaign state — the
 * whole point is that polling /status perturbs nothing (the
 * determinism test pins bit-identical merged stats, checkpoints, and
 * dossiers with and without a polling storm).
 *
 * Compile-out: building with -DSQLPP_STATUS=OFF (the SQLPP_NO_STATUS
 * macro) stubs the server — start() reports Unsupported and serves
 * nothing — while the class and the client helper stay available so
 * call sites compile unchanged.
 */
#ifndef SQLPP_UTIL_STATUS_SERVER_H
#define SQLPP_UTIL_STATUS_SERVER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/status.h"

namespace sqlpp {

/** One parsed GET request. */
struct HttpRequest
{
    /** Path without the query string ("/trace"). */
    std::string path;
    /** Decoded query parameters ("since" -> "1024"). */
    std::map<std::string, std::string> query;

    /** Query parameter as uint64, or `fallback` when absent/garbled. */
    uint64_t queryU64(const std::string &key, uint64_t fallback) const;
};

/** What a handler sends back. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;
};

using StatusHandler = std::function<HttpResponse(const HttpRequest &)>;

/** Localhost HTTP server for live campaign introspection. */
class StatusServer
{
  public:
    StatusServer();
    ~StatusServer();

    StatusServer(const StatusServer &) = delete;
    StatusServer &operator=(const StatusServer &) = delete;

    /**
     * Register a handler for an exact path ("/status"). Must be called
     * before start(); the handler runs on the server thread.
     */
    void handle(std::string path, StatusHandler handler);

    /**
     * Bind 127.0.0.1:`port` (0 = kernel-assigned ephemeral port, read
     * back via port()) and start serving on a background thread.
     * Fails with Unsupported under SQLPP_NO_STATUS and with
     * RuntimeError when the socket cannot be bound.
     */
    Status start(uint16_t port);

    /** Stop serving and join the server thread. Idempotent. */
    void stop();

    /** The bound port (0 before a successful start()). */
    uint16_t port() const { return port_.load(); }

    bool running() const { return running_.load(); }

    /** Requests answered so far (any status code). */
    uint64_t requestsServed() const { return served_.load(); }

  private:
    void serveLoop();
    void serveOne(int client_fd);

    std::vector<std::pair<std::string, StatusHandler>> handlers_;
    std::thread thread_;
    std::atomic<uint16_t> port_{0};
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<uint64_t> served_{0};
    int listen_fd_ = -1;
};

/**
 * Minimal blocking HTTP GET against 127.0.0.1:`port` (the test/smoke
 * client side of StatusServer; compiled regardless of SQLPP_STATUS).
 * `target` is the request target ("/status" or "/trace?since=4").
 * On success fills `body` (and `http_status` when non-null).
 */
Status httpGetLocal(uint16_t port, const std::string &target,
                    std::string *body, int *http_status = nullptr);

} // namespace sqlpp

#endif // SQLPP_UTIL_STATUS_SERVER_H
