#include "util/stats.h"

#include <cmath>

#include "util/strutil.h"

namespace sqlpp {

void
RunningStat::add(double sample)
{
    if (count_ == 0) {
        min_ = max_ = sample;
    } else {
        if (sample < min_)
            min_ = sample;
        if (sample > max_)
            max_ = sample;
    }
    ++count_;
    double delta = sample - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (sample - mean_);
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

std::string
RunningStat::summary() const
{
    return format("%.2f ± %.2f (n=%zu)", mean(), stddev(), count_);
}

namespace beta {

namespace {

/**
 * Continued-fraction evaluation for the regularized incomplete beta
 * function (Lentz's algorithm), following Numerical Recipes' betacf.
 */
double
continuedFraction(double a, double b, double x)
{
    constexpr int max_iterations = 300;
    constexpr double epsilon = 3.0e-12;
    constexpr double tiny = 1.0e-300;

    double qab = a + b;
    double qap = a + 1.0;
    double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < tiny)
        d = tiny;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= max_iterations; ++m) {
        int m2 = 2 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = 1.0 + aa / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < epsilon)
            break;
    }
    return h;
}

// Thread-safe ln(Gamma(x)): glibc's lgamma() writes the global
// `signgam`, which races when campaign workers evaluate posteriors
// concurrently. lgamma_r takes the sign as an out-parameter instead;
// all our arguments are positive so the sign is discarded.
double
logGamma(double x)
{
#if defined(__GLIBC__) || defined(__USE_GNU)
    int sign = 0;
    return ::lgamma_r(x, &sign);
#else
    return std::lgamma(x);
#endif
}

} // namespace

double
regularizedIncomplete(double a, double b, double x)
{
    if (x <= 0.0)
        return 0.0;
    if (x >= 1.0)
        return 1.0;
    double ln_beta = logGamma(a + b) - logGamma(a) - logGamma(b);
    double front =
        std::exp(ln_beta + a * std::log(x) + b * std::log(1.0 - x));
    // Use the symmetry relation to keep the continued fraction convergent.
    if (x < (a + 1.0) / (a + b + 2.0))
        return front * continuedFraction(a, b, x) / a;
    return 1.0 - front * continuedFraction(b, a, 1.0 - x) / b;
}

double
cdf(double a, double b, double x)
{
    return regularizedIncomplete(a, b, x);
}

} // namespace beta

} // namespace sqlpp
