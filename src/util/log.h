/**
 * @file
 * Minimal leveled logger for campaign progress and debugging.
 */
#ifndef SQLPP_UTIL_LOG_H
#define SQLPP_UTIL_LOG_H

#include <string>

namespace sqlpp {

enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    /** Disables all output. */
    Silent = 4,
};

/** Set the process-wide minimum level that is emitted. */
void setLogLevel(LogLevel level);

/** Current process-wide minimum level. */
LogLevel logLevel();

/** Emit a message at the given level to stderr if enabled. */
void logMessage(LogLevel level, const std::string &message);

inline void logDebug(const std::string &m) { logMessage(LogLevel::Debug, m); }
inline void logInfo(const std::string &m) { logMessage(LogLevel::Info, m); }
inline void logWarn(const std::string &m) { logMessage(LogLevel::Warn, m); }
inline void logError(const std::string &m) { logMessage(LogLevel::Error, m); }

} // namespace sqlpp

#endif // SQLPP_UTIL_LOG_H
