/**
 * @file
 * Minimal leveled logger for campaign progress and debugging.
 *
 * Debug/Info lines are *buffered* (bounded, flushed in one write once
 * the buffer fills) so a chatty campaign does not pay a stderr flush
 * per progress line; Warn/Error flush the buffer and themselves
 * immediately. The cost of buffering is that lines written right
 * before an abnormal exit can be lost — call flushLogs() at
 * abandonment/teardown points (the campaign watchdog does).
 */
#ifndef SQLPP_UTIL_LOG_H
#define SQLPP_UTIL_LOG_H

#include <functional>
#include <optional>
#include <string>

namespace sqlpp {

enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    /** Disables all output. */
    Silent = 4,
};

/** Set the process-wide minimum level that is emitted. */
void setLogLevel(LogLevel level);

/** Current process-wide minimum level. */
LogLevel logLevel();

/**
 * Parse a CLI level name: quiet|silent, error, warn, info, debug
 * (case-insensitive). nullopt for anything else.
 */
std::optional<LogLevel> logLevelFromName(const std::string &name);

/** Emit a message at the given level to stderr if enabled. */
void logMessage(LogLevel level, const std::string &message);

/**
 * Write any buffered Debug/Info lines to the sink now. Call at points
 * where buffered lines would otherwise be lost (shard abandonment,
 * process teardown). Safe to call concurrently with logMessage.
 */
void flushLogs();

/** Bytes currently sitting in the line buffer (tests/monitoring). */
size_t pendingLogBytes();

/**
 * Redirect emitted lines into a callback instead of stderr (tests).
 * Pass nullptr to restore stderr. Takes effect for subsequent writes.
 */
void setLogSink(std::function<void(const std::string &)> sink);

inline void logDebug(const std::string &m) { logMessage(LogLevel::Debug, m); }
inline void logInfo(const std::string &m) { logMessage(LogLevel::Info, m); }
inline void logWarn(const std::string &m) { logMessage(LogLevel::Warn, m); }
inline void logError(const std::string &m) { logMessage(LogLevel::Error, m); }

} // namespace sqlpp

#endif // SQLPP_UTIL_LOG_H
