/**
 * @file
 * Deterministic pseudo-random number generation for test-case generation.
 *
 * All randomness in the platform flows through Rng so that every campaign,
 * generator run, and benchmark is reproducible from a single 64-bit seed.
 * The implementation is PCG32 (O'Neill, 2014): small state, good statistical
 * quality, and cheap enough to sit on the hot path of statement generation.
 */
#ifndef SQLPP_UTIL_RNG_H
#define SQLPP_UTIL_RNG_H

#include <cstdint>
#include <string>
#include <vector>

namespace sqlpp {

/**
 * PCG32-based random number generator.
 *
 * Not thread-safe; each worker of a campaign owns its own Rng stream,
 * seeded from the campaign seed combined with the worker's shard index
 * (seed ⊕ index — see core/scheduler.h), so streams never interleave
 * and every parallel run replays from the one campaign seed.
 */
class Rng
{
  public:
    /** Construct with an explicit seed; equal seeds yield equal streams. */
    explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

    /** Reseed in place, restarting the stream. */
    void reseed(uint64_t seed);

    /** Next raw 32-bit value. */
    uint32_t next32();

    /** Next raw 64-bit value. */
    uint64_t next64();

    /** Uniform integer in [0, bound); bound must be > 0. */
    uint64_t below(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    int64_t range(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

    /** Fair coin flip. */
    bool coin();

    /** Pick a uniformly random element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &items)
    {
        return items[below(items.size())];
    }

    /**
     * Pick an index according to a weight vector.
     *
     * Zero-weight entries are never selected. If all weights are zero,
     * returns a uniformly random index as a fail-safe so generation can
     * always make progress.
     */
    size_t pickWeighted(const std::vector<double> &weights);

    /** Random identifier-safe lowercase string of the given length. */
    std::string identifier(size_t length);

    /** Random printable string drawn from a small SQL-friendly alphabet. */
    std::string text(size_t max_length);

  private:
    uint64_t state_;
    uint64_t inc_;
};

} // namespace sqlpp

#endif // SQLPP_UTIL_RNG_H
