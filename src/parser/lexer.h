/**
 * @file
 * SQL lexer for the engine's dialect.
 *
 * Produces a flat token stream consumed by the recursive-descent parser.
 * Keywords are not distinguished from identifiers at the lexer level;
 * the parser matches identifier tokens case-insensitively against the
 * keyword it expects, which is how most hand-written SQL front ends
 * behave and keeps the keyword set extensible.
 */
#ifndef SQLPP_PARSER_LEXER_H
#define SQLPP_PARSER_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace sqlpp {

enum class TokenKind
{
    Identifier,
    Integer,
    String,
    /** Operators and punctuation; text holds the exact symbol. */
    Symbol,
    EndOfInput,
};

struct Token
{
    TokenKind kind = TokenKind::EndOfInput;
    /** Raw text: identifier spelling, digits, decoded string, or symbol. */
    std::string text;
    /** For Integer tokens. */
    int64_t intValue = 0;
    /**
     * Integer token whose magnitude exceeds INT64_MAX. The lexer keeps
     * it as a token (text preserved) instead of failing, because
     * "9223372036854775808" is valid when a unary minus precedes it —
     * `-9223372036854775808` is the printed form of the INT64_MIN
     * literal and must round-trip. The parser rejects the token in any
     * other position.
     */
    bool outOfRange = false;
    /** Byte offset in the input, for error messages. */
    size_t offset = 0;
};

/**
 * Tokenize a SQL string.
 *
 * Handles: identifiers, integer literals, single-quoted strings with ''
 * escapes, line comments (--), block comments, and the engine's operator
 * set including multi-character symbols (<=>, <>, !=, <=, >=, <<, >>, ||).
 *
 * @return Token vector ending with EndOfInput, or a SyntaxError status.
 */
StatusOr<std::vector<Token>> tokenize(const std::string &sql);

} // namespace sqlpp

#endif // SQLPP_PARSER_LEXER_H
