#include "parser/parser.h"

#include <cassert>

#include "parser/lexer.h"
#include "util/strutil.h"

namespace sqlpp {

namespace {

/**
 * Token-stream cursor with keyword matching helpers. All parse methods
 * return StatusOr and never throw; the first error aborts the parse.
 */
class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

    StatusOr<StmtPtr> parseStatementTop();
    StatusOr<ExprPtr> parseExpressionTop();

  private:
    const Token &peek(size_t ahead = 0) const
    {
        size_t idx = pos_ + ahead;
        if (idx >= tokens_.size())
            idx = tokens_.size() - 1;
        return tokens_[idx];
    }

    const Token &advance() { return tokens_[pos_++]; }

    bool
    atKeyword(const char *keyword, size_t ahead = 0) const
    {
        const Token &token = peek(ahead);
        return token.kind == TokenKind::Identifier &&
               equalsIgnoreCase(token.text, keyword);
    }

    bool
    eatKeyword(const char *keyword)
    {
        if (!atKeyword(keyword))
            return false;
        ++pos_;
        return true;
    }

    bool
    atSymbol(const char *symbol) const
    {
        const Token &token = peek();
        return token.kind == TokenKind::Symbol && token.text == symbol;
    }

    bool
    eatSymbol(const char *symbol)
    {
        if (!atSymbol(symbol))
            return false;
        ++pos_;
        return true;
    }

    Status
    expectKeyword(const char *keyword)
    {
        if (eatKeyword(keyword))
            return Status::ok();
        return err(format("expected %s", keyword));
    }

    Status
    expectSymbol(const char *symbol)
    {
        if (eatSymbol(symbol))
            return Status::ok();
        return err(format("expected '%s'", symbol));
    }

    StatusOr<std::string>
    expectIdentifier(const char *what)
    {
        const Token &token = peek();
        if (token.kind != TokenKind::Identifier)
            return err(format("expected %s", what));
        ++pos_;
        return token.text;
    }

    Status
    err(const std::string &message) const
    {
        return Status::syntaxError(
            format("%s near offset %zu", message.c_str(), peek().offset));
    }

    // Statement parsers.
    StatusOr<StmtPtr> parseCreate();
    StatusOr<StmtPtr> parseCreateTable();
    StatusOr<StmtPtr> parseCreateIndex(bool unique);
    StatusOr<StmtPtr> parseCreateView();
    StatusOr<StmtPtr> parseInsert();
    StatusOr<StmtPtr> parseDrop();
    StatusOr<SelectPtr> parseSelect();
    StatusOr<TableRef> parseTableRef();

    // Expression precedence ladder (lowest first).
    StatusOr<ExprPtr> parseExpr() { return parseOr(); }
    StatusOr<ExprPtr> parseOr();
    StatusOr<ExprPtr> parseAnd();
    StatusOr<ExprPtr> parseNot();
    StatusOr<ExprPtr> parseComparison();
    StatusOr<ExprPtr> parseBitOr();
    StatusOr<ExprPtr> parseBitAnd();
    StatusOr<ExprPtr> parseShift();
    StatusOr<ExprPtr> parseAdditive();
    StatusOr<ExprPtr> parseMultiplicative();
    StatusOr<ExprPtr> parseConcat();
    StatusOr<ExprPtr> parseUnary();
    StatusOr<ExprPtr> parsePrimary();

    /** IS / IN / BETWEEN / LIKE postfix chain applied after an operand. */
    StatusOr<ExprPtr> parsePostfix(ExprPtr operand);

    StatusOr<std::vector<ExprPtr>> parseExprList();

    std::vector<Token> tokens_;
    size_t pos_ = 0;
};

StatusOr<StmtPtr>
Parser::parseStatementTop()
{
    StatusOr<StmtPtr> result = Status::syntaxError("empty statement");
    if (atKeyword("CREATE")) {
        result = parseCreate();
    } else if (atKeyword("INSERT")) {
        result = parseInsert();
    } else if (atKeyword("ANALYZE")) {
        advance();
        auto stmt = std::make_unique<AnalyzeStmt>();
        if (peek().kind == TokenKind::Identifier)
            stmt->table = advance().text;
        result = StmtPtr(std::move(stmt));
    } else if (atKeyword("SELECT")) {
        auto select = parseSelect();
        if (!select.isOk())
            return select.status();
        result = StmtPtr(select.takeValue());
    } else if (atKeyword("DROP")) {
        result = parseDrop();
    } else if (atKeyword("BEGIN")) {
        advance();
        eatKeyword("TRANSACTION");
        result = StmtPtr(std::make_unique<TxnStmt>(StmtKind::Begin));
    } else if (atKeyword("COMMIT")) {
        advance();
        eatKeyword("TRANSACTION");
        result = StmtPtr(std::make_unique<TxnStmt>(StmtKind::Commit));
    } else if (atKeyword("ROLLBACK")) {
        advance();
        eatKeyword("TRANSACTION");
        if (eatKeyword("TO")) {
            eatKeyword("SAVEPOINT");
            auto stmt = std::make_unique<TxnStmt>(StmtKind::RollbackTo);
            auto name = expectIdentifier("savepoint name");
            if (!name.isOk())
                return name.status();
            stmt->savepoint = name.value();
            result = StmtPtr(std::move(stmt));
        } else {
            result =
                StmtPtr(std::make_unique<TxnStmt>(StmtKind::Rollback));
        }
    } else if (atKeyword("SAVEPOINT")) {
        advance();
        auto stmt = std::make_unique<TxnStmt>(StmtKind::Savepoint);
        auto name = expectIdentifier("savepoint name");
        if (!name.isOk())
            return name.status();
        stmt->savepoint = name.value();
        result = StmtPtr(std::move(stmt));
    } else if (atKeyword("RELEASE")) {
        advance();
        eatKeyword("SAVEPOINT");
        auto stmt = std::make_unique<TxnStmt>(StmtKind::Release);
        auto name = expectIdentifier("savepoint name");
        if (!name.isOk())
            return name.status();
        stmt->savepoint = name.value();
        result = StmtPtr(std::move(stmt));
    } else if (peek().kind == TokenKind::EndOfInput) {
        return Status::syntaxError("empty statement");
    } else {
        return err("unrecognized statement keyword '" + peek().text + "'");
    }
    if (!result.isOk())
        return result;
    eatSymbol(";");
    if (peek().kind != TokenKind::EndOfInput)
        return err("trailing input after statement");
    return result;
}

StatusOr<ExprPtr>
Parser::parseExpressionTop()
{
    auto expr = parseExpr();
    if (!expr.isOk())
        return expr;
    if (peek().kind != TokenKind::EndOfInput)
        return err("trailing input after expression");
    return expr;
}

StatusOr<StmtPtr>
Parser::parseCreate()
{
    advance(); // CREATE
    if (eatKeyword("TABLE"))
        return parseCreateTable();
    if (eatKeyword("UNIQUE")) {
        if (Status s = expectKeyword("INDEX"); !s.isOk())
            return s;
        return parseCreateIndex(/*unique=*/true);
    }
    if (eatKeyword("INDEX"))
        return parseCreateIndex(/*unique=*/false);
    if (eatKeyword("VIEW"))
        return parseCreateView();
    return err("expected TABLE, INDEX, UNIQUE INDEX, or VIEW");
}

StatusOr<StmtPtr>
Parser::parseCreateTable()
{
    auto stmt = std::make_unique<CreateTableStmt>();
    if (eatKeyword("IF")) {
        if (Status s = expectKeyword("NOT"); !s.isOk())
            return s;
        if (Status s = expectKeyword("EXISTS"); !s.isOk())
            return s;
        stmt->ifNotExists = true;
    }
    auto name = expectIdentifier("table name");
    if (!name.isOk())
        return name.status();
    stmt->name = name.takeValue();
    if (Status s = expectSymbol("("); !s.isOk())
        return s;
    for (;;) {
        ColumnDef col;
        auto col_name = expectIdentifier("column name");
        if (!col_name.isOk())
            return col_name.status();
        col.name = col_name.takeValue();
        auto type_name = expectIdentifier("column type");
        if (!type_name.isOk())
            return type_name.status();
        if (!parseDataType(type_name.value(), col.type))
            return err("unknown type '" + type_name.value() + "'");
        for (;;) {
            if (eatKeyword("PRIMARY")) {
                if (Status s = expectKeyword("KEY"); !s.isOk())
                    return s;
                col.primaryKey = true;
            } else if (eatKeyword("UNIQUE")) {
                col.unique = true;
            } else if (eatKeyword("NOT")) {
                if (Status s = expectKeyword("NULL"); !s.isOk())
                    return s;
                col.notNull = true;
            } else {
                break;
            }
        }
        stmt->columns.push_back(std::move(col));
        if (eatSymbol(","))
            continue;
        break;
    }
    if (Status s = expectSymbol(")"); !s.isOk())
        return s;
    return StmtPtr(std::move(stmt));
}

StatusOr<StmtPtr>
Parser::parseCreateIndex(bool unique)
{
    auto stmt = std::make_unique<CreateIndexStmt>();
    stmt->unique = unique;
    auto name = expectIdentifier("index name");
    if (!name.isOk())
        return name.status();
    stmt->name = name.takeValue();
    if (Status s = expectKeyword("ON"); !s.isOk())
        return s;
    auto table = expectIdentifier("table name");
    if (!table.isOk())
        return table.status();
    stmt->table = table.takeValue();
    if (Status s = expectSymbol("("); !s.isOk())
        return s;
    for (;;) {
        auto col = expectIdentifier("column name");
        if (!col.isOk())
            return col.status();
        stmt->columns.push_back(col.takeValue());
        if (eatSymbol(","))
            continue;
        break;
    }
    if (Status s = expectSymbol(")"); !s.isOk())
        return s;
    if (eatKeyword("WHERE")) {
        auto where = parseExpr();
        if (!where.isOk())
            return where.status();
        stmt->where = where.takeValue();
    }
    return StmtPtr(std::move(stmt));
}

StatusOr<StmtPtr>
Parser::parseCreateView()
{
    auto stmt = std::make_unique<CreateViewStmt>();
    auto name = expectIdentifier("view name");
    if (!name.isOk())
        return name.status();
    stmt->name = name.takeValue();
    if (eatSymbol("(")) {
        for (;;) {
            auto col = expectIdentifier("column name");
            if (!col.isOk())
                return col.status();
            stmt->columnNames.push_back(col.takeValue());
            if (eatSymbol(","))
                continue;
            break;
        }
        if (Status s = expectSymbol(")"); !s.isOk())
            return s;
    }
    if (Status s = expectKeyword("AS"); !s.isOk())
        return s;
    if (!atKeyword("SELECT"))
        return err("expected SELECT after AS");
    auto select = parseSelect();
    if (!select.isOk())
        return select.status();
    stmt->select = select.takeValue();
    return StmtPtr(std::move(stmt));
}

StatusOr<StmtPtr>
Parser::parseInsert()
{
    advance(); // INSERT
    auto stmt = std::make_unique<InsertStmt>();
    if (eatKeyword("OR")) {
        if (Status s = expectKeyword("IGNORE"); !s.isOk())
            return s;
        stmt->orIgnore = true;
    }
    if (Status s = expectKeyword("INTO"); !s.isOk())
        return s;
    auto table = expectIdentifier("table name");
    if (!table.isOk())
        return table.status();
    stmt->table = table.takeValue();
    if (eatSymbol("(")) {
        for (;;) {
            auto col = expectIdentifier("column name");
            if (!col.isOk())
                return col.status();
            stmt->columns.push_back(col.takeValue());
            if (eatSymbol(","))
                continue;
            break;
        }
        if (Status s = expectSymbol(")"); !s.isOk())
            return s;
    }
    if (Status s = expectKeyword("VALUES"); !s.isOk())
        return s;
    for (;;) {
        if (Status s = expectSymbol("("); !s.isOk())
            return s;
        auto row = parseExprList();
        if (!row.isOk())
            return row.status();
        if (Status s = expectSymbol(")"); !s.isOk())
            return s;
        stmt->rows.push_back(row.takeValue());
        if (eatSymbol(","))
            continue;
        break;
    }
    return StmtPtr(std::move(stmt));
}

StatusOr<StmtPtr>
Parser::parseDrop()
{
    advance(); // DROP
    StmtKind kind;
    if (eatKeyword("TABLE")) {
        kind = StmtKind::DropTable;
    } else if (eatKeyword("VIEW")) {
        kind = StmtKind::DropView;
    } else if (eatKeyword("INDEX")) {
        kind = StmtKind::DropIndex;
    } else {
        return err("expected TABLE, VIEW, or INDEX after DROP");
    }
    auto stmt = std::make_unique<DropStmt>(kind);
    if (eatKeyword("IF")) {
        if (Status s = expectKeyword("EXISTS"); !s.isOk())
            return s;
        stmt->ifExists = true;
    }
    auto name = expectIdentifier("object name");
    if (!name.isOk())
        return name.status();
    stmt->name = name.takeValue();
    return StmtPtr(std::move(stmt));
}

StatusOr<TableRef>
Parser::parseTableRef()
{
    TableRef ref;
    if (eatSymbol("(")) {
        if (!atKeyword("SELECT"))
            return err("expected SELECT in derived table");
        auto select = parseSelect();
        if (!select.isOk())
            return select.status();
        ref.subquery = select.takeValue();
        if (Status s = expectSymbol(")"); !s.isOk())
            return s;
    } else {
        auto name = expectIdentifier("table name");
        if (!name.isOk())
            return name.status();
        ref.name = name.takeValue();
    }
    if (eatKeyword("AS")) {
        auto alias = expectIdentifier("alias");
        if (!alias.isOk())
            return alias.status();
        ref.alias = alias.takeValue();
    } else if (peek().kind == TokenKind::Identifier && !atKeyword("ON") &&
               !atKeyword("WHERE") && !atKeyword("GROUP") &&
               !atKeyword("HAVING") && !atKeyword("ORDER") &&
               !atKeyword("LIMIT") && !atKeyword("OFFSET") &&
               !atKeyword("INNER") && !atKeyword("LEFT") &&
               !atKeyword("RIGHT") && !atKeyword("FULL") &&
               !atKeyword("CROSS") && !atKeyword("NATURAL") &&
               !atKeyword("JOIN")) {
        ref.alias = advance().text;
    }
    if (ref.subquery && ref.alias.empty())
        return err("derived table requires an alias");
    return ref;
}

StatusOr<SelectPtr>
Parser::parseSelect()
{
    if (Status s = expectKeyword("SELECT"); !s.isOk())
        return s;
    auto select = std::make_unique<SelectStmt>();
    if (eatKeyword("DISTINCT"))
        select->distinct = true;
    else
        eatKeyword("ALL");
    // Select list.
    for (;;) {
        SelectItem item;
        if (eatSymbol("*")) {
            item.star = true;
        } else {
            auto expr = parseExpr();
            if (!expr.isOk())
                return expr.status();
            item.expr = expr.takeValue();
            if (eatKeyword("AS")) {
                auto alias = expectIdentifier("alias");
                if (!alias.isOk())
                    return alias.status();
                item.alias = alias.takeValue();
            }
        }
        select->items.push_back(std::move(item));
        if (eatSymbol(","))
            continue;
        break;
    }
    if (eatKeyword("FROM")) {
        for (;;) {
            auto ref = parseTableRef();
            if (!ref.isOk())
                return ref.status();
            select->from.push_back(ref.takeValue());
            // Join chain attached to the most recent source.
            for (;;) {
                JoinClause join;
                bool has_join = false;
                if (eatKeyword("INNER")) {
                    if (Status s = expectKeyword("JOIN"); !s.isOk())
                        return s;
                    join.type = JoinType::Inner;
                    has_join = true;
                } else if (eatKeyword("LEFT")) {
                    eatKeyword("OUTER");
                    if (Status s = expectKeyword("JOIN"); !s.isOk())
                        return s;
                    join.type = JoinType::Left;
                    has_join = true;
                } else if (eatKeyword("RIGHT")) {
                    eatKeyword("OUTER");
                    if (Status s = expectKeyword("JOIN"); !s.isOk())
                        return s;
                    join.type = JoinType::Right;
                    has_join = true;
                } else if (eatKeyword("FULL")) {
                    eatKeyword("OUTER");
                    if (Status s = expectKeyword("JOIN"); !s.isOk())
                        return s;
                    join.type = JoinType::Full;
                    has_join = true;
                } else if (eatKeyword("CROSS")) {
                    if (Status s = expectKeyword("JOIN"); !s.isOk())
                        return s;
                    join.type = JoinType::Cross;
                    has_join = true;
                } else if (eatKeyword("NATURAL")) {
                    if (Status s = expectKeyword("JOIN"); !s.isOk())
                        return s;
                    join.type = JoinType::Natural;
                    has_join = true;
                } else if (eatKeyword("JOIN")) {
                    join.type = JoinType::Inner;
                    has_join = true;
                }
                if (!has_join)
                    break;
                auto table = parseTableRef();
                if (!table.isOk())
                    return table.status();
                join.table = table.takeValue();
                if (join.type != JoinType::Cross &&
                    join.type != JoinType::Natural) {
                    if (Status s = expectKeyword("ON"); !s.isOk())
                        return s;
                    auto on = parseExpr();
                    if (!on.isOk())
                        return on.status();
                    join.on = on.takeValue();
                }
                select->joins.push_back(std::move(join));
            }
            if (eatSymbol(","))
                continue;
            break;
        }
    }
    if (eatKeyword("WHERE")) {
        auto where = parseExpr();
        if (!where.isOk())
            return where.status();
        select->where = where.takeValue();
    }
    if (eatKeyword("GROUP")) {
        if (Status s = expectKeyword("BY"); !s.isOk())
            return s;
        for (;;) {
            auto key = parseExpr();
            if (!key.isOk())
                return key.status();
            select->groupBy.push_back(key.takeValue());
            if (eatSymbol(","))
                continue;
            break;
        }
    }
    // HAVING is accepted without GROUP BY; the engine decides whether
    // the combination is legal (it requires aggregation).
    if (eatKeyword("HAVING")) {
        auto having = parseExpr();
        if (!having.isOk())
            return having.status();
        select->having = having.takeValue();
    }
    if (eatKeyword("ORDER")) {
        if (Status s = expectKeyword("BY"); !s.isOk())
            return s;
        for (;;) {
            OrderTerm term;
            auto expr = parseExpr();
            if (!expr.isOk())
                return expr.status();
            term.expr = expr.takeValue();
            if (eatKeyword("DESC"))
                term.ascending = false;
            else
                eatKeyword("ASC");
            select->orderBy.push_back(std::move(term));
            if (eatSymbol(","))
                continue;
            break;
        }
    }
    if (eatKeyword("LIMIT")) {
        if (peek().kind != TokenKind::Integer || peek().outOfRange)
            return err("expected integer after LIMIT");
        select->limit = advance().intValue;
    }
    if (eatKeyword("OFFSET")) {
        if (peek().kind != TokenKind::Integer || peek().outOfRange)
            return err("expected integer after OFFSET");
        select->offset = advance().intValue;
    }
    return select;
}

StatusOr<std::vector<ExprPtr>>
Parser::parseExprList()
{
    std::vector<ExprPtr> out;
    for (;;) {
        auto expr = parseExpr();
        if (!expr.isOk())
            return expr.status();
        out.push_back(expr.takeValue());
        if (eatSymbol(","))
            continue;
        break;
    }
    return out;
}

StatusOr<ExprPtr>
Parser::parseOr()
{
    auto lhs = parseAnd();
    if (!lhs.isOk())
        return lhs;
    ExprPtr expr = lhs.takeValue();
    while (eatKeyword("OR")) {
        auto rhs = parseAnd();
        if (!rhs.isOk())
            return rhs;
        expr = std::make_unique<BinaryExpr>(BinaryOp::Or, std::move(expr),
                                            rhs.takeValue());
    }
    return expr;
}

StatusOr<ExprPtr>
Parser::parseAnd()
{
    auto lhs = parseNot();
    if (!lhs.isOk())
        return lhs;
    ExprPtr expr = lhs.takeValue();
    while (atKeyword("AND")) {
        advance();
        auto rhs = parseNot();
        if (!rhs.isOk())
            return rhs;
        expr = std::make_unique<BinaryExpr>(BinaryOp::And, std::move(expr),
                                            rhs.takeValue());
    }
    return expr;
}

StatusOr<ExprPtr>
Parser::parseNot()
{
    if (atKeyword("NOT") && !atKeyword("EXISTS", 1)) {
        advance();
        auto operand = parseNot();
        if (!operand.isOk())
            return operand;
        return ExprPtr(std::make_unique<UnaryExpr>(UnaryOp::Not,
                                                   operand.takeValue()));
    }
    return parseComparison();
}

StatusOr<ExprPtr>
Parser::parseComparison()
{
    auto lhs = parseBitOr();
    if (!lhs.isOk())
        return lhs;
    ExprPtr expr = lhs.takeValue();
    for (;;) {
        BinaryOp op;
        if (eatSymbol("<=>")) {
            op = BinaryOp::NullSafeEq;
        } else if (eatSymbol("<>")) {
            op = BinaryOp::NotEq;
        } else if (eatSymbol("!=")) {
            op = BinaryOp::NotEqBang;
        } else if (eatSymbol("<=")) {
            op = BinaryOp::LessEq;
        } else if (eatSymbol(">=")) {
            op = BinaryOp::GreaterEq;
        } else if (eatSymbol("=")) {
            op = BinaryOp::Eq;
        } else if (eatSymbol("<")) {
            op = BinaryOp::Less;
        } else if (eatSymbol(">")) {
            op = BinaryOp::Greater;
        } else if (atKeyword("LIKE")) {
            advance();
            op = BinaryOp::Like;
        } else if (atKeyword("GLOB")) {
            advance();
            op = BinaryOp::Glob;
        } else {
            // IS / IN / BETWEEN / NOT LIKE postfix family.
            auto post = parsePostfix(std::move(expr));
            return post;
        }
        auto rhs = parseBitOr();
        if (!rhs.isOk())
            return rhs;
        expr = std::make_unique<BinaryExpr>(op, std::move(expr),
                                            rhs.takeValue());
    }
}

StatusOr<ExprPtr>
Parser::parsePostfix(ExprPtr operand)
{
    for (;;) {
        if (atKeyword("IS")) {
            advance();
            bool negated = eatKeyword("NOT");
            if (eatKeyword("NULL")) {
                operand = std::make_unique<UnaryExpr>(
                    negated ? UnaryOp::IsNotNull : UnaryOp::IsNull,
                    std::move(operand));
                continue;
            }
            if (eatKeyword("TRUE")) {
                operand = std::make_unique<UnaryExpr>(
                    negated ? UnaryOp::IsNotTrue : UnaryOp::IsTrue,
                    std::move(operand));
                continue;
            }
            if (eatKeyword("FALSE")) {
                operand = std::make_unique<UnaryExpr>(
                    negated ? UnaryOp::IsNotFalse : UnaryOp::IsFalse,
                    std::move(operand));
                continue;
            }
            if (eatKeyword("DISTINCT")) {
                if (Status s = expectKeyword("FROM"); !s.isOk())
                    return s;
                auto rhs = parseBitOr();
                if (!rhs.isOk())
                    return rhs;
                operand = std::make_unique<BinaryExpr>(
                    negated ? BinaryOp::IsNotDistinctFrom
                            : BinaryOp::IsDistinctFrom,
                    std::move(operand), rhs.takeValue());
                continue;
            }
            return err("expected NULL, TRUE, FALSE, or DISTINCT after IS");
        }
        if (atKeyword("NOT") &&
            (atKeyword("IN", 1) || atKeyword("BETWEEN", 1) ||
             atKeyword("LIKE", 1))) {
            advance(); // NOT
            if (eatKeyword("LIKE")) {
                auto rhs = parseBitOr();
                if (!rhs.isOk())
                    return rhs;
                operand = std::make_unique<BinaryExpr>(
                    BinaryOp::NotLike, std::move(operand), rhs.takeValue());
                continue;
            }
            if (eatKeyword("BETWEEN")) {
                auto low = parseBitOr();
                if (!low.isOk())
                    return low;
                if (Status s = expectKeyword("AND"); !s.isOk())
                    return s;
                auto high = parseBitOr();
                if (!high.isOk())
                    return high;
                operand = std::make_unique<BetweenExpr>(
                    std::move(operand), low.takeValue(), high.takeValue(),
                    /*negated=*/true);
                continue;
            }
            // NOT IN
            advance(); // IN
            if (Status s = expectSymbol("("); !s.isOk())
                return s;
            if (atKeyword("SELECT")) {
                auto select = parseSelect();
                if (!select.isOk())
                    return select.status();
                if (Status s = expectSymbol(")"); !s.isOk())
                    return s;
                operand = std::make_unique<InSubqueryExpr>(
                    std::move(operand), select.takeValue(),
                    /*negated=*/true);
            } else {
                auto items = parseExprList();
                if (!items.isOk())
                    return items.status();
                if (Status s = expectSymbol(")"); !s.isOk())
                    return s;
                operand = std::make_unique<InListExpr>(
                    std::move(operand), items.takeValue(), /*negated=*/true);
            }
            continue;
        }
        if (atKeyword("BETWEEN")) {
            advance();
            auto low = parseBitOr();
            if (!low.isOk())
                return low;
            if (Status s = expectKeyword("AND"); !s.isOk())
                return s;
            auto high = parseBitOr();
            if (!high.isOk())
                return high;
            operand = std::make_unique<BetweenExpr>(
                std::move(operand), low.takeValue(), high.takeValue(),
                /*negated=*/false);
            continue;
        }
        if (atKeyword("IN")) {
            advance();
            if (Status s = expectSymbol("("); !s.isOk())
                return s;
            if (atKeyword("SELECT")) {
                auto select = parseSelect();
                if (!select.isOk())
                    return select.status();
                if (Status s = expectSymbol(")"); !s.isOk())
                    return s;
                operand = std::make_unique<InSubqueryExpr>(
                    std::move(operand), select.takeValue(),
                    /*negated=*/false);
            } else {
                auto items = parseExprList();
                if (!items.isOk())
                    return items.status();
                if (Status s = expectSymbol(")"); !s.isOk())
                    return s;
                operand = std::make_unique<InListExpr>(
                    std::move(operand), items.takeValue(),
                    /*negated=*/false);
            }
            continue;
        }
        return operand;
    }
}

StatusOr<ExprPtr>
Parser::parseBitOr()
{
    auto lhs = parseBitAnd();
    if (!lhs.isOk())
        return lhs;
    ExprPtr expr = lhs.takeValue();
    for (;;) {
        BinaryOp op;
        if (eatSymbol("|")) {
            op = BinaryOp::BitOr;
        } else if (eatSymbol("^")) {
            op = BinaryOp::BitXor;
        } else {
            return expr;
        }
        auto rhs = parseBitAnd();
        if (!rhs.isOk())
            return rhs;
        expr = std::make_unique<BinaryExpr>(op, std::move(expr),
                                            rhs.takeValue());
    }
}

StatusOr<ExprPtr>
Parser::parseBitAnd()
{
    auto lhs = parseShift();
    if (!lhs.isOk())
        return lhs;
    ExprPtr expr = lhs.takeValue();
    while (eatSymbol("&")) {
        auto rhs = parseShift();
        if (!rhs.isOk())
            return rhs;
        expr = std::make_unique<BinaryExpr>(BinaryOp::BitAnd,
                                            std::move(expr),
                                            rhs.takeValue());
    }
    return expr;
}

StatusOr<ExprPtr>
Parser::parseShift()
{
    auto lhs = parseAdditive();
    if (!lhs.isOk())
        return lhs;
    ExprPtr expr = lhs.takeValue();
    for (;;) {
        BinaryOp op;
        if (eatSymbol("<<")) {
            op = BinaryOp::ShiftLeft;
        } else if (eatSymbol(">>")) {
            op = BinaryOp::ShiftRight;
        } else {
            return expr;
        }
        auto rhs = parseAdditive();
        if (!rhs.isOk())
            return rhs;
        expr = std::make_unique<BinaryExpr>(op, std::move(expr),
                                            rhs.takeValue());
    }
}

StatusOr<ExprPtr>
Parser::parseAdditive()
{
    auto lhs = parseMultiplicative();
    if (!lhs.isOk())
        return lhs;
    ExprPtr expr = lhs.takeValue();
    for (;;) {
        BinaryOp op;
        if (eatSymbol("+")) {
            op = BinaryOp::Add;
        } else if (eatSymbol("-")) {
            op = BinaryOp::Sub;
        } else {
            return expr;
        }
        auto rhs = parseMultiplicative();
        if (!rhs.isOk())
            return rhs;
        expr = std::make_unique<BinaryExpr>(op, std::move(expr),
                                            rhs.takeValue());
    }
}

StatusOr<ExprPtr>
Parser::parseMultiplicative()
{
    auto lhs = parseConcat();
    if (!lhs.isOk())
        return lhs;
    ExprPtr expr = lhs.takeValue();
    for (;;) {
        BinaryOp op;
        if (eatSymbol("*")) {
            op = BinaryOp::Mul;
        } else if (eatSymbol("/")) {
            op = BinaryOp::Div;
        } else if (eatSymbol("%")) {
            op = BinaryOp::Mod;
        } else {
            return expr;
        }
        auto rhs = parseConcat();
        if (!rhs.isOk())
            return rhs;
        expr = std::make_unique<BinaryExpr>(op, std::move(expr),
                                            rhs.takeValue());
    }
}

StatusOr<ExprPtr>
Parser::parseConcat()
{
    auto lhs = parseUnary();
    if (!lhs.isOk())
        return lhs;
    ExprPtr expr = lhs.takeValue();
    while (eatSymbol("||")) {
        auto rhs = parseUnary();
        if (!rhs.isOk())
            return rhs;
        expr = std::make_unique<BinaryExpr>(BinaryOp::Concat,
                                            std::move(expr),
                                            rhs.takeValue());
    }
    return expr;
}

StatusOr<ExprPtr>
Parser::parseUnary()
{
    if (eatSymbol("-")) {
        // `-9223372036854775808` (the printed INT64_MIN literal) is the
        // one place an out-of-range magnitude is legal: the pair folds
        // into a single negative literal. stoll would need the sign it
        // cannot see from inside the integer token.
        if (peek().kind == TokenKind::Integer && peek().outOfRange &&
            peek().text == "9223372036854775808") {
            advance();
            return ExprPtr(std::make_unique<LiteralExpr>(
                Value::integer(INT64_MIN)));
        }
        auto operand = parseUnary();
        if (!operand.isOk())
            return operand;
        ExprPtr inner = operand.takeValue();
        // Fold "-<int literal>" into a negative literal so that
        // print/parse round trips are idempotent and negative constants
        // stay literal (index probes match "col > -3").
        if (inner->kind() == ExprKind::Literal) {
            const Value &value =
                static_cast<const LiteralExpr &>(*inner).value;
            if (value.kind() == Value::Kind::Int &&
                value.asInt() != INT64_MIN) {
                return ExprPtr(std::make_unique<LiteralExpr>(
                    Value::integer(-value.asInt())));
            }
        }
        return ExprPtr(
            std::make_unique<UnaryExpr>(UnaryOp::Neg, std::move(inner)));
    }
    if (eatSymbol("+")) {
        auto operand = parseUnary();
        if (!operand.isOk())
            return operand;
        return ExprPtr(std::make_unique<UnaryExpr>(UnaryOp::Plus,
                                                   operand.takeValue()));
    }
    if (eatSymbol("~")) {
        auto operand = parseUnary();
        if (!operand.isOk())
            return operand;
        return ExprPtr(std::make_unique<UnaryExpr>(UnaryOp::BitNot,
                                                   operand.takeValue()));
    }
    return parsePrimary();
}

StatusOr<ExprPtr>
Parser::parsePrimary()
{
    const Token &token = peek();
    if (token.kind == TokenKind::Integer) {
        if (token.outOfRange)
            return err("integer literal out of range");
        advance();
        return ExprPtr(
            std::make_unique<LiteralExpr>(Value::integer(token.intValue)));
    }
    if (token.kind == TokenKind::String) {
        advance();
        return ExprPtr(
            std::make_unique<LiteralExpr>(Value::text(token.text)));
    }
    if (eatSymbol("(")) {
        if (atKeyword("SELECT")) {
            auto select = parseSelect();
            if (!select.isOk())
                return select.status();
            if (Status s = expectSymbol(")"); !s.isOk())
                return s;
            return ExprPtr(
                std::make_unique<ScalarSubqueryExpr>(select.takeValue()));
        }
        auto inner = parseExpr();
        if (!inner.isOk())
            return inner;
        if (Status s = expectSymbol(")"); !s.isOk())
            return s;
        // Parenthesised operands can still take postfix forms:
        // (a) IS NULL, (a) IN (...), etc.
        return parsePostfix(inner.takeValue());
    }
    if (token.kind != TokenKind::Identifier)
        return err("expected expression");
    // Keyword-led primaries.
    if (atKeyword("NULL")) {
        advance();
        return ExprPtr(std::make_unique<LiteralExpr>(Value::null()));
    }
    if (atKeyword("TRUE")) {
        advance();
        return ExprPtr(std::make_unique<LiteralExpr>(Value::boolean(true)));
    }
    if (atKeyword("FALSE")) {
        advance();
        return ExprPtr(std::make_unique<LiteralExpr>(Value::boolean(false)));
    }
    if (atKeyword("CAST")) {
        advance();
        if (Status s = expectSymbol("("); !s.isOk())
            return s;
        auto operand = parseExpr();
        if (!operand.isOk())
            return operand;
        if (Status s = expectKeyword("AS"); !s.isOk())
            return s;
        auto type_name = expectIdentifier("type name");
        if (!type_name.isOk())
            return type_name.status();
        DataType target;
        if (!parseDataType(type_name.value(), target))
            return err("unknown type '" + type_name.value() + "'");
        if (Status s = expectSymbol(")"); !s.isOk())
            return s;
        return ExprPtr(std::make_unique<CastExpr>(operand.takeValue(),
                                                  target));
    }
    if (atKeyword("CASE")) {
        advance();
        ExprPtr case_operand;
        if (!atKeyword("WHEN")) {
            auto operand = parseExpr();
            if (!operand.isOk())
                return operand;
            case_operand = operand.takeValue();
        }
        std::vector<CaseExpr::Arm> arms;
        while (eatKeyword("WHEN")) {
            auto when = parseExpr();
            if (!when.isOk())
                return when;
            if (Status s = expectKeyword("THEN"); !s.isOk())
                return s;
            auto then = parseExpr();
            if (!then.isOk())
                return then;
            arms.push_back(
                CaseExpr::Arm{when.takeValue(), then.takeValue()});
        }
        if (arms.empty())
            return err("CASE requires at least one WHEN arm");
        ExprPtr else_expr;
        if (eatKeyword("ELSE")) {
            auto inner = parseExpr();
            if (!inner.isOk())
                return inner;
            else_expr = inner.takeValue();
        }
        if (Status s = expectKeyword("END"); !s.isOk())
            return s;
        return ExprPtr(std::make_unique<CaseExpr>(std::move(case_operand),
                                                  std::move(arms),
                                                  std::move(else_expr)));
    }
    if (atKeyword("EXISTS") ||
        (atKeyword("NOT") && atKeyword("EXISTS", 1))) {
        bool negated = eatKeyword("NOT");
        advance(); // EXISTS
        if (Status s = expectSymbol("("); !s.isOk())
            return s;
        auto select = parseSelect();
        if (!select.isOk())
            return select.status();
        if (Status s = expectSymbol(")"); !s.isOk())
            return s;
        return ExprPtr(std::make_unique<ExistsExpr>(select.takeValue(),
                                                    negated));
    }
    // Function call or column reference.
    std::string first = advance().text;
    if (atSymbol("(")) {
        advance();
        std::string fn_name = toUpper(first);
        if (eatSymbol("*")) {
            if (Status s = expectSymbol(")"); !s.isOk())
                return s;
            return ExprPtr(std::make_unique<FunctionExpr>(
                fn_name, std::vector<ExprPtr>{}, /*star=*/true));
        }
        bool distinct = eatKeyword("DISTINCT");
        std::vector<ExprPtr> args;
        if (!atSymbol(")")) {
            auto list = parseExprList();
            if (!list.isOk())
                return list.status();
            args = list.takeValue();
        }
        if (Status s = expectSymbol(")"); !s.isOk())
            return s;
        return ExprPtr(std::make_unique<FunctionExpr>(
            fn_name, std::move(args), /*star=*/false, distinct));
    }
    if (eatSymbol(".")) {
        auto column = expectIdentifier("column name");
        if (!column.isOk())
            return column.status();
        return ExprPtr(
            std::make_unique<ColumnRefExpr>(first, column.takeValue()));
    }
    return ExprPtr(std::make_unique<ColumnRefExpr>("", std::move(first)));
}

} // namespace

StatusOr<StmtPtr>
parseStatement(const std::string &sql)
{
    auto tokens = tokenize(sql);
    if (!tokens.isOk())
        return tokens.status();
    Parser parser(tokens.takeValue());
    return parser.parseStatementTop();
}

StatusOr<ExprPtr>
parseExpression(const std::string &sql)
{
    auto tokens = tokenize(sql);
    if (!tokens.isOk())
        return tokens.status();
    Parser parser(tokens.takeValue());
    return parser.parseExpressionTop();
}

} // namespace sqlpp
