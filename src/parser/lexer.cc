#include "parser/lexer.h"

#include <cctype>

#include "util/strutil.h"

namespace sqlpp {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentBody(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Multi-character operators, longest first so maximal munch works. */
const char *const kMultiSymbols[] = {
    "<=>", "<>", "!=", "<=", ">=", "<<", ">>", "||",
};

} // namespace

StatusOr<std::vector<Token>>
tokenize(const std::string &sql)
{
    std::vector<Token> tokens;
    size_t i = 0;
    const size_t n = sql.size();
    while (i < n) {
        char c = sql[i];
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Line comment.
        if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
            while (i < n && sql[i] != '\n')
                ++i;
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
            size_t end = sql.find("*/", i + 2);
            if (end == std::string::npos) {
                return Status::syntaxError(
                    format("unterminated comment at offset %zu", i));
            }
            i = end + 2;
            continue;
        }
        if (isIdentStart(c)) {
            size_t start = i;
            while (i < n && isIdentBody(sql[i]))
                ++i;
            Token token;
            token.kind = TokenKind::Identifier;
            token.text = sql.substr(start, i - start);
            token.offset = start;
            tokens.push_back(std::move(token));
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t start = i;
            while (i < n && std::isdigit(static_cast<unsigned char>(sql[i])))
                ++i;
            Token token;
            token.kind = TokenKind::Integer;
            token.text = sql.substr(start, i - start);
            token.offset = start;
            try {
                token.intValue = std::stoll(token.text);
            } catch (...) {
                // Defer the range error to the parser: the magnitude of
                // INT64_MIN only becomes representable once the parser
                // sees the preceding unary minus.
                token.outOfRange = true;
            }
            tokens.push_back(std::move(token));
            continue;
        }
        if (c == '\'') {
            size_t start = i;
            ++i;
            std::string decoded;
            bool closed = false;
            while (i < n) {
                if (sql[i] == '\'') {
                    if (i + 1 < n && sql[i + 1] == '\'') {
                        decoded.push_back('\'');
                        i += 2;
                        continue;
                    }
                    ++i;
                    closed = true;
                    break;
                }
                decoded.push_back(sql[i]);
                ++i;
            }
            if (!closed) {
                return Status::syntaxError(
                    format("unterminated string at offset %zu", start));
            }
            Token token;
            token.kind = TokenKind::String;
            token.text = std::move(decoded);
            token.offset = start;
            tokens.push_back(std::move(token));
            continue;
        }
        // Multi-character symbols (longest match first).
        bool matched = false;
        for (const char *symbol : kMultiSymbols) {
            size_t len = std::char_traits<char>::length(symbol);
            if (sql.compare(i, len, symbol) == 0) {
                Token token;
                token.kind = TokenKind::Symbol;
                token.text = symbol;
                token.offset = i;
                tokens.push_back(std::move(token));
                i += len;
                matched = true;
                break;
            }
        }
        if (matched)
            continue;
        static const std::string kSingles = "+-*/%()=<>,.&|^~;";
        if (kSingles.find(c) != std::string::npos) {
            Token token;
            token.kind = TokenKind::Symbol;
            token.text = std::string(1, c);
            token.offset = i;
            tokens.push_back(std::move(token));
            ++i;
            continue;
        }
        return Status::syntaxError(
            format("unexpected character '%c' at offset %zu", c, i));
    }
    Token eof;
    eof.kind = TokenKind::EndOfInput;
    eof.offset = n;
    tokens.push_back(std::move(eof));
    return tokens;
}

} // namespace sqlpp
