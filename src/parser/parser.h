/**
 * @file
 * Recursive-descent SQL parser producing the shared AST.
 *
 * Grammar (simplified):
 *
 *   stmt        ::= create-table | create-index | create-view | insert
 *                 | analyze | select | drop
 *   select      ::= SELECT [DISTINCT] items FROM sources join* [WHERE expr]
 *                   [GROUP BY exprs [HAVING expr]] [ORDER BY terms]
 *                   [LIMIT n [OFFSET n]]
 *   expr        ::= or-expr with standard SQL precedence, IS/IN/BETWEEN/
 *                   LIKE postfix forms, CASE, CAST, function calls, and
 *                   (SELECT ...) scalar/EXISTS/IN subqueries
 *
 * Unknown leading keywords and malformed syntax yield SyntaxError; name
 * resolution and typing are deferred to the engine (SemanticError there),
 * mirroring the error staging of real systems — which is exactly the
 * signal the adaptive generator learns from.
 */
#ifndef SQLPP_PARSER_PARSER_H
#define SQLPP_PARSER_PARSER_H

#include <memory>
#include <string>

#include "sqlir/ast.h"
#include "util/status.h"

namespace sqlpp {

/** Parse one SQL statement (optional trailing semicolon). */
StatusOr<StmtPtr> parseStatement(const std::string &sql);

/** Parse a standalone expression, mostly for tests and the reducer. */
StatusOr<ExprPtr> parseExpression(const std::string &sql);

} // namespace sqlpp

#endif // SQLPP_PARSER_PARSER_H
