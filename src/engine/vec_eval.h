/**
 * @file
 * Vectorized expression kernels for the batch execution path.
 *
 * compileVecExpr() translates an expression tree into a tree of column
 * kernels that evaluate one chunk of rows per virtual call instead of
 * one recursive StatusOr round-trip per node per row. The compiler is
 * deliberately partial: anything it cannot reproduce with *bit-exact*
 * row-evaluator semantics — scalar/aggregate function calls, CASE,
 * subqueries, correlated or unresolvable column references, and any
 * engine with injected faults — is refused (nullptr), and the caller
 * falls back to the shared row evaluator for the whole expression.
 * Falling back is always correct; compiling is only a speedup.
 *
 * Error discipline: kernels do not construct Status messages. The first
 * lane that would raise a runtime error (overflow, division by zero
 * under strict behavior) aborts the chunk with VecStatus::RowError and
 * the caller re-runs the chunk through the row evaluator, which then
 * reports the identical first error in the identical row order. Budget
 * exhaustion (VecStatus::Budget) is terminal and must not be re-run.
 *
 * Budget parity: every kernel charges one step per node per *active*
 * lane at entry, and AND/OR narrow the selection exactly where the row
 * evaluator short-circuits, so a chunk's total step charge equals the
 * row path's — only the charge order within a chunk differs, which is
 * the documented "± one batch" budget-tail semantics.
 */
#ifndef SQLPP_ENGINE_VEC_EVAL_H
#define SQLPP_ENGINE_VEC_EVAL_H

#include <memory>

#include "engine/budget.h"
#include "engine/eval.h"
#include "engine/faults.h"
#include "engine/vector.h"
#include "sqlir/ast.h"
#include "util/status.h"

namespace sqlpp {

/** Outcome of evaluating one kernel over one chunk. */
enum class VecStatus
{
    Ok,
    /** Some lane raised an eval error; re-run the chunk row-at-a-time. */
    RowError,
    /** Budget exhausted mid-chunk; terminal, see ctx.budgetError. */
    Budget,
};

/** Per-chunk evaluation state shared by all kernels of one tree. */
struct VecEvalContext
{
    /** lane -> borrowed source row. */
    const Row *const *rows = nullptr;
    /** Lanes in this chunk (buffer sizes, not the active selection). */
    size_t laneCount = 0;
    const EngineBehavior *behavior = nullptr;
    /** Null = unmetered. */
    BudgetMeter *budget = nullptr;
    /** Set when a kernel returns VecStatus::Budget. */
    Status budgetError;
};

/** One compiled kernel node. */
class VecExpr
{
  public:
    virtual ~VecExpr() = default;

    /**
     * Evaluate this expression for the lanes in @p sel, writing
     * results into @p out (lane-indexed). Lanes outside @p sel are
     * left stale. @p sel must be ascending.
     */
    virtual VecStatus eval(VecEvalContext &ctx, const SelVector &sel,
                           VecColumn &out) const = 0;
};

using VecExprPtr = std::unique_ptr<VecExpr>;

/**
 * Compile @p expr against a single-frame scope. Returns nullptr when
 * the expression (or the engine configuration) is outside the kernel
 * subset; see the file comment for the refusal rules.
 */
VecExprPtr compileVecExpr(const Expr &expr, const Scope &scope,
                          const EngineBehavior &behavior,
                          const FaultSet &faults);

} // namespace sqlpp

#endif // SQLPP_ENGINE_VEC_EVAL_H
