/**
 * @file
 * Static type checking for strictly-typed dialects.
 *
 * The paper models "statically typed vs. dynamically typed" as an
 * abstract SQL feature: PostgreSQL-style systems reject ill-typed
 * statements while SQLite-style systems coerce at run time. Dialects
 * with EngineBehavior::staticTyping run this checker before execution;
 * its rejections are SemanticErrors, exactly the feedback signal from
 * which the adaptive generator learns a target's typing discipline.
 *
 * Typing rules (PostgreSQL-flavoured):
 *  - arithmetic/bitwise operators require INTEGER operands;
 *  - comparisons require operands of one common type;
 *  - AND/OR/NOT and WHERE/HAVING/ON predicates require BOOLEAN;
 *  - string operators (||, LIKE) require TEXT;
 *  - NULL literals have unknown type and unify with anything.
 */
#ifndef SQLPP_ENGINE_TYPECHECK_H
#define SQLPP_ENGINE_TYPECHECK_H

#include "engine/catalog.h"
#include "sqlir/ast.h"
#include "util/status.h"

namespace sqlpp {

/** Statement-level static type check against a catalog. */
Status typeCheckStatement(const Stmt &stmt, const Catalog &catalog);

} // namespace sqlpp

#endif // SQLPP_ENGINE_TYPECHECK_H
