/**
 * @file
 * Columnar batch primitives for the vectorized execution path.
 *
 * A VecColumn is one expression's (or column's) values for one chunk of
 * up to kBatchRows rows: a payload vector plus a null bitmap, indexed by
 * *lane* (the row's position within the chunk). A SelVector is an
 * ascending list of active lanes; kernels only read and write lanes it
 * names, which is how AND/OR short-circuiting is vectorized (the right
 * operand runs on the narrowed selection instead of branching per row).
 */
#ifndef SQLPP_ENGINE_VECTOR_H
#define SQLPP_ENGINE_VECTOR_H

#include <cstdint>
#include <vector>

#include "sqlir/value.h"

namespace sqlpp {

/** Rows per execution chunk on the batch path. */
inline constexpr size_t kBatchRows = 1024;

/** Ascending lane indices a kernel is active for. */
using SelVector = std::vector<uint32_t>;

/**
 * One column vector: values plus a null bitmap.
 *
 * Invariant: lanes outside the selection a kernel was run with hold
 * stale data and must not be read. Where nulls[lane] is set, the value
 * payload is meaningless.
 */
struct VecColumn
{
    /** 1 = SQL NULL at this lane. */
    std::vector<uint8_t> nulls;
    std::vector<Value> values;

    /** Prepare for a chunk of n lanes; previous contents are stale. */
    void
    reset(size_t n)
    {
        nulls.assign(n, 1);
        values.resize(n);
    }

    void
    setNull(size_t lane)
    {
        nulls[lane] = 1;
    }

    void
    set(size_t lane, Value value)
    {
        nulls[lane] = value.isNull() ? 1 : 0;
        values[lane] = std::move(value);
    }

    bool isNull(size_t lane) const { return nulls[lane] != 0; }

    /** The lane's Value, materializing NULL from the bitmap. */
    Value
    at(size_t lane) const
    {
        return isNull(lane) ? Value::null() : values[lane];
    }
};

/** Fill a selection with all lanes 0..n-1. */
inline void
selectAll(SelVector &sel, size_t n)
{
    sel.resize(n);
    for (size_t i = 0; i < n; ++i)
        sel[i] = static_cast<uint32_t>(i);
}

} // namespace sqlpp

#endif // SQLPP_ENGINE_VECTOR_H
