/**
 * @file
 * Catalog and row storage for the DBMS substrate.
 *
 * The engine is the "DBMS under test" that substitutes for the paper's
 * fleet of production systems. Tables are row stores with optional
 * ordered secondary indexes; views are stored SELECT ASTs expanded at
 * plan time. There is no UPDATE/DELETE because the paper's generator
 * only produces CREATE TABLE/INDEX/VIEW, INSERT, ANALYZE, and SELECT.
 */
#ifndef SQLPP_ENGINE_CATALOG_H
#define SQLPP_ENGINE_CATALOG_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sqlir/ast.h"
#include "sqlir/value.h"
#include "util/status.h"

namespace sqlpp {

/** Per-column statistics filled in by ANALYZE. */
struct ColumnStats
{
    size_t distinctValues = 0;
    size_t nullCount = 0;
};

/** A secondary index: ordered (key, row ordinal) pairs. */
class StoredIndex
{
  public:
    std::string name;
    /** Ordinals of the indexed columns in the owning table. */
    std::vector<size_t> columnOrdinals;
    bool unique = false;
    /** Partial-index predicate (cloned AST); null for full indexes. */
    ExprPtr predicate;

    /**
     * Entries sorted by key under Value::compareTotal lexicographic
     * order. Each entry maps an index key to a row ordinal.
     */
    struct Entry
    {
        std::vector<Value> key;
        size_t rowOrdinal;
    };
    std::vector<Entry> entries;

    StoredIndex() = default;
    StoredIndex(const StoredIndex &other);
    StoredIndex &operator=(const StoredIndex &) = delete;
    StoredIndex(StoredIndex &&) = default;
    StoredIndex &operator=(StoredIndex &&) = default;

    /** Lexicographic three-way comparison of index keys. */
    static int compareKeys(const std::vector<Value> &a,
                           const std::vector<Value> &b);

    /** Insert an entry keeping the order invariant. */
    void insert(std::vector<Value> key, size_t row_ordinal);

    /**
     * True if an equal non-NULL key already exists (unique-constraint
     * probe; keys containing NULL never conflict, per SQL semantics).
     */
    bool containsConflictingKey(const std::vector<Value> &key) const;
};

/** A base table: definition, rows, indexes, statistics. */
class StoredTable
{
  public:
    std::string name;
    std::vector<ColumnDef> columns;
    std::vector<Row> rows;
    std::vector<StoredIndex> indexes;

    /** Filled by ANALYZE; empty until then. */
    std::vector<ColumnStats> stats;
    bool analyzed = false;

    /** Ordinal of a column by name, or npos. */
    size_t columnOrdinal(const std::string &column_name) const;

    static constexpr size_t npos = static_cast<size_t>(-1);
};

/** A view: stored SELECT plus optional explicit column names. */
class StoredView
{
  public:
    StoredView() = default;
    StoredView(const StoredView &other);
    StoredView &operator=(const StoredView &) = delete;
    StoredView(StoredView &&) = default;
    StoredView &operator=(StoredView &&) = default;

    std::string name;
    std::vector<std::string> columnNames;
    SelectPtr select;
};

/**
 * The engine's schema: tables, views, and index-name ownership.
 *
 * Note this is the DBMS-side schema. The platform's *internal schema
 * model* (core/schema_model.h) is a separate structure maintained from
 * execution feedback, per the paper's design; it never reads this class.
 */
class Catalog
{
  public:
    bool hasTable(const std::string &name) const;
    bool hasView(const std::string &name) const;
    bool hasIndex(const std::string &name) const;
    /** Table, view, or index with this name exists. */
    bool hasObject(const std::string &name) const;

    StoredTable *table(const std::string &name);
    const StoredTable *table(const std::string &name) const;
    StoredView *view(const std::string &name);
    const StoredView *view(const std::string &name) const;

    Status addTable(StoredTable table);
    Status addView(StoredView view);
    /** Registers the index name and attaches the index to its table. */
    Status addIndex(const std::string &table_name, StoredIndex index);

    Status dropTable(const std::string &name);
    Status dropView(const std::string &name);
    Status dropIndex(const std::string &name);

    std::vector<std::string> tableNames() const;
    std::vector<std::string> viewNames() const;

  private:
    std::map<std::string, StoredTable> tables_;
    std::map<std::string, StoredView> views_;
    /** index name -> owning table name. */
    std::map<std::string, std::string> index_owner_;
};

} // namespace sqlpp

#endif // SQLPP_ENGINE_CATALOG_H
