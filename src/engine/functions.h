/**
 * @file
 * Scalar function registry: 58 built-in functions (Table 1 of the paper).
 *
 * Numeric-only engine note: the platform's data types are INTEGER, TEXT,
 * and BOOLEAN, so transcendental functions use fixed-point semantics —
 * SIN(x) is round(sin(x) * 1000) as an integer. The semantics are
 * arbitrary but total and deterministic, which is all the test oracles
 * require; what matters for faithfulness is the *error behaviour*
 * (domain errors for ASIN(2), overflow for EXP(100)), which mirrors the
 * paper's observation that "ASIN(1) can succeed while ASIN(2) throws".
 */
#ifndef SQLPP_ENGINE_FUNCTIONS_H
#define SQLPP_ENGINE_FUNCTIONS_H

#include <functional>
#include <string>
#include <vector>

#include "engine/eval.h"
#include "sqlir/value.h"
#include "util/status.h"

namespace sqlpp {

/** Argument/return type spec for signatures (Any = polymorphic). */
enum class TypeSpec
{
    Int,
    Text,
    Bool,
    Any,
};

/** Static signature of a scalar function, used by the type checker. */
struct FunctionSig
{
    std::string name;
    /** Fixed leading argument types. */
    std::vector<TypeSpec> args;
    /** If true, the last entry of args may repeat (>=1 more times). */
    bool variadic = false;
    /** Return type. */
    TypeSpec ret = TypeSpec::Any;
    /** Return type is the type of the first argument. */
    bool retSameAsArg0 = false;
    /**
     * Minimum accepted argument count; -1 derives it from args (all of
     * args for fixed-arity, args.size()-1 for variadic). Used for
     * trailing optional arguments (SUBSTR, LPAD).
     */
    int minArgs = -1;

    size_t
    minimumArgs() const
    {
        if (minArgs >= 0)
            return static_cast<size_t>(minArgs);
        if (variadic && !args.empty())
            return args.size() - 1;
        return args.size();
    }

    size_t
    maximumArgs() const
    {
        return variadic ? static_cast<size_t>(-1) : args.size();
    }
};

/** A scalar function implementation. */
struct FunctionImpl
{
    FunctionSig sig;
    /** Evaluated arguments in, value out. May fail (domain, overflow). */
    std::function<StatusOr<Value>(const std::vector<Value> &,
                                  const EvalContext &)> eval;
    /** Pre-resolved coverage-probe slot ("eval.fn.<name>"). */
    size_t probeSlot = 0;
};

/** Registry of all built-in scalar functions (process-wide, immutable). */
class FunctionRegistry
{
  public:
    static const FunctionRegistry &instance();

    /** Lookup by uppercase name; nullptr when unknown. */
    const FunctionImpl *find(const std::string &upper_name) const;

    /** All registered function names, sorted. */
    std::vector<std::string> names() const;

    size_t size() const { return impls_.size(); }

  private:
    FunctionRegistry();

    std::vector<FunctionImpl> impls_;

    void add(FunctionImpl impl);
};

/** Scale factor of the fixed-point transcendental functions. */
constexpr int64_t kFixedPointScale = 1000;

} // namespace sqlpp

#endif // SQLPP_ENGINE_FUNCTIONS_H
