#include "engine/eval.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <functional>

#include "engine/functions.h"
#include "util/coverage.h"
#include "util/strutil.h"

namespace sqlpp {

size_t
Scope::width() const
{
    size_t total = 0;
    for (const Binding &binding : bindings)
        total += binding.columns.size();
    return total;
}

StatusOr<size_t>
Scope::resolve(const std::string &table, const std::string &column) const
{
    size_t found = static_cast<size_t>(-1);
    int matches = 0;
    for (const Binding &binding : bindings) {
        if (!table.empty() && binding.name != table)
            continue;
        for (size_t i = 0; i < binding.columns.size(); ++i) {
            if (binding.columns[i] == column) {
                found = binding.offset + i;
                ++matches;
            }
        }
    }
    if (matches == 0) {
        std::string name = table.empty() ? column : table + "." + column;
        return Status::semanticError("no such column: " + name);
    }
    if (matches > 1) {
        return Status::semanticError("ambiguous column name: " + column);
    }
    return found;
}

std::vector<std::string>
Scope::allColumnNames() const
{
    std::vector<std::string> out;
    for (const Binding &binding : bindings) {
        for (const std::string &column : binding.columns)
            out.push_back(column);
    }
    return out;
}

void
Scope::addBinding(std::string name, std::vector<std::string> columns)
{
    Binding binding;
    binding.name = std::move(name);
    binding.columns = std::move(columns);
    binding.offset = width();
    bindings.push_back(std::move(binding));
}

std::optional<bool>
valueTruth(const Value &value)
{
    switch (value.kind()) {
      case Value::Kind::Null:
        return std::nullopt;
      case Value::Kind::Bool:
        return value.asBool();
      case Value::Kind::Int:
        return value.asInt() != 0;
      case Value::Kind::Text: {
        auto numeric = valueToNumeric(value);
        return numeric.has_value() && *numeric != 0;
      }
    }
    return std::nullopt;
}

std::optional<int64_t>
valueToNumeric(const Value &value)
{
    switch (value.kind()) {
      case Value::Kind::Null:
        return std::nullopt;
      case Value::Kind::Int:
        return value.asInt();
      case Value::Kind::Bool:
        return value.asBool() ? 1 : 0;
      case Value::Kind::Text: {
        // SQLite-style text-to-number affinity: parse a leading integer,
        // defaulting to 0 when there is none.
        const std::string &text = value.asText();
        size_t i = 0;
        while (i < text.size() &&
               std::isspace(static_cast<unsigned char>(text[i]))) {
            ++i;
        }
        bool negative = false;
        if (i < text.size() && (text[i] == '+' || text[i] == '-')) {
            negative = text[i] == '-';
            ++i;
        }
        int64_t out = 0;
        bool any = false;
        while (i < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[i]))) {
            int digit = text[i] - '0';
            if (out > (INT64_MAX - digit) / 10) {
                // Saturate rather than error: affinity parsing is lossy
                // by design.
                return negative ? INT64_MIN : INT64_MAX;
            }
            out = out * 10 + digit;
            any = true;
            ++i;
        }
        if (!any)
            return 0;
        return negative ? -out : out;
      }
    }
    return std::nullopt;
}

std::optional<std::string>
valueToText(const Value &value)
{
    if (value.isNull())
        return std::nullopt;
    return value.toString();
}

namespace {

/** True if the value belongs to the numeric class (INT or BOOL). */
bool
isNumericClass(const Value &value)
{
    return value.kind() == Value::Kind::Int ||
           value.kind() == Value::Kind::Bool;
}

} // namespace

std::optional<int>
compareSql(const Value &lhs, const Value &rhs)
{
    if (lhs.isNull() || rhs.isNull())
        return std::nullopt;
    bool lhs_numeric = isNumericClass(lhs);
    bool rhs_numeric = isNumericClass(rhs);
    if (lhs_numeric && rhs_numeric) {
        int64_t a = *valueToNumeric(lhs);
        int64_t b = *valueToNumeric(rhs);
        return a < b ? -1 : (a > b ? 1 : 0);
    }
    if (!lhs_numeric && !rhs_numeric) {
        int c = lhs.asText().compare(rhs.asText());
        return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    // Mixed classes: the numeric class sorts first (SQLite rule).
    return lhs_numeric ? -1 : 1;
}

bool
isAggregateFunction(const std::string &name)
{
    return name == "COUNT" || name == "SUM" || name == "AVG" ||
           name == "MIN" || name == "MAX";
}

bool
exprContainsAggregate(const Expr &expr)
{
    if (expr.kind() == ExprKind::Function) {
        const auto &fn = static_cast<const FunctionExpr &>(expr);
        if (isAggregateFunction(fn.name))
            return true;
    }
    // Subqueries are opaque: aggregates inside them belong to the
    // subquery, not to this select.
    if (expr.kind() == ExprKind::Exists ||
        expr.kind() == ExprKind::ScalarSubquery) {
        return false;
    }
    if (expr.kind() == ExprKind::InSubquery) {
        const auto &in = static_cast<const InSubqueryExpr &>(expr);
        return exprContainsAggregate(*in.operand);
    }
    for (const Expr *child : expr.children()) {
        if (exprContainsAggregate(*child))
            return true;
    }
    return false;
}

bool
isConstExpr(const Expr &expr)
{
    switch (expr.kind()) {
      case ExprKind::ColumnRef:
      case ExprKind::Exists:
      case ExprKind::InSubquery:
      case ExprKind::ScalarSubquery:
        return false;
      case ExprKind::Function: {
        const auto &fn = static_cast<const FunctionExpr &>(expr);
        if (isAggregateFunction(fn.name))
            return false;
        break;
      }
      default:
        break;
    }
    for (const Expr *child : expr.children()) {
        if (!isConstExpr(*child))
            return false;
    }
    return true;
}

bool
likeMatch(const std::string &text, const std::string &pattern,
          bool case_insensitive, bool underscore_is_literal)
{
    // Recursive matcher with memo-free backtracking; patterns generated
    // by the platform are short so worst cases do not matter.
    std::function<bool(size_t, size_t)> match = [&](size_t ti,
                                                    size_t pi) -> bool {
        while (pi < pattern.size()) {
            char pc = pattern[pi];
            if (pc == '%') {
                // Collapse consecutive wildcards.
                while (pi < pattern.size() && pattern[pi] == '%')
                    ++pi;
                if (pi == pattern.size())
                    return true;
                for (size_t k = ti; k <= text.size(); ++k) {
                    if (match(k, pi))
                        return true;
                }
                return false;
            }
            if (ti >= text.size())
                return false;
            if (pc == '_' && !underscore_is_literal) {
                ++ti;
                ++pi;
                continue;
            }
            char tc = text[ti];
            if (case_insensitive) {
                tc = static_cast<char>(
                    std::tolower(static_cast<unsigned char>(tc)));
                pc = static_cast<char>(
                    std::tolower(static_cast<unsigned char>(pc)));
            }
            if (tc != pc)
                return false;
            ++ti;
            ++pi;
        }
        return ti == text.size();
    };
    return match(0, 0);
}

bool
globMatch(const std::string &text, const std::string &pattern)
{
    std::function<bool(size_t, size_t)> match = [&](size_t ti,
                                                    size_t pi) -> bool {
        while (pi < pattern.size()) {
            char pc = pattern[pi];
            if (pc == '*') {
                while (pi < pattern.size() && pattern[pi] == '*')
                    ++pi;
                if (pi == pattern.size())
                    return true;
                for (size_t k = ti; k <= text.size(); ++k) {
                    if (match(k, pi))
                        return true;
                }
                return false;
            }
            if (ti >= text.size())
                return false;
            if (pc != '?' && text[ti] != pc)
                return false;
            ++ti;
            ++pi;
        }
        return ti == text.size();
    };
    return match(0, 0);
}

namespace {

Value
triBool(std::optional<bool> value)
{
    if (!value.has_value())
        return Value::null();
    return Value::boolean(*value);
}

StatusOr<Value> evalExprImpl(const Expr &expr, const EvalContext &ctx);

StatusOr<Value>
evalArithmetic(BinaryOp op, const Value &lhs, const Value &rhs,
               const EvalContext &ctx)
{
    auto a = valueToNumeric(lhs);
    auto b = valueToNumeric(rhs);
    if (!a || !b)
        return Value::null();
    int64_t result = 0;
    switch (op) {
      case BinaryOp::Add:
        SQLPP_COVER("eval.op.add");
        if (__builtin_add_overflow(*a, *b, &result))
            return Status::runtimeError("integer overflow");
        return Value::integer(result);
      case BinaryOp::Sub:
        SQLPP_COVER("eval.op.sub");
        if (__builtin_sub_overflow(*a, *b, &result))
            return Status::runtimeError("integer overflow");
        return Value::integer(result);
      case BinaryOp::Mul:
        SQLPP_COVER("eval.op.mul");
        if (__builtin_mul_overflow(*a, *b, &result))
            return Status::runtimeError("integer overflow");
        return Value::integer(result);
      case BinaryOp::Div:
        SQLPP_COVER("eval.op.div");
        if (*b == 0) {
            if (ctx.behavior == nullptr || ctx.behavior->divZeroIsNull)
                return Value::null();
            return Status::runtimeError("division by zero");
        }
        if (*a == INT64_MIN && *b == -1)
            return Status::runtimeError("integer overflow");
        return Value::integer(*a / *b);
      case BinaryOp::Mod:
        SQLPP_COVER("eval.op.mod");
        if (*b == 0) {
            if (ctx.behavior == nullptr || ctx.behavior->divZeroIsNull)
                return Value::null();
            return Status::runtimeError("division by zero");
        }
        if (*a == INT64_MIN && *b == -1)
            return Value::integer(0);
        return Value::integer(*a % *b);
      default:
        return Status::internal("not an arithmetic op");
    }
}

StatusOr<Value>
evalBitwise(BinaryOp op, const Value &lhs, const Value &rhs)
{
    auto a = valueToNumeric(lhs);
    auto b = valueToNumeric(rhs);
    if (!a || !b)
        return Value::null();
    uint64_t ua = static_cast<uint64_t>(*a);
    uint64_t ub = static_cast<uint64_t>(*b);
    switch (op) {
      case BinaryOp::BitAnd:
        SQLPP_COVER("eval.op.bitand");
        return Value::integer(static_cast<int64_t>(ua & ub));
      case BinaryOp::BitOr:
        SQLPP_COVER("eval.op.bitor");
        return Value::integer(static_cast<int64_t>(ua | ub));
      case BinaryOp::BitXor:
        SQLPP_COVER("eval.op.bitxor");
        return Value::integer(static_cast<int64_t>(ua ^ ub));
      case BinaryOp::ShiftLeft:
        SQLPP_COVER("eval.op.shl");
        if (*b < 0 || *b > 63)
            return Value::integer(0);
        return Value::integer(static_cast<int64_t>(ua << ub));
      case BinaryOp::ShiftRight:
        SQLPP_COVER("eval.op.shr");
        if (*b < 0 || *b > 63)
            return Value::integer(0);
        return Value::integer(*a >> ub); // arithmetic shift
      default:
        return Status::internal("not a bitwise op");
    }
}

/**
 * Equality with class semantics. With the NegContextMixedEq fault and an
 * odd negation depth, mixed text/int comparisons coerce the text side to
 * a number — the context-dependent comparison behind Listing 3.
 */
std::optional<bool>
evalEquality(const Value &lhs, const Value &rhs, const EvalContext &ctx)
{
    if (lhs.isNull() || rhs.isNull())
        return std::nullopt;
    bool mixed = isNumericClass(lhs) != isNumericClass(rhs);
    if (mixed && ctx.faultEnabled(FaultId::NegContextMixedEq) &&
        (ctx.negationDepth % 2) == 1) {
        return *valueToNumeric(lhs) == *valueToNumeric(rhs);
    }
    auto cmp = compareSql(lhs, rhs);
    return cmp.has_value() ? std::optional<bool>(*cmp == 0) : std::nullopt;
}

StatusOr<Value>
evalComparison(BinaryOp op, const Value &lhs, const Value &rhs,
               const EvalContext &ctx)
{
    switch (op) {
      case BinaryOp::Eq:
        SQLPP_COVER("eval.op.eq");
        return triBool(evalEquality(lhs, rhs, ctx));
      case BinaryOp::NotEq:
      case BinaryOp::NotEqBang: {
        SQLPP_COVER("eval.op.noteq");
        auto eq = evalEquality(lhs, rhs, ctx);
        if (!eq)
            return Value::null();
        return Value::boolean(!*eq);
      }
      case BinaryOp::NullSafeEq: {
        SQLPP_COVER("eval.op.nullsafe_eq");
        if (lhs.isNull() && rhs.isNull()) {
            if (ctx.faultEnabled(FaultId::NullSafeEqBothNullFalse))
                return Value::boolean(false);
            return Value::boolean(true);
        }
        if (lhs.isNull() || rhs.isNull())
            return Value::boolean(false);
        auto eq = evalEquality(lhs, rhs, ctx);
        return Value::boolean(eq.value_or(false));
      }
      case BinaryOp::IsDistinctFrom:
      case BinaryOp::IsNotDistinctFrom: {
        SQLPP_COVER("eval.op.is_distinct");
        bool same;
        if (lhs.isNull() && rhs.isNull()) {
            same = true;
        } else if (lhs.isNull() || rhs.isNull()) {
            same = false;
        } else {
            auto eq = evalEquality(lhs, rhs, ctx);
            same = eq.value_or(false);
        }
        bool distinct = !same;
        return Value::boolean(op == BinaryOp::IsDistinctFrom ? distinct
                                                             : !distinct);
      }
      default: {
        SQLPP_COVER("eval.op.relational");
        auto cmp = compareSql(lhs, rhs);
        if (!cmp)
            return Value::null();
        switch (op) {
          case BinaryOp::Less: return Value::boolean(*cmp < 0);
          case BinaryOp::LessEq: return Value::boolean(*cmp <= 0);
          case BinaryOp::Greater: return Value::boolean(*cmp > 0);
          case BinaryOp::GreaterEq: return Value::boolean(*cmp >= 0);
          default:
            return Status::internal("not a relational op");
        }
      }
    }
}

StatusOr<Value>
evalBinary(const BinaryExpr &expr, const EvalContext &ctx)
{
    // AND/OR need lazy semantics over three-valued logic; everything
    // else evaluates both operands first.
    if (expr.op == BinaryOp::And || expr.op == BinaryOp::Or) {
        if (expr.op == BinaryOp::And)
            SQLPP_COVER("eval.op.and");
        else
            SQLPP_COVER("eval.op.or");
        auto lhs = evalExprImpl(*expr.lhs, ctx);
        if (!lhs.isOk())
            return lhs;
        std::optional<bool> a = valueTruth(lhs.value());
        // Short circuit: FALSE AND _, TRUE OR _.
        if (expr.op == BinaryOp::And && a.has_value() && !*a)
            return Value::boolean(false);
        if (expr.op == BinaryOp::Or && a.has_value() && *a)
            return Value::boolean(true);
        auto rhs = evalExprImpl(*expr.rhs, ctx);
        if (!rhs.isOk())
            return rhs;
        std::optional<bool> b = valueTruth(rhs.value());
        if (expr.op == BinaryOp::And) {
            if (b.has_value() && !*b)
                return Value::boolean(false);
            if (a.has_value() && b.has_value())
                return Value::boolean(*a && *b);
            return Value::null();
        }
        if (b.has_value() && *b)
            return Value::boolean(true);
        if (a.has_value() && b.has_value())
            return Value::boolean(*a || *b);
        return Value::null();
    }

    auto lhs_or = evalExprImpl(*expr.lhs, ctx);
    if (!lhs_or.isOk())
        return lhs_or;
    auto rhs_or = evalExprImpl(*expr.rhs, ctx);
    if (!rhs_or.isOk())
        return rhs_or;
    const Value &lhs = lhs_or.value();
    const Value &rhs = rhs_or.value();

    switch (expr.op) {
      case BinaryOp::Add:
      case BinaryOp::Sub:
      case BinaryOp::Mul:
      case BinaryOp::Div:
      case BinaryOp::Mod:
        return evalArithmetic(expr.op, lhs, rhs, ctx);
      case BinaryOp::BitAnd:
      case BinaryOp::BitOr:
      case BinaryOp::BitXor:
      case BinaryOp::ShiftLeft:
      case BinaryOp::ShiftRight:
        return evalBitwise(expr.op, lhs, rhs);
      case BinaryOp::Concat: {
        SQLPP_COVER("eval.op.concat");
        auto a = valueToText(lhs);
        auto b = valueToText(rhs);
        if (!a || !b)
            return Value::null();
        return Value::text(*a + *b);
      }
      case BinaryOp::Like:
      case BinaryOp::NotLike: {
        SQLPP_COVER("eval.op.like");
        auto text = valueToText(lhs);
        auto pattern = valueToText(rhs);
        if (!text || !pattern)
            return Value::null();
        bool ci = ctx.behavior == nullptr ||
                  ctx.behavior->caseInsensitiveLike;
        bool underscore_literal =
            ctx.faultEnabled(FaultId::LikeUnderscoreLiteral);
        bool matched = likeMatch(*text, *pattern, ci, underscore_literal);
        return Value::boolean(expr.op == BinaryOp::Like ? matched
                                                        : !matched);
      }
      case BinaryOp::Glob: {
        SQLPP_COVER("eval.op.glob");
        auto text = valueToText(lhs);
        auto pattern = valueToText(rhs);
        if (!text || !pattern)
            return Value::null();
        return Value::boolean(globMatch(*text, *pattern));
      }
      default:
        return evalComparison(expr.op, lhs, rhs, ctx);
    }
}

StatusOr<Value>
evalUnary(const UnaryExpr &expr, const EvalContext &ctx)
{
    if (expr.op == UnaryOp::Not) {
        SQLPP_COVER("eval.op.not");
        EvalContext inner = ctx;
        inner.negationDepth = ctx.negationDepth + 1;
        auto operand = evalExprImpl(*expr.operand, inner);
        if (!operand.isOk())
            return operand;
        std::optional<bool> truth = valueTruth(operand.value());
        if (!truth.has_value()) {
            if (ctx.faultEnabled(FaultId::NotNullTrue))
                return Value::boolean(true);
            // Root-keyed: only a doubly-negated tree delivered directly
            // as the evaluation result takes the faulty shortcut.
            if (ctx.faultEnabled(FaultId::DoubleNegNullFalse) &&
                ctx.rootExpr == static_cast<const Expr *>(&expr) &&
                expr.operand->kind() == ExprKind::Unary &&
                static_cast<const UnaryExpr &>(*expr.operand).op ==
                    UnaryOp::Not) {
                SQLPP_COVER("eval.fault.double_neg_null_false");
                return Value::boolean(false);
            }
            return Value::null();
        }
        return Value::boolean(!*truth);
    }

    auto operand_or = evalExprImpl(*expr.operand, ctx);
    if (!operand_or.isOk())
        return operand_or;
    const Value &operand = operand_or.value();

    switch (expr.op) {
      case UnaryOp::Neg: {
        SQLPP_COVER("eval.op.neg");
        auto numeric = valueToNumeric(operand);
        if (!numeric)
            return Value::null();
        if (*numeric == INT64_MIN)
            return Status::runtimeError("integer overflow");
        return Value::integer(-*numeric);
      }
      case UnaryOp::Plus: {
        SQLPP_COVER("eval.op.unary_plus");
        auto numeric = valueToNumeric(operand);
        if (!numeric)
            return Value::null();
        return Value::integer(*numeric);
      }
      case UnaryOp::BitNot: {
        SQLPP_COVER("eval.op.bitnot");
        auto numeric = valueToNumeric(operand);
        if (!numeric)
            return Value::null();
        return Value::integer(~*numeric);
      }
      case UnaryOp::IsNull: {
        SQLPP_COVER("eval.op.is_null");
        if (operand.isNull() &&
            ctx.faultEnabled(FaultId::IsNullFalseForBoolNull)) {
            // The fault misclassifies NULLs produced by boolean-yielding
            // expressions (comparisons, logic, IS forms).
            ExprKind kind = expr.operand->kind();
            bool boolean_producer = false;
            if (kind == ExprKind::Binary) {
                const auto &bin =
                    static_cast<const BinaryExpr &>(*expr.operand);
                boolean_producer =
                    isComparisonOp(bin.op) || isLogicalOp(bin.op) ||
                    bin.op == BinaryOp::Like ||
                    bin.op == BinaryOp::NotLike;
            } else if (kind == ExprKind::Unary) {
                boolean_producer =
                    static_cast<const UnaryExpr &>(*expr.operand).op ==
                    UnaryOp::Not;
            }
            if (boolean_producer)
                return Value::boolean(false);
        }
        return Value::boolean(operand.isNull());
      }
      case UnaryOp::IsNotNull:
        SQLPP_COVER("eval.op.is_not_null");
        return Value::boolean(!operand.isNull());
      case UnaryOp::IsTrue: {
        SQLPP_COVER("eval.op.is_true");
        std::optional<bool> truth = valueTruth(operand);
        bool is_true = truth.has_value() && *truth;
        if (!is_true && truth.has_value() &&
            ctx.faultEnabled(FaultId::IsTrueFalseTrue)) {
            return Value::boolean(true);
        }
        return Value::boolean(is_true);
      }
      case UnaryOp::IsFalse: {
        SQLPP_COVER("eval.op.is_false");
        std::optional<bool> truth = valueTruth(operand);
        return Value::boolean(truth.has_value() && !*truth);
      }
      case UnaryOp::IsNotTrue: {
        std::optional<bool> truth = valueTruth(operand);
        return Value::boolean(!(truth.has_value() && *truth));
      }
      case UnaryOp::IsNotFalse: {
        std::optional<bool> truth = valueTruth(operand);
        return Value::boolean(!(truth.has_value() && !*truth));
      }
      default:
        return Status::internal("unhandled unary op");
    }
}

StatusOr<Value>
evalAggregate(const FunctionExpr &fn, const EvalContext &ctx)
{
    const std::vector<Row> &rows = *ctx.groupRows;
    if (fn.name == "COUNT")
        SQLPP_COVER("eval.agg.count");
    else if (fn.name == "SUM")
        SQLPP_COVER("eval.agg.sum");
    else if (fn.name == "AVG")
        SQLPP_COVER("eval.agg.avg");
    else if (fn.name == "MIN")
        SQLPP_COVER("eval.agg.min");
    else if (fn.name == "MAX")
        SQLPP_COVER("eval.agg.max");

    if (fn.name == "COUNT" && fn.star)
        return Value::integer(static_cast<int64_t>(rows.size()));
    if (fn.args.size() != 1) {
        return Status::semanticError("aggregate " + fn.name +
                                     " takes one argument");
    }

    // Evaluate the argument once per row of the group, in row context.
    std::vector<Value> values;
    values.reserve(rows.size());
    for (const Row &row : rows) {
        EvalContext row_ctx = ctx;
        row_ctx.row = &row;
        row_ctx.groupRows = nullptr;
        auto value = evalExprImpl(*fn.args[0], row_ctx);
        if (!value.isOk())
            return value;
        if (!value.value().isNull())
            values.push_back(value.takeValue());
    }
    if (fn.distinct) {
        std::sort(values.begin(), values.end(),
                  [](const Value &a, const Value &b) {
                      return a.compareTotal(b) < 0;
                  });
        values.erase(std::unique(values.begin(), values.end()),
                     values.end());
    }

    if (fn.name == "COUNT")
        return Value::integer(static_cast<int64_t>(values.size()));
    if (values.empty()) {
        if (fn.name == "SUM" &&
            ctx.faultEnabled(FaultId::SumEmptyZero)) {
            return Value::integer(0);
        }
        return Value::null();
    }
    if (fn.name == "SUM" || fn.name == "AVG") {
        int64_t sum = 0;
        for (const Value &value : values) {
            auto numeric = valueToNumeric(value);
            int64_t term = numeric.value_or(0);
            if (__builtin_add_overflow(sum, term, &sum))
                return Status::runtimeError("integer overflow in SUM");
        }
        if (fn.name == "SUM")
            return Value::integer(sum);
        return Value::integer(sum / static_cast<int64_t>(values.size()));
    }
    // MIN / MAX.
    const Value *best = &values[0];
    for (const Value &value : values) {
        auto cmp = compareSql(value, *best);
        if (!cmp)
            continue;
        if ((fn.name == "MIN" && *cmp < 0) ||
            (fn.name == "MAX" && *cmp > 0)) {
            best = &value;
        }
    }
    return *best;
}

StatusOr<Value>
evalFunction(const FunctionExpr &fn, const EvalContext &ctx)
{
    if (isAggregateFunction(fn.name)) {
        if (ctx.groupRows == nullptr) {
            return Status::semanticError("misuse of aggregate function " +
                                         fn.name);
        }
        return evalAggregate(fn, ctx);
    }
    if (fn.star) {
        return Status::semanticError("star argument only valid in COUNT");
    }
    const FunctionImpl *impl = FunctionRegistry::instance().find(fn.name);
    if (impl == nullptr)
        return Status::semanticError("no such function: " + fn.name);
    if (fn.args.size() < impl->sig.minimumArgs() ||
        fn.args.size() > impl->sig.maximumArgs()) {
        return Status::semanticError("wrong number of arguments to " +
                                     fn.name);
    }
    std::vector<Value> args;
    args.reserve(fn.args.size());
    for (const ExprPtr &arg : fn.args) {
        auto value = evalExprImpl(*arg, ctx);
        if (!value.isOk())
            return value;
        args.push_back(value.takeValue());
    }
    CoverageRegistry::instance().hitSlot(impl->probeSlot);
    return impl->eval(args, ctx);
}

StatusOr<Value>
evalSubqueryScalar(const SelectStmt &select, const EvalContext &ctx)
{
    if (ctx.subqueries == nullptr)
        return Status::semanticError("subqueries are not allowed here");
    auto result = ctx.subqueries->runSubquery(select, &ctx);
    if (!result.isOk())
        return result.status();
    const ResultSet &rows = result.value();
    if (rows.columnCount() != 1) {
        return Status::semanticError(
            "scalar subquery must return one column");
    }
    if (rows.rowCount() == 0)
        return Value::null();
    if (rows.rowCount() > 1) {
        return Status::runtimeError(
            "scalar subquery returned more than one row");
    }
    return rows.rows()[0][0];
}

StatusOr<Value>
evalExprImpl(const Expr &expr, const EvalContext &ctx)
{
    // One budget step per expression node per row: bounds runaway
    // recursive evaluation for the whole statement.
    if (ctx.budget != nullptr) {
        if (Status s = ctx.budget->chargeSteps(1); !s.isOk())
            return s;
    }
    switch (expr.kind()) {
      case ExprKind::Literal:
        return static_cast<const LiteralExpr &>(expr).value;
      case ExprKind::ColumnRef: {
        const auto &ref = static_cast<const ColumnRefExpr &>(expr);
        // Walk lexical scopes innermost-out for correlated references.
        for (const EvalContext *frame = &ctx; frame != nullptr;
             frame = frame->outer) {
            if (frame->scope == nullptr)
                continue;
            auto offset = frame->scope->resolve(ref.table, ref.column);
            if (offset.isOk()) {
                if (frame->row == nullptr)
                    return Value::null();
                return (*frame->row)[offset.value()];
            }
            if (offset.status().message().find("ambiguous") !=
                std::string::npos) {
                return offset.status();
            }
        }
        std::string name =
            ref.table.empty() ? ref.column : ref.table + "." + ref.column;
        return Status::semanticError("no such column: " + name);
      }
      case ExprKind::Unary:
        return evalUnary(static_cast<const UnaryExpr &>(expr), ctx);
      case ExprKind::Binary:
        return evalBinary(static_cast<const BinaryExpr &>(expr), ctx);
      case ExprKind::Between: {
        SQLPP_COVER("eval.op.between");
        const auto &between = static_cast<const BetweenExpr &>(expr);
        auto operand = evalExprImpl(*between.operand, ctx);
        if (!operand.isOk())
            return operand;
        auto low = evalExprImpl(*between.low, ctx);
        if (!low.isOk())
            return low;
        auto high = evalExprImpl(*between.high, ctx);
        if (!high.isOk())
            return high;
        auto low_cmp = compareSql(operand.value(), low.value());
        auto high_cmp = compareSql(operand.value(), high.value());
        // x BETWEEN lo AND hi == (x >= lo) AND (x <= hi), Kleene AND.
        std::optional<bool> ge_low =
            low_cmp ? std::optional<bool>(*low_cmp >= 0) : std::nullopt;
        std::optional<bool> le_high =
            high_cmp ? std::optional<bool>(*high_cmp <= 0) : std::nullopt;
        std::optional<bool> both;
        if ((ge_low && !*ge_low) || (le_high && !*le_high))
            both = false;
        else if (ge_low && le_high)
            both = *ge_low && *le_high;
        if (!both.has_value())
            return Value::null();
        return Value::boolean(between.negated ? !*both : *both);
      }
      case ExprKind::InList: {
        SQLPP_COVER("eval.op.in_list");
        const auto &in = static_cast<const InListExpr &>(expr);
        auto operand = evalExprImpl(*in.operand, ctx);
        if (!operand.isOk())
            return operand;
        bool saw_null = operand.value().isNull();
        bool matched = false;
        for (const ExprPtr &item : in.items) {
            auto value = evalExprImpl(*item, ctx);
            if (!value.isOk())
                return value;
            auto eq = evalEquality(operand.value(), value.value(), ctx);
            if (!eq.has_value())
                saw_null = true;
            else if (*eq)
                matched = true;
        }
        std::optional<bool> result;
        if (matched)
            result = true;
        else if (saw_null)
            result = std::nullopt;
        else
            result = false;
        if (!result.has_value())
            return Value::null();
        return Value::boolean(in.negated ? !*result : *result);
      }
      case ExprKind::Case: {
        SQLPP_COVER("eval.op.case");
        const auto &case_expr = static_cast<const CaseExpr &>(expr);
        std::optional<Value> operand;
        if (case_expr.operand) {
            auto value = evalExprImpl(*case_expr.operand, ctx);
            if (!value.isOk())
                return value;
            operand = value.takeValue();
        }
        for (const CaseExpr::Arm &arm : case_expr.arms) {
            auto when = evalExprImpl(*arm.when, ctx);
            if (!when.isOk())
                return when;
            bool taken;
            if (operand.has_value()) {
                auto eq = evalEquality(*operand, when.value(), ctx);
                taken = eq.has_value() && *eq;
            } else {
                auto truth = valueTruth(when.value());
                taken = truth.has_value() && *truth;
            }
            if (taken)
                return evalExprImpl(*arm.then, ctx);
        }
        if (case_expr.elseExpr)
            return evalExprImpl(*case_expr.elseExpr, ctx);
        return Value::null();
      }
      case ExprKind::Function:
        return evalFunction(static_cast<const FunctionExpr &>(expr), ctx);
      case ExprKind::Cast: {
        SQLPP_COVER("eval.op.cast");
        const auto &cast = static_cast<const CastExpr &>(expr);
        auto operand = evalExprImpl(*cast.operand, ctx);
        if (!operand.isOk())
            return operand;
        const Value &value = operand.value();
        if (value.isNull())
            return Value::null();
        switch (cast.target) {
          case DataType::Int:
            return Value::integer(*valueToNumeric(value));
          case DataType::Text:
            return Value::text(*valueToText(value));
          case DataType::Bool:
            return Value::boolean(valueTruth(value).value_or(false));
        }
        return Status::internal("bad cast target");
      }
      case ExprKind::Exists: {
        SQLPP_COVER("eval.op.exists");
        const auto &exists = static_cast<const ExistsExpr &>(expr);
        if (ctx.subqueries == nullptr)
            return Status::semanticError("subqueries are not allowed here");
        auto result = ctx.subqueries->runSubquery(*exists.subquery, &ctx);
        if (!result.isOk())
            return result.status();
        bool any = result.value().rowCount() > 0;
        return Value::boolean(exists.negated ? !any : any);
      }
      case ExprKind::InSubquery: {
        SQLPP_COVER("eval.op.in_subquery");
        const auto &in = static_cast<const InSubqueryExpr &>(expr);
        if (ctx.subqueries == nullptr)
            return Status::semanticError("subqueries are not allowed here");
        auto operand = evalExprImpl(*in.operand, ctx);
        if (!operand.isOk())
            return operand;
        auto result = ctx.subqueries->runSubquery(*in.subquery, &ctx);
        if (!result.isOk())
            return result.status();
        const ResultSet &rows = result.value();
        if (rows.columnCount() != 1) {
            return Status::semanticError(
                "IN subquery must return one column");
        }
        bool saw_null = operand.value().isNull();
        bool matched = false;
        for (const Row &row : rows.rows()) {
            auto eq = evalEquality(operand.value(), row[0], ctx);
            if (!eq.has_value())
                saw_null = true;
            else if (*eq)
                matched = true;
        }
        std::optional<bool> membership;
        if (matched)
            membership = true;
        else if (saw_null)
            membership = std::nullopt;
        else
            membership = false;
        if (!membership.has_value())
            return Value::null();
        return Value::boolean(in.negated ? !*membership : *membership);
      }
      case ExprKind::ScalarSubquery: {
        SQLPP_COVER("eval.op.scalar_subquery");
        const auto &sub = static_cast<const ScalarSubqueryExpr &>(expr);
        return evalSubqueryScalar(*sub.subquery, ctx);
      }
    }
    return Status::internal("unhandled expression kind");
}

} // namespace

StatusOr<Value>
evalExpr(const Expr &expr, const EvalContext &ctx)
{
    if (ctx.rootExpr == nullptr) {
        EvalContext rooted = ctx;
        rooted.rootExpr = &expr;
        return evalExprImpl(expr, rooted);
    }
    return evalExprImpl(expr, ctx);
}

} // namespace sqlpp
