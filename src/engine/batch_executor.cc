#include "engine/batch_executor.h"

#include <algorithm>

#include "util/metrics.h"

namespace sqlpp {

namespace {

using RowPredicate =
    std::function<StatusOr<bool>(const Expr &, const Row &)>;

/** The row path's PFILT/FILT loop over input[begin, end). */
Status
filterRowsByRow(const std::vector<const Expr *> &conjuncts,
                const std::vector<Row> &input, size_t begin, size_t end,
                const RowPredicate &rowPredicate, std::vector<Row> &out)
{
    for (size_t i = begin; i < end; ++i) {
        const Row &row = input[i];
        bool keep = true;
        for (const Expr *conjunct : conjuncts) {
            auto result = rowPredicate(*conjunct, row);
            if (!result.isOk())
                return result.status();
            if (!result.value()) {
                keep = false;
                break;
            }
        }
        if (keep)
            out.push_back(row);
    }
    return Status::ok();
}

VecEvalContext
chunkContext(const BatchExprEnv &env, const Row *const *rows, size_t n)
{
    VecEvalContext ctx;
    ctx.rows = rows;
    ctx.laneCount = n;
    ctx.behavior = env.behavior;
    ctx.budget = env.budget;
    return ctx;
}

} // namespace

Status
batchFilterRows(const BatchExprEnv &env,
                const std::vector<const Expr *> &conjuncts,
                const std::vector<Row> &input,
                const RowPredicate &rowPredicate, std::vector<Row> &out)
{
    out.clear();
    std::vector<VecExprPtr> kernels;
    kernels.reserve(conjuncts.size());
    for (const Expr *conjunct : conjuncts) {
        VecExprPtr kernel = compileVecExpr(*conjunct, *env.scope,
                                           *env.behavior, *env.faults);
        if (kernel == nullptr) {
            SQLPP_COUNT("campaign.exec.batch.filter.fallback");
            SQLPP_COUNT_N("campaign.exec.batch.rows.fallback",
                          input.size());
            return filterRowsByRow(conjuncts, input, 0, input.size(),
                                   rowPredicate, out);
        }
        kernels.push_back(std::move(kernel));
    }
    SQLPP_COUNT("campaign.exec.batch.filter.compiled");

    std::vector<const Row *> rows(kBatchRows);
    SelVector sel;
    SelVector survivors;
    VecColumn truth;
    for (size_t base = 0; base < input.size(); base += kBatchRows) {
        size_t n = std::min(kBatchRows, input.size() - base);
        SQLPP_COUNT("campaign.exec.batch.chunks");
        for (size_t i = 0; i < n; ++i)
            rows[i] = &input[base + i];
        VecEvalContext ctx = chunkContext(env, rows.data(), n);
        selectAll(sel, n);
        VecStatus st = VecStatus::Ok;
        for (const VecExprPtr &kernel : kernels) {
            // The row path never evaluates a later conjunct for a
            // dropped row; an empty selection means no lane is left.
            if (sel.empty())
                break;
            st = kernel->eval(ctx, sel, truth);
            if (st != VecStatus::Ok)
                break;
            survivors.clear();
            for (uint32_t lane : sel) {
                // Kernels only run fault-free, so a NULL predicate
                // always drops the row (no WhereNullAsTrue).
                if (!truth.isNull(lane) &&
                    *valueTruth(truth.values[lane])) {
                    survivors.push_back(lane);
                }
            }
            sel.swap(survivors);
        }
        if (st == VecStatus::Budget)
            return ctx.budgetError;
        if (st == VecStatus::RowError) {
            // Re-run the whole chunk row-at-a-time: the row evaluator
            // surfaces the chunk's first error in row order, which may
            // be an earlier row than the lane the kernel tripped on.
            SQLPP_COUNT_N("campaign.exec.batch.rows.fallback", n);
            Status s = filterRowsByRow(conjuncts, input, base, base + n,
                                       rowPredicate, out);
            if (!s.isOk())
                return s;
            continue;
        }
        SQLPP_COUNT_N("campaign.exec.batch.rows.kernel", n);
        for (uint32_t lane : sel)
            out.push_back(input[base + lane]);
    }
    return Status::ok();
}

StatusOr<bool>
batchProjectRows(const BatchExprEnv &env, const SelectStmt &select,
                 const std::vector<Row> &input,
                 const std::function<Status(const Row &)> &projectRow,
                 ResultSet &result,
                 std::vector<std::vector<Value>> &sortKeys)
{
    // Compile every projected item and every sort key up front; any
    // refusal sends the whole projection to the row loop (which also
    // owns the "SELECT * without FROM" error).
    struct Item
    {
        bool star = false;
        VecExprPtr kernel;
    };
    std::vector<Item> items;
    items.reserve(select.items.size());
    for (const SelectItem &item : select.items) {
        Item compiled;
        if (item.star) {
            if (env.scope->bindings.empty())
                return false;
            compiled.star = true;
        } else {
            compiled.kernel = compileVecExpr(*item.expr, *env.scope,
                                             *env.behavior, *env.faults);
            if (compiled.kernel == nullptr) {
                SQLPP_COUNT("campaign.exec.batch.project.fallback");
                SQLPP_COUNT_N("campaign.exec.batch.rows.fallback",
                              input.size());
                return false;
            }
        }
        items.push_back(std::move(compiled));
    }
    std::vector<VecExprPtr> order_kernels;
    order_kernels.reserve(select.orderBy.size());
    for (const OrderTerm &term : select.orderBy) {
        VecExprPtr kernel = compileVecExpr(*term.expr, *env.scope,
                                           *env.behavior, *env.faults);
        if (kernel == nullptr) {
            SQLPP_COUNT("campaign.exec.batch.project.fallback");
            SQLPP_COUNT_N("campaign.exec.batch.rows.fallback",
                          input.size());
            return false;
        }
        order_kernels.push_back(std::move(kernel));
    }
    SQLPP_COUNT("campaign.exec.batch.project.compiled");

    std::vector<const Row *> rows(kBatchRows);
    SelVector sel;
    std::vector<VecColumn> item_cols(items.size());
    std::vector<VecColumn> order_cols(order_kernels.size());
    for (size_t base = 0; base < input.size(); base += kBatchRows) {
        size_t n = std::min(kBatchRows, input.size() - base);
        SQLPP_COUNT("campaign.exec.batch.chunks");
        for (size_t i = 0; i < n; ++i)
            rows[i] = &input[base + i];
        VecEvalContext ctx = chunkContext(env, rows.data(), n);
        selectAll(sel, n);
        VecStatus st = VecStatus::Ok;
        for (size_t i = 0; i < items.size() && st == VecStatus::Ok; ++i) {
            if (!items[i].star)
                st = items[i].kernel->eval(ctx, sel, item_cols[i]);
        }
        for (size_t k = 0;
             k < order_kernels.size() && st == VecStatus::Ok; ++k) {
            st = order_kernels[k]->eval(ctx, sel, order_cols[k]);
        }
        if (st == VecStatus::Budget)
            return ctx.budgetError;
        if (st == VecStatus::RowError) {
            // Nothing was emitted for this chunk yet; the row re-run
            // reproduces the first error (or emits the chunk, if the
            // error lane turns out to be unreachable in row order).
            SQLPP_COUNT_N("campaign.exec.batch.rows.fallback", n);
            for (size_t i = 0; i < n; ++i) {
                if (Status s = projectRow(input[base + i]); !s.isOk())
                    return s;
            }
            continue;
        }
        SQLPP_COUNT_N("campaign.exec.batch.rows.kernel", n);
        for (uint32_t lane : sel) {
            Row out_row;
            for (size_t i = 0; i < items.size(); ++i) {
                if (items[i].star) {
                    const Row &in_row = *rows[lane];
                    out_row.insert(out_row.end(), in_row.begin(),
                                   in_row.end());
                } else {
                    out_row.push_back(item_cols[i].at(lane));
                }
            }
            if (Status s = env.budget->chargeRows(1); !s.isOk())
                return s;
            result.addRow(std::move(out_row));
            if (!order_kernels.empty()) {
                std::vector<Value> keys;
                keys.reserve(order_kernels.size());
                for (const VecColumn &col : order_cols)
                    keys.push_back(col.at(lane));
                sortKeys.push_back(std::move(keys));
            }
        }
    }
    return true;
}

} // namespace sqlpp
