#include "engine/vec_eval.h"

#include <cstdint>
#include <optional>
#include <utility>

namespace sqlpp {

namespace {

/**
 * Charge one evaluator step per active lane for the node being entered.
 * Mirrors evalExprImpl's charge-at-entry, aggregated per chunk.
 */
bool
chargeNode(VecEvalContext &ctx, size_t active_lanes)
{
    if (ctx.budget == nullptr)
        return true;
    Status s = ctx.budget->chargeSteps(active_lanes);
    if (!s.isOk()) {
        ctx.budgetError = std::move(s);
        return false;
    }
    return true;
}

std::optional<bool>
truthAt(const VecColumn &col, uint32_t lane)
{
    if (col.isNull(lane))
        return std::nullopt;
    return valueTruth(col.values[lane]);
}

std::optional<int64_t>
numericAt(const VecColumn &col, uint32_t lane)
{
    if (col.isNull(lane))
        return std::nullopt;
    return valueToNumeric(col.values[lane]);
}

std::optional<std::string>
textAt(const VecColumn &col, uint32_t lane)
{
    if (col.isNull(lane))
        return std::nullopt;
    return valueToText(col.values[lane]);
}

/** compareSql over lanes of two columns; nullopt when either is NULL. */
std::optional<int>
compareAt(const VecColumn &lhs, const VecColumn &rhs, uint32_t lane)
{
    if (lhs.isNull(lane) || rhs.isNull(lane))
        return std::nullopt;
    return compareSql(lhs.values[lane], rhs.values[lane]);
}

/**
 * Fault-free equality (evalEquality with NegContextMixedEq off, which
 * is a compile precondition).
 */
std::optional<bool>
equalAt(const VecColumn &lhs, const VecColumn &rhs, uint32_t lane)
{
    auto cmp = compareAt(lhs, rhs, lane);
    if (!cmp.has_value())
        return std::nullopt;
    return *cmp == 0;
}

class VecLiteral : public VecExpr
{
  public:
    explicit VecLiteral(Value value) : value_(std::move(value)) {}

    VecStatus
    eval(VecEvalContext &ctx, const SelVector &sel,
         VecColumn &out) const override
    {
        if (!chargeNode(ctx, sel.size()))
            return VecStatus::Budget;
        out.reset(ctx.laneCount);
        for (uint32_t lane : sel)
            out.set(lane, value_);
        return VecStatus::Ok;
    }

  private:
    Value value_;
};

class VecColumnRef : public VecExpr
{
  public:
    explicit VecColumnRef(size_t offset) : offset_(offset) {}

    VecStatus
    eval(VecEvalContext &ctx, const SelVector &sel,
         VecColumn &out) const override
    {
        if (!chargeNode(ctx, sel.size()))
            return VecStatus::Budget;
        out.reset(ctx.laneCount);
        for (uint32_t lane : sel)
            out.set(lane, (*ctx.rows[lane])[offset_]);
        return VecStatus::Ok;
    }

  private:
    size_t offset_;
};

class VecUnary : public VecExpr
{
  public:
    VecUnary(UnaryOp op, VecExprPtr operand)
        : op_(op), operand_(std::move(operand))
    {
    }

    VecStatus
    eval(VecEvalContext &ctx, const SelVector &sel,
         VecColumn &out) const override
    {
        if (!chargeNode(ctx, sel.size()))
            return VecStatus::Budget;
        VecStatus st = operand_->eval(ctx, sel, buf_);
        if (st != VecStatus::Ok)
            return st;
        out.reset(ctx.laneCount);
        for (uint32_t lane : sel) {
            switch (op_) {
              case UnaryOp::Not: {
                auto truth = truthAt(buf_, lane);
                if (!truth.has_value())
                    out.setNull(lane);
                else
                    out.set(lane, Value::boolean(!*truth));
                break;
              }
              case UnaryOp::Neg: {
                auto numeric = numericAt(buf_, lane);
                if (!numeric) {
                    out.setNull(lane);
                    break;
                }
                if (*numeric == INT64_MIN)
                    return VecStatus::RowError;
                out.set(lane, Value::integer(-*numeric));
                break;
              }
              case UnaryOp::Plus: {
                auto numeric = numericAt(buf_, lane);
                if (!numeric)
                    out.setNull(lane);
                else
                    out.set(lane, Value::integer(*numeric));
                break;
              }
              case UnaryOp::BitNot: {
                auto numeric = numericAt(buf_, lane);
                if (!numeric)
                    out.setNull(lane);
                else
                    out.set(lane, Value::integer(~*numeric));
                break;
              }
              case UnaryOp::IsNull:
                out.set(lane, Value::boolean(buf_.isNull(lane)));
                break;
              case UnaryOp::IsNotNull:
                out.set(lane, Value::boolean(!buf_.isNull(lane)));
                break;
              case UnaryOp::IsTrue: {
                auto truth = truthAt(buf_, lane);
                out.set(lane,
                        Value::boolean(truth.has_value() && *truth));
                break;
              }
              case UnaryOp::IsFalse: {
                auto truth = truthAt(buf_, lane);
                out.set(lane,
                        Value::boolean(truth.has_value() && !*truth));
                break;
              }
              case UnaryOp::IsNotTrue: {
                auto truth = truthAt(buf_, lane);
                out.set(lane,
                        Value::boolean(!(truth.has_value() && *truth)));
                break;
              }
              case UnaryOp::IsNotFalse: {
                auto truth = truthAt(buf_, lane);
                out.set(lane,
                        Value::boolean(!(truth.has_value() && !*truth)));
                break;
              }
            }
        }
        return VecStatus::Ok;
    }

  private:
    UnaryOp op_;
    VecExprPtr operand_;
    mutable VecColumn buf_;
};

/**
 * AND/OR with vectorized short-circuiting: the right operand evaluates
 * only over lanes the left side did not decide, exactly the rows the
 * row evaluator would have evaluated it for (same errors, same budget).
 */
class VecLogical : public VecExpr
{
  public:
    VecLogical(bool is_and, VecExprPtr lhs, VecExprPtr rhs)
        : is_and_(is_and), lhs_(std::move(lhs)), rhs_(std::move(rhs))
    {
    }

    VecStatus
    eval(VecEvalContext &ctx, const SelVector &sel,
         VecColumn &out) const override
    {
        if (!chargeNode(ctx, sel.size()))
            return VecStatus::Budget;
        VecStatus st = lhs_->eval(ctx, sel, lhs_buf_);
        if (st != VecStatus::Ok)
            return st;
        rhs_sel_.clear();
        for (uint32_t lane : sel) {
            auto a = truthAt(lhs_buf_, lane);
            bool decided = a.has_value() && (is_and_ ? !*a : *a);
            if (!decided)
                rhs_sel_.push_back(lane);
        }
        if (!rhs_sel_.empty()) {
            st = rhs_->eval(ctx, rhs_sel_, rhs_buf_);
            if (st != VecStatus::Ok)
                return st;
        }
        out.reset(ctx.laneCount);
        for (uint32_t lane : sel) {
            auto a = truthAt(lhs_buf_, lane);
            if (is_and_) {
                if (a.has_value() && !*a) {
                    out.set(lane, Value::boolean(false));
                    continue;
                }
                auto b = truthAt(rhs_buf_, lane);
                if (b.has_value() && !*b)
                    out.set(lane, Value::boolean(false));
                else if (a.has_value() && b.has_value())
                    out.set(lane, Value::boolean(*a && *b));
                else
                    out.setNull(lane);
            } else {
                if (a.has_value() && *a) {
                    out.set(lane, Value::boolean(true));
                    continue;
                }
                auto b = truthAt(rhs_buf_, lane);
                if (b.has_value() && *b)
                    out.set(lane, Value::boolean(true));
                else if (a.has_value() && b.has_value())
                    out.set(lane, Value::boolean(*a || *b));
                else
                    out.setNull(lane);
            }
        }
        return VecStatus::Ok;
    }

  private:
    bool is_and_;
    VecExprPtr lhs_;
    VecExprPtr rhs_;
    mutable VecColumn lhs_buf_;
    mutable VecColumn rhs_buf_;
    mutable SelVector rhs_sel_;
};

/** Every non-logical binary operator; both sides evaluate eagerly. */
class VecBinary : public VecExpr
{
  public:
    VecBinary(BinaryOp op, VecExprPtr lhs, VecExprPtr rhs,
              bool case_insensitive_like)
        : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)),
          ci_like_(case_insensitive_like)
    {
    }

    VecStatus
    eval(VecEvalContext &ctx, const SelVector &sel,
         VecColumn &out) const override
    {
        if (!chargeNode(ctx, sel.size()))
            return VecStatus::Budget;
        VecStatus st = lhs_->eval(ctx, sel, lhs_buf_);
        if (st != VecStatus::Ok)
            return st;
        st = rhs_->eval(ctx, sel, rhs_buf_);
        if (st != VecStatus::Ok)
            return st;
        out.reset(ctx.laneCount);
        for (uint32_t lane : sel) {
            st = combine(ctx, lane, out);
            if (st != VecStatus::Ok)
                return st;
        }
        return VecStatus::Ok;
    }

  private:
    VecStatus
    combine(VecEvalContext &ctx, uint32_t lane, VecColumn &out) const
    {
        switch (op_) {
          case BinaryOp::Add:
          case BinaryOp::Sub:
          case BinaryOp::Mul:
          case BinaryOp::Div:
          case BinaryOp::Mod:
            return arithmetic(ctx, lane, out);
          case BinaryOp::BitAnd:
          case BinaryOp::BitOr:
          case BinaryOp::BitXor:
          case BinaryOp::ShiftLeft:
          case BinaryOp::ShiftRight:
            return bitwise(lane, out);
          case BinaryOp::Concat: {
            auto a = textAt(lhs_buf_, lane);
            auto b = textAt(rhs_buf_, lane);
            if (!a || !b)
                out.setNull(lane);
            else
                out.set(lane, Value::text(*a + *b));
            return VecStatus::Ok;
          }
          case BinaryOp::Like:
          case BinaryOp::NotLike: {
            auto text = textAt(lhs_buf_, lane);
            auto pattern = textAt(rhs_buf_, lane);
            if (!text || !pattern) {
                out.setNull(lane);
                return VecStatus::Ok;
            }
            bool matched = likeMatch(*text, *pattern, ci_like_,
                                     /*underscore_is_literal=*/false);
            out.set(lane, Value::boolean(op_ == BinaryOp::Like
                                             ? matched
                                             : !matched));
            return VecStatus::Ok;
          }
          case BinaryOp::Glob: {
            auto text = textAt(lhs_buf_, lane);
            auto pattern = textAt(rhs_buf_, lane);
            if (!text || !pattern)
                out.setNull(lane);
            else
                out.set(lane,
                        Value::boolean(globMatch(*text, *pattern)));
            return VecStatus::Ok;
          }
          case BinaryOp::Eq: {
            auto eq = equalAt(lhs_buf_, rhs_buf_, lane);
            if (!eq.has_value())
                out.setNull(lane);
            else
                out.set(lane, Value::boolean(*eq));
            return VecStatus::Ok;
          }
          case BinaryOp::NotEq:
          case BinaryOp::NotEqBang: {
            auto eq = equalAt(lhs_buf_, rhs_buf_, lane);
            if (!eq.has_value())
                out.setNull(lane);
            else
                out.set(lane, Value::boolean(!*eq));
            return VecStatus::Ok;
          }
          case BinaryOp::NullSafeEq: {
            bool lnull = lhs_buf_.isNull(lane);
            bool rnull = rhs_buf_.isNull(lane);
            if (lnull && rnull) {
                out.set(lane, Value::boolean(true));
            } else if (lnull || rnull) {
                out.set(lane, Value::boolean(false));
            } else {
                auto eq = equalAt(lhs_buf_, rhs_buf_, lane);
                out.set(lane, Value::boolean(eq.value_or(false)));
            }
            return VecStatus::Ok;
          }
          case BinaryOp::IsDistinctFrom:
          case BinaryOp::IsNotDistinctFrom: {
            bool lnull = lhs_buf_.isNull(lane);
            bool rnull = rhs_buf_.isNull(lane);
            bool same;
            if (lnull && rnull) {
                same = true;
            } else if (lnull || rnull) {
                same = false;
            } else {
                auto eq = equalAt(lhs_buf_, rhs_buf_, lane);
                same = eq.value_or(false);
            }
            bool distinct = !same;
            out.set(lane, Value::boolean(op_ == BinaryOp::IsDistinctFrom
                                             ? distinct
                                             : !distinct));
            return VecStatus::Ok;
          }
          case BinaryOp::Less:
          case BinaryOp::LessEq:
          case BinaryOp::Greater:
          case BinaryOp::GreaterEq: {
            auto cmp = compareAt(lhs_buf_, rhs_buf_, lane);
            if (!cmp.has_value()) {
                out.setNull(lane);
                return VecStatus::Ok;
            }
            bool result = false;
            switch (op_) {
              case BinaryOp::Less: result = *cmp < 0; break;
              case BinaryOp::LessEq: result = *cmp <= 0; break;
              case BinaryOp::Greater: result = *cmp > 0; break;
              case BinaryOp::GreaterEq: result = *cmp >= 0; break;
              default: break;
            }
            out.set(lane, Value::boolean(result));
            return VecStatus::Ok;
          }
          default:
            // And/Or are VecLogical; anything else is a compiler bug —
            // fail safe to the row evaluator.
            return VecStatus::RowError;
        }
    }

    VecStatus
    arithmetic(VecEvalContext &ctx, uint32_t lane, VecColumn &out) const
    {
        auto a = numericAt(lhs_buf_, lane);
        auto b = numericAt(rhs_buf_, lane);
        if (!a || !b) {
            out.setNull(lane);
            return VecStatus::Ok;
        }
        int64_t result = 0;
        switch (op_) {
          case BinaryOp::Add:
            if (__builtin_add_overflow(*a, *b, &result))
                return VecStatus::RowError;
            break;
          case BinaryOp::Sub:
            if (__builtin_sub_overflow(*a, *b, &result))
                return VecStatus::RowError;
            break;
          case BinaryOp::Mul:
            if (__builtin_mul_overflow(*a, *b, &result))
                return VecStatus::RowError;
            break;
          case BinaryOp::Div:
            if (*b == 0) {
                if (ctx.behavior == nullptr ||
                    ctx.behavior->divZeroIsNull) {
                    out.setNull(lane);
                    return VecStatus::Ok;
                }
                return VecStatus::RowError;
            }
            if (*a == INT64_MIN && *b == -1)
                return VecStatus::RowError;
            result = *a / *b;
            break;
          case BinaryOp::Mod:
            if (*b == 0) {
                if (ctx.behavior == nullptr ||
                    ctx.behavior->divZeroIsNull) {
                    out.setNull(lane);
                    return VecStatus::Ok;
                }
                return VecStatus::RowError;
            }
            if (*a == INT64_MIN && *b == -1)
                result = 0;
            else
                result = *a % *b;
            break;
          default:
            return VecStatus::RowError;
        }
        out.set(lane, Value::integer(result));
        return VecStatus::Ok;
    }

    VecStatus
    bitwise(uint32_t lane, VecColumn &out) const
    {
        auto a = numericAt(lhs_buf_, lane);
        auto b = numericAt(rhs_buf_, lane);
        if (!a || !b) {
            out.setNull(lane);
            return VecStatus::Ok;
        }
        uint64_t ua = static_cast<uint64_t>(*a);
        uint64_t ub = static_cast<uint64_t>(*b);
        switch (op_) {
          case BinaryOp::BitAnd:
            out.set(lane, Value::integer(static_cast<int64_t>(ua & ub)));
            break;
          case BinaryOp::BitOr:
            out.set(lane, Value::integer(static_cast<int64_t>(ua | ub)));
            break;
          case BinaryOp::BitXor:
            out.set(lane, Value::integer(static_cast<int64_t>(ua ^ ub)));
            break;
          case BinaryOp::ShiftLeft:
            if (*b < 0 || *b > 63)
                out.set(lane, Value::integer(0));
            else
                out.set(lane,
                        Value::integer(static_cast<int64_t>(ua << ub)));
            break;
          case BinaryOp::ShiftRight:
            if (*b < 0 || *b > 63)
                out.set(lane, Value::integer(0));
            else
                out.set(lane, Value::integer(*a >> ub)); // arithmetic
            break;
          default:
            return VecStatus::RowError;
        }
        return VecStatus::Ok;
    }

    BinaryOp op_;
    VecExprPtr lhs_;
    VecExprPtr rhs_;
    bool ci_like_;
    mutable VecColumn lhs_buf_;
    mutable VecColumn rhs_buf_;
};

class VecBetween : public VecExpr
{
  public:
    VecBetween(VecExprPtr operand, VecExprPtr low, VecExprPtr high,
               bool negated)
        : operand_(std::move(operand)), low_(std::move(low)),
          high_(std::move(high)), negated_(negated)
    {
    }

    VecStatus
    eval(VecEvalContext &ctx, const SelVector &sel,
         VecColumn &out) const override
    {
        if (!chargeNode(ctx, sel.size()))
            return VecStatus::Budget;
        // The row evaluator computes operand, low, and high for every
        // row before comparing; mirror that (errors and budget alike).
        VecStatus st = operand_->eval(ctx, sel, operand_buf_);
        if (st != VecStatus::Ok)
            return st;
        st = low_->eval(ctx, sel, low_buf_);
        if (st != VecStatus::Ok)
            return st;
        st = high_->eval(ctx, sel, high_buf_);
        if (st != VecStatus::Ok)
            return st;
        out.reset(ctx.laneCount);
        for (uint32_t lane : sel) {
            auto low_cmp = compareAt(operand_buf_, low_buf_, lane);
            auto high_cmp = compareAt(operand_buf_, high_buf_, lane);
            std::optional<bool> ge_low =
                low_cmp ? std::optional<bool>(*low_cmp >= 0)
                        : std::nullopt;
            std::optional<bool> le_high =
                high_cmp ? std::optional<bool>(*high_cmp <= 0)
                         : std::nullopt;
            std::optional<bool> both;
            if ((ge_low && !*ge_low) || (le_high && !*le_high))
                both = false;
            else if (ge_low && le_high)
                both = *ge_low && *le_high;
            if (!both.has_value())
                out.setNull(lane);
            else
                out.set(lane,
                        Value::boolean(negated_ ? !*both : *both));
        }
        return VecStatus::Ok;
    }

  private:
    VecExprPtr operand_;
    VecExprPtr low_;
    VecExprPtr high_;
    bool negated_;
    mutable VecColumn operand_buf_;
    mutable VecColumn low_buf_;
    mutable VecColumn high_buf_;
};

class VecInList : public VecExpr
{
  public:
    VecInList(VecExprPtr operand, std::vector<VecExprPtr> items,
              bool negated)
        : operand_(std::move(operand)), items_(std::move(items)),
          negated_(negated)
    {
    }

    VecStatus
    eval(VecEvalContext &ctx, const SelVector &sel,
         VecColumn &out) const override
    {
        if (!chargeNode(ctx, sel.size()))
            return VecStatus::Budget;
        VecStatus st = operand_->eval(ctx, sel, operand_buf_);
        if (st != VecStatus::Ok)
            return st;
        matched_.assign(ctx.laneCount, 0);
        saw_null_.assign(ctx.laneCount, 0);
        for (uint32_t lane : sel) {
            if (operand_buf_.isNull(lane))
                saw_null_[lane] = 1;
        }
        // The row evaluator probes every list item (no early exit);
        // keep that order so item errors surface identically.
        for (const VecExprPtr &item : items_) {
            st = item->eval(ctx, sel, item_buf_);
            if (st != VecStatus::Ok)
                return st;
            for (uint32_t lane : sel) {
                auto eq = equalAt(operand_buf_, item_buf_, lane);
                if (!eq.has_value())
                    saw_null_[lane] = 1;
                else if (*eq)
                    matched_[lane] = 1;
            }
        }
        out.reset(ctx.laneCount);
        for (uint32_t lane : sel) {
            std::optional<bool> result;
            if (matched_[lane])
                result = true;
            else if (saw_null_[lane])
                result = std::nullopt;
            else
                result = false;
            if (!result.has_value())
                out.setNull(lane);
            else
                out.set(lane,
                        Value::boolean(negated_ ? !*result : *result));
        }
        return VecStatus::Ok;
    }

  private:
    VecExprPtr operand_;
    std::vector<VecExprPtr> items_;
    bool negated_;
    mutable VecColumn operand_buf_;
    mutable VecColumn item_buf_;
    mutable std::vector<uint8_t> matched_;
    mutable std::vector<uint8_t> saw_null_;
};

class VecCast : public VecExpr
{
  public:
    VecCast(VecExprPtr operand, DataType target)
        : operand_(std::move(operand)), target_(target)
    {
    }

    VecStatus
    eval(VecEvalContext &ctx, const SelVector &sel,
         VecColumn &out) const override
    {
        if (!chargeNode(ctx, sel.size()))
            return VecStatus::Budget;
        VecStatus st = operand_->eval(ctx, sel, buf_);
        if (st != VecStatus::Ok)
            return st;
        out.reset(ctx.laneCount);
        for (uint32_t lane : sel) {
            if (buf_.isNull(lane)) {
                out.setNull(lane);
                continue;
            }
            const Value &value = buf_.values[lane];
            switch (target_) {
              case DataType::Int:
                out.set(lane, Value::integer(*valueToNumeric(value)));
                break;
              case DataType::Text:
                out.set(lane, Value::text(*valueToText(value)));
                break;
              case DataType::Bool:
                out.set(lane, Value::boolean(
                                  valueTruth(value).value_or(false)));
                break;
            }
        }
        return VecStatus::Ok;
    }

  private:
    VecExprPtr operand_;
    DataType target_;
    mutable VecColumn buf_;
};

VecExprPtr
compileNode(const Expr &expr, const Scope &scope,
            const EngineBehavior &behavior)
{
    switch (expr.kind()) {
      case ExprKind::Literal:
        return std::make_unique<VecLiteral>(
            static_cast<const LiteralExpr &>(expr).value);
      case ExprKind::ColumnRef: {
        const auto &ref = static_cast<const ColumnRefExpr &>(expr);
        // Only references the local frame resolves cleanly: a failed
        // resolve may be a correlated (outer-frame) reference and an
        // ambiguous one must produce the row evaluator's exact error.
        auto offset = scope.resolve(ref.table, ref.column);
        if (!offset.isOk())
            return nullptr;
        return std::make_unique<VecColumnRef>(offset.value());
      }
      case ExprKind::Unary: {
        const auto &unary = static_cast<const UnaryExpr &>(expr);
        VecExprPtr operand =
            compileNode(*unary.operand, scope, behavior);
        if (operand == nullptr)
            return nullptr;
        return std::make_unique<VecUnary>(unary.op, std::move(operand));
      }
      case ExprKind::Binary: {
        const auto &bin = static_cast<const BinaryExpr &>(expr);
        VecExprPtr lhs = compileNode(*bin.lhs, scope, behavior);
        VecExprPtr rhs = compileNode(*bin.rhs, scope, behavior);
        if (lhs == nullptr || rhs == nullptr)
            return nullptr;
        if (bin.op == BinaryOp::And || bin.op == BinaryOp::Or) {
            return std::make_unique<VecLogical>(
                bin.op == BinaryOp::And, std::move(lhs),
                std::move(rhs));
        }
        return std::make_unique<VecBinary>(bin.op, std::move(lhs),
                                           std::move(rhs),
                                           behavior.caseInsensitiveLike);
      }
      case ExprKind::Between: {
        const auto &between = static_cast<const BetweenExpr &>(expr);
        VecExprPtr operand =
            compileNode(*between.operand, scope, behavior);
        VecExprPtr low = compileNode(*between.low, scope, behavior);
        VecExprPtr high = compileNode(*between.high, scope, behavior);
        if (operand == nullptr || low == nullptr || high == nullptr)
            return nullptr;
        return std::make_unique<VecBetween>(
            std::move(operand), std::move(low), std::move(high),
            between.negated);
      }
      case ExprKind::InList: {
        const auto &in = static_cast<const InListExpr &>(expr);
        VecExprPtr operand = compileNode(*in.operand, scope, behavior);
        if (operand == nullptr)
            return nullptr;
        std::vector<VecExprPtr> items;
        items.reserve(in.items.size());
        for (const ExprPtr &item : in.items) {
            VecExprPtr compiled = compileNode(*item, scope, behavior);
            if (compiled == nullptr)
                return nullptr;
            items.push_back(std::move(compiled));
        }
        return std::make_unique<VecInList>(std::move(operand),
                                           std::move(items),
                                           in.negated);
      }
      case ExprKind::Cast: {
        const auto &cast = static_cast<const CastExpr &>(expr);
        VecExprPtr operand =
            compileNode(*cast.operand, scope, behavior);
        if (operand == nullptr)
            return nullptr;
        return std::make_unique<VecCast>(std::move(operand),
                                         cast.target);
      }
      default:
        // CASE (short-circuiting arms), function calls (registry +
        // coverage probes), and subqueries stay on the row evaluator.
        return nullptr;
    }
}

} // namespace

VecExprPtr
compileVecExpr(const Expr &expr, const Scope &scope,
               const EngineBehavior &behavior, const FaultSet &faults)
{
    // Kernels implement the fault-free semantics only. Any injected
    // fault must flow through the shared row evaluator so it manifests
    // identically in every execution mode — that is what makes the
    // fault × oracle detection matrix mode-invariant.
    if (!faults.empty())
        return nullptr;
    return compileNode(expr, scope, behavior);
}

} // namespace sqlpp
