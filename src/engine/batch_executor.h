/**
 * @file
 * Batch-at-a-time operators for ExecMode::Batch.
 *
 * These are the three hot loops the batch path accelerates — predicate
 * filtering (SCAN/PFILT/FILT) and projection with sort-key evaluation
 * (PROJ) — expressed over chunks of kBatchRows rows with vectorized
 * expression kernels (engine/vec_eval.h). Everything else in the
 * executor (joins, aggregation, DISTINCT, SORT, index probes) is shared
 * row code: the batch mode plans exactly like Optimized, so its plan
 * fingerprints, notes, and coverage atoms are Optimized's.
 *
 * Fallback contract: when the kernel compiler refuses an expression
 * (subqueries, CASE, functions, faults, correlated refs) the operator
 * runs the caller-supplied row callback for the whole input, preserving
 * row-path behavior bit-for-bit. When a kernel reports a lane error the
 * affected chunk is re-run row-at-a-time from scratch, which reproduces
 * the row path's first error in the row path's order (error-path chunks
 * are charged twice against the budget; see EXPERIMENTS.md).
 */
#ifndef SQLPP_ENGINE_BATCH_EXECUTOR_H
#define SQLPP_ENGINE_BATCH_EXECUTOR_H

#include <functional>
#include <vector>

#include "engine/budget.h"
#include "engine/eval.h"
#include "engine/faults.h"
#include "engine/vec_eval.h"
#include "sqlir/ast.h"
#include "util/status.h"

namespace sqlpp {

/** Inputs shared by every batch operator. */
struct BatchExprEnv
{
    const Scope *scope = nullptr;
    const EngineBehavior *behavior = nullptr;
    const FaultSet *faults = nullptr;
    BudgetMeter *budget = nullptr;
};

/**
 * Filter @p input by the AND of @p conjuncts into @p out (copies of the
 * surviving rows, in input order). @p rowPredicate must implement the
 * row path's exact keep/drop semantics for one conjunct against one row
 * (i.e. Executor::predicateKeeps); it is used when compilation is
 * refused and when a chunk needs an error re-run.
 */
Status batchFilterRows(
    const BatchExprEnv &env, const std::vector<const Expr *> &conjuncts,
    const std::vector<Row> &input,
    const std::function<StatusOr<bool>(const Expr &, const Row &)>
        &rowPredicate,
    std::vector<Row> &out);

/**
 * Project @p input through @p select's items (and evaluate its ORDER BY
 * keys) into @p result / @p sortKeys. Returns false — with no work done
 * and no budget charged — when any item or sort key is outside the
 * kernel subset; the caller then runs its row loop. @p projectRow must
 * implement the row path's per-row projection + sort-key evaluation and
 * is used for error re-runs.
 */
StatusOr<bool> batchProjectRows(
    const BatchExprEnv &env, const SelectStmt &select,
    const std::vector<Row> &input,
    const std::function<Status(const Row &)> &projectRow,
    ResultSet &result, std::vector<std::vector<Value>> &sortKeys);

} // namespace sqlpp

#endif // SQLPP_ENGINE_BATCH_EXECUTOR_H
