#include "engine/catalog.h"

#include <algorithm>

namespace sqlpp {

StoredIndex::StoredIndex(const StoredIndex &other)
    : name(other.name), columnOrdinals(other.columnOrdinals),
      unique(other.unique),
      predicate(other.predicate ? other.predicate->clone() : nullptr),
      entries(other.entries)
{
}

int
StoredIndex::compareKeys(const std::vector<Value> &a,
                         const std::vector<Value> &b)
{
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
        int c = a[i].compareTotal(b[i]);
        if (c != 0)
            return c;
    }
    if (a.size() == b.size())
        return 0;
    return a.size() < b.size() ? -1 : 1;
}

void
StoredIndex::insert(std::vector<Value> key, size_t row_ordinal)
{
    Entry entry{std::move(key), row_ordinal};
    auto pos = std::lower_bound(
        entries.begin(), entries.end(), entry,
        [](const Entry &lhs, const Entry &rhs) {
            return compareKeys(lhs.key, rhs.key) < 0;
        });
    entries.insert(pos, std::move(entry));
}

bool
StoredIndex::containsConflictingKey(const std::vector<Value> &key) const
{
    // SQL unique semantics: NULL never conflicts with anything.
    for (const Value &v : key) {
        if (v.isNull())
            return false;
    }
    Entry probe{key, 0};
    auto pos = std::lower_bound(
        entries.begin(), entries.end(), probe,
        [](const Entry &lhs, const Entry &rhs) {
            return compareKeys(lhs.key, rhs.key) < 0;
        });
    return pos != entries.end() && compareKeys(pos->key, key) == 0;
}

size_t
StoredTable::columnOrdinal(const std::string &column_name) const
{
    for (size_t i = 0; i < columns.size(); ++i) {
        if (columns[i].name == column_name)
            return i;
    }
    return npos;
}

StoredView::StoredView(const StoredView &other)
    : name(other.name), columnNames(other.columnNames),
      select(other.select ? other.select->cloneSelect() : nullptr)
{
}

bool
Catalog::hasTable(const std::string &name) const
{
    return tables_.count(name) > 0;
}

bool
Catalog::hasView(const std::string &name) const
{
    return views_.count(name) > 0;
}

bool
Catalog::hasIndex(const std::string &name) const
{
    return index_owner_.count(name) > 0;
}

bool
Catalog::hasObject(const std::string &name) const
{
    return hasTable(name) || hasView(name) || hasIndex(name);
}

StoredTable *
Catalog::table(const std::string &name)
{
    auto it = tables_.find(name);
    return it == tables_.end() ? nullptr : &it->second;
}

const StoredTable *
Catalog::table(const std::string &name) const
{
    auto it = tables_.find(name);
    return it == tables_.end() ? nullptr : &it->second;
}

StoredView *
Catalog::view(const std::string &name)
{
    auto it = views_.find(name);
    return it == views_.end() ? nullptr : &it->second;
}

const StoredView *
Catalog::view(const std::string &name) const
{
    auto it = views_.find(name);
    return it == views_.end() ? nullptr : &it->second;
}

Status
Catalog::addTable(StoredTable table)
{
    if (hasObject(table.name)) {
        return Status::semanticError("object already exists: " +
                                     table.name);
    }
    tables_.emplace(table.name, std::move(table));
    return Status::ok();
}

Status
Catalog::addView(StoredView view)
{
    if (hasObject(view.name))
        return Status::semanticError("object already exists: " + view.name);
    views_.emplace(view.name, std::move(view));
    return Status::ok();
}

Status
Catalog::addIndex(const std::string &table_name, StoredIndex index)
{
    if (hasObject(index.name)) {
        return Status::semanticError("object already exists: " +
                                     index.name);
    }
    StoredTable *owner = table(table_name);
    if (owner == nullptr)
        return Status::semanticError("no such table: " + table_name);
    index_owner_[index.name] = table_name;
    owner->indexes.push_back(std::move(index));
    return Status::ok();
}

Status
Catalog::dropTable(const std::string &name)
{
    auto it = tables_.find(name);
    if (it == tables_.end())
        return Status::semanticError("no such table: " + name);
    // Drop indexes owned by the table.
    for (auto owner_it = index_owner_.begin();
         owner_it != index_owner_.end();) {
        if (owner_it->second == name)
            owner_it = index_owner_.erase(owner_it);
        else
            ++owner_it;
    }
    tables_.erase(it);
    return Status::ok();
}

Status
Catalog::dropView(const std::string &name)
{
    auto it = views_.find(name);
    if (it == views_.end())
        return Status::semanticError("no such view: " + name);
    views_.erase(it);
    return Status::ok();
}

Status
Catalog::dropIndex(const std::string &name)
{
    auto it = index_owner_.find(name);
    if (it == index_owner_.end())
        return Status::semanticError("no such index: " + name);
    StoredTable *owner = table(it->second);
    if (owner != nullptr) {
        auto &indexes = owner->indexes;
        indexes.erase(
            std::remove_if(indexes.begin(), indexes.end(),
                           [&](const StoredIndex &index) {
                               return index.name == name;
                           }),
            indexes.end());
    }
    index_owner_.erase(it);
    return Status::ok();
}

std::vector<std::string>
Catalog::tableNames() const
{
    std::vector<std::string> out;
    out.reserve(tables_.size());
    for (const auto &[name, table] : tables_)
        out.push_back(name);
    return out;
}

std::vector<std::string>
Catalog::viewNames() const
{
    std::vector<std::string> out;
    out.reserve(views_.size());
    for (const auto &[name, view] : views_)
        out.push_back(name);
    return out;
}

} // namespace sqlpp
