#include "engine/functions.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/coverage.h"
#include "util/strutil.h"

namespace sqlpp {

namespace {

/** Domain error: NULL or runtime error depending on engine behaviour. */
StatusOr<Value>
domainError(const EvalContext &ctx, const char *what)
{
    if (ctx.behavior != nullptr && ctx.behavior->domainErrorIsNull)
        return Value::null();
    return Status::runtimeError(std::string("domain error in ") + what);
}

/** Shared shape of unary fixed-point transcendental functions. */
StatusOr<Value>
fixedPointUnary(const std::vector<Value> &args, const EvalContext &ctx,
                const char *name, double (*fn)(double),
                bool (*domain_ok)(double))
{
    auto x = valueToNumeric(args[0]);
    if (!x)
        return Value::null();
    double input = static_cast<double>(*x);
    if (!domain_ok(input))
        return domainError(ctx, name);
    double result = fn(input) * static_cast<double>(kFixedPointScale);
    if (!std::isfinite(result) || result > 9.2e18 || result < -9.2e18)
        return Status::runtimeError(std::string("overflow in ") + name);
    return Value::integer(static_cast<int64_t>(std::llround(result)));
}

StatusOr<Value>
textUnary(const std::vector<Value> &args,
          std::string (*fn)(const std::string &))
{
    auto text = valueToText(args[0]);
    if (!text)
        return Value::null();
    return Value::text(fn(*text));
}

constexpr int64_t kMaxGeneratedStringLength = 1 << 16;

} // namespace

const FunctionRegistry &
FunctionRegistry::instance()
{
    static FunctionRegistry registry;
    return registry;
}

const FunctionImpl *
FunctionRegistry::find(const std::string &upper_name) const
{
    for (const FunctionImpl &impl : impls_) {
        if (impl.sig.name == upper_name)
            return &impl;
    }
    return nullptr;
}

std::vector<std::string>
FunctionRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(impls_.size());
    for (const FunctionImpl &impl : impls_)
        out.push_back(impl.sig.name);
    std::sort(out.begin(), out.end());
    return out;
}

void
FunctionRegistry::add(FunctionImpl impl)
{
    impl.probeSlot = CoverageRegistry::instance().slot(
        "eval.fn." + toLower(impl.sig.name));
    impls_.push_back(std::move(impl));
}

FunctionRegistry::FunctionRegistry()
{
    using Args = const std::vector<Value> &;
    using Ctx = const EvalContext &;

    auto sig = [](const char *name, std::vector<TypeSpec> args,
                  TypeSpec ret, bool variadic = false,
                  bool ret_same = false) {
        FunctionSig s;
        s.name = name;
        s.args = std::move(args);
        s.ret = ret;
        s.variadic = variadic;
        s.retSameAsArg0 = ret_same;
        return s;
    };

    // ------------------------------------------------------------------
    // Math functions (22).
    // ------------------------------------------------------------------
    add({sig("ABS", {TypeSpec::Int}, TypeSpec::Int),
         [](Args args, Ctx) -> StatusOr<Value> {
             auto x = valueToNumeric(args[0]);
             if (!x)
                 return Value::null();
             if (*x == INT64_MIN)
                 return Status::runtimeError("integer overflow in ABS");
             return Value::integer(*x < 0 ? -*x : *x);
         }});
    add({sig("SIGN", {TypeSpec::Int}, TypeSpec::Int),
         [](Args args, Ctx) -> StatusOr<Value> {
             auto x = valueToNumeric(args[0]);
             if (!x)
                 return Value::null();
             return Value::integer(*x > 0 ? 1 : (*x < 0 ? -1 : 0));
         }});
    add({sig("MOD", {TypeSpec::Int, TypeSpec::Int}, TypeSpec::Int),
         [](Args args, Ctx ctx) -> StatusOr<Value> {
             auto a = valueToNumeric(args[0]);
             auto b = valueToNumeric(args[1]);
             if (!a || !b)
                 return Value::null();
             if (*b == 0) {
                 if (ctx.behavior == nullptr ||
                     ctx.behavior->divZeroIsNull) {
                     return Value::null();
                 }
                 return Status::runtimeError("division by zero in MOD");
             }
             if (*a == INT64_MIN && *b == -1)
                 return Value::integer(0);
             return Value::integer(*a % *b);
         }});
    add({sig("POWER", {TypeSpec::Int, TypeSpec::Int}, TypeSpec::Int),
         [](Args args, Ctx) -> StatusOr<Value> {
             auto base = valueToNumeric(args[0]);
             auto exp = valueToNumeric(args[1]);
             if (!base || !exp)
                 return Value::null();
             if (*exp < 0) {
                 // Integer POWER with negative exponent truncates to 0
                 // except for |base| == 1.
                 if (*base == 1)
                     return Value::integer(1);
                 if (*base == -1)
                     return Value::integer((*exp % 2) == 0 ? 1 : -1);
                 if (*base == 0)
                     return Status::runtimeError("0 to a negative power");
                 return Value::integer(0);
             }
             int64_t result = 1;
             int64_t b = *base;
             int64_t e = *exp;
             while (e > 0) {
                 if ((e & 1) != 0) {
                     if (__builtin_mul_overflow(result, b, &result))
                         return Status::runtimeError(
                             "integer overflow in POWER");
                 }
                 e >>= 1;
                 if (e > 0 && __builtin_mul_overflow(b, b, &b))
                     return Status::runtimeError(
                         "integer overflow in POWER");
             }
             return Value::integer(result);
         }});
    add({sig("SQRT", {TypeSpec::Int}, TypeSpec::Int),
         [](Args args, Ctx ctx) -> StatusOr<Value> {
             auto x = valueToNumeric(args[0]);
             if (!x)
                 return Value::null();
             if (*x < 0)
                 return domainError(ctx, "SQRT");
             int64_t root = static_cast<int64_t>(
                 std::sqrt(static_cast<double>(*x)));
             while (root > 0 && root * root > *x)
                 --root;
             while ((root + 1) * (root + 1) <= *x)
                 ++root;
             return Value::integer(root);
         }});
    auto identity_int = [](Args args, Ctx) -> StatusOr<Value> {
        auto x = valueToNumeric(args[0]);
        if (!x)
            return Value::null();
        return Value::integer(*x);
    };
    add({sig("FLOOR", {TypeSpec::Int}, TypeSpec::Int), identity_int});
    add({sig("CEIL", {TypeSpec::Int}, TypeSpec::Int), identity_int});
    add({sig("ROUND", {TypeSpec::Int}, TypeSpec::Int), identity_int});
    add({sig("SIN", {TypeSpec::Int}, TypeSpec::Int),
         [](Args args, Ctx ctx) {
             return fixedPointUnary(args, ctx, "SIN", std::sin,
                                    [](double) { return true; });
         }});
    add({sig("COS", {TypeSpec::Int}, TypeSpec::Int),
         [](Args args, Ctx ctx) {
             return fixedPointUnary(args, ctx, "COS", std::cos,
                                    [](double) { return true; });
         }});
    add({sig("TAN", {TypeSpec::Int}, TypeSpec::Int),
         [](Args args, Ctx ctx) {
             return fixedPointUnary(args, ctx, "TAN", std::tan,
                                    [](double) { return true; });
         }});
    add({sig("ASIN", {TypeSpec::Int}, TypeSpec::Int),
         [](Args args, Ctx ctx) {
             return fixedPointUnary(
                 args, ctx, "ASIN", std::asin,
                 [](double x) { return x >= -1.0 && x <= 1.0; });
         }});
    add({sig("ACOS", {TypeSpec::Int}, TypeSpec::Int),
         [](Args args, Ctx ctx) {
             return fixedPointUnary(
                 args, ctx, "ACOS", std::acos,
                 [](double x) { return x >= -1.0 && x <= 1.0; });
         }});
    add({sig("ATAN", {TypeSpec::Int}, TypeSpec::Int),
         [](Args args, Ctx ctx) {
             return fixedPointUnary(args, ctx, "ATAN", std::atan,
                                    [](double) { return true; });
         }});
    add({sig("ATAN2", {TypeSpec::Int, TypeSpec::Int}, TypeSpec::Int),
         [](Args args, Ctx) -> StatusOr<Value> {
             auto y = valueToNumeric(args[0]);
             auto x = valueToNumeric(args[1]);
             if (!y || !x)
                 return Value::null();
             double result = std::atan2(static_cast<double>(*y),
                                        static_cast<double>(*x)) *
                             static_cast<double>(kFixedPointScale);
             return Value::integer(
                 static_cast<int64_t>(std::llround(result)));
         }});
    add({sig("EXP", {TypeSpec::Int}, TypeSpec::Int),
         [](Args args, Ctx ctx) {
             return fixedPointUnary(
                 args, ctx, "EXP", std::exp,
                 [](double x) { return x <= 40.0; });
         }});
    add({sig("LN", {TypeSpec::Int}, TypeSpec::Int),
         [](Args args, Ctx ctx) {
             return fixedPointUnary(args, ctx, "LN", std::log,
                                    [](double x) { return x > 0.0; });
         }});
    add({sig("LOG10", {TypeSpec::Int}, TypeSpec::Int),
         [](Args args, Ctx ctx) {
             return fixedPointUnary(args, ctx, "LOG10", std::log10,
                                    [](double x) { return x > 0.0; });
         }});
    add({sig("LOG2", {TypeSpec::Int}, TypeSpec::Int),
         [](Args args, Ctx ctx) {
             return fixedPointUnary(args, ctx, "LOG2", std::log2,
                                    [](double x) { return x > 0.0; });
         }});
    add({sig("PI", {}, TypeSpec::Int),
         [](Args, Ctx) -> StatusOr<Value> {
             return Value::integer(static_cast<int64_t>(
                 std::llround(M_PI * kFixedPointScale)));
         }});
    add({sig("DEGREES", {TypeSpec::Int}, TypeSpec::Int),
         [](Args args, Ctx) -> StatusOr<Value> {
             auto x = valueToNumeric(args[0]);
             if (!x)
                 return Value::null();
             double result = static_cast<double>(*x) * 180.0 / M_PI;
             if (result > 9.2e18 || result < -9.2e18)
                 return Status::runtimeError("overflow in DEGREES");
             return Value::integer(
                 static_cast<int64_t>(std::llround(result)));
         }});
    add({sig("RADIANS", {TypeSpec::Int}, TypeSpec::Int),
         [](Args args, Ctx) -> StatusOr<Value> {
             auto x = valueToNumeric(args[0]);
             if (!x)
                 return Value::null();
             double result = static_cast<double>(*x) * M_PI / 180.0 *
                             static_cast<double>(kFixedPointScale);
             if (result > 9.2e18 || result < -9.2e18)
                 return Status::runtimeError("overflow in RADIANS");
             return Value::integer(
                 static_cast<int64_t>(std::llround(result)));
         }});

    // ------------------------------------------------------------------
    // String functions (23).
    // ------------------------------------------------------------------
    add({sig("LENGTH", {TypeSpec::Text}, TypeSpec::Int),
         [](Args args, Ctx) -> StatusOr<Value> {
             auto text = valueToText(args[0]);
             if (!text)
                 return Value::null();
             return Value::integer(static_cast<int64_t>(text->size()));
         }});
    add({sig("LOWER", {TypeSpec::Text}, TypeSpec::Text),
         [](Args args, Ctx) {
             return textUnary(args, [](const std::string &s) {
                 return toLower(s);
             });
         }});
    add({sig("UPPER", {TypeSpec::Text}, TypeSpec::Text),
         [](Args args, Ctx) {
             return textUnary(args, [](const std::string &s) {
                 return toUpper(s);
             });
         }});
    add({sig("TRIM", {TypeSpec::Text}, TypeSpec::Text),
         [](Args args, Ctx) {
             return textUnary(args, [](const std::string &s) {
                 return std::string(trim(s));
             });
         }});
    add({sig("LTRIM", {TypeSpec::Text}, TypeSpec::Text),
         [](Args args, Ctx) {
             return textUnary(args, [](const std::string &s) {
                 size_t begin = s.find_first_not_of(" \t\r\n");
                 return begin == std::string::npos ? std::string()
                                                   : s.substr(begin);
             });
         }});
    add({sig("RTRIM", {TypeSpec::Text}, TypeSpec::Text),
         [](Args args, Ctx) {
             return textUnary(args, [](const std::string &s) {
                 size_t end = s.find_last_not_of(" \t\r\n");
                 return end == std::string::npos
                            ? std::string()
                            : s.substr(0, end + 1);
             });
         }});
    add({sig("REPLACE", {TypeSpec::Text, TypeSpec::Text, TypeSpec::Text},
             TypeSpec::Text),
         [](Args args, Ctx ctx) -> StatusOr<Value> {
             auto text = valueToText(args[0]);
             auto from = valueToText(args[1]);
             auto to = valueToText(args[2]);
             if (!text || !from || !to)
                 return Value::null();
             // The Listing 3 fault: the result keeps the subject's
             // numeric type instead of being coerced to TEXT, which
             // later derails mixed-type comparisons.
             if (ctx.faultEnabled(FaultId::ReplaceNumericSubject) &&
                 (args[0].kind() == Value::Kind::Int ||
                  args[0].kind() == Value::Kind::Bool)) {
                 std::string replaced = *text;
                 if (!from->empty()) {
                     // Apply the replacement textually, then re-read.
                     std::string out;
                     size_t pos = 0;
                     for (;;) {
                         size_t hit = replaced.find(*from, pos);
                         if (hit == std::string::npos) {
                             out += replaced.substr(pos);
                             break;
                         }
                         out += replaced.substr(pos, hit - pos);
                         out += *to;
                         pos = hit + from->size();
                     }
                     replaced = out;
                 }
                 return Value::integer(
                     valueToNumeric(Value::text(replaced)).value_or(0));
             }
             // Empty needle: SQLite returns the subject unchanged. The
             // result is always TEXT, even for numeric subjects — the
             // property whose violation hid in SQLite for ten years
             // (paper Listing 3).
             if (from->empty())
                 return Value::text(*text);
             std::string out;
             size_t pos = 0;
             for (;;) {
                 size_t hit = text->find(*from, pos);
                 if (hit == std::string::npos) {
                     out += text->substr(pos);
                     break;
                 }
                 out += text->substr(pos, hit - pos);
                 out += *to;
                 pos = hit + from->size();
             }
             return Value::text(out);
         }});
    FunctionSig substr_sig =
        sig("SUBSTR", {TypeSpec::Text, TypeSpec::Int, TypeSpec::Int},
            TypeSpec::Text);
    substr_sig.minArgs = 2; // length argument is optional
    add({substr_sig,
         [](Args args, Ctx) -> StatusOr<Value> {
             auto text = valueToText(args[0]);
             auto start = valueToNumeric(args[1]);
             std::optional<int64_t> length;
             if (args.size() >= 3) {
                 length = valueToNumeric(args[2]);
                 if (!length && !args[2].isNull())
                     length = 0;
                 if (args[2].isNull())
                     return Value::null();
             }
             if (!text || !start)
                 return Value::null();
             int64_t n = static_cast<int64_t>(text->size());
             // 1-based; negative start counts from the end (SQLite).
             int64_t begin = *start;
             if (begin < 0)
                 begin = std::max<int64_t>(n + begin, 0);
             else if (begin > 0)
                 begin = begin - 1;
             if (begin >= n)
                 return Value::text("");
             int64_t count = length.has_value()
                                 ? std::max<int64_t>(*length, 0)
                                 : n - begin;
             count = std::min(count, n - begin);
             return Value::text(text->substr(static_cast<size_t>(begin),
                                             static_cast<size_t>(count)));
         }});
    add({sig("INSTR", {TypeSpec::Text, TypeSpec::Text}, TypeSpec::Int),
         [](Args args, Ctx) -> StatusOr<Value> {
             auto text = valueToText(args[0]);
             auto needle = valueToText(args[1]);
             if (!text || !needle)
                 return Value::null();
             size_t pos = text->find(*needle);
             return Value::integer(
                 pos == std::string::npos
                     ? 0
                     : static_cast<int64_t>(pos) + 1);
         }});
    add({sig("CONCAT", {TypeSpec::Text, TypeSpec::Text}, TypeSpec::Text,
             /*variadic=*/true),
         [](Args args, Ctx) -> StatusOr<Value> {
             std::string out;
             for (const Value &arg : args) {
                 auto text = valueToText(arg);
                 if (!text)
                     return Value::null();
                 out += *text;
             }
             return Value::text(out);
         }});
    add({sig("CONCAT_WS", {TypeSpec::Text, TypeSpec::Text}, TypeSpec::Text,
             /*variadic=*/true),
         [](Args args, Ctx) -> StatusOr<Value> {
             auto sep = valueToText(args[0]);
             if (!sep)
                 return Value::null();
             std::string out;
             bool first = true;
             for (size_t i = 1; i < args.size(); ++i) {
                 auto text = valueToText(args[i]);
                 if (!text)
                     continue; // CONCAT_WS skips NULLs.
                 if (!first)
                     out += *sep;
                 out += *text;
                 first = false;
             }
             return Value::text(out);
         }});
    add({sig("REVERSE", {TypeSpec::Text}, TypeSpec::Text),
         [](Args args, Ctx) {
             return textUnary(args, [](const std::string &s) {
                 return std::string(s.rbegin(), s.rend());
             });
         }});
    add({sig("REPEAT", {TypeSpec::Text, TypeSpec::Int}, TypeSpec::Text),
         [](Args args, Ctx) -> StatusOr<Value> {
             auto text = valueToText(args[0]);
             auto count = valueToNumeric(args[1]);
             if (!text || !count)
                 return Value::null();
             if (*count <= 0)
                 return Value::text("");
             if (static_cast<int64_t>(text->size()) * *count >
                 kMaxGeneratedStringLength) {
                 return Status::runtimeError("string too long in REPEAT");
             }
             std::string out;
             for (int64_t i = 0; i < *count; ++i)
                 out += *text;
             return Value::text(out);
         }});
    add({sig("LEFT", {TypeSpec::Text, TypeSpec::Int}, TypeSpec::Text),
         [](Args args, Ctx) -> StatusOr<Value> {
             auto text = valueToText(args[0]);
             auto count = valueToNumeric(args[1]);
             if (!text || !count)
                 return Value::null();
             int64_t n = std::clamp<int64_t>(
                 *count, 0, static_cast<int64_t>(text->size()));
             return Value::text(text->substr(0, static_cast<size_t>(n)));
         }});
    add({sig("RIGHT", {TypeSpec::Text, TypeSpec::Int}, TypeSpec::Text),
         [](Args args, Ctx) -> StatusOr<Value> {
             auto text = valueToText(args[0]);
             auto count = valueToNumeric(args[1]);
             if (!text || !count)
                 return Value::null();
             int64_t n = std::clamp<int64_t>(
                 *count, 0, static_cast<int64_t>(text->size()));
             return Value::text(
                 text->substr(text->size() - static_cast<size_t>(n)));
         }});
    add({sig("ASCII", {TypeSpec::Text}, TypeSpec::Int),
         [](Args args, Ctx) -> StatusOr<Value> {
             auto text = valueToText(args[0]);
             if (!text)
                 return Value::null();
             if (text->empty())
                 return Value::null();
             return Value::integer(
                 static_cast<unsigned char>((*text)[0]));
         }});
    add({sig("CHR", {TypeSpec::Int}, TypeSpec::Text),
         [](Args args, Ctx ctx) -> StatusOr<Value> {
             auto code = valueToNumeric(args[0]);
             if (!code)
                 return Value::null();
             if (*code < 1 || *code > 127)
                 return domainError(ctx, "CHR");
             return Value::text(std::string(
                 1, static_cast<char>(*code)));
         }});
    add({sig("HEX", {TypeSpec::Text}, TypeSpec::Text),
         [](Args args, Ctx) -> StatusOr<Value> {
             auto text = valueToText(args[0]);
             if (!text)
                 return Value::null();
             static const char digits[] = "0123456789ABCDEF";
             std::string out;
             out.reserve(text->size() * 2);
             for (unsigned char c : *text) {
                 out.push_back(digits[c >> 4]);
                 out.push_back(digits[c & 0xF]);
             }
             return Value::text(out);
         }});
    add({sig("QUOTE", {TypeSpec::Any}, TypeSpec::Text),
         [](Args args, Ctx) -> StatusOr<Value> {
             return Value::text(args[0].literal());
         }});
    add({sig("SPACE", {TypeSpec::Int}, TypeSpec::Text),
         [](Args args, Ctx) -> StatusOr<Value> {
             auto count = valueToNumeric(args[0]);
             if (!count)
                 return Value::null();
             if (*count <= 0)
                 return Value::text("");
             if (*count > kMaxGeneratedStringLength)
                 return Status::runtimeError("string too long in SPACE");
             return Value::text(
                 std::string(static_cast<size_t>(*count), ' '));
         }});
    auto pad = [](Args args, bool left) -> StatusOr<Value> {
        auto text = valueToText(args[0]);
        auto width = valueToNumeric(args[1]);
        if (!text || !width)
            return Value::null();
        std::string fill = " ";
        if (args.size() >= 3) {
            auto custom = valueToText(args[2]);
            if (!custom)
                return Value::null();
            if (custom->empty())
                return Value::text(*text);
            fill = *custom;
        }
        if (*width <= static_cast<int64_t>(text->size())) {
            return Value::text(
                text->substr(0, static_cast<size_t>(
                                    std::max<int64_t>(*width, 0))));
        }
        if (*width > kMaxGeneratedStringLength)
            return Status::runtimeError("string too long in PAD");
        std::string padding;
        size_t needed = static_cast<size_t>(*width) - text->size();
        while (padding.size() < needed)
            padding += fill;
        padding.resize(needed);
        return Value::text(left ? padding + *text : *text + padding);
    };
    FunctionSig lpad_sig =
        sig("LPAD", {TypeSpec::Text, TypeSpec::Int, TypeSpec::Text},
            TypeSpec::Text);
    lpad_sig.minArgs = 2; // fill argument defaults to a space
    add({lpad_sig,
         [pad](Args args, Ctx) { return pad(args, /*left=*/true); }});
    FunctionSig rpad_sig =
        sig("RPAD", {TypeSpec::Text, TypeSpec::Int, TypeSpec::Text},
            TypeSpec::Text);
    rpad_sig.minArgs = 2;
    add({rpad_sig,
         [pad](Args args, Ctx) { return pad(args, /*left=*/false); }});
    add({sig("STARTS_WITH", {TypeSpec::Text, TypeSpec::Text},
             TypeSpec::Bool),
         [](Args args, Ctx) -> StatusOr<Value> {
             auto text = valueToText(args[0]);
             auto prefix = valueToText(args[1]);
             if (!text || !prefix)
                 return Value::null();
             return Value::boolean(startsWith(*text, *prefix));
         }});

    // ------------------------------------------------------------------
    // Conditional / NULL handling (8).
    // ------------------------------------------------------------------
    add({sig("NULLIF", {TypeSpec::Any, TypeSpec::Any}, TypeSpec::Any,
             /*variadic=*/false, /*ret_same=*/true),
         [](Args args, Ctx) -> StatusOr<Value> {
             auto cmp = compareSql(args[0], args[1]);
             if (cmp.has_value() && *cmp == 0)
                 return Value::null();
             return args[0];
         }});
    add({sig("COALESCE", {TypeSpec::Any, TypeSpec::Any}, TypeSpec::Any,
             /*variadic=*/true, /*ret_same=*/true),
         [](Args args, Ctx) -> StatusOr<Value> {
             for (const Value &arg : args) {
                 if (!arg.isNull())
                     return arg;
             }
             return Value::null();
         }});
    auto ifnull = [](Args args, Ctx) -> StatusOr<Value> {
        return args[0].isNull() ? args[1] : args[0];
    };
    add({sig("IFNULL", {TypeSpec::Any, TypeSpec::Any}, TypeSpec::Any,
             false, true),
         ifnull});
    add({sig("NVL", {TypeSpec::Any, TypeSpec::Any}, TypeSpec::Any, false,
             true),
         ifnull});
    add({sig("IIF", {TypeSpec::Bool, TypeSpec::Any, TypeSpec::Any},
             TypeSpec::Any),
         [](Args args, Ctx) -> StatusOr<Value> {
             auto truth = valueTruth(args[0]);
             return (truth.has_value() && *truth) ? args[1] : args[2];
         }});
    auto extremum = [](Args args, bool greatest) -> StatusOr<Value> {
        // MySQL semantics: NULL if any argument is NULL.
        for (const Value &arg : args) {
            if (arg.isNull())
                return Value::null();
        }
        const Value *best = &args[0];
        for (const Value &arg : args) {
            auto cmp = compareSql(arg, *best);
            if (cmp.has_value() &&
                ((greatest && *cmp > 0) || (!greatest && *cmp < 0))) {
                best = &arg;
            }
        }
        return *best;
    };
    add({sig("GREATEST", {TypeSpec::Any, TypeSpec::Any}, TypeSpec::Any,
             /*variadic=*/true, /*ret_same=*/true),
         [extremum](Args args, Ctx) { return extremum(args, true); }});
    add({sig("LEAST", {TypeSpec::Any, TypeSpec::Any}, TypeSpec::Any,
             /*variadic=*/true, /*ret_same=*/true),
         [extremum](Args args, Ctx) { return extremum(args, false); }});
    add({sig("TYPEOF", {TypeSpec::Any}, TypeSpec::Text),
         [](Args args, Ctx) -> StatusOr<Value> {
             switch (args[0].kind()) {
               case Value::Kind::Null: return Value::text("null");
               case Value::Kind::Int: return Value::text("integer");
               case Value::Kind::Text: return Value::text("text");
               case Value::Kind::Bool: return Value::text("boolean");
             }
             return Status::internal("bad value kind");
         }});

    // ------------------------------------------------------------------
    // Aggregates (5) — registered for name/arity/type metadata only;
    // their evaluation happens in the evaluator's aggregate path.
    // ------------------------------------------------------------------
    auto aggregate_misuse = [](Args, Ctx) -> StatusOr<Value> {
        return Status::semanticError("misuse of aggregate function");
    };
    add({sig("COUNT", {TypeSpec::Any}, TypeSpec::Int), aggregate_misuse});
    add({sig("SUM", {TypeSpec::Int}, TypeSpec::Int), aggregate_misuse});
    add({sig("AVG", {TypeSpec::Int}, TypeSpec::Int), aggregate_misuse});
    add({sig("MIN", {TypeSpec::Any}, TypeSpec::Any, false, true),
         aggregate_misuse});
    add({sig("MAX", {TypeSpec::Any}, TypeSpec::Any, false, true),
         aggregate_misuse});
}

} // namespace sqlpp
