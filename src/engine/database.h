/**
 * @file
 * Database: the top-level facade of the DBMS substrate.
 *
 * A Database owns a catalog and executes SQL text end-to-end:
 * parse → (static type check) → plan → execute, returning either a
 * ResultSet or a coded error — the exact observable interface of a real
 * DBMS behind a client library, which is all the testing platform ever
 * sees. Behaviour knobs (EngineBehavior) and injected logic bugs
 * (FaultSet) are fixed at construction by the dialect profile.
 */
#ifndef SQLPP_ENGINE_DATABASE_H
#define SQLPP_ENGINE_DATABASE_H

#include <cstdint>
#include <string>

#include "engine/catalog.h"
#include "engine/eval.h"
#include "engine/executor.h"
#include "engine/faults.h"
#include "util/status.h"

namespace sqlpp {

/** Construction-time configuration of a Database. */
struct EngineConfig
{
    EngineBehavior behavior;
    FaultSet faults;
    /**
     * Per-statement execution budget applied to every SELECT (a fresh
     * meter per statement). Defaults preserve historical behaviour:
     * steps/rows unlimited, intermediate rows capped at 50000.
     */
    StepBudget budget;
};

/** An in-process DBMS instance. */
class Database
{
  public:
    Database() = default;
    explicit Database(EngineConfig config) : config_(std::move(config)) {}

    /** Execute one SQL statement through the optimized pipeline. */
    StatusOr<ResultSet> execute(const std::string &sql);

    /**
     * Execute through the reference (non-optimizing) pipeline. DDL/DML
     * behave identically; only SELECT planning differs. Used by engine
     * differential tests; the NoREC oracle instead reaches the reference
     * behaviour the paper's way, by query rewriting.
     */
    StatusOr<ResultSet> executeReference(const std::string &sql);

    /** Execute an already-parsed statement. */
    StatusOr<ResultSet> executeStmt(const Stmt &stmt, ExecMode mode);

    /** Plan description of the last executed SELECT ("" if none). */
    const std::string &lastPlanDescription() const { return last_plan_; }

    /** Fingerprint of the last executed SELECT's plan (0 if none). */
    uint64_t lastPlanFingerprint() const { return last_fingerprint_; }

    const Catalog &catalog() const { return catalog_; }
    const EngineConfig &config() const { return config_; }

    /** Total statements executed (both pipelines). */
    uint64_t statementsExecuted() const { return statements_; }

  private:
    StatusOr<ResultSet> runCreateTable(const CreateTableStmt &stmt);
    StatusOr<ResultSet> runCreateIndex(const CreateIndexStmt &stmt);
    StatusOr<ResultSet> runCreateView(const CreateViewStmt &stmt);
    StatusOr<ResultSet> runInsert(const InsertStmt &stmt);
    StatusOr<ResultSet> runAnalyze(const AnalyzeStmt &stmt);
    StatusOr<ResultSet> runDrop(const DropStmt &stmt);

    /** Coerce a value to a column's declared type (dynamic affinity). */
    Value coerceForColumn(const Value &value, DataType type) const;

    EngineConfig config_;
    Catalog catalog_;
    std::string last_plan_;
    uint64_t last_fingerprint_ = 0;
    uint64_t statements_ = 0;
};

/**
 * Declare every engine coverage probe up front so that coverage ratios
 * (Table 3's proxy metric) have a stable denominator. Idempotent.
 */
void declareEngineCoverageProbes();

} // namespace sqlpp

#endif // SQLPP_ENGINE_DATABASE_H
