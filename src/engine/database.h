/**
 * @file
 * Database: the top-level facade of the DBMS substrate.
 *
 * A Database owns a catalog and executes SQL text end-to-end:
 * parse → (static type check) → plan → execute, returning either a
 * ResultSet or a coded error — the exact observable interface of a real
 * DBMS behind a client library, which is all the testing platform ever
 * sees. Behaviour knobs (EngineBehavior) and injected logic bugs
 * (FaultSet) are fixed at construction by the dialect profile.
 *
 * Sessions and transactions: a Database is shared by any number of
 * sessions (SessionId; 0 is the implicit default session). Outside an
 * explicit transaction every statement auto-commits against the shared
 * committed catalog. BEGIN gives the session a snapshot-isolated
 * private version of the catalog: its own writes are visible only to
 * itself, concurrent commits are invisible until it ends. COMMIT
 * replays the session's write log onto the latest committed catalog
 * (first-committer-wins: a replay failure aborts the transaction),
 * ROLLBACK discards the private version, and SAVEPOINT / ROLLBACK TO /
 * RELEASE checkpoint it mid-transaction. The isolation fault family
 * (FaultId 60-block) deliberately corrupts these visibility rules in
 * ways that are exact no-ops for single-session use.
 */
#ifndef SQLPP_ENGINE_DATABASE_H
#define SQLPP_ENGINE_DATABASE_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/catalog.h"
#include "engine/eval.h"
#include "engine/executor.h"
#include "engine/faults.h"
#include "util/status.h"

namespace sqlpp {

/** Construction-time configuration of a Database. */
struct EngineConfig
{
    EngineBehavior behavior;
    FaultSet faults;
    /**
     * Per-statement execution budget applied to every SELECT (a fresh
     * meter per statement). Defaults preserve historical behaviour:
     * steps/rows unlimited, intermediate rows capped at 50000.
     */
    StepBudget budget;
};

/** Identifies one open session of a Database; 0 is the default. */
using SessionId = uint32_t;

/** An in-process DBMS instance. */
class Database
{
  public:
    static constexpr SessionId kDefaultSession = 0;

    Database() = default;
    explicit Database(EngineConfig config) : config_(std::move(config)) {}

    /** Execute one SQL statement through the optimized pipeline. */
    StatusOr<ResultSet> execute(const std::string &sql);

    /** Execute SQL text on a specific session (optimized pipeline). */
    StatusOr<ResultSet> execute(const std::string &sql, SessionId session);

    /**
     * Execute through the reference (non-optimizing) pipeline. DDL/DML
     * behave identically; only SELECT planning differs. Used by engine
     * differential tests; the NoREC oracle instead reaches the reference
     * behaviour the paper's way, by query rewriting.
     */
    StatusOr<ResultSet> executeReference(const std::string &sql);

    /** Execute an already-parsed statement (default session). */
    StatusOr<ResultSet> executeStmt(const Stmt &stmt, ExecMode mode);

    /** Execute an already-parsed statement on a specific session. */
    StatusOr<ResultSet> executeStmt(const Stmt &stmt, ExecMode mode,
                                    SessionId session);

    /**
     * Allocate a fresh session id. Sessions carry no state until they
     * BEGIN a transaction, so this never fails and needs no close —
     * but a session that dies mid-transaction should rollback().
     */
    SessionId openSession() { return next_session_++; }

    /** True while the session has an explicit transaction open. */
    bool inTransaction(SessionId session = kDefaultSession) const
    {
        return txns_.count(session) > 0;
    }

    /** Number of sessions with an open transaction. */
    size_t openTransactions() const { return txns_.size(); }

    /** Plan description of the last executed SELECT ("" if none). */
    const std::string &lastPlanDescription() const { return last_plan_; }

    /** Fingerprint of the last executed SELECT's plan (0 if none). */
    uint64_t lastPlanFingerprint() const { return last_fingerprint_; }

    /** The latest *committed* catalog (open transactions excluded). */
    const Catalog &catalog() const { return catalog_; }
    const EngineConfig &config() const { return config_; }

    /** Total statements executed (both pipelines, all sessions). */
    uint64_t statementsExecuted() const { return statements_; }

  private:
    /**
     * One attempted write inside a transaction. Failed statements are
     * logged too: engine statements are not atomic (a multi-row INSERT
     * that trips a constraint keeps its earlier rows), so COMMIT must
     * replay failures to reproduce their partial effects. `ok` records
     * the in-transaction outcome — only a statement that succeeded in
     * the transaction aborts the COMMIT when its replay fails (a real
     * first-committer conflict); an originally-failed statement is
     * replayed best-effort.
     */
    struct LogEntry
    {
        StmtPtr stmt;
        bool ok = true;
    };

    /** One SAVEPOINT checkpoint inside an open transaction. */
    struct TxnSavepoint
    {
        std::string name;
        std::unique_ptr<Catalog> snapshot;
        size_t logSize = 0;
    };

    /** Per-session transaction state; exists only while one is open. */
    struct SessionTxn
    {
        /** The session's private version of the database. */
        std::unique_ptr<Catalog> view;
        /** Attempted writes, replayed in order at COMMIT. */
        std::vector<LogEntry> log;
        std::vector<TxnSavepoint> savepoints;
        /** commit_version_ observed at BEGIN (snapshot identity). */
        uint64_t baseVersion = 0;
    };

    StatusOr<ResultSet> runTxnStmt(const TxnStmt &stmt, SessionId session);

    /** Dispatch a (non-SELECT, non-txn) write against a catalog. */
    StatusOr<ResultSet> applyWrite(Catalog &catalog, const Stmt &stmt);

    /** Best-effort replay of a write log onto a catalog (fault views). */
    void overlayLog(Catalog &catalog,
                    const std::vector<LogEntry> &log);

    /**
     * The catalog a read on `session` must see, honouring any enabled
     * isolation faults. When a fault view has to be materialized it is
     * built into `scratch` and a reference to it is returned.
     */
    const Catalog &readCatalog(SessionId session, bool predicated,
                               std::unique_ptr<Catalog> &scratch);

    StatusOr<ResultSet> runCreateTable(Catalog &catalog,
                                       const CreateTableStmt &stmt);
    StatusOr<ResultSet> runCreateIndex(Catalog &catalog,
                                       const CreateIndexStmt &stmt);
    StatusOr<ResultSet> runCreateView(Catalog &catalog,
                                      const CreateViewStmt &stmt);
    StatusOr<ResultSet> runInsert(Catalog &catalog,
                                  const InsertStmt &stmt);
    StatusOr<ResultSet> runAnalyze(Catalog &catalog,
                                   const AnalyzeStmt &stmt);
    StatusOr<ResultSet> runDrop(Catalog &catalog, const DropStmt &stmt);

    /** Coerce a value to a column's declared type (dynamic affinity). */
    Value coerceForColumn(const Value &value, DataType type) const;

    EngineConfig config_;
    Catalog catalog_;
    std::string last_plan_;
    uint64_t last_fingerprint_ = 0;
    uint64_t statements_ = 0;
    /** Open transactions by session id. */
    std::map<SessionId, SessionTxn> txns_;
    SessionId next_session_ = 1;
    /** Bumped on every commit / auto-commit write (snapshot clock). */
    uint64_t commit_version_ = 0;
};

/**
 * Declare every engine coverage probe up front so that coverage ratios
 * (Table 3's proxy metric) have a stable denominator. Idempotent.
 */
void declareEngineCoverageProbes();

} // namespace sqlpp

#endif // SQLPP_ENGINE_DATABASE_H
