#include "engine/typecheck.h"

#include <optional>
#include <set>

#include "engine/eval.h"
#include "engine/functions.h"
#include "util/strutil.h"

namespace sqlpp {

namespace {

/** Inference lattice: Unknown (NULL literal) unifies with anything. */
enum class TType
{
    Int,
    Text,
    Bool,
    Unknown,
};

const char *
typeName(TType type)
{
    switch (type) {
      case TType::Int: return "INTEGER";
      case TType::Text: return "TEXT";
      case TType::Bool: return "BOOLEAN";
      case TType::Unknown: return "UNKNOWN";
    }
    return "?";
}

TType
fromDataType(DataType type)
{
    switch (type) {
      case DataType::Int: return TType::Int;
      case DataType::Text: return TType::Text;
      case DataType::Bool: return TType::Bool;
    }
    return TType::Unknown;
}

std::optional<TType>
unify(TType a, TType b)
{
    if (a == TType::Unknown)
        return b;
    if (b == TType::Unknown)
        return a;
    if (a == b)
        return a;
    return std::nullopt;
}

/** One typed binding of the checker's scope. */
struct TypedBinding
{
    std::string name;
    std::vector<std::pair<std::string, TType>> columns;
};

struct TypedScope
{
    std::vector<TypedBinding> bindings;
    const TypedScope *outer = nullptr;
};

class Checker
{
  public:
    explicit Checker(const Catalog &catalog) : catalog_(catalog) {}

    Status checkSelect(const SelectStmt &select, const TypedScope *outer);
    Status checkInsert(const InsertStmt &insert);
    Status checkCreateIndex(const CreateIndexStmt &index);
    Status checkCreateView(const CreateViewStmt &view);

  private:
    StatusOr<TType> infer(const Expr &expr, const TypedScope &scope);

    Status
    requireType(const Expr &expr, const TypedScope &scope, TType expected,
                const char *context)
    {
        auto type = infer(expr, scope);
        if (!type.isOk())
            return type.status();
        if (!unify(type.value(), expected).has_value()) {
            return Status::semanticError(
                format("%s must be %s, got %s", context,
                       typeName(expected), typeName(type.value())));
        }
        return Status::ok();
    }

    /** Column types a SELECT produces (for derived tables and views). */
    StatusOr<std::vector<std::pair<std::string, TType>>>
    outputTypes(const SelectStmt &select, const TypedScope *outer);

    StatusOr<TypedScope> buildScope(const SelectStmt &select,
                                    const TypedScope *outer);

    StatusOr<TypedBinding> bindSource(const TableRef &ref,
                                      const TypedScope *outer);

    const Catalog &catalog_;
};

StatusOr<TypedBinding>
Checker::bindSource(const TableRef &ref, const TypedScope *outer)
{
    TypedBinding binding;
    if (ref.subquery) {
        auto types = outputTypes(*ref.subquery, outer);
        if (!types.isOk())
            return types.status();
        binding.name = ref.alias;
        binding.columns = types.takeValue();
        return binding;
    }
    if (const StoredTable *table = catalog_.table(ref.name)) {
        binding.name = ref.bindingName();
        for (const ColumnDef &col : table->columns)
            binding.columns.emplace_back(col.name, fromDataType(col.type));
        return binding;
    }
    if (const StoredView *view = catalog_.view(ref.name)) {
        auto types = outputTypes(*view->select, nullptr);
        if (!types.isOk())
            return types.status();
        binding.name = ref.bindingName();
        binding.columns = types.takeValue();
        if (!view->columnNames.empty()) {
            for (size_t i = 0; i < binding.columns.size() &&
                               i < view->columnNames.size();
                 ++i) {
                binding.columns[i].first = view->columnNames[i];
            }
        }
        return binding;
    }
    return Status::semanticError("no such table: " + ref.name);
}

StatusOr<TypedScope>
Checker::buildScope(const SelectStmt &select, const TypedScope *outer)
{
    TypedScope scope;
    scope.outer = outer;
    for (const TableRef &ref : select.from) {
        auto binding = bindSource(ref, outer);
        if (!binding.isOk())
            return binding.status();
        scope.bindings.push_back(binding.takeValue());
    }
    for (const JoinClause &join : select.joins) {
        auto binding = bindSource(join.table, outer);
        if (!binding.isOk())
            return binding.status();
        scope.bindings.push_back(binding.takeValue());
    }
    return scope;
}

StatusOr<std::vector<std::pair<std::string, TType>>>
Checker::outputTypes(const SelectStmt &select, const TypedScope *outer)
{
    auto scope = buildScope(select, outer);
    if (!scope.isOk())
        return scope.status();
    std::vector<std::pair<std::string, TType>> out;
    for (const SelectItem &item : select.items) {
        if (item.star) {
            for (const TypedBinding &binding : scope.value().bindings) {
                for (const auto &[name, type] : binding.columns)
                    out.emplace_back(name, type);
            }
            continue;
        }
        auto type = infer(*item.expr, scope.value());
        if (!type.isOk())
            return type.status();
        std::string name = item.alias;
        if (name.empty() && item.expr->kind() == ExprKind::ColumnRef) {
            name = static_cast<const ColumnRefExpr *>(item.expr.get())
                       ->column;
        }
        out.emplace_back(name, type.value());
    }
    return out;
}

StatusOr<TType>
Checker::infer(const Expr &expr, const TypedScope &scope)
{
    switch (expr.kind()) {
      case ExprKind::Literal: {
        const Value &value =
            static_cast<const LiteralExpr &>(expr).value;
        switch (value.kind()) {
          case Value::Kind::Null: return TType::Unknown;
          case Value::Kind::Int: return TType::Int;
          case Value::Kind::Text: return TType::Text;
          case Value::Kind::Bool: return TType::Bool;
        }
        return TType::Unknown;
      }
      case ExprKind::ColumnRef: {
        const auto &ref = static_cast<const ColumnRefExpr &>(expr);
        for (const TypedScope *frame = &scope; frame != nullptr;
             frame = frame->outer) {
            TType found = TType::Unknown;
            int matches = 0;
            for (const TypedBinding &binding : frame->bindings) {
                if (!ref.table.empty() && binding.name != ref.table)
                    continue;
                for (const auto &[name, type] : binding.columns) {
                    if (name == ref.column) {
                        found = type;
                        ++matches;
                    }
                }
            }
            if (matches > 1) {
                return Status::semanticError("ambiguous column name: " +
                                             ref.column);
            }
            if (matches == 1)
                return found;
        }
        std::string name =
            ref.table.empty() ? ref.column : ref.table + "." + ref.column;
        return Status::semanticError("no such column: " + name);
      }
      case ExprKind::Unary: {
        const auto &unary = static_cast<const UnaryExpr &>(expr);
        auto operand = infer(*unary.operand, scope);
        if (!operand.isOk())
            return operand;
        switch (unary.op) {
          case UnaryOp::Neg:
          case UnaryOp::Plus:
          case UnaryOp::BitNot:
            if (!unify(operand.value(), TType::Int)) {
                return Status::semanticError(
                    "numeric operator requires INTEGER operand");
            }
            return TType::Int;
          case UnaryOp::Not:
            if (!unify(operand.value(), TType::Bool)) {
                return Status::semanticError(
                    "argument of NOT must be BOOLEAN");
            }
            return TType::Bool;
          case UnaryOp::IsNull:
          case UnaryOp::IsNotNull:
            return TType::Bool;
          default: // IS TRUE family
            if (!unify(operand.value(), TType::Bool)) {
                return Status::semanticError(
                    "argument of IS TRUE must be BOOLEAN");
            }
            return TType::Bool;
        }
      }
      case ExprKind::Binary: {
        const auto &bin = static_cast<const BinaryExpr &>(expr);
        auto lhs = infer(*bin.lhs, scope);
        if (!lhs.isOk())
            return lhs;
        auto rhs = infer(*bin.rhs, scope);
        if (!rhs.isOk())
            return rhs;
        switch (bin.op) {
          case BinaryOp::Add:
          case BinaryOp::Sub:
          case BinaryOp::Mul:
          case BinaryOp::Div:
          case BinaryOp::Mod:
          case BinaryOp::BitAnd:
          case BinaryOp::BitOr:
          case BinaryOp::BitXor:
          case BinaryOp::ShiftLeft:
          case BinaryOp::ShiftRight:
            if (!unify(lhs.value(), TType::Int) ||
                !unify(rhs.value(), TType::Int)) {
                return Status::semanticError(
                    "arithmetic operator requires INTEGER operands");
            }
            return TType::Int;
          case BinaryOp::And:
          case BinaryOp::Or:
            if (!unify(lhs.value(), TType::Bool) ||
                !unify(rhs.value(), TType::Bool)) {
                return Status::semanticError(
                    format("argument of %s must be BOOLEAN",
                           binaryOpSymbol(bin.op)));
            }
            return TType::Bool;
          case BinaryOp::Concat:
            if (!unify(lhs.value(), TType::Text) ||
                !unify(rhs.value(), TType::Text)) {
                return Status::semanticError(
                    "|| requires TEXT operands");
            }
            return TType::Text;
          case BinaryOp::Like:
          case BinaryOp::NotLike:
          case BinaryOp::Glob:
            if (!unify(lhs.value(), TType::Text) ||
                !unify(rhs.value(), TType::Text)) {
                return Status::semanticError(
                    "LIKE requires TEXT operands");
            }
            return TType::Bool;
          default:
            // Comparisons (including <=>, IS DISTINCT FROM).
            if (!unify(lhs.value(), rhs.value())) {
                return Status::semanticError(
                    format("cannot compare %s with %s",
                           typeName(lhs.value()),
                           typeName(rhs.value())));
            }
            return TType::Bool;
        }
      }
      case ExprKind::Between: {
        const auto &between = static_cast<const BetweenExpr &>(expr);
        auto operand = infer(*between.operand, scope);
        if (!operand.isOk())
            return operand;
        auto low = infer(*between.low, scope);
        if (!low.isOk())
            return low;
        auto high = infer(*between.high, scope);
        if (!high.isOk())
            return high;
        auto fused = unify(operand.value(), low.value());
        if (fused.has_value())
            fused = unify(*fused, high.value());
        if (!fused.has_value()) {
            return Status::semanticError(
                "BETWEEN operands must share a type");
        }
        return TType::Bool;
      }
      case ExprKind::InList: {
        const auto &in = static_cast<const InListExpr &>(expr);
        auto operand = infer(*in.operand, scope);
        if (!operand.isOk())
            return operand;
        TType common = operand.value();
        for (const ExprPtr &item : in.items) {
            auto type = infer(*item, scope);
            if (!type.isOk())
                return type;
            auto fused = unify(common, type.value());
            if (!fused.has_value()) {
                return Status::semanticError(
                    "IN list operands must share a type");
            }
            common = *fused;
        }
        return TType::Bool;
      }
      case ExprKind::Case: {
        const auto &case_expr = static_cast<const CaseExpr &>(expr);
        TType operand_type = TType::Unknown;
        if (case_expr.operand) {
            auto type = infer(*case_expr.operand, scope);
            if (!type.isOk())
                return type;
            operand_type = type.value();
        }
        TType result_type = TType::Unknown;
        for (const CaseExpr::Arm &arm : case_expr.arms) {
            auto when = infer(*arm.when, scope);
            if (!when.isOk())
                return when;
            if (case_expr.operand) {
                auto fused = unify(operand_type, when.value());
                if (!fused.has_value()) {
                    return Status::semanticError(
                        "CASE operand and WHEN value must share a type");
                }
                operand_type = *fused;
            } else if (!unify(when.value(), TType::Bool)) {
                return Status::semanticError(
                    "CASE WHEN condition must be BOOLEAN");
            }
            auto then = infer(*arm.then, scope);
            if (!then.isOk())
                return then;
            auto fused = unify(result_type, then.value());
            if (!fused.has_value()) {
                return Status::semanticError(
                    "CASE branches must share a type");
            }
            result_type = *fused;
        }
        if (case_expr.elseExpr) {
            auto else_type = infer(*case_expr.elseExpr, scope);
            if (!else_type.isOk())
                return else_type;
            auto fused = unify(result_type, else_type.value());
            if (!fused.has_value()) {
                return Status::semanticError(
                    "CASE branches must share a type");
            }
            result_type = *fused;
        }
        return result_type;
      }
      case ExprKind::Function: {
        const auto &fn = static_cast<const FunctionExpr &>(expr);
        if (isAggregateFunction(fn.name)) {
            if (fn.name == "COUNT")
                return TType::Int;
            if (fn.args.size() != 1) {
                return Status::semanticError(
                    "aggregate " + fn.name + " takes one argument");
            }
            auto arg = infer(*fn.args[0], scope);
            if (!arg.isOk())
                return arg;
            if (fn.name == "SUM" || fn.name == "AVG") {
                if (!unify(arg.value(), TType::Int)) {
                    return Status::semanticError(
                        fn.name + " requires an INTEGER argument");
                }
                return TType::Int;
            }
            return arg.value(); // MIN / MAX
        }
        const FunctionImpl *impl =
            FunctionRegistry::instance().find(fn.name);
        if (impl == nullptr)
            return Status::semanticError("no such function: " + fn.name);
        if (fn.args.size() < impl->sig.minimumArgs() ||
            fn.args.size() > impl->sig.maximumArgs()) {
            return Status::semanticError(
                "wrong number of arguments to " + fn.name);
        }
        TType arg0_type = TType::Unknown;
        for (size_t i = 0; i < fn.args.size(); ++i) {
            auto type = infer(*fn.args[i], scope);
            if (!type.isOk())
                return type;
            if (i == 0)
                arg0_type = type.value();
            size_t spec_index = std::min(i, impl->sig.args.size() - 1);
            TypeSpec spec = impl->sig.args.empty()
                                ? TypeSpec::Any
                                : impl->sig.args[spec_index];
            TType want;
            switch (spec) {
              case TypeSpec::Int: want = TType::Int; break;
              case TypeSpec::Text: want = TType::Text; break;
              case TypeSpec::Bool: want = TType::Bool; break;
              case TypeSpec::Any: continue;
              default: continue;
            }
            if (!unify(type.value(), want)) {
                return Status::semanticError(
                    format("argument %zu of %s must be %s", i + 1,
                           fn.name.c_str(), typeName(want)));
            }
        }
        if (impl->sig.retSameAsArg0)
            return arg0_type;
        switch (impl->sig.ret) {
          case TypeSpec::Int: return TType::Int;
          case TypeSpec::Text: return TType::Text;
          case TypeSpec::Bool: return TType::Bool;
          case TypeSpec::Any: return TType::Unknown;
        }
        return TType::Unknown;
      }
      case ExprKind::Cast: {
        const auto &cast = static_cast<const CastExpr &>(expr);
        auto operand = infer(*cast.operand, scope);
        if (!operand.isOk())
            return operand;
        return fromDataType(cast.target);
      }
      case ExprKind::Exists: {
        const auto &exists = static_cast<const ExistsExpr &>(expr);
        Status status = checkSelect(*exists.subquery, &scope);
        if (!status.isOk())
            return status;
        return TType::Bool;
      }
      case ExprKind::InSubquery: {
        const auto &in = static_cast<const InSubqueryExpr &>(expr);
        auto operand = infer(*in.operand, scope);
        if (!operand.isOk())
            return operand;
        Status status = checkSelect(*in.subquery, &scope);
        if (!status.isOk())
            return status;
        auto types = outputTypes(*in.subquery, &scope);
        if (!types.isOk())
            return types.status();
        if (types.value().size() != 1) {
            return Status::semanticError(
                "IN subquery must return one column");
        }
        if (!unify(operand.value(), types.value()[0].second)) {
            return Status::semanticError(
                "IN operand and subquery column must share a type");
        }
        return TType::Bool;
      }
      case ExprKind::ScalarSubquery: {
        const auto &sub = static_cast<const ScalarSubqueryExpr &>(expr);
        Status status = checkSelect(*sub.subquery, &scope);
        if (!status.isOk())
            return status;
        auto types = outputTypes(*sub.subquery, &scope);
        if (!types.isOk())
            return types.status();
        if (types.value().size() != 1) {
            return Status::semanticError(
                "scalar subquery must return one column");
        }
        return types.value()[0].second;
      }
    }
    return Status::internal("unhandled expression kind in type checker");
}

Status
Checker::checkSelect(const SelectStmt &select, const TypedScope *outer)
{
    auto scope = buildScope(select, outer);
    if (!scope.isOk())
        return scope.status();
    for (const JoinClause &join : select.joins) {
        if (join.on == nullptr)
            continue;
        if (Status s = requireType(*join.on, scope.value(), TType::Bool,
                                   "JOIN ON condition");
            !s.isOk()) {
            return s;
        }
    }
    if (select.where != nullptr) {
        if (Status s = requireType(*select.where, scope.value(),
                                   TType::Bool, "WHERE clause");
            !s.isOk()) {
            return s;
        }
    }
    for (const ExprPtr &key : select.groupBy) {
        auto type = infer(*key, scope.value());
        if (!type.isOk())
            return type.status();
    }
    if (select.having != nullptr) {
        if (Status s = requireType(*select.having, scope.value(),
                                   TType::Bool, "HAVING clause");
            !s.isOk()) {
            return s;
        }
    }
    for (const SelectItem &item : select.items) {
        if (item.star)
            continue;
        auto type = infer(*item.expr, scope.value());
        if (!type.isOk())
            return type.status();
    }
    for (const OrderTerm &term : select.orderBy) {
        auto type = infer(*term.expr, scope.value());
        if (!type.isOk())
            return type.status();
    }
    return Status::ok();
}

Status
Checker::checkInsert(const InsertStmt &insert)
{
    const StoredTable *table = catalog_.table(insert.table);
    if (table == nullptr)
        return Status::semanticError("no such table: " + insert.table);
    std::vector<TType> target_types;
    if (insert.columns.empty()) {
        for (const ColumnDef &col : table->columns)
            target_types.push_back(fromDataType(col.type));
    } else {
        for (const std::string &name : insert.columns) {
            size_t ordinal = table->columnOrdinal(name);
            if (ordinal == StoredTable::npos) {
                return Status::semanticError("no such column: " + name);
            }
            target_types.push_back(
                fromDataType(table->columns[ordinal].type));
        }
    }
    TypedScope empty;
    for (const auto &row : insert.rows) {
        if (row.size() != target_types.size()) {
            return Status::semanticError(
                "INSERT value count does not match column count");
        }
        for (size_t i = 0; i < row.size(); ++i) {
            auto type = infer(*row[i], empty);
            if (!type.isOk())
                return type.status();
            if (!unify(type.value(), target_types[i])) {
                return Status::semanticError(
                    format("column %zu expects %s", i + 1,
                           typeName(target_types[i])));
            }
        }
    }
    return Status::ok();
}

Status
Checker::checkCreateIndex(const CreateIndexStmt &index)
{
    if (index.where == nullptr)
        return Status::ok();
    const StoredTable *table = catalog_.table(index.table);
    if (table == nullptr)
        return Status::semanticError("no such table: " + index.table);
    TypedScope scope;
    TypedBinding binding;
    binding.name = table->name;
    for (const ColumnDef &col : table->columns)
        binding.columns.emplace_back(col.name, fromDataType(col.type));
    scope.bindings.push_back(std::move(binding));
    return requireType(*index.where, scope, TType::Bool,
                       "partial index predicate");
}

Status
Checker::checkCreateView(const CreateViewStmt &view)
{
    return checkSelect(*view.select, nullptr);
}

} // namespace

Status
typeCheckStatement(const Stmt &stmt, const Catalog &catalog)
{
    Checker checker(catalog);
    switch (stmt.kind()) {
      case StmtKind::Select:
        return checker.checkSelect(static_cast<const SelectStmt &>(stmt),
                                   nullptr);
      case StmtKind::Insert:
        return checker.checkInsert(static_cast<const InsertStmt &>(stmt));
      case StmtKind::CreateIndex:
        return checker.checkCreateIndex(
            static_cast<const CreateIndexStmt &>(stmt));
      case StmtKind::CreateView:
        return checker.checkCreateView(
            static_cast<const CreateViewStmt &>(stmt));
      default:
        return Status::ok();
    }
}

} // namespace sqlpp
