#include "engine/database.h"

#include <set>

#include "engine/functions.h"
#include "engine/typecheck.h"
#include "parser/parser.h"
#include "util/coverage.h"
#include "util/strutil.h"

namespace sqlpp {

namespace {

/** Maximum columns per table / rows per insert, engine sanity limits. */
constexpr size_t kMaxColumns = 64;
constexpr size_t kMaxRowsPerTable = 1u << 18;

ResultSet
emptyResult()
{
    return ResultSet(std::vector<std::string>{});
}

} // namespace

StatusOr<ResultSet>
Database::execute(const std::string &sql)
{
    return execute(sql, kDefaultSession);
}

StatusOr<ResultSet>
Database::execute(const std::string &sql, SessionId session)
{
    auto parsed = parseStatement(sql);
    if (!parsed.isOk())
        return parsed.status();
    return executeStmt(*parsed.value(), ExecMode::Optimized, session);
}

StatusOr<ResultSet>
Database::executeReference(const std::string &sql)
{
    auto parsed = parseStatement(sql);
    if (!parsed.isOk())
        return parsed.status();
    return executeStmt(*parsed.value(), ExecMode::Reference);
}

StatusOr<ResultSet>
Database::executeStmt(const Stmt &stmt, ExecMode mode)
{
    return executeStmt(stmt, mode, kDefaultSession);
}

StatusOr<ResultSet>
Database::executeStmt(const Stmt &stmt, ExecMode mode, SessionId session)
{
    ++statements_;
    if (isTxnStmtKind(stmt.kind()))
        return runTxnStmt(static_cast<const TxnStmt &>(stmt), session);

    auto txn = txns_.find(session);
    bool in_txn = txn != txns_.end();
    Catalog &target = in_txn ? *txn->second.view : catalog_;

    if (config_.behavior.staticTyping) {
        Status status = typeCheckStatement(stmt, target);
        if (!status.isOk())
            return status;
    }
    if (stmt.kind() == StmtKind::Select) {
        SQLPP_COVER("db.select");
        const auto &select = static_cast<const SelectStmt &>(stmt);
        // Batch execution is row-at-a-time inside an explicit
        // transaction for now: the vectorized pipeline reads column
        // chunks straight off the committed store and cannot follow a
        // session's private version yet.
        ExecMode effective = mode;
        if (in_txn && mode == ExecMode::Batch) {
            SQLPP_COVER("db.txn.batch_fallback");
            effective = ExecMode::Optimized;
        }
        std::unique_ptr<Catalog> scratch;
        const Catalog &view =
            readCatalog(session, select.where != nullptr, scratch);
        BudgetMeter meter(config_.budget);
        Executor executor(view, config_.behavior, config_.faults,
                          effective, &meter);
        auto result = executor.runSelect(select);
        last_plan_ = executor.planDescription();
        last_fingerprint_ = executor.planFingerprint();
        return result;
    }

    // Writes: DDL and INSERT apply to the session's private version
    // inside a transaction (and are logged for COMMIT replay), or to
    // the shared committed catalog when auto-committing. Failures are
    // logged too — statements are not atomic, so a failed multi-row
    // INSERT's partial effect must survive the commit replay.
    auto result = applyWrite(target, stmt);
    if (in_txn)
        txn->second.log.push_back(LogEntry{stmt.clone(), result.isOk()});
    else if (result.isOk())
        ++commit_version_;
    return result;
}

StatusOr<ResultSet>
Database::applyWrite(Catalog &catalog, const Stmt &stmt)
{
    switch (stmt.kind()) {
      case StmtKind::CreateTable:
        SQLPP_COVER("db.create_table");
        return runCreateTable(catalog,
                              static_cast<const CreateTableStmt &>(stmt));
      case StmtKind::CreateIndex:
        SQLPP_COVER("db.create_index");
        return runCreateIndex(catalog,
                              static_cast<const CreateIndexStmt &>(stmt));
      case StmtKind::CreateView:
        SQLPP_COVER("db.create_view");
        return runCreateView(catalog,
                             static_cast<const CreateViewStmt &>(stmt));
      case StmtKind::Insert:
        SQLPP_COVER("db.insert");
        return runInsert(catalog, static_cast<const InsertStmt &>(stmt));
      case StmtKind::Analyze:
        SQLPP_COVER("db.analyze");
        return runAnalyze(catalog, static_cast<const AnalyzeStmt &>(stmt));
      case StmtKind::DropTable:
      case StmtKind::DropView:
      case StmtKind::DropIndex:
        SQLPP_COVER("db.drop");
        return runDrop(catalog, static_cast<const DropStmt &>(stmt));
      default:
        return Status::internal("unhandled statement kind");
    }
}

void
Database::overlayLog(Catalog &catalog, const std::vector<LogEntry> &log)
{
    // Best-effort: a fault view merges another session's uncommitted
    // writes; statements that no longer apply (duplicate DDL, rows
    // past limits) are silently dropped, as a buggy engine would.
    for (const LogEntry &entry : log)
        (void)applyWrite(catalog, *entry.stmt);
}

const Catalog &
Database::readCatalog(SessionId session, bool predicated,
                      std::unique_ptr<Catalog> &scratch)
{
    auto it = txns_.find(session);
    SessionTxn *txn = it == txns_.end() ? nullptr : &it->second;
    const Catalog *base = txn ? txn->view.get() : &catalog_;

    if (txn != nullptr) {
        // Snapshot leaks: the read follows latest-committed state
        // instead of the BEGIN snapshot — for every read under
        // TxnNonRepeatableRead, for predicated reads only under
        // TxnPhantomClaimedSnapshot (the index-rescan phantom).
        bool follow_committed =
            config_.faults.isEnabled(FaultId::TxnNonRepeatableRead) ||
            (predicated &&
             config_.faults.isEnabled(
                 FaultId::TxnPhantomClaimedSnapshot));
        if (follow_committed && commit_version_ != txn->baseVersion) {
            SQLPP_COVER("db.txn.fault.snapshot_leak");
            scratch = std::make_unique<Catalog>(catalog_);
            overlayLog(*scratch, txn->log);
            base = scratch.get();
        }
    }

    if (config_.faults.isEnabled(FaultId::TxnDirtyRead)) {
        // Reads additionally see every other session's uncommitted
        // writes, merged over whatever base the rules above chose.
        bool any_other = false;
        for (const auto &[sid, other] : txns_) {
            if (sid != session && !other.log.empty())
                any_other = true;
        }
        if (any_other) {
            SQLPP_COVER("db.txn.fault.dirty_read");
            if (scratch == nullptr || scratch.get() != base)
                scratch = std::make_unique<Catalog>(*base);
            for (const auto &[sid, other] : txns_) {
                if (sid != session)
                    overlayLog(*scratch, other.log);
            }
            base = scratch.get();
        }
    }
    return *base;
}

StatusOr<ResultSet>
Database::runTxnStmt(const TxnStmt &stmt, SessionId session)
{
    auto it = txns_.find(session);
    SessionTxn *txn = it == txns_.end() ? nullptr : &it->second;
    switch (stmt.kind()) {
      case StmtKind::Begin: {
        if (txn != nullptr) {
            return Status::semanticError(
                "cannot BEGIN: a transaction is already active");
        }
        SQLPP_COVER("db.txn.begin");
        SessionTxn fresh;
        fresh.view = std::make_unique<Catalog>(catalog_);
        fresh.baseVersion = commit_version_;
        txns_.emplace(session, std::move(fresh));
        return emptyResult();
      }
      case StmtKind::Commit: {
        if (txn == nullptr) {
            return Status::semanticError(
                "cannot COMMIT: no transaction is active");
        }
        SQLPP_COVER("db.txn.commit");
        if (config_.faults.isEnabled(FaultId::TxnLostUpdate)) {
            // The bug: publish the session's private version wholesale
            // instead of replaying its writes onto the latest committed
            // state — anything committed since BEGIN is clobbered.
            SQLPP_COVER("db.txn.fault.lost_update");
            catalog_ = std::move(*txn->view);
            ++commit_version_;
            txns_.erase(it);
            return emptyResult();
        }
        // First-committer-wins: replay the write log onto the latest
        // committed catalog. A replay failure of a statement that
        // succeeded in the transaction (e.g. a unique key a concurrent
        // commit claimed) aborts the whole transaction; statements
        // that already failed in the transaction replay best-effort to
        // reproduce their partial effects.
        auto staging = std::make_unique<Catalog>(catalog_);
        for (const LogEntry &entry : txn->log) {
            auto replayed = applyWrite(*staging, *entry.stmt);
            if (!replayed.isOk() && entry.ok) {
                SQLPP_COVER("db.txn.commit_conflict");
                Status aborted = Status::runtimeError(
                    "COMMIT aborted: " + replayed.status().message());
                txns_.erase(it);
                return aborted;
            }
        }
        catalog_ = std::move(*staging);
        ++commit_version_;
        txns_.erase(it);
        return emptyResult();
      }
      case StmtKind::Rollback: {
        if (txn == nullptr) {
            return Status::semanticError(
                "cannot ROLLBACK: no transaction is active");
        }
        SQLPP_COVER("db.txn.rollback");
        txns_.erase(it);
        return emptyResult();
      }
      case StmtKind::Savepoint: {
        if (txn == nullptr) {
            return Status::semanticError(
                "SAVEPOINT outside a transaction");
        }
        SQLPP_COVER("db.txn.savepoint");
        TxnSavepoint savepoint;
        savepoint.name = stmt.savepoint;
        savepoint.snapshot = std::make_unique<Catalog>(*txn->view);
        savepoint.logSize = txn->log.size();
        txn->savepoints.push_back(std::move(savepoint));
        return emptyResult();
      }
      case StmtKind::RollbackTo: {
        if (txn == nullptr) {
            return Status::semanticError(
                "ROLLBACK TO outside a transaction");
        }
        for (size_t i = txn->savepoints.size(); i-- > 0;) {
            if (txn->savepoints[i].name != stmt.savepoint)
                continue;
            SQLPP_COVER("db.txn.rollback_to");
            TxnSavepoint &savepoint = txn->savepoints[i];
            txn->view =
                std::make_unique<Catalog>(*savepoint.snapshot);
            txn->log.resize(savepoint.logSize);
            // The savepoint itself survives (SQL semantics); only
            // younger savepoints are discarded.
            txn->savepoints.resize(i + 1);
            return emptyResult();
        }
        return Status::semanticError("no such savepoint: " +
                                     stmt.savepoint);
      }
      case StmtKind::Release: {
        if (txn == nullptr) {
            return Status::semanticError(
                "RELEASE outside a transaction");
        }
        for (size_t i = txn->savepoints.size(); i-- > 0;) {
            if (txn->savepoints[i].name != stmt.savepoint)
                continue;
            SQLPP_COVER("db.txn.release");
            txn->savepoints.resize(i);
            return emptyResult();
        }
        return Status::semanticError("no such savepoint: " +
                                     stmt.savepoint);
      }
      default:
        return Status::internal("not a transaction statement");
    }
}

StatusOr<ResultSet>
Database::runCreateTable(Catalog &catalog, const CreateTableStmt &stmt)
{
    if (catalog.hasObject(stmt.name)) {
        if (stmt.ifNotExists && catalog.hasTable(stmt.name))
            return emptyResult();
        return Status::semanticError("object already exists: " +
                                     stmt.name);
    }
    if (stmt.columns.empty())
        return Status::semanticError("table needs at least one column");
    if (stmt.columns.size() > kMaxColumns)
        return Status::semanticError("too many columns");
    std::set<std::string> names;
    for (const ColumnDef &col : stmt.columns) {
        if (!names.insert(col.name).second) {
            return Status::semanticError("duplicate column name: " +
                                         col.name);
        }
    }
    StoredTable table;
    table.name = stmt.name;
    table.columns = stmt.columns;
    // PRIMARY KEY and UNIQUE columns get implicit unique indexes, which
    // also gives the optimizer probe targets.
    for (size_t i = 0; i < stmt.columns.size(); ++i) {
        const ColumnDef &col = stmt.columns[i];
        if (col.primaryKey || col.unique) {
            StoredIndex index;
            index.name = "__uniq_" + stmt.name + "_" + col.name;
            index.columnOrdinals = {i};
            index.unique = true;
            table.indexes.push_back(std::move(index));
        }
    }
    return catalog.addTable(std::move(table)).isOk()
               ? StatusOr<ResultSet>(emptyResult())
               : StatusOr<ResultSet>(Status::semanticError(
                     "object already exists: " + stmt.name));
}

StatusOr<ResultSet>
Database::runCreateIndex(Catalog &catalog, const CreateIndexStmt &stmt)
{
    if (catalog.hasObject(stmt.name))
        return Status::semanticError("object already exists: " + stmt.name);
    StoredTable *table = catalog.table(stmt.table);
    if (table == nullptr) {
        return Status::semanticError("no such table: " + stmt.table);
    }
    StoredIndex index;
    index.name = stmt.name;
    index.unique = stmt.unique;
    std::set<std::string> seen;
    for (const std::string &column : stmt.columns) {
        size_t ordinal = table->columnOrdinal(column);
        if (ordinal == StoredTable::npos)
            return Status::semanticError("no such column: " + column);
        if (!seen.insert(column).second) {
            return Status::semanticError("duplicate column in index: " +
                                         column);
        }
        index.columnOrdinals.push_back(ordinal);
    }
    if (stmt.where != nullptr)
        index.predicate = stmt.where->clone();

    // Populate from existing rows; a UNIQUE index creation fails when
    // the data already violates it.
    Scope scope;
    std::vector<std::string> column_names;
    for (const ColumnDef &col : table->columns)
        column_names.push_back(col.name);
    scope.addBinding(table->name, column_names);
    for (size_t ri = 0; ri < table->rows.size(); ++ri) {
        const Row &row = table->rows[ri];
        if (index.predicate != nullptr) {
            EvalContext ctx;
            ctx.scope = &scope;
            ctx.row = &row;
            ctx.behavior = &config_.behavior;
            ctx.faults = &config_.faults;
            auto value = evalExpr(*index.predicate, ctx);
            if (!value.isOk())
                return value.status();
            auto truth = valueTruth(value.value());
            if (!truth.has_value() || !*truth)
                continue;
        }
        std::vector<Value> key;
        for (size_t ordinal : index.columnOrdinals)
            key.push_back(row[ordinal]);
        if (index.unique && index.containsConflictingKey(key)) {
            return Status::runtimeError(
                "UNIQUE constraint failed creating index " + stmt.name);
        }
        index.insert(std::move(key), ri);
    }
    Status status = catalog.addIndex(stmt.table, std::move(index));
    if (!status.isOk())
        return status;
    return emptyResult();
}

StatusOr<ResultSet>
Database::runCreateView(Catalog &catalog, const CreateViewStmt &stmt)
{
    if (catalog.hasObject(stmt.name))
        return Status::semanticError("object already exists: " + stmt.name);
    // Validate the body by executing it once (cheap at generator scale)
    // and fix the output arity.
    Executor executor(catalog, config_.behavior, config_.faults,
                      ExecMode::Optimized);
    auto result = executor.runSelect(*stmt.select);
    if (!result.isOk())
        return result.status();
    if (!stmt.columnNames.empty() &&
        stmt.columnNames.size() != result.value().columnCount()) {
        return Status::semanticError(
            "view column list does not match query: " + stmt.name);
    }
    std::set<std::string> names(stmt.columnNames.begin(),
                                stmt.columnNames.end());
    if (names.size() != stmt.columnNames.size())
        return Status::semanticError("duplicate view column name");
    StoredView view;
    view.name = stmt.name;
    view.columnNames = stmt.columnNames;
    view.select = stmt.select->cloneSelect();
    Status status = catalog.addView(std::move(view));
    if (!status.isOk())
        return status;
    return emptyResult();
}

Value
Database::coerceForColumn(const Value &value, DataType type) const
{
    if (value.isNull())
        return value;
    switch (type) {
      case DataType::Int: {
        if (value.kind() == Value::Kind::Int)
            return value;
        if (value.kind() == Value::Kind::Bool)
            return Value::integer(value.asBool() ? 1 : 0);
        // TEXT into an INTEGER column: convert only when the text is a
        // complete integer literal, otherwise keep the text (SQLite
        // affinity).
        const std::string &text = value.asText();
        if (!text.empty()) {
            size_t i = (text[0] == '-' || text[0] == '+') ? 1 : 0;
            bool all_digits = i < text.size();
            for (; i < text.size(); ++i) {
                if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
                    all_digits = false;
                    break;
                }
            }
            if (all_digits)
                return Value::integer(*valueToNumeric(value));
        }
        return value;
      }
      case DataType::Text:
        if (value.kind() == Value::Kind::Text)
            return value;
        return Value::text(value.toString());
      case DataType::Bool:
        if (value.kind() == Value::Kind::Bool)
            return value;
        return Value::boolean(valueTruth(value).value_or(false));
    }
    return value;
}

StatusOr<ResultSet>
Database::runInsert(Catalog &catalog, const InsertStmt &stmt)
{
    StoredTable *table = catalog.table(stmt.table);
    if (table == nullptr) {
        if (catalog.hasView(stmt.table))
            return Status::semanticError("cannot insert into a view");
        return Status::semanticError("no such table: " + stmt.table);
    }
    // Map of insert positions to column ordinals.
    std::vector<size_t> targets;
    if (stmt.columns.empty()) {
        for (size_t i = 0; i < table->columns.size(); ++i)
            targets.push_back(i);
    } else {
        std::set<std::string> seen;
        for (const std::string &name : stmt.columns) {
            size_t ordinal = table->columnOrdinal(name);
            if (ordinal == StoredTable::npos)
                return Status::semanticError("no such column: " + name);
            if (!seen.insert(name).second) {
                return Status::semanticError("duplicate column: " + name);
            }
            targets.push_back(ordinal);
        }
    }

    EvalContext ctx;
    ctx.behavior = &config_.behavior;
    ctx.faults = &config_.faults;

    for (const auto &exprs : stmt.rows) {
        if (exprs.size() != targets.size()) {
            return Status::semanticError(
                "INSERT value count does not match column count");
        }
        if (table->rows.size() >= kMaxRowsPerTable)
            return Status::runtimeError("table is full");
        Row row(table->columns.size()); // defaults are NULL
        for (size_t i = 0; i < exprs.size(); ++i) {
            auto value = evalExpr(*exprs[i], ctx);
            if (!value.isOk())
                return value.status();
            row[targets[i]] = coerceForColumn(
                value.value(), table->columns[targets[i]].type);
        }
        // Constraint checks.
        Status violation = Status::ok();
        for (size_t i = 0; i < table->columns.size(); ++i) {
            const ColumnDef &col = table->columns[i];
            if ((col.notNull || col.primaryKey) && row[i].isNull()) {
                violation = Status::runtimeError(
                    "NOT NULL constraint failed: " + col.name);
                break;
            }
        }
        // Unique indexes (includes implicit PK/UNIQUE indexes).
        Scope scope;
        std::vector<std::string> column_names;
        for (const ColumnDef &col : table->columns)
            column_names.push_back(col.name);
        scope.addBinding(table->name, column_names);
        if (violation.isOk()) {
            for (StoredIndex &index : table->indexes) {
                if (!index.unique)
                    continue;
                bool applies = true;
                if (index.predicate != nullptr) {
                    EvalContext pred_ctx;
                    pred_ctx.scope = &scope;
                    pred_ctx.row = &row;
                    pred_ctx.behavior = &config_.behavior;
                    pred_ctx.faults = &config_.faults;
                    auto value = evalExpr(*index.predicate, pred_ctx);
                    if (!value.isOk())
                        return value.status();
                    auto truth = valueTruth(value.value());
                    applies = truth.has_value() && *truth;
                }
                if (!applies)
                    continue;
                std::vector<Value> key;
                for (size_t ordinal : index.columnOrdinals)
                    key.push_back(row[ordinal]);
                if (index.containsConflictingKey(key)) {
                    violation = Status::runtimeError(
                        "UNIQUE constraint failed: " + index.name);
                    break;
                }
            }
        }
        if (!violation.isOk()) {
            if (stmt.orIgnore) {
                SQLPP_COVER("db.insert.or_ignore_skip");
                continue;
            }
            return violation;
        }
        // Commit the row and maintain all indexes.
        size_t ordinal = table->rows.size();
        for (StoredIndex &index : table->indexes) {
            bool applies = true;
            if (index.predicate != nullptr) {
                EvalContext pred_ctx;
                pred_ctx.scope = &scope;
                pred_ctx.row = &row;
                pred_ctx.behavior = &config_.behavior;
                pred_ctx.faults = &config_.faults;
                auto value = evalExpr(*index.predicate, pred_ctx);
                if (!value.isOk())
                    return value.status();
                auto truth = valueTruth(value.value());
                applies = truth.has_value() && *truth;
            }
            if (!applies)
                continue;
            std::vector<Value> key;
            for (size_t idx_ordinal : index.columnOrdinals)
                key.push_back(row[idx_ordinal]);
            index.insert(std::move(key), ordinal);
        }
        table->rows.push_back(std::move(row));
        table->analyzed = false;
    }
    return emptyResult();
}

StatusOr<ResultSet>
Database::runAnalyze(Catalog &catalog, const AnalyzeStmt &stmt)
{
    auto analyze_table = [](StoredTable &table) {
        table.stats.assign(table.columns.size(), ColumnStats{});
        for (size_t c = 0; c < table.columns.size(); ++c) {
            std::set<std::string> distinct;
            for (const Row &row : table.rows) {
                if (row[c].isNull())
                    ++table.stats[c].nullCount;
                else
                    distinct.insert(row[c].literal());
            }
            table.stats[c].distinctValues = distinct.size();
        }
        table.analyzed = true;
    };
    if (!stmt.table.empty()) {
        StoredTable *table = catalog.table(stmt.table);
        if (table == nullptr)
            return Status::semanticError("no such table: " + stmt.table);
        analyze_table(*table);
        return emptyResult();
    }
    for (const std::string &name : catalog.tableNames())
        analyze_table(*catalog.table(name));
    return emptyResult();
}

StatusOr<ResultSet>
Database::runDrop(Catalog &catalog, const DropStmt &stmt)
{
    Status status = Status::ok();
    switch (stmt.kind()) {
      case StmtKind::DropTable:
        status = catalog.dropTable(stmt.name);
        break;
      case StmtKind::DropView:
        status = catalog.dropView(stmt.name);
        break;
      case StmtKind::DropIndex:
        status = catalog.dropIndex(stmt.name);
        break;
      default:
        return Status::internal("bad drop kind");
    }
    if (!status.isOk() && stmt.ifExists)
        return emptyResult();
    if (!status.isOk())
        return status;
    return emptyResult();
}

void
declareEngineCoverageProbes()
{
    CoverageRegistry &registry = CoverageRegistry::instance();
    // Statement dispatch.
    for (const char *probe :
         {"db.create_table", "db.create_index", "db.create_view",
          "db.insert", "db.insert.or_ignore_skip", "db.analyze",
          "db.select", "db.drop"}) {
        registry.declare(probe);
    }
    // Transaction control and isolation-fault paths.
    for (const char *probe :
         {"db.txn.begin", "db.txn.commit", "db.txn.rollback",
          "db.txn.savepoint", "db.txn.rollback_to", "db.txn.release",
          "db.txn.commit_conflict", "db.txn.batch_fallback",
          "db.txn.fault.snapshot_leak", "db.txn.fault.dirty_read",
          "db.txn.fault.lost_update"}) {
        registry.declare(probe);
    }
    // Executor paths.
    for (const char *probe :
         {"exec.source.table", "exec.source.view", "exec.source.derived",
          "exec.access.index_scan", "exec.access.full_scan",
          "exec.access.pushed_filter", "exec.join.hash",
          "exec.join.nested_loop", "exec.join.null_extend_left",
          "exec.join.null_extend_right", "exec.join.cross_comma",
          "exec.filter.where", "exec.aggregate", "exec.project",
          "exec.distinct", "exec.sort",
          "exec.fault.group_null_separate",
          "exec.fault.distinct_null_collapse"}) {
        registry.declare(probe);
    }
    // Planner paths.
    for (const char *probe :
         {"planner.fold.const", "planner.fold.nullif_fault",
          "planner.pushdown", "planner.fault.pushdown_outer",
          "planner.fault.on_to_where"}) {
        registry.declare(probe);
    }
    // Operator evaluation paths.
    for (const char *probe :
         {"eval.op.add", "eval.op.sub", "eval.op.mul", "eval.op.div",
          "eval.op.mod", "eval.op.bitand", "eval.op.bitor",
          "eval.op.bitxor", "eval.op.shl", "eval.op.shr", "eval.op.eq",
          "eval.op.noteq", "eval.op.nullsafe_eq", "eval.op.is_distinct",
          "eval.op.relational", "eval.op.and", "eval.op.or",
          "eval.op.not", "eval.op.neg", "eval.op.unary_plus",
          "eval.op.bitnot", "eval.op.is_null", "eval.op.is_not_null",
          "eval.op.is_true", "eval.op.is_false", "eval.op.concat",
          "eval.op.like", "eval.op.glob", "eval.op.between",
          "eval.op.in_list", "eval.op.case", "eval.op.cast",
          "eval.op.exists", "eval.op.in_subquery",
          "eval.op.scalar_subquery"}) {
        registry.declare(probe);
    }
    // Aggregates.
    for (const char *probe :
         {"eval.agg.count", "eval.agg.sum", "eval.agg.avg",
          "eval.agg.min", "eval.agg.max"}) {
        registry.declare(probe);
    }
    // One probe per scalar function implementation.
    for (const std::string &name : FunctionRegistry::instance().names())
        registry.declare("eval.fn." + toLower(name));
}

} // namespace sqlpp
