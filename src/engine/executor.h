/**
 * @file
 * Query planning and execution.
 *
 * One Executor instance runs one top-level SELECT (plus its subqueries)
 * in one of two modes:
 *
 *  - Optimized: constant folding of WHERE/ON trees, predicate pushdown
 *    below joins, index-scan selection for pushed conjuncts, and hash
 *    joins for equi-joins. All planner faults hook in here.
 *  - Reference: full scans, whole-predicate post-join filtering, nested
 *    loops only, no rewrites. This is the "non-optimizing reference"
 *    whose existence makes the NoREC oracle meaningful: projected
 *    expressions never enter the optimizer, so a query rewritten the
 *    NoREC way naturally takes this path for its predicate.
 *
 * The executor records a data-independent *plan description* string as
 * it makes planning decisions; its hash is the plan fingerprint used to
 * reproduce the paper's unique-query-plan metric (Fig. 8).
 */
#ifndef SQLPP_ENGINE_EXECUTOR_H
#define SQLPP_ENGINE_EXECUTOR_H

#include <string>
#include <vector>

#include "engine/budget.h"
#include "engine/catalog.h"
#include "engine/eval.h"
#include "sqlir/ast.h"
#include "util/status.h"

namespace sqlpp {

/** Which execution pipeline to use. */
enum class ExecMode
{
    Optimized,
    Reference,
    /**
     * Optimized planning with columnar batch-at-a-time filter and
     * projection loops (engine/batch_executor.h). Plans — and therefore
     * plan fingerprints — are identical to Optimized; only the inner
     * loops differ. Compiled out by SQLPP_NO_BATCH, in which case this
     * mode degrades to row-at-a-time execution identical to Optimized.
     */
    Batch,
};

/** Stable lowercase name ("optimized", "reference", "batch"). */
const char *execModeName(ExecMode mode);

/** Parse execModeName() output; false (and *out untouched) on junk. */
bool parseExecMode(const std::string &name, ExecMode &out);

/** Runs SELECT statements against a catalog. */
class Executor : public SubqueryRunner
{
  public:
    /**
     * @param budget Shared per-statement charge meter; nullptr uses an
     *     owned meter with default limits. Child executors spawned for
     *     subqueries, views, and derived tables inherit the pointer, so
     *     one budget bounds the whole statement.
     */
    Executor(const Catalog &catalog, const EngineBehavior &behavior,
             const FaultSet &faults, ExecMode mode,
             BudgetMeter *budget = nullptr);

    /** Execute a top-level SELECT. */
    StatusOr<ResultSet> runSelect(const SelectStmt &select,
                                  const EvalContext *outer = nullptr);

    /** SubqueryRunner hook used by the evaluator. */
    StatusOr<ResultSet> runSubquery(const SelectStmt &select,
                                    const EvalContext *outer) override;

    /**
     * Data-independent description of the plan(s) executed so far,
     * including nested subquery plans in brackets.
     */
    const std::string &planDescription() const { return plan_; }

    /** FNV-1a hash of planDescription(). */
    uint64_t planFingerprint() const;

  private:
    /** A materialized FROM source with its binding metadata. */
    struct Source
    {
        std::string binding;
        std::vector<std::string> columns;
        std::vector<Row> rows;
        /** Non-null for base tables (enables index probes). */
        const StoredTable *table = nullptr;
        /** True when this binding may be NULL-extended by an outer join. */
        bool nullable = false;
    };

    StatusOr<ResultSet> runSelectImpl(const SelectStmt &select,
                                      const EvalContext *outer);

    /** Materialize one FROM item (base table, view, derived table). */
    StatusOr<Source> prepareSource(const TableRef &ref,
                                   const EvalContext *outer);

    /**
     * Apply pushed-down conjuncts to a base-table source, choosing an
     * index probe when one matches; remaining conjuncts filter inline.
     */
    Status applySourceFilters(Source &source,
                              std::vector<const Expr *> conjuncts,
                              const EvalContext *outer);

    /** Evaluate a predicate as a WHERE-style filter condition. */
    StatusOr<bool> predicateKeeps(const Expr &predicate, const Scope &scope,
                                  const Row &row, const EvalContext *outer,
                                  bool where_clause);

    /**
     * Batch-mode filter: conjuncts over @p input into @p out via the
     * vectorized kernels, falling back to predicateKeeps per row for
     * anything outside the kernel subset.
     */
    Status batchFilterInto(const std::vector<Row> &input,
                           const std::vector<const Expr *> &conjuncts,
                           const Scope &scope, const EvalContext *outer,
                           std::vector<Row> &out);

    void note(const std::string &atom);

    const Catalog &catalog_;
    const EngineBehavior &behavior_;
    const FaultSet &faults_;
    ExecMode mode_;
    /** Fallback meter when the caller does not supply one. */
    BudgetMeter owned_budget_;
    /** The meter every loop and evaluator call charges against. */
    BudgetMeter *budget_;
    std::string plan_;
    /** Re-entrancy guard for runaway recursive subqueries. */
    int depth_ = 0;
    /**
     * Results of uncorrelated expression subqueries, keyed by SQL text.
     * An uncorrelated subquery is loop-invariant across the rows of the
     * enclosing statement, so caching is semantics-preserving; real
     * engines perform the same "one-shot subquery" optimization.
     */
    std::map<std::string, ResultSet> subquery_cache_;
};

/**
 * True if every column reference inside the (sub)select resolves to one
 * of its own FROM bindings — i.e. the subquery is uncorrelated and can
 * be evaluated once. Conservative: unqualified references count as
 * potentially correlated.
 */
bool isUncorrelatedSelect(const SelectStmt &select);

/**
 * Split a predicate into top-level AND conjuncts (borrowed pointers into
 * the expression tree).
 */
std::vector<const Expr *> splitConjuncts(const Expr &predicate);

/**
 * Constant-fold an expression tree: any subtree without column
 * references or subqueries is evaluated once and replaced by a literal.
 * Folding uses the shared evaluator, so it is semantics-preserving —
 * except under the ConstFoldNullifIdentity fault, which rewrites
 * NULLIF(x, x) with syntactically identical arguments to x.
 * Returns a new tree (input untouched). Fold errors leave the subtree
 * unfolded so that runtime reporting is unchanged.
 */
ExprPtr constantFold(const Expr &expr, const EngineBehavior &behavior,
                     const FaultSet &faults);

} // namespace sqlpp

#endif // SQLPP_ENGINE_EXECUTOR_H
