/**
 * @file
 * Expression evaluation with SQL three-valued logic.
 *
 * The evaluator is shared by the optimized and the reference execution
 * paths (as in real systems), so evaluator faults affect both — which is
 * why they are invisible to NoREC and only caught by TLP when they break
 * the partition law. See engine/faults.h for the fault taxonomy.
 */
#ifndef SQLPP_ENGINE_EVAL_H
#define SQLPP_ENGINE_EVAL_H

#include <optional>
#include <string>
#include <vector>

#include "engine/budget.h"
#include "engine/faults.h"
#include "sqlir/ast.h"
#include "sqlir/value.h"
#include "util/status.h"

namespace sqlpp {

/** Dialect-level behaviour knobs of the engine (not bugs — semantics). */
struct EngineBehavior
{
    /** x / 0 yields NULL (SQLite-style) instead of a runtime error. */
    bool divZeroIsNull = true;
    /** ASIN(2), LN(0), SQRT(-1) yield NULL instead of a runtime error. */
    bool domainErrorIsNull = false;
    /** Run the static type checker before execution. */
    bool staticTyping = false;
    /** LIKE matches case-insensitively (SQLite-style). */
    bool caseInsensitiveLike = true;
};

/** One named tuple source visible to column resolution. */
struct Binding
{
    /** Binding name (table name or alias). */
    std::string name;
    /** Column names in row order. */
    std::vector<std::string> columns;
    /** Offset of this binding's first column in the combined row. */
    size_t offset = 0;
};

/** The set of bindings produced by a FROM clause. */
class Scope
{
  public:
    std::vector<Binding> bindings;

    /** Total combined-row width. */
    size_t width() const;

    /**
     * Resolve a (possibly unqualified) column reference to a combined-row
     * offset. Fails with SemanticError for unknown or ambiguous names.
     */
    StatusOr<size_t> resolve(const std::string &table,
                             const std::string &column) const;

    /** Qualified "binding.column" names for all columns, in row order. */
    std::vector<std::string> allColumnNames() const;

    /** Append a binding, fixing its offset to the current width. */
    void addBinding(std::string name, std::vector<std::string> columns);
};

class EvalContext;

/**
 * Callback used by the evaluator to execute expression subqueries.
 * Implemented by the executor; null in contexts without subquery support.
 */
class SubqueryRunner
{
  public:
    virtual ~SubqueryRunner() = default;

    /**
     * Run a subquery. @p outer provides the lexical environment for
     * correlated column references.
     */
    virtual StatusOr<ResultSet> runSubquery(const SelectStmt &select,
                                            const EvalContext *outer) = 0;
};

/** Everything an expression evaluation needs. */
class EvalContext
{
  public:
    const Scope *scope = nullptr;
    const Row *row = nullptr;
    /** Enclosing context for correlated subqueries. */
    const EvalContext *outer = nullptr;
    /** Non-null while evaluating aggregate select/having expressions. */
    const std::vector<Row> *groupRows = nullptr;

    const EngineBehavior *behavior = nullptr;
    const FaultSet *faults = nullptr;
    SubqueryRunner *subqueries = nullptr;
    /**
     * Per-statement charge meter; the evaluator charges one step per
     * expression node evaluated. Null means unmetered (type checker,
     * constant folding).
     */
    BudgetMeter *budget = nullptr;

    /**
     * Number of enclosing NOT operators; the NegContextMixedEq fault
     * keys off its parity.
     */
    int negationDepth = 0;

    /**
     * The root of the expression tree this evaluation started from, set
     * once at evalExpr() entry. The DoubleNegNullFalse fault keys off
     * it: the deviation fires only when a NOT node *is* the evaluation
     * root, modelling a result-delivery shortcut that inner expression
     * positions never take.
     */
    const Expr *rootExpr = nullptr;

    bool
    faultEnabled(FaultId id) const
    {
        return faults != nullptr && faults->isEnabled(id);
    }
};

/** Evaluate an expression to a Value (or a runtime/semantic error). */
StatusOr<Value> evalExpr(const Expr &expr, const EvalContext &ctx);

/**
 * SQL truthiness of a value: NULL for SQL NULL, otherwise a bool after
 * dynamic coercion (numbers: non-zero; text: numeric prefix non-zero).
 */
std::optional<bool> valueTruth(const Value &value);

/**
 * Dynamic coercion to the numeric class. Text parses a leading integer
 * (SQLite affinity-style: "12abc" -> 12, "abc" -> 0); NULL -> nullopt.
 */
std::optional<int64_t> valueToNumeric(const Value &value);

/** Render any non-NULL value as text; NULL -> nullopt. */
std::optional<std::string> valueToText(const Value &value);

/**
 * SQL ordering comparison with class semantics: the numeric class
 * (INT, BOOL) sorts before the text class; values in the same class
 * compare naturally. Returns nullopt when either side is NULL.
 */
std::optional<int> compareSql(const Value &lhs, const Value &rhs);

/** True if the expression contains an aggregate call outside subqueries. */
bool exprContainsAggregate(const Expr &expr);

/** True if name is one of COUNT/SUM/AVG/MIN/MAX. */
bool isAggregateFunction(const std::string &name);

/**
 * True if the expression references no columns and no subqueries, i.e.
 * it can be constant-folded by the planner.
 */
bool isConstExpr(const Expr &expr);

/** SQL LIKE pattern match ('%', '_'), used by the evaluator and tests. */
bool likeMatch(const std::string &text, const std::string &pattern,
               bool case_insensitive, bool underscore_is_literal);

/** SQL GLOB pattern match ('*', '?'), case-sensitive. */
bool globMatch(const std::string &text, const std::string &pattern);

} // namespace sqlpp

#endif // SQLPP_ENGINE_EVAL_H
