/**
 * @file
 * Per-statement execution budgets.
 *
 * SQLancer-family testers bound every generated query so one
 * pathological cross join cannot wedge a 24-hour campaign (Rigger & Su,
 * PQS). StepBudget is the limit triple; BudgetMeter is the mutable
 * counter a single statement execution charges against. Exhaustion
 * surfaces as ErrorCode::BudgetExhausted — a resource condition, not a
 * wrong answer — which the oracles skip and never compare.
 */
#ifndef SQLPP_ENGINE_BUDGET_H
#define SQLPP_ENGINE_BUDGET_H

#include <cstdint>

#include "util/metrics.h"
#include "util/status.h"

namespace sqlpp {

/**
 * Limits for one statement execution. A limit of 0 means unlimited.
 *
 * maxIntermediateRows defaults to the engine's historical hard cap on
 * materialized join products, so default-configured runs behave exactly
 * as before — only the error *code* for blowing the cap changed.
 */
struct StepBudget
{
    /** Evaluator steps: one per expression node evaluated per row. */
    uint64_t maxSteps = 0;
    /** Rows emitted into any result set (before LIMIT). */
    uint64_t maxRows = 0;
    /** Rows materialized by scans, joins and derived tables. */
    uint64_t maxIntermediateRows = 50000;

    bool
    operator==(const StepBudget &other) const
    {
        return maxSteps == other.maxSteps && maxRows == other.maxRows &&
               maxIntermediateRows == other.maxIntermediateRows;
    }
};

/**
 * Mutable charge counters for one statement.
 *
 * One meter is shared by the executor, every child executor it spawns
 * for subqueries/views/derived tables, and the recursive evaluator, so
 * the budget bounds the statement as a whole, not any single loop.
 */
class BudgetMeter
{
  public:
    BudgetMeter() = default;
    explicit BudgetMeter(const StepBudget &limits) : limits_(limits) {}

    const StepBudget &limits() const { return limits_; }

    uint64_t steps() const { return steps_; }
    uint64_t rows() const { return rows_; }
    uint64_t intermediateRows() const { return intermediate_rows_; }

    /** Charge evaluator/loop steps; fails once the limit is reached. */
    Status
    chargeSteps(uint64_t count)
    {
        steps_ += count;
        if (limits_.maxSteps != 0 && steps_ > limits_.maxSteps) {
            SQLPP_COUNT("budget.exhausted.steps");
            return Status::budgetExhausted(
                "statement exceeded step budget");
        }
        return Status::ok();
    }

    /** Charge result rows; fails once the limit is reached. */
    Status
    chargeRows(uint64_t count)
    {
        rows_ += count;
        if (limits_.maxRows != 0 && rows_ > limits_.maxRows) {
            SQLPP_COUNT("budget.exhausted.rows");
            return Status::budgetExhausted(
                "statement exceeded result-row budget");
        }
        return Status::ok();
    }

    /** Charge materialized intermediate rows (scan/join products). */
    Status
    chargeIntermediateRows(uint64_t count)
    {
        intermediate_rows_ += count;
        if (limits_.maxIntermediateRows != 0 &&
            intermediate_rows_ > limits_.maxIntermediateRows) {
            SQLPP_COUNT("budget.exhausted.intermediate");
            return Status::budgetExhausted(
                "statement exceeded intermediate-row budget");
        }
        return Status::ok();
    }

  private:
    StepBudget limits_;
    uint64_t steps_ = 0;
    uint64_t rows_ = 0;
    uint64_t intermediate_rows_ = 0;
};

} // namespace sqlpp

#endif // SQLPP_ENGINE_BUDGET_H
