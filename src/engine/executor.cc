#include "engine/executor.h"

#include <algorithm>
#include <map>
#include <set>

#include "engine/batch_executor.h"
#include "engine/functions.h"
#include "sqlir/printer.h"
#include "util/coverage.h"
#include "util/strutil.h"

namespace sqlpp {

namespace {

/** Sort comparison: NULLs first, then SQL class ordering. */
int
compareForSort(const Value &lhs, const Value &rhs)
{
    if (lhs.isNull() && rhs.isNull())
        return 0;
    if (lhs.isNull())
        return -1;
    if (rhs.isNull())
        return 1;
    auto cmp = compareSql(lhs, rhs);
    return cmp.value_or(0);
}

/** Serialize a value for grouping/distinct keys (kind-tagged). */
std::string
valueKey(const Value &value)
{
    switch (value.kind()) {
      case Value::Kind::Null: return "n";
      case Value::Kind::Int: return "i" + std::to_string(value.asInt());
      case Value::Kind::Text: return "t" + value.asText();
      case Value::Kind::Bool: return value.asBool() ? "b1" : "b0";
    }
    return "?";
}

std::string
rowKey(const Row &row)
{
    std::string key;
    for (const Value &value : row) {
        key += valueKey(value);
        key.push_back('\x1f');
    }
    return key;
}

/** Collect column references of an expression, skipping subqueries. */
void
collectColumnRefs(const Expr &expr, std::vector<const ColumnRefExpr *> &out)
{
    if (expr.kind() == ExprKind::ColumnRef) {
        out.push_back(static_cast<const ColumnRefExpr *>(&expr));
        return;
    }
    for (const Expr *child : expr.children())
        collectColumnRefs(*child, out);
}

/** True if the expression contains any subquery node. */
bool
containsSubquery(const Expr &expr)
{
    switch (expr.kind()) {
      case ExprKind::Exists:
      case ExprKind::InSubquery:
      case ExprKind::ScalarSubquery:
        return true;
      default:
        break;
    }
    if (expr.kind() == ExprKind::InSubquery)
        return true;
    for (const Expr *child : expr.children()) {
        if (containsSubquery(*child))
            return true;
    }
    return false;
}

} // namespace

std::vector<const Expr *>
splitConjuncts(const Expr &predicate)
{
    std::vector<const Expr *> out;
    if (predicate.kind() == ExprKind::Binary) {
        const auto &bin = static_cast<const BinaryExpr &>(predicate);
        if (bin.op == BinaryOp::And) {
            auto lhs = splitConjuncts(*bin.lhs);
            auto rhs = splitConjuncts(*bin.rhs);
            out.insert(out.end(), lhs.begin(), lhs.end());
            out.insert(out.end(), rhs.begin(), rhs.end());
            return out;
        }
    }
    out.push_back(&predicate);
    return out;
}

namespace {

ExprPtr
foldChildren(const Expr &expr, const EngineBehavior &behavior,
             const FaultSet &faults);

} // namespace

ExprPtr
constantFold(const Expr &expr, const EngineBehavior &behavior,
             const FaultSet &faults)
{
    // The injected folding bug: NULLIF with syntactically identical
    // constant arguments is rewritten to its first argument.
    if (faults.isEnabled(FaultId::ConstFoldNullifIdentity) &&
        expr.kind() == ExprKind::Function) {
        const auto &fn = static_cast<const FunctionExpr &>(expr);
        if (fn.name == "NULLIF" && fn.args.size() == 2 &&
            isConstExpr(expr) &&
            printExpr(*fn.args[0]) == printExpr(*fn.args[1])) {
            SQLPP_COVER("planner.fold.nullif_fault");
            return constantFold(*fn.args[0], behavior, faults);
        }
    }
    if (expr.kind() != ExprKind::Literal && isConstExpr(expr)) {
        EvalContext ctx;
        ctx.behavior = &behavior;
        ctx.faults = &faults;
        auto value = evalExpr(expr, ctx);
        if (value.isOk()) {
            SQLPP_COVER("planner.fold.const");
            return std::make_unique<LiteralExpr>(value.takeValue());
        }
        // Evaluation failed (overflow, domain error): keep the original
        // subtree so the error is raised at run time, as it would be
        // without folding.
        return expr.clone();
    }
    return foldChildren(expr, behavior, faults);
}

namespace {

ExprPtr
foldChildren(const Expr &expr, const EngineBehavior &behavior,
             const FaultSet &faults)
{
    auto fold = [&](const ExprPtr &child) {
        return constantFold(*child, behavior, faults);
    };
    switch (expr.kind()) {
      case ExprKind::Unary: {
        const auto &unary = static_cast<const UnaryExpr &>(expr);
        return std::make_unique<UnaryExpr>(unary.op, fold(unary.operand));
      }
      case ExprKind::Binary: {
        const auto &bin = static_cast<const BinaryExpr &>(expr);
        return std::make_unique<BinaryExpr>(bin.op, fold(bin.lhs),
                                            fold(bin.rhs));
      }
      case ExprKind::Between: {
        const auto &between = static_cast<const BetweenExpr &>(expr);
        return std::make_unique<BetweenExpr>(
            fold(between.operand), fold(between.low), fold(between.high),
            between.negated);
      }
      case ExprKind::InList: {
        const auto &in = static_cast<const InListExpr &>(expr);
        std::vector<ExprPtr> items;
        items.reserve(in.items.size());
        for (const ExprPtr &item : in.items)
            items.push_back(fold(item));
        return std::make_unique<InListExpr>(fold(in.operand),
                                            std::move(items), in.negated);
      }
      case ExprKind::Case: {
        const auto &case_expr = static_cast<const CaseExpr &>(expr);
        std::vector<CaseExpr::Arm> arms;
        arms.reserve(case_expr.arms.size());
        for (const CaseExpr::Arm &arm : case_expr.arms) {
            arms.push_back(
                CaseExpr::Arm{fold(arm.when), fold(arm.then)});
        }
        return std::make_unique<CaseExpr>(
            case_expr.operand ? fold(case_expr.operand) : nullptr,
            std::move(arms),
            case_expr.elseExpr ? fold(case_expr.elseExpr) : nullptr);
      }
      case ExprKind::Function: {
        const auto &fn = static_cast<const FunctionExpr &>(expr);
        std::vector<ExprPtr> args;
        args.reserve(fn.args.size());
        for (const ExprPtr &arg : fn.args)
            args.push_back(fold(arg));
        return std::make_unique<FunctionExpr>(fn.name, std::move(args),
                                              fn.star, fn.distinct);
      }
      default:
        // Leaves and subqueries: clone untouched (folding never enters
        // subqueries).
        return expr.clone();
    }
}

} // namespace

const char *
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::Optimized: return "optimized";
      case ExecMode::Reference: return "reference";
      case ExecMode::Batch: return "batch";
    }
    return "optimized";
}

bool
parseExecMode(const std::string &name, ExecMode &out)
{
    if (name == "optimized") {
        out = ExecMode::Optimized;
        return true;
    }
    if (name == "reference") {
        out = ExecMode::Reference;
        return true;
    }
    if (name == "batch") {
        out = ExecMode::Batch;
        return true;
    }
    return false;
}

Executor::Executor(const Catalog &catalog, const EngineBehavior &behavior,
                   const FaultSet &faults, ExecMode mode,
                   BudgetMeter *budget)
    : catalog_(catalog), behavior_(behavior), faults_(faults), mode_(mode),
      budget_(budget != nullptr ? budget : &owned_budget_)
{
}

uint64_t
Executor::planFingerprint() const
{
    return fnv1a(plan_);
}

void
Executor::note(const std::string &atom)
{
    plan_ += atom;
    plan_ += ';';
}

namespace {

/** Collect correlation evidence for isUncorrelatedSelect. */
bool
exprRefsOutside(const Expr &expr, const std::set<std::string> &visible);

bool
selectRefsOutside(const SelectStmt &select,
                  std::set<std::string> visible)
{
    for (const TableRef &ref : select.from) {
        visible.insert(ref.bindingName());
        if (ref.subquery != nullptr &&
            selectRefsOutside(*ref.subquery, visible)) {
            return true;
        }
    }
    for (const JoinClause &join : select.joins) {
        visible.insert(join.table.bindingName());
        if (join.table.subquery != nullptr &&
            selectRefsOutside(*join.table.subquery, visible)) {
            return true;
        }
    }
    auto check = [&](const Expr *expr) {
        return expr != nullptr && exprRefsOutside(*expr, visible);
    };
    for (const SelectItem &item : select.items) {
        if (!item.star && check(item.expr.get()))
            return true;
    }
    for (const JoinClause &join : select.joins) {
        if (check(join.on.get()))
            return true;
    }
    if (check(select.where.get()) || check(select.having.get()))
        return true;
    for (const ExprPtr &key : select.groupBy) {
        if (check(key.get()))
            return true;
    }
    for (const OrderTerm &term : select.orderBy) {
        if (check(term.expr.get()))
            return true;
    }
    return false;
}

bool
exprRefsOutside(const Expr &expr, const std::set<std::string> &visible)
{
    switch (expr.kind()) {
      case ExprKind::ColumnRef: {
        const auto &ref = static_cast<const ColumnRefExpr &>(expr);
        // Unqualified references are conservatively correlated.
        return ref.table.empty() || visible.count(ref.table) == 0;
      }
      case ExprKind::Exists: {
        const auto &exists = static_cast<const ExistsExpr &>(expr);
        return selectRefsOutside(*exists.subquery,
                                 std::set<std::string>(visible));
      }
      case ExprKind::InSubquery: {
        const auto &in = static_cast<const InSubqueryExpr &>(expr);
        if (exprRefsOutside(*in.operand, visible))
            return true;
        return selectRefsOutside(*in.subquery,
                                 std::set<std::string>(visible));
      }
      case ExprKind::ScalarSubquery: {
        const auto &sub = static_cast<const ScalarSubqueryExpr &>(expr);
        return selectRefsOutside(*sub.subquery,
                                 std::set<std::string>(visible));
      }
      default:
        break;
    }
    for (const Expr *child : expr.children()) {
        if (exprRefsOutside(*child, visible))
            return true;
    }
    return false;
}

} // namespace

bool
isUncorrelatedSelect(const SelectStmt &select)
{
    return !selectRefsOutside(select, {});
}

StatusOr<ResultSet>
Executor::runSubquery(const SelectStmt &select, const EvalContext *outer)
{
    if (depth_ > 12)
        return Status::runtimeError("subquery nesting too deep");
    // Uncorrelated subqueries are loop-invariant: evaluate once per
    // enclosing statement.
    std::string cache_key;
    if (isUncorrelatedSelect(select)) {
        cache_key = printSelect(select);
        auto hit = subquery_cache_.find(cache_key);
        if (hit != subquery_cache_.end())
            return hit->second;
    }
    Executor child(catalog_, behavior_, faults_, mode_, budget_);
    child.depth_ = depth_ + 1;
    auto result = child.runSelectImpl(select, outer);
    // Correlated subqueries run once per row; dedupe their plan shape so
    // the parent plan stays data-independent.
    std::string atom = "SUB[" + child.plan_ + "]";
    if (plan_.find(atom) == std::string::npos)
        note(atom);
    if (!cache_key.empty() && result.isOk())
        subquery_cache_.emplace(std::move(cache_key), result.value());
    return result;
}

StatusOr<ResultSet>
Executor::runSelect(const SelectStmt &select, const EvalContext *outer)
{
    // Batch mode plans exactly like Optimized (same notes, same plan
    // fingerprints); only the filter/project inner loops differ.
    note(mode_ == ExecMode::Reference ? "REF" : "OPT");
    return runSelectImpl(select, outer);
}

StatusOr<Executor::Source>
Executor::prepareSource(const TableRef &ref, const EvalContext *outer)
{
    Source source;
    if (ref.subquery) {
        SQLPP_COVER("exec.source.derived");
        Executor child(catalog_, behavior_, faults_, mode_, budget_);
        child.depth_ = depth_ + 1;
        auto result = child.runSelectImpl(*ref.subquery, outer);
        if (!result.isOk())
            return result.status();
        note("DRV[" + child.plan_ + "]");
        source.binding = ref.alias;
        source.columns = result.value().columns();
        source.rows = result.value().rows();
        return source;
    }
    if (const StoredTable *table = catalog_.table(ref.name)) {
        SQLPP_COVER("exec.source.table");
        source.binding = ref.bindingName();
        for (const ColumnDef &col : table->columns)
            source.columns.push_back(col.name);
        source.table = table;
        return source;
    }
    if (const StoredView *view = catalog_.view(ref.name)) {
        SQLPP_COVER("exec.source.view");
        Executor child(catalog_, behavior_, faults_, mode_, budget_);
        child.depth_ = depth_ + 1;
        auto result = child.runSelectImpl(*view->select, outer);
        if (!result.isOk())
            return result.status();
        note("VIEW(" + view->name + ")[" + child.plan_ + "]");
        source.binding = ref.bindingName();
        source.columns = view->columnNames.empty()
                             ? result.value().columns()
                             : view->columnNames;
        if (source.columns.size() != result.value().columnCount()) {
            return Status::semanticError(
                "view column list does not match query: " + view->name);
        }
        source.rows = result.value().rows();
        return source;
    }
    return Status::semanticError("no such table: " + ref.name);
}

Status
Executor::applySourceFilters(Source &source,
                             std::vector<const Expr *> conjuncts,
                             const EvalContext *outer)
{
    // Materialize the base table if not yet done.
    bool is_base = source.table != nullptr && source.rows.empty();
    const StoredTable *table = source.table;

    Scope scope;
    scope.addBinding(source.binding, source.columns);

    // Try to turn one conjunct into an index probe (base tables only).
    size_t probe_conjunct = static_cast<size_t>(-1);
    const StoredIndex *probe_index = nullptr;
    enum class ProbeOp { Eq, Gt, Ge, Lt, Le, IsNull } probe_op = ProbeOp::Eq;
    Value probe_key;

    if (is_base && mode_ != ExecMode::Reference) {
        for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
            const Expr &conjunct = *conjuncts[ci];
            const ColumnRefExpr *col = nullptr;
            ProbeOp op = ProbeOp::Eq;
            Value key;
            if (conjunct.kind() == ExprKind::Binary) {
                const auto &bin =
                    static_cast<const BinaryExpr &>(conjunct);
                const Expr *lhs = bin.lhs.get();
                const Expr *rhs = bin.rhs.get();
                BinaryOp bop = bin.op;
                if (lhs->kind() == ExprKind::Literal &&
                    rhs->kind() == ExprKind::ColumnRef) {
                    // Flip literal op column into column op' literal.
                    std::swap(lhs, rhs);
                    switch (bop) {
                      case BinaryOp::Less: bop = BinaryOp::Greater; break;
                      case BinaryOp::LessEq:
                        bop = BinaryOp::GreaterEq;
                        break;
                      case BinaryOp::Greater: bop = BinaryOp::Less; break;
                      case BinaryOp::GreaterEq:
                        bop = BinaryOp::LessEq;
                        break;
                      default: break;
                    }
                }
                if (lhs->kind() != ExprKind::ColumnRef ||
                    rhs->kind() != ExprKind::Literal) {
                    continue;
                }
                switch (bop) {
                  case BinaryOp::Eq: op = ProbeOp::Eq; break;
                  case BinaryOp::Greater: op = ProbeOp::Gt; break;
                  case BinaryOp::GreaterEq: op = ProbeOp::Ge; break;
                  case BinaryOp::Less: op = ProbeOp::Lt; break;
                  case BinaryOp::LessEq: op = ProbeOp::Le; break;
                  default: continue;
                }
                col = static_cast<const ColumnRefExpr *>(lhs);
                key = static_cast<const LiteralExpr *>(rhs)->value;
                if (key.isNull())
                    continue; // comparison with NULL never matches
            } else if (conjunct.kind() == ExprKind::Unary) {
                const auto &unary =
                    static_cast<const UnaryExpr &>(conjunct);
                if (unary.op != UnaryOp::IsNull ||
                    unary.operand->kind() != ExprKind::ColumnRef) {
                    continue;
                }
                col = static_cast<const ColumnRefExpr *>(
                    unary.operand.get());
                op = ProbeOp::IsNull;
            } else {
                continue;
            }
            if (!col->table.empty() && col->table != source.binding)
                continue;
            size_t ordinal = table->columnOrdinal(col->column);
            if (ordinal == StoredTable::npos)
                continue;
            for (const StoredIndex &index : table->indexes) {
                if (index.columnOrdinals.empty() ||
                    index.columnOrdinals[0] != ordinal) {
                    continue;
                }
                if (index.predicate != nullptr &&
                    !faults_.isEnabled(
                        FaultId::PartialIndexIgnoresPredicate)) {
                    // A partial index is only usable when some other
                    // conjunct syntactically equals its predicate.
                    std::string pred_text = printExpr(*index.predicate);
                    bool implied = false;
                    for (size_t oi = 0; oi < conjuncts.size(); ++oi) {
                        if (oi != ci &&
                            printExpr(*conjuncts[oi]) == pred_text) {
                            implied = true;
                            break;
                        }
                    }
                    if (!implied)
                        continue;
                }
                probe_conjunct = ci;
                probe_index = &index;
                probe_op = op;
                probe_key = key;
                break;
            }
            if (probe_index != nullptr)
                break;
        }
    }

    if (probe_index != nullptr) {
        SQLPP_COVER("exec.access.index_scan");
        const char *op_name = "?";
        switch (probe_op) {
          case ProbeOp::Eq: op_name = "EQ"; break;
          case ProbeOp::Gt: op_name = "GT"; break;
          case ProbeOp::Ge: op_name = "GE"; break;
          case ProbeOp::Lt: op_name = "LT"; break;
          case ProbeOp::Le: op_name = "LE"; break;
          case ProbeOp::IsNull: op_name = "NULL"; break;
        }
        note("IDX(" + source.binding + "," + probe_index->name + "," +
             op_name + ")");
        Value key = probe_key;
        if (probe_op == ProbeOp::Eq &&
            key.kind() == Value::Kind::Text &&
            faults_.isEnabled(FaultId::IndexEqTextCoerce)) {
            key = Value::integer(valueToNumeric(key).value_or(0));
        }
        std::vector<size_t> ordinals;
        if (Status s = budget_->chargeSteps(probe_index->entries.size());
            !s.isOk()) {
            return s;
        }
        for (const StoredIndex::Entry &entry : probe_index->entries) {
            const Value &entry_key = entry.key[0];
            bool match = false;
            if (probe_op == ProbeOp::IsNull) {
                if (faults_.isEnabled(FaultId::IndexSkipsNull))
                    match = false;
                else
                    match = entry_key.isNull();
            } else {
                auto cmp = compareSql(entry_key, key);
                if (cmp.has_value()) {
                    switch (probe_op) {
                      case ProbeOp::Eq: match = *cmp == 0; break;
                      case ProbeOp::Gt:
                        match = faults_.isEnabled(
                                    FaultId::IndexRangeGtIncludesEqual)
                                    ? *cmp >= 0
                                    : *cmp > 0;
                        break;
                      case ProbeOp::Ge: match = *cmp >= 0; break;
                      case ProbeOp::Lt:
                        match = faults_.isEnabled(
                                    FaultId::IndexRangeLtIncludesEqual)
                                    ? *cmp <= 0
                                    : *cmp < 0;
                        break;
                      case ProbeOp::Le: match = *cmp <= 0; break;
                      default: break;
                    }
                }
            }
            if (match)
                ordinals.push_back(entry.rowOrdinal);
        }
        std::sort(ordinals.begin(), ordinals.end());
        source.rows.clear();
        for (size_t ordinal : ordinals)
            source.rows.push_back(table->rows[ordinal]);
        conjuncts.erase(conjuncts.begin() +
                        static_cast<long>(probe_conjunct));
    } else if (is_base) {
        SQLPP_COVER("exec.access.full_scan");
        note("SCAN(" + source.binding + ")");
        if (Status s = budget_->chargeSteps(table->rows.size());
            !s.isOk()) {
            return s;
        }
#ifndef SQLPP_NO_BATCH
        if (mode_ == ExecMode::Batch && !conjuncts.empty()) {
            // Lazy materialization: filter the stored rows in place and
            // copy only the survivors, instead of the row path's full
            // table copy followed by a second survivor copy. Notes and
            // budget charges are identical to the SCAN+PFILT pair.
            SQLPP_COVER("exec.access.pushed_filter");
            note(format("PFILT(%s,%zu)", source.binding.c_str(),
                        conjuncts.size()));
            return batchFilterInto(table->rows, conjuncts, scope, outer,
                                   source.rows);
        }
#endif
        source.rows = table->rows;
    }

    if (conjuncts.empty())
        return Status::ok();
    SQLPP_COVER("exec.access.pushed_filter");
    note(format("PFILT(%s,%zu)", source.binding.c_str(),
                conjuncts.size()));
#ifndef SQLPP_NO_BATCH
    if (mode_ == ExecMode::Batch) {
        std::vector<Row> kept;
        if (Status s = batchFilterInto(source.rows, conjuncts, scope,
                                       outer, kept);
            !s.isOk()) {
            return s;
        }
        source.rows = std::move(kept);
        return Status::ok();
    }
#endif
    std::vector<Row> kept;
    for (const Row &row : source.rows) {
        bool keep = true;
        for (const Expr *conjunct : conjuncts) {
            auto result = predicateKeeps(*conjunct, scope, row, outer,
                                         /*where_clause=*/true);
            if (!result.isOk())
                return result.status();
            if (!result.value()) {
                keep = false;
                break;
            }
        }
        if (keep)
            kept.push_back(row);
    }
    source.rows = std::move(kept);
    return Status::ok();
}

StatusOr<bool>
Executor::predicateKeeps(const Expr &predicate, const Scope &scope,
                         const Row &row, const EvalContext *outer,
                         bool where_clause)
{
    EvalContext ctx;
    ctx.scope = &scope;
    ctx.row = &row;
    ctx.outer = outer;
    ctx.behavior = &behavior_;
    ctx.faults = &faults_;
    ctx.subqueries = this;
    ctx.budget = budget_;
    auto value = evalExpr(predicate, ctx);
    if (!value.isOk())
        return value.status();
    auto truth = valueTruth(value.value());
    if (truth.has_value())
        return *truth;
    // NULL predicate: excluded, unless the WHERE fault is active.
    return where_clause && faults_.isEnabled(FaultId::WhereNullAsTrue);
}

Status
Executor::batchFilterInto(const std::vector<Row> &input,
                          const std::vector<const Expr *> &conjuncts,
                          const Scope &scope, const EvalContext *outer,
                          std::vector<Row> &out)
{
    BatchExprEnv env;
    env.scope = &scope;
    env.behavior = &behavior_;
    env.faults = &faults_;
    env.budget = budget_;
    return batchFilterRows(
        env, conjuncts, input,
        [&](const Expr &conjunct, const Row &row) {
            return predicateKeeps(conjunct, scope, row, outer,
                                  /*where_clause=*/true);
        },
        out);
}

StatusOr<ResultSet>
Executor::runSelectImpl(const SelectStmt &select, const EvalContext *outer)
{
    if (!select.joins.empty() && select.from.size() > 1) {
        return Status::semanticError(
            "comma-separated FROM cannot be combined with JOIN");
    }
    if (select.where != nullptr &&
        exprContainsAggregate(*select.where)) {
        return Status::semanticError(
            "aggregate functions are not allowed in WHERE");
    }
    for (const JoinClause &join : select.joins) {
        if (join.on != nullptr && exprContainsAggregate(*join.on)) {
            return Status::semanticError(
                "aggregate functions are not allowed in ON");
        }
    }

    // ------------------------------------------------------------------
    // Materialize sources and compute outer-join nullability.
    // ------------------------------------------------------------------
    std::vector<Source> sources;
    std::set<std::string> binding_names;
    for (const TableRef &ref : select.from) {
        auto source = prepareSource(ref, outer);
        if (!source.isOk())
            return source.status();
        if (!binding_names.insert(source.value().binding).second) {
            return Status::semanticError("duplicate table binding: " +
                                         source.value().binding);
        }
        sources.push_back(source.takeValue());
    }
    for (const JoinClause &join : select.joins) {
        auto source = prepareSource(join.table, outer);
        if (!source.isOk())
            return source.status();
        if (!binding_names.insert(source.value().binding).second) {
            return Status::semanticError("duplicate table binding: " +
                                         source.value().binding);
        }
        sources.push_back(source.takeValue());
    }
    for (size_t j = 0; j < select.joins.size(); ++j) {
        size_t right_index = select.from.size() + j;
        switch (select.joins[j].type) {
          case JoinType::Left:
            sources[right_index].nullable = true;
            break;
          case JoinType::Right:
            for (size_t i = 0; i < right_index; ++i)
                sources[i].nullable = true;
            break;
          case JoinType::Full:
            for (size_t i = 0; i <= right_index; ++i)
                sources[i].nullable = true;
            break;
          default:
            break;
        }
    }

    // ------------------------------------------------------------------
    // Optimized mode: fold WHERE/ON, apply the ON->WHERE fault, split
    // conjuncts, and push single-binding conjuncts down to sources.
    // ------------------------------------------------------------------
    ExprPtr where_owned;
    std::vector<ExprPtr> on_owned(select.joins.size());
    std::vector<const Expr *> where_conjuncts;
    std::vector<ExprPtr> extra_owned;

    if (select.where != nullptr) {
        where_owned = mode_ != ExecMode::Reference
                          ? constantFold(*select.where, behavior_, faults_)
                          : select.where->clone();
        // Absorbing-element confusion: a top-level `<x> AND TRUE` folds
        // to literal TRUE as if TRUE absorbed (rather than neutralized)
        // the conjunction. Only fires on the wrapper shape EET's
        // and_true rewrite emits, so plain predicates are unaffected.
        if (mode_ != ExecMode::Reference &&
            faults_.isEnabled(FaultId::ConstFoldTrueAbsorbsAnd) &&
            where_owned->kind() == ExprKind::Binary) {
            const auto &top = static_cast<const BinaryExpr &>(*where_owned);
            if (top.op == BinaryOp::And &&
                top.rhs->kind() == ExprKind::Literal) {
                const Value &rhs =
                    static_cast<const LiteralExpr &>(*top.rhs).value;
                if (rhs.kind() == Value::Kind::Bool && rhs.asBool()) {
                    SQLPP_COVER("planner.fault.true_absorbs_and");
                    note("ANDTRUE");
                    where_owned = std::make_unique<LiteralExpr>(
                        Value::boolean(true));
                }
            }
        }
    }
    for (size_t j = 0; j < select.joins.size(); ++j) {
        if (select.joins[j].on == nullptr)
            continue;
        on_owned[j] = mode_ != ExecMode::Reference
                          ? constantFold(*select.joins[j].on, behavior_,
                                         faults_)
                          : select.joins[j].on->clone();
    }

    if (mode_ != ExecMode::Reference) {
        // Listing 4 fault: the "flattener" moves a RIGHT JOIN's ON term
        // into the WHERE clause, losing NULL-extended rows. The faulty
        // rewrite pass only runs when the query already has a WHERE
        // clause (as the real flattener path did), which is exactly why
        // oracles can see it: the predicate-free variant plans right.
        if (select.where != nullptr &&
            faults_.isEnabled(FaultId::OnToWhereRightJoin)) {
            for (size_t j = 0; j < select.joins.size(); ++j) {
                if (select.joins[j].type == JoinType::Right &&
                    on_owned[j] != nullptr) {
                    SQLPP_COVER("planner.fault.on_to_where");
                    note("ON2WHERE");
                    extra_owned.push_back(std::move(on_owned[j]));
                }
            }
        }
    }

    if (where_owned != nullptr)
        where_conjuncts = splitConjuncts(*where_owned);
    for (const ExprPtr &extra : extra_owned)
        where_conjuncts.push_back(extra.get());

    if (mode_ != ExecMode::Reference && !sources.empty()) {
        // Predicate pushdown: route a conjunct to the one source it
        // references, when legal (or illegally, under the fault).
        std::vector<std::vector<const Expr *>> pushed(sources.size());
        std::vector<const Expr *> retained;
        for (const Expr *conjunct : where_conjuncts) {
            if (containsSubquery(*conjunct) ||
                exprContainsAggregate(*conjunct)) {
                retained.push_back(conjunct);
                continue;
            }
            std::vector<const ColumnRefExpr *> refs;
            collectColumnRefs(*conjunct, refs);
            size_t target = static_cast<size_t>(-1);
            bool pushable = !refs.empty();
            for (const ColumnRefExpr *ref : refs) {
                size_t found = static_cast<size_t>(-1);
                int matches = 0;
                for (size_t si = 0; si < sources.size(); ++si) {
                    const Source &source = sources[si];
                    if (!ref->table.empty() &&
                        ref->table != source.binding) {
                        continue;
                    }
                    for (const std::string &column : source.columns) {
                        if (column == ref->column) {
                            found = si;
                            ++matches;
                        }
                    }
                }
                if (matches != 1) {
                    pushable = false;
                    break;
                }
                if (target == static_cast<size_t>(-1))
                    target = found;
                else if (target != found)
                    pushable = false;
                if (!pushable)
                    break;
            }
            if (pushable && target != static_cast<size_t>(-1)) {
                bool legal =
                    !sources[target].nullable ||
                    faults_.isEnabled(FaultId::PushdownThroughOuterJoin);
                if (sources[target].nullable && legal)
                    SQLPP_COVER("planner.fault.pushdown_outer");
                if (legal) {
                    SQLPP_COVER("planner.pushdown");
                    pushed[target].push_back(conjunct);
                    continue;
                }
            }
            retained.push_back(conjunct);
        }
        where_conjuncts = std::move(retained);
        for (size_t si = 0; si < sources.size(); ++si) {
            Status status = applySourceFilters(sources[si],
                                               std::move(pushed[si]),
                                               outer);
            if (!status.isOk())
                return status;
        }
    } else {
        // Reference mode (or FROM-less): materialize base tables fully.
        for (Source &source : sources) {
            Status status = applySourceFilters(source, {}, outer);
            if (!status.isOk())
                return status;
        }
    }

    // ------------------------------------------------------------------
    // Join pipeline.
    // ------------------------------------------------------------------
    Scope scope;
    std::vector<Row> current;
    if (sources.empty()) {
        current.push_back(Row{});
    } else {
        scope.addBinding(sources[0].binding, sources[0].columns);
        current = std::move(sources[0].rows);
    }

    size_t next_source = 1;
    for (size_t j = 0; j < select.joins.size(); ++j) {
        const JoinClause &join = select.joins[j];
        Source &right = sources[next_source++];
        size_t left_width = scope.width();
        size_t right_width = right.columns.size();

        Scope joined_scope = scope;
        joined_scope.addBinding(right.binding, right.columns);

        const Expr *on = on_owned[j].get();
        ExprPtr natural_on;
        if (join.type == JoinType::Natural) {
            // NATURAL JOIN: equality over all common column names.
            std::vector<ExprPtr> equalities;
            for (const Binding &binding : scope.bindings) {
                for (const std::string &column : binding.columns) {
                    for (const std::string &right_col : right.columns) {
                        if (column == right_col) {
                            equalities.push_back(
                                std::make_unique<BinaryExpr>(
                                    BinaryOp::Eq,
                                    std::make_unique<ColumnRefExpr>(
                                        binding.name, column),
                                    std::make_unique<ColumnRefExpr>(
                                        right.binding, right_col)));
                        }
                    }
                }
            }
            for (ExprPtr &equality : equalities) {
                natural_on = natural_on == nullptr
                                 ? std::move(equality)
                                 : std::make_unique<BinaryExpr>(
                                       BinaryOp::And,
                                       std::move(natural_on),
                                       std::move(equality));
            }
            on = natural_on.get();
        }

        auto eval_on = [&](const Row &combined) -> StatusOr<bool> {
            if (on == nullptr)
                return true;
            return predicateKeeps(*on, joined_scope, combined, outer,
                                  /*where_clause=*/false);
        };

        std::vector<Row> joined;
        auto emit = [&](Row row) -> Status {
            if (Status s = budget_->chargeIntermediateRows(1); !s.isOk())
                return s;
            joined.push_back(std::move(row));
            return Status::ok();
        };

        // Hash join: optimized mode, INNER or LEFT, ON is col = col
        // across the two sides.
        bool used_hash = false;
        if (mode_ != ExecMode::Reference && on != nullptr &&
            (join.type == JoinType::Inner ||
             join.type == JoinType::Left) &&
            on->kind() == ExprKind::Binary) {
            const auto &bin = static_cast<const BinaryExpr &>(*on);
            if (bin.op == BinaryOp::Eq &&
                bin.lhs->kind() == ExprKind::ColumnRef &&
                bin.rhs->kind() == ExprKind::ColumnRef) {
                const auto *lref =
                    static_cast<const ColumnRefExpr *>(bin.lhs.get());
                const auto *rref =
                    static_cast<const ColumnRefExpr *>(bin.rhs.get());
                auto left_off = scope.resolve(lref->table, lref->column);
                auto right_in_new = [&](const ColumnRefExpr *ref) {
                    if (!ref->table.empty() &&
                        ref->table != right.binding) {
                        return StoredTable::npos;
                    }
                    for (size_t c = 0; c < right.columns.size(); ++c) {
                        if (right.columns[c] == ref->column)
                            return c;
                    }
                    return StoredTable::npos;
                };
                size_t left_col = StoredTable::npos;
                size_t right_col = StoredTable::npos;
                if (left_off.isOk() &&
                    right_in_new(rref) != StoredTable::npos) {
                    left_col = left_off.value();
                    right_col = right_in_new(rref);
                } else {
                    auto left_off2 =
                        scope.resolve(rref->table, rref->column);
                    if (left_off2.isOk() &&
                        right_in_new(lref) != StoredTable::npos) {
                        left_col = left_off2.value();
                        right_col = right_in_new(lref);
                    }
                }
                if (left_col != StoredTable::npos &&
                    right_col != StoredTable::npos) {
                    used_hash = true;
                    SQLPP_COVER("exec.join.hash");
                    note(format("HASHJ(%s,%s)", joinTypeName(join.type),
                                right.binding.c_str()));
                    bool null_match =
                        faults_.isEnabled(FaultId::HashJoinNullMatch);
                    // Class-normalized key so 1 and TRUE hash together,
                    // as SQL equality dictates.
                    auto hash_key =
                        [](const Value &value) -> std::string {
                        if (value.isNull())
                            return "<null>";
                        if (value.kind() == Value::Kind::Text)
                            return "t" + value.asText();
                        return "i" +
                               std::to_string(*valueToNumeric(value));
                    };
                    std::map<std::string, std::vector<size_t>> buckets;
                    if (Status s = budget_->chargeSteps(
                            right.rows.size() + current.size());
                        !s.isOk()) {
                        return s;
                    }
                    for (size_t ri = 0; ri < right.rows.size(); ++ri) {
                        const Value &key = right.rows[ri][right_col];
                        if (key.isNull() && !null_match)
                            continue;
                        buckets[hash_key(key)].push_back(ri);
                    }
                    for (const Row &left_row : current) {
                        const Value &key = left_row[left_col];
                        bool matched = false;
                        if (!key.isNull() || null_match) {
                            auto it = buckets.find(hash_key(key));
                            if (it != buckets.end()) {
                                for (size_t ri : it->second) {
                                    Row combined = left_row;
                                    combined.insert(
                                        combined.end(),
                                        right.rows[ri].begin(),
                                        right.rows[ri].end());
                                    if (Status s =
                                            emit(std::move(combined));
                                        !s.isOk()) {
                                        return s;
                                    }
                                    matched = true;
                                }
                            }
                        }
                        if (!matched && join.type == JoinType::Left) {
                            Row combined = left_row;
                            combined.resize(left_width + right_width);
                            if (Status s = emit(std::move(combined));
                                !s.isOk()) {
                                return s;
                            }
                        }
                    }
                }
            }
        }

        if (!used_hash) {
            SQLPP_COVER("exec.join.nested_loop");
            note(format("NLJ(%s,%s)", joinTypeName(join.type),
                        right.binding.c_str()));
            std::vector<bool> right_matched(right.rows.size(), false);
            for (const Row &left_row : current) {
                bool matched = false;
                for (size_t ri = 0; ri < right.rows.size(); ++ri) {
                    if (Status s = budget_->chargeSteps(1); !s.isOk())
                        return s;
                    Row combined = left_row;
                    combined.insert(combined.end(),
                                    right.rows[ri].begin(),
                                    right.rows[ri].end());
                    auto keeps = eval_on(combined);
                    if (!keeps.isOk())
                        return keeps.status();
                    if (keeps.value()) {
                        matched = true;
                        right_matched[ri] = true;
                        if (Status s = emit(std::move(combined));
                            !s.isOk()) {
                            return s;
                        }
                    }
                }
                if (!matched &&
                    (join.type == JoinType::Left ||
                     join.type == JoinType::Full)) {
                    SQLPP_COVER("exec.join.null_extend_left");
                    Row combined = left_row;
                    combined.resize(left_width + right_width);
                    if (Status s = emit(std::move(combined)); !s.isOk())
                        return s;
                }
            }
            if (join.type == JoinType::Right ||
                join.type == JoinType::Full) {
                for (size_t ri = 0; ri < right.rows.size(); ++ri) {
                    if (right_matched[ri])
                        continue;
                    SQLPP_COVER("exec.join.null_extend_right");
                    Row combined(left_width);
                    combined.insert(combined.end(),
                                    right.rows[ri].begin(),
                                    right.rows[ri].end());
                    if (Status s = emit(std::move(combined)); !s.isOk())
                        return s;
                }
            }
        }

        scope = std::move(joined_scope);
        current = std::move(joined);
    }

    // Remaining comma-separated FROM items: cross products.
    for (; next_source < sources.size(); ++next_source) {
        Source &right = sources[next_source];
        SQLPP_COVER("exec.join.cross_comma");
        note("CROSS(" + right.binding + ")");
        std::vector<Row> joined;
        for (const Row &left_row : current) {
            for (const Row &right_row : right.rows) {
                if (Status s = budget_->chargeIntermediateRows(1);
                    !s.isOk()) {
                    return s;
                }
                Row combined = left_row;
                combined.insert(combined.end(), right_row.begin(),
                                right_row.end());
                joined.push_back(std::move(combined));
            }
        }
        scope.addBinding(right.binding, right.columns);
        current = std::move(joined);
    }

    // ------------------------------------------------------------------
    // WHERE (whole predicate in reference mode; residue in optimized).
    // ------------------------------------------------------------------
    if (!where_conjuncts.empty()) {
        SQLPP_COVER("exec.filter.where");
        note(format("FILT(%zu)", where_conjuncts.size()));
        std::vector<Row> kept;
#ifndef SQLPP_NO_BATCH
        if (mode_ == ExecMode::Batch) {
            if (Status s = batchFilterInto(current, where_conjuncts,
                                           scope, outer, kept);
                !s.isOk()) {
                return s;
            }
            current = std::move(kept);
        } else
#endif
        {
            for (const Row &row : current) {
                bool keep = true;
                for (const Expr *conjunct : where_conjuncts) {
                    auto result =
                        predicateKeeps(*conjunct, scope, row, outer,
                                       /*where_clause=*/true);
                    if (!result.isOk())
                        return result.status();
                    if (!result.value()) {
                        keep = false;
                        break;
                    }
                }
                if (keep)
                    kept.push_back(row);
            }
            current = std::move(kept);
        }
    }

    // ------------------------------------------------------------------
    // Grouping / aggregation.
    // ------------------------------------------------------------------
    bool has_aggregate = false;
    for (const SelectItem &item : select.items) {
        if (item.expr != nullptr && exprContainsAggregate(*item.expr))
            has_aggregate = true;
    }
    if (select.having != nullptr &&
        exprContainsAggregate(*select.having)) {
        has_aggregate = true;
    }
    for (const OrderTerm &term : select.orderBy) {
        if (exprContainsAggregate(*term.expr))
            has_aggregate = true;
    }
    bool aggregate_path = has_aggregate || !select.groupBy.empty();

    // The projection + optional sort-key evaluation shares this helper.
    auto project = [&](const EvalContext &ctx,
                       ResultSet &out) -> Status {
        Row out_row;
        for (const SelectItem &item : select.items) {
            if (item.star) {
                if (scope.bindings.empty()) {
                    return Status::semanticError(
                        "SELECT * requires a FROM clause");
                }
                if (ctx.row != nullptr) {
                    for (const Value &value : *ctx.row)
                        out_row.push_back(value);
                } else {
                    out_row.resize(out_row.size() + scope.width());
                }
                continue;
            }
            auto value = evalExpr(*item.expr, ctx);
            if (!value.isOk())
                return value.status();
            out_row.push_back(value.takeValue());
        }
        if (Status s = budget_->chargeRows(1); !s.isOk())
            return s;
        out.addRow(std::move(out_row));
        return Status::ok();
    };

    // Output column names.
    std::vector<std::string> out_columns;
    for (const SelectItem &item : select.items) {
        if (item.star) {
            auto names = scope.allColumnNames();
            out_columns.insert(out_columns.end(), names.begin(),
                               names.end());
        } else if (!item.alias.empty()) {
            out_columns.push_back(item.alias);
        } else if (item.expr->kind() == ExprKind::ColumnRef) {
            out_columns.push_back(
                static_cast<const ColumnRefExpr *>(item.expr.get())
                    ->column);
        } else {
            out_columns.push_back(printExpr(*item.expr));
        }
    }

    ResultSet result(out_columns);
    // Sort keys per produced row, evaluated in the same context.
    std::vector<std::vector<Value>> sort_keys;

    auto base_ctx = [&]() {
        EvalContext ctx;
        ctx.scope = &scope;
        ctx.outer = outer;
        ctx.behavior = &behavior_;
        ctx.faults = &faults_;
        ctx.subqueries = this;
        ctx.budget = budget_;
        return ctx;
    };

    auto eval_sort_keys = [&](const EvalContext &ctx) -> Status {
        if (select.orderBy.empty())
            return Status::ok();
        std::vector<Value> keys;
        for (const OrderTerm &term : select.orderBy) {
            auto value = evalExpr(*term.expr, ctx);
            if (!value.isOk())
                return value.status();
            keys.push_back(value.takeValue());
        }
        sort_keys.push_back(std::move(keys));
        return Status::ok();
    };

    if (aggregate_path) {
        SQLPP_COVER("exec.aggregate");
        note(format("AGG(%zu)", select.groupBy.size()));
        for (const ExprPtr &key : select.groupBy) {
            if (exprContainsAggregate(*key)) {
                return Status::semanticError(
                    "aggregate functions are not allowed in GROUP BY");
            }
        }
        // Build groups.
        std::vector<std::pair<std::string, std::vector<Row>>> groups;
        std::map<std::string, size_t> group_index;
        bool null_separate =
            faults_.isEnabled(FaultId::GroupByNullSeparate);
        size_t null_counter = 0;
        if (select.groupBy.empty()) {
            groups.emplace_back("", std::move(current));
        } else {
            for (Row &row : current) {
                EvalContext ctx = base_ctx();
                ctx.row = &row;
                std::string key;
                for (const ExprPtr &key_expr : select.groupBy) {
                    auto value = evalExpr(*key_expr, ctx);
                    if (!value.isOk())
                        return value.status();
                    if (value.value().isNull() && null_separate) {
                        SQLPP_COVER("exec.fault.group_null_separate");
                        key += format("n#%zu", null_counter++);
                    } else {
                        key += valueKey(value.value());
                    }
                    key.push_back('\x1f');
                }
                auto [it, inserted] =
                    group_index.emplace(key, groups.size());
                if (inserted)
                    groups.emplace_back(key, std::vector<Row>{});
                groups[it->second].second.push_back(std::move(row));
            }
        }
        for (auto &[key, rows] : groups) {
            EvalContext ctx = base_ctx();
            ctx.groupRows = &rows;
            ctx.row = rows.empty() ? nullptr : &rows[0];
            if (select.having != nullptr) {
                auto value = evalExpr(*select.having, ctx);
                if (!value.isOk())
                    return value.status();
                auto truth = valueTruth(value.value());
                if (!truth.has_value() || !*truth)
                    continue;
            }
            if (Status s = project(ctx, result); !s.isOk())
                return s;
            if (Status s = eval_sort_keys(ctx); !s.isOk())
                return s;
        }
    } else {
        SQLPP_COVER("exec.project");
        note(format("PROJ(%zu)", select.items.size()));
        if (select.having != nullptr) {
            return Status::semanticError(
                "HAVING requires GROUP BY or aggregates");
        }
        bool batch_projected = false;
#ifndef SQLPP_NO_BATCH
        if (mode_ == ExecMode::Batch) {
            BatchExprEnv env;
            env.scope = &scope;
            env.behavior = &behavior_;
            env.faults = &faults_;
            env.budget = budget_;
            auto batched = batchProjectRows(
                env, select, current,
                [&](const Row &row) -> Status {
                    EvalContext ctx = base_ctx();
                    ctx.row = &row;
                    if (Status s = project(ctx, result); !s.isOk())
                        return s;
                    return eval_sort_keys(ctx);
                },
                result, sort_keys);
            if (!batched.isOk())
                return batched.status();
            batch_projected = batched.value();
        }
#endif
        if (!batch_projected) {
            for (const Row &row : current) {
                EvalContext ctx = base_ctx();
                ctx.row = &row;
                if (Status s = project(ctx, result); !s.isOk())
                    return s;
                if (Status s = eval_sort_keys(ctx); !s.isOk())
                    return s;
            }
        }
    }

    // ------------------------------------------------------------------
    // DISTINCT, ORDER BY, LIMIT/OFFSET over the projected rows.
    // ------------------------------------------------------------------
    std::vector<size_t> order(result.rowCount());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;

    if (select.distinct) {
        SQLPP_COVER("exec.distinct");
        note("DISTINCT");
        bool null_collapse =
            faults_.isEnabled(FaultId::DistinctNullCollapse);
        std::set<std::string> seen;
        std::vector<size_t> kept;
        for (size_t i : order) {
            if (Status s = budget_->chargeSteps(1); !s.isOk())
                return s;
            const Row &row = result.rows()[i];
            bool has_null = false;
            for (const Value &value : row)
                has_null |= value.isNull();
            std::string key = (null_collapse && has_null)
                                  ? std::string("\x01NULLROW")
                                  : rowKey(row);
            if (null_collapse && has_null)
                SQLPP_COVER("exec.fault.distinct_null_collapse");
            if (seen.insert(key).second)
                kept.push_back(i);
        }
        order = std::move(kept);
    }

    if (!select.orderBy.empty()) {
        SQLPP_COVER("exec.sort");
        note(format("SORT(%zu)", select.orderBy.size()));
        if (Status s = budget_->chargeSteps(order.size()); !s.isOk())
            return s;
        std::stable_sort(
            order.begin(), order.end(), [&](size_t a, size_t b) {
                for (size_t k = 0; k < select.orderBy.size(); ++k) {
                    int cmp = compareForSort(sort_keys[a][k],
                                             sort_keys[b][k]);
                    if (cmp != 0) {
                        return select.orderBy[k].ascending ? cmp < 0
                                                           : cmp > 0;
                    }
                }
                return false;
            });
    }

    size_t begin = 0;
    size_t end = order.size();
    if (select.offset >= 0) {
        note("OFFSET");
        begin = std::min<size_t>(static_cast<size_t>(select.offset),
                                 order.size());
    }
    if (select.limit >= 0) {
        note("LIMIT");
        end = std::min<size_t>(begin + static_cast<size_t>(select.limit),
                               order.size());
    }

    ResultSet final_result(out_columns);
    for (size_t i = begin; i < end; ++i)
        final_result.addRow(result.rows()[order[i]]);
    return final_result;
}

} // namespace sqlpp
