/**
 * @file
 * Fault injection: the ground-truth logic bugs of the DBMS substrate.
 *
 * The paper finds unknown logic bugs in production DBMSs; our substrate
 * instead ships a library of *known* semantic faults that each dialect
 * profile enables a subset of. Every fault is a deliberate, localized
 * deviation from correct SQL semantics in the planner or evaluator —
 * the same classes of defects the paper reports (wrong three-valued
 * logic, bad index scans, illegal predicate movement around outer
 * joins, constant-folding slips, join-key coercion bugs).
 *
 * Ground-truth identities let the evaluation measure what the paper
 * could only approximate by bisecting CrateDB commits: how many of the
 * prioritized bug-inducing test cases map to distinct underlying bugs
 * (Table 5).
 *
 * Oracle visibility (by construction, mirroring the paper's findings):
 *  - Planner faults are visible to both NoREC and TLP (the optimized
 *    WHERE path diverges from reference evaluation).
 *  - Faults in NOT / IS NULL / WHERE NULL-handling break TLP's
 *    partition law (every row satisfies exactly one of p, NOT p,
 *    p IS NULL) and are TLP-only.
 *  - IsTrueFalseTrue corrupts the projected `(p) IS TRUE` reference
 *    side and is NoREC-only.
 *  - A few faults (marked "latent") are invisible to both oracles,
 *    modelling the paper's observation that bug-finding never saturates.
 */
#ifndef SQLPP_ENGINE_FAULTS_H
#define SQLPP_ENGINE_FAULTS_H

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace sqlpp {

/** Every injectable logic bug. Values are stable (used in reports). */
enum class FaultId : uint32_t
{
    /** Planner: index scan for `col > k` also returns rows with col = k. */
    IndexRangeGtIncludesEqual = 1,
    /** Planner: index scan for `col < k` also returns rows with col = k. */
    IndexRangeLtIncludesEqual = 2,
    /** Planner: `col IS NULL` via index misses rows (NULLs unindexed). */
    IndexSkipsNull = 3,
    /** Planner: index equality probe coerces a text key to an integer. */
    IndexEqTextCoerce = 4,
    /** Planner: a partial index is used without checking its predicate. */
    PartialIndexIgnoresPredicate = 5,
    /** Planner: single-table WHERE conjunct pushed below an outer join. */
    PushdownThroughOuterJoin = 6,
    /**
     * Planner: when a query has a WHERE clause, the "flattener" moves a
     * RIGHT JOIN's ON term into it (paper Listing 4's root cause). The
     * WHERE-conditionality is what makes the fault oracle-visible: a
     * predicate-free query plans correctly, a predicated one does not.
     */
    OnToWhereRightJoin = 7,
    /** Planner: hash join matches NULL keys as equal. */
    HashJoinNullMatch = 8,
    /** Planner: constant folding reduces NULLIF(x, x) to x, not NULL. */
    ConstFoldNullifIdentity = 9,
    /**
     * Planner: the constant folder treats a literal TRUE as the
     * *absorbing* element of AND instead of the identity — a top-level
     * WHERE of shape `<x> AND TRUE` folds to TRUE, keeping every row.
     * Only rewrite-shaped inputs (EET's `p AND TRUE` wrapper) ever
     * present this tree, so plain generated predicates sail past it.
     */
    ConstFoldTrueAbsorbsAnd = 10,

    /** Evaluator: NOT NULL evaluates to TRUE instead of NULL. */
    NotNullTrue = 20,
    /** Evaluator: (x IS NULL) returns FALSE for a NULL boolean operand. */
    IsNullFalseForBoolNull = 21,
    /** Executor: WHERE keeps rows whose predicate evaluates to NULL. */
    WhereNullAsTrue = 22,
    /**
     * Evaluator: mixed-type equality (TEXT vs INT) flips its result when
     * evaluated under an odd number of enclosing NOTs — the
     * context-dependent comparison mechanism behind the paper's
     * ten-year-old SQLite REPLACE bug (Listing 3).
     */
    NegContextMixedEq = 23,
    /** Evaluator: (FALSE IS TRUE) evaluates to TRUE. */
    IsTrueFalseTrue = 24,
    /** Executor: DISTINCT collapses any two rows that both contain NULL. */
    DistinctNullCollapse = 25,
    /**
     * Evaluator: REPLACE returns a numeric value (not TEXT) when its
     * subject is numeric — the direct cause of the paper's Listing 3
     * SQLite bug; observable through mixed-type comparisons, and
     * TLP-visible in combination with NegContextMixedEq.
     */
    ReplaceNumericSubject = 26,
    /**
     * Evaluator: a double negation evaluated as the *root* of a value
     * expression short-circuits its three-valued logic — `NOT (NOT p)`
     * at an evaluation root returns FALSE where p is NULL. In WHERE
     * position NULL and FALSE both exclude the row, so every WHERE-based
     * oracle is structurally blind; only an oracle that projects the
     * doubly-negated predicate as a *value* (EET's projection lane) can
     * observe the NULL -> FALSE collapse.
     */
    DoubleNegNullFalse = 27,

    /** Latent evaluator: <=> with two NULL operands yields FALSE. */
    NullSafeEqBothNullFalse = 40,
    /** Latent aggregate: SUM over zero rows yields 0 instead of NULL. */
    SumEmptyZero = 41,
    /** Latent executor: GROUP BY makes every NULL key its own group. */
    GroupByNullSeparate = 42,
    /** Latent evaluator: LIKE treats '_' as a literal underscore. */
    LikeUnderscoreLiteral = 43,

    /**
     * Isolation faults (60-block): multi-session transaction bugs.
     * Each is an exact no-op for single-session auto-commit use — only
     * interleaved sessions with open transactions can observe them, so
     * every single-session oracle is structurally blind and only the
     * interleaving-aware IsolationOracle ("ISO") detects them.
     */
    /** Reads see other sessions' uncommitted writes. */
    TxnDirtyRead = 60,
    /**
     * In-transaction reads track latest-committed state instead of the
     * BEGIN snapshot (read committed where snapshot was claimed).
     */
    TxnNonRepeatableRead = 61,
    /**
     * Only *predicated* reads (WHERE present) rescan latest-committed
     * state inside a transaction — the index-rescan phantom: full
     * scans honour the snapshot, filtered scans leak new rows.
     */
    TxnPhantomClaimedSnapshot = 62,
    /**
     * COMMIT publishes the session's private version of the database
     * wholesale instead of replaying its writes onto the latest
     * committed state — concurrent committers' rows are clobbered.
     */
    TxnLostUpdate = 63,
};

/** All fault ids, in declaration order. */
const std::vector<FaultId> &allFaultIds();

/** Short stable name of a fault (e.g. "ON_TO_WHERE_RIGHT_JOIN"). */
const char *faultName(FaultId id);

/** One-line human description. */
const char *faultDescription(FaultId id);

/** True if the fault lives in the optimizing planner (not the evaluator). */
bool isPlannerFault(FaultId id);

/** True if the fault is invisible to both shipped oracles by design. */
bool isLatentFault(FaultId id);

/** True for the multi-session isolation fault family (60-block). */
bool isIsolationFault(FaultId id);

/** An enabled subset of faults, owned by a Database configuration. */
class FaultSet
{
  public:
    FaultSet() = default;
    explicit FaultSet(std::initializer_list<FaultId> ids)
        : enabled_(ids) {}

    void enable(FaultId id) { enabled_.insert(id); }
    void disable(FaultId id) { enabled_.erase(id); }
    bool isEnabled(FaultId id) const { return enabled_.count(id) > 0; }
    bool empty() const { return enabled_.empty(); }
    size_t size() const { return enabled_.size(); }

    const std::set<FaultId> &ids() const { return enabled_; }

  private:
    std::set<FaultId> enabled_;
};

} // namespace sqlpp

#endif // SQLPP_ENGINE_FAULTS_H
