#include "engine/faults.h"

namespace sqlpp {

const std::vector<FaultId> &
allFaultIds()
{
    static const std::vector<FaultId> ids = {
        FaultId::IndexRangeGtIncludesEqual,
        FaultId::IndexRangeLtIncludesEqual,
        FaultId::IndexSkipsNull,
        FaultId::IndexEqTextCoerce,
        FaultId::PartialIndexIgnoresPredicate,
        FaultId::PushdownThroughOuterJoin,
        FaultId::OnToWhereRightJoin,
        FaultId::HashJoinNullMatch,
        FaultId::ConstFoldNullifIdentity,
        FaultId::ConstFoldTrueAbsorbsAnd,
        FaultId::NotNullTrue,
        FaultId::IsNullFalseForBoolNull,
        FaultId::WhereNullAsTrue,
        FaultId::NegContextMixedEq,
        FaultId::IsTrueFalseTrue,
        FaultId::DistinctNullCollapse,
        FaultId::ReplaceNumericSubject,
        FaultId::DoubleNegNullFalse,
        FaultId::NullSafeEqBothNullFalse,
        FaultId::SumEmptyZero,
        FaultId::GroupByNullSeparate,
        FaultId::LikeUnderscoreLiteral,
        FaultId::TxnDirtyRead,
        FaultId::TxnNonRepeatableRead,
        FaultId::TxnPhantomClaimedSnapshot,
        FaultId::TxnLostUpdate,
    };
    return ids;
}

const char *
faultName(FaultId id)
{
    switch (id) {
      case FaultId::IndexRangeGtIncludesEqual:
        return "INDEX_RANGE_GT_INCLUDES_EQUAL";
      case FaultId::IndexRangeLtIncludesEqual:
        return "INDEX_RANGE_LT_INCLUDES_EQUAL";
      case FaultId::IndexSkipsNull: return "INDEX_SKIPS_NULL";
      case FaultId::IndexEqTextCoerce: return "INDEX_EQ_TEXT_COERCE";
      case FaultId::PartialIndexIgnoresPredicate:
        return "PARTIAL_INDEX_IGNORES_PREDICATE";
      case FaultId::PushdownThroughOuterJoin:
        return "PUSHDOWN_THROUGH_OUTER_JOIN";
      case FaultId::OnToWhereRightJoin: return "ON_TO_WHERE_RIGHT_JOIN";
      case FaultId::HashJoinNullMatch: return "HASH_JOIN_NULL_MATCH";
      case FaultId::ConstFoldNullifIdentity:
        return "CONST_FOLD_NULLIF_IDENTITY";
      case FaultId::ConstFoldTrueAbsorbsAnd:
        return "CONST_FOLD_TRUE_ABSORBS_AND";
      case FaultId::NotNullTrue: return "NOT_NULL_TRUE";
      case FaultId::IsNullFalseForBoolNull:
        return "IS_NULL_FALSE_FOR_BOOL_NULL";
      case FaultId::WhereNullAsTrue: return "WHERE_NULL_AS_TRUE";
      case FaultId::NegContextMixedEq: return "NEG_CONTEXT_MIXED_EQ";
      case FaultId::IsTrueFalseTrue: return "IS_TRUE_FALSE_TRUE";
      case FaultId::DistinctNullCollapse: return "DISTINCT_NULL_COLLAPSE";
      case FaultId::ReplaceNumericSubject:
        return "REPLACE_NUMERIC_SUBJECT";
      case FaultId::DoubleNegNullFalse:
        return "DOUBLE_NEG_NULL_FALSE";
      case FaultId::NullSafeEqBothNullFalse:
        return "NULL_SAFE_EQ_BOTH_NULL_FALSE";
      case FaultId::SumEmptyZero: return "SUM_EMPTY_ZERO";
      case FaultId::GroupByNullSeparate: return "GROUP_BY_NULL_SEPARATE";
      case FaultId::LikeUnderscoreLiteral:
        return "LIKE_UNDERSCORE_LITERAL";
      case FaultId::TxnDirtyRead: return "TXN_DIRTY_READ";
      case FaultId::TxnNonRepeatableRead:
        return "TXN_NON_REPEATABLE_READ";
      case FaultId::TxnPhantomClaimedSnapshot:
        return "TXN_PHANTOM_CLAIMED_SNAPSHOT";
      case FaultId::TxnLostUpdate: return "TXN_LOST_UPDATE";
    }
    return "UNKNOWN_FAULT";
}

const char *
faultDescription(FaultId id)
{
    switch (id) {
      case FaultId::IndexRangeGtIncludesEqual:
        return "index range scan for col > k also returns col = k";
      case FaultId::IndexRangeLtIncludesEqual:
        return "index range scan for col < k also returns col = k";
      case FaultId::IndexSkipsNull:
        return "IS NULL index probe misses NULL rows";
      case FaultId::IndexEqTextCoerce:
        return "index equality probe coerces text keys to integers";
      case FaultId::PartialIndexIgnoresPredicate:
        return "partial index chosen without predicate implication check";
      case FaultId::PushdownThroughOuterJoin:
        return "WHERE conjunct pushed below an outer join";
      case FaultId::OnToWhereRightJoin:
        return "RIGHT JOIN ON term moved into the WHERE clause";
      case FaultId::HashJoinNullMatch:
        return "hash join treats NULL join keys as equal";
      case FaultId::ConstFoldNullifIdentity:
        return "constant folding rewrites NULLIF(x, x) to x";
      case FaultId::ConstFoldTrueAbsorbsAnd:
        return "constant folding absorbs WHERE <x> AND TRUE into TRUE";
      case FaultId::NotNullTrue:
        return "NOT NULL evaluates to TRUE instead of NULL";
      case FaultId::IsNullFalseForBoolNull:
        return "IS NULL returns FALSE for NULL boolean operands";
      case FaultId::WhereNullAsTrue:
        return "WHERE keeps rows whose predicate is NULL";
      case FaultId::NegContextMixedEq:
        return "mixed-type equality flips under enclosing NOT";
      case FaultId::IsTrueFalseTrue:
        return "FALSE IS TRUE evaluates to TRUE";
      case FaultId::DistinctNullCollapse:
        return "DISTINCT collapses distinct rows that contain NULL";
      case FaultId::ReplaceNumericSubject:
        return "REPLACE returns a numeric value for numeric subjects";
      case FaultId::DoubleNegNullFalse:
        return "root NOT (NOT p) collapses NULL to FALSE";
      case FaultId::NullSafeEqBothNullFalse:
        return "NULL <=> NULL evaluates to FALSE";
      case FaultId::SumEmptyZero:
        return "SUM over the empty set returns 0 instead of NULL";
      case FaultId::GroupByNullSeparate:
        return "GROUP BY separates NULL keys into distinct groups";
      case FaultId::LikeUnderscoreLiteral:
        return "LIKE treats '_' as a literal character";
      case FaultId::TxnDirtyRead:
        return "reads see other sessions' uncommitted writes";
      case FaultId::TxnNonRepeatableRead:
        return "in-transaction reads follow latest-committed state";
      case FaultId::TxnPhantomClaimedSnapshot:
        return "predicated reads leak committed phantoms into snapshots";
      case FaultId::TxnLostUpdate:
        return "COMMIT clobbers concurrently committed writes";
    }
    return "?";
}

bool
isPlannerFault(FaultId id)
{
    switch (id) {
      case FaultId::IndexRangeGtIncludesEqual:
      case FaultId::IndexRangeLtIncludesEqual:
      case FaultId::IndexSkipsNull:
      case FaultId::IndexEqTextCoerce:
      case FaultId::PartialIndexIgnoresPredicate:
      case FaultId::PushdownThroughOuterJoin:
      case FaultId::OnToWhereRightJoin:
      case FaultId::HashJoinNullMatch:
      case FaultId::ConstFoldNullifIdentity:
      case FaultId::ConstFoldTrueAbsorbsAnd:
        return true;
      default:
        return false;
    }
}

bool
isLatentFault(FaultId id)
{
    switch (id) {
      // Latent *alone*: flips results only through context-dependent
      // comparison, i.e. in combination with NegContextMixedEq
      // (the Listing 3 pairing on the sqlite-like profile).
      case FaultId::ReplaceNumericSubject:
      case FaultId::NullSafeEqBothNullFalse:
      case FaultId::SumEmptyZero:
      case FaultId::GroupByNullSeparate:
      case FaultId::LikeUnderscoreLiteral:
        return true;
      default:
        return false;
    }
}

bool
isIsolationFault(FaultId id)
{
    switch (id) {
      case FaultId::TxnDirtyRead:
      case FaultId::TxnNonRepeatableRead:
      case FaultId::TxnPhantomClaimedSnapshot:
      case FaultId::TxnLostUpdate:
        return true;
      default:
        return false;
    }
}

} // namespace sqlpp
