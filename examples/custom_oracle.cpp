/**
 * @file
 * Extending the platform with a custom oracle through the public API.
 *
 * The paper notes SQLancer++ "can be combined with any test oracle that
 * is not specific to a DBMS". This example adds a DQE-style oracle
 * (Differential Query Execution, Song et al. ICSE'23): the same
 * predicate must select the same rows regardless of which syntactic
 * position it occupies — here, WHERE p versus a CASE projection that is
 * counted client-side. It then drives the custom oracle with the
 * adaptive generator directly, without CampaignRunner, to show the
 * lower-level API.
 *
 *   ./custom_oracle [dialect] [checks]
 */
#include <cstdio>
#include <cstdlib>

#include "core/baseline.h"
#include "core/feedback.h"
#include "core/generator.h"
#include "core/oracle.h"
#include "core/prioritizer.h"
#include "sqlir/printer.h"

using namespace sqlpp;

namespace {

/** Predicate-position differential oracle (DQE flavour). */
class PredicatePositionOracle : public Oracle
{
  public:
    const char *name() const override { return "PRED_POSITION"; }

    OracleResult
    check(Connection &connection, const SelectStmt &base,
          const Expr &predicate) override
    {
        OracleResult result;

        // Position 1: WHERE p, rows counted client-side.
        SelectPtr filtered = base.cloneSelect();
        filtered->where = predicate.clone();
        std::string filtered_text = printSelect(*filtered);
        result.queries.push_back(filtered_text);
        auto filtered_rows = connection.execute(filtered_text);
        if (!filtered_rows.isOk()) {
            result.details = filtered_rows.status().toString();
            return result;
        }

        // Position 2: CASE WHEN p THEN 1 ELSE 0 END projected.
        SelectPtr projected = base.cloneSelect();
        projected->items.clear();
        std::vector<CaseExpr::Arm> arms;
        arms.push_back(CaseExpr::Arm{
            predicate.clone(),
            std::make_unique<LiteralExpr>(Value::integer(1))});
        SelectItem item;
        item.expr = std::make_unique<CaseExpr>(
            nullptr, std::move(arms),
            std::make_unique<LiteralExpr>(Value::integer(0)));
        projected->items.push_back(std::move(item));
        std::string projected_text = printSelect(*projected);
        result.queries.push_back(projected_text);
        auto projected_rows = connection.execute(projected_text);
        if (!projected_rows.isOk()) {
            result.details = projected_rows.status().toString();
            return result;
        }

        size_t case_count = 0;
        for (const Row &row : projected_rows.value().rows()) {
            if (row[0].kind() == Value::Kind::Int &&
                row[0].asInt() == 1) {
                ++case_count;
            }
        }
        if (filtered_rows.value().rowCount() == case_count) {
            result.outcome = OracleOutcome::Passed;
        } else {
            result.outcome = OracleOutcome::Bug;
            result.details = "WHERE selected " +
                             std::to_string(
                                 filtered_rows.value().rowCount()) +
                             " rows but CASE marked " +
                             std::to_string(case_count);
        }
        return result;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    std::string dialect = argc > 1 ? argv[1] : "monetdb-like";
    size_t checks = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 1000;

    const DialectProfile *profile = findDialect(dialect);
    if (profile == nullptr) {
        std::fprintf(stderr, "unknown dialect '%s'\n", dialect.c_str());
        return 1;
    }

    // Wire the platform pieces by hand: registry, feedback, generator.
    FeatureRegistry registry;
    FeedbackTracker tracker;
    FeedbackGate gate(tracker);
    SchemaModel model;
    GeneratorConfig generator_config;
    generator_config.seed = 2024;
    AdaptiveGenerator generator(generator_config, registry, gate, model);
    Connection connection(*profile);
    PredicatePositionOracle custom;
    // Drive through the Oracle interface, like CampaignRunner does;
    // the base class adds the QueryShape convenience overload.
    Oracle &oracle = custom;
    BugPrioritizer prioritizer;

    for (int i = 0; i < 80; ++i) {
        GeneratedStatement stmt = generator.generateSetupStatement();
        bool ok = connection.executeAdapted(stmt.text).isOk();
        tracker.record(stmt.features, ok, false);
        generator.noteExecution(stmt, ok);
    }

    size_t bugs = 0, reported = 0, valid = 0;
    for (size_t i = 0; i < checks; ++i) {
        auto shape = generator.generateQueryShape();
        if (!shape.has_value())
            continue;
        OracleResult result = oracle.check(connection, *shape);
        if (result.outcome == OracleOutcome::Inapplicable)
            continue; // outside the oracle's domain; nothing learned
        tracker.record(shape->features,
                       result.outcome != OracleOutcome::Skipped, true);
        if (result.outcome != OracleOutcome::Skipped)
            ++valid;
        if (result.outcome != OracleOutcome::Bug)
            continue;
        ++bugs;
        if (prioritizer.considerNew(shape->features)) {
            ++reported;
            std::printf("bug #%zu: %s\n", reported,
                        result.details.c_str());
            std::printf("  base     : %s\n",
                        printSelect(*shape->base).c_str());
            std::printf("  predicate: %s\n\n",
                        printExpr(*shape->predicate).c_str());
        }
    }
    std::printf("== custom oracle '%s' on %s ==\n", oracle.name(),
                dialect.c_str());
    std::printf("checks: %zu, valid: %zu, bug-inducing: %zu, "
                "prioritized: %zu\n",
                checks, valid, bugs, reported);
    return 0;
}
